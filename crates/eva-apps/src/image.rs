//! Image-processing applications: Sobel filter detection and Harris corner
//! detection on encrypted images (paper Figure 6 and Section 8.3).
//!
//! Images are packed row-major into a single ciphertext of `n * n` slots;
//! neighbourhood accesses become slot rotations exactly as in the paper's
//! PyEVA listing.

use std::collections::HashMap;

use eva_frontend::{Expr, ProgramBuilder};
use rand::{Rng, SeedableRng};

use crate::{sqrt_approx, Application};

const IMAGE_SCALE: u32 = 30;
const COEFF_SCALE: u32 = 20;

/// The Sobel horizontal-gradient kernel; its transpose is the vertical one.
const SOBEL_KERNEL: [[f64; 3]; 3] = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];

fn sqrt_poly(x: &Expr) -> Expr {
    x * 2.214 + &(x * x) * -1.098 + &(&(x * x) * x) * 0.173
}

/// Builds the Sobel filter program for an `n x n` encrypted image
/// (the Rust rendition of the paper's Figure 6).
pub fn sobel_program(n: usize) -> eva_core::Program {
    let mut builder = ProgramBuilder::with_default_scale("sobel", n * n, COEFF_SCALE);
    let image = builder.input_cipher("image", IMAGE_SCALE);
    let mut ix: Option<Expr> = None;
    let mut iy: Option<Expr> = None;
    for i in 0..3 {
        for j in 0..3 {
            let rotated = &image << (i * n + j) as i32;
            let h = &rotated * SOBEL_KERNEL[i][j];
            let v = &rotated * SOBEL_KERNEL[j][i];
            ix = Some(match ix {
                None => h,
                Some(acc) => acc + h,
            });
            iy = Some(match iy {
                None => v,
                Some(acc) => acc + v,
            });
        }
    }
    let (ix, iy) = (
        ix.expect("kernel is non-empty"),
        iy.expect("kernel is non-empty"),
    );
    let energy = &(&ix * &ix) + &(&iy * &iy);
    let magnitude = sqrt_poly(&energy);
    builder.output("edges", magnitude, IMAGE_SCALE);
    builder.build()
}

/// Builds the Harris corner detection program for an `n x n` encrypted image.
///
/// Gradients are computed with the Sobel kernels, the structure tensor is
/// aggregated over a 3×3 window, and the Harris response
/// `det(M) - k * trace(M)^2` with `k = 0.04` is returned.
pub fn harris_program(n: usize) -> eva_core::Program {
    let mut builder = ProgramBuilder::with_default_scale("harris", n * n, COEFF_SCALE);
    let image = builder.input_cipher("image", IMAGE_SCALE);
    let mut ix: Option<Expr> = None;
    let mut iy: Option<Expr> = None;
    for i in 0..3 {
        for j in 0..3 {
            if SOBEL_KERNEL[i][j] == 0.0 && SOBEL_KERNEL[j][i] == 0.0 {
                continue;
            }
            let rotated = &image << (i * n + j) as i32;
            if SOBEL_KERNEL[i][j] != 0.0 {
                let h = &rotated * SOBEL_KERNEL[i][j];
                ix = Some(match ix.take() {
                    None => h,
                    Some(acc) => acc + h,
                });
            }
            if SOBEL_KERNEL[j][i] != 0.0 {
                let v = &rotated * SOBEL_KERNEL[j][i];
                iy = Some(match iy.take() {
                    None => v,
                    Some(acc) => acc + v,
                });
            }
        }
    }
    let (ix, iy) = (
        ix.expect("kernel is non-empty"),
        iy.expect("kernel is non-empty"),
    );
    let ixx = &ix * &ix;
    let iyy = &iy * &iy;
    let ixy = &ix * &iy;
    let window_sum = |field: &Expr| -> Expr {
        let mut acc: Option<Expr> = None;
        for i in 0..3 {
            for j in 0..3 {
                let shifted = field << (i * n + j) as i32;
                acc = Some(match acc {
                    None => shifted,
                    Some(acc) => acc + shifted,
                });
            }
        }
        acc.expect("window is non-empty")
    };
    let sxx = window_sum(&ixx);
    let syy = window_sum(&iyy);
    let sxy = window_sum(&ixy);
    let det = &(&sxx * &syy) - &(&sxy * &sxy);
    let trace = &sxx + &syy;
    let response = &det - &(&(&trace * &trace) * 0.04);
    builder.output("corners", response, IMAGE_SCALE);
    builder.build()
}

/// Plaintext Sobel reference on a packed row-major image (with the same
/// wrap-around boundary behaviour as the rotation-based encrypted version).
pub fn sobel_reference(image: &[f64], n: usize) -> Vec<f64> {
    let at = |idx: usize, offset: usize| image[(idx + offset) % (n * n)];
    (0..n * n)
        .map(|idx| {
            let mut ix = 0.0;
            let mut iy = 0.0;
            for i in 0..3 {
                for j in 0..3 {
                    let v = at(idx, i * n + j);
                    ix += v * SOBEL_KERNEL[i][j];
                    iy += v * SOBEL_KERNEL[j][i];
                }
            }
            sqrt_approx(ix * ix + iy * iy)
        })
        .collect()
}

/// Plaintext Harris reference on a packed row-major image.
pub fn harris_reference(image: &[f64], n: usize) -> Vec<f64> {
    let size = n * n;
    let at = |idx: usize, offset: usize| image[(idx + offset) % size];
    let mut ixx = vec![0.0; size];
    let mut iyy = vec![0.0; size];
    let mut ixy = vec![0.0; size];
    for idx in 0..size {
        let mut ix = 0.0;
        let mut iy = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let v = at(idx, i * n + j);
                ix += v * SOBEL_KERNEL[i][j];
                iy += v * SOBEL_KERNEL[j][i];
            }
        }
        ixx[idx] = ix * ix;
        iyy[idx] = iy * iy;
        ixy[idx] = ix * iy;
    }
    let window = |field: &[f64], idx: usize| -> f64 {
        let mut acc = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                acc += field[(idx + i * n + j) % size];
            }
        }
        acc
    };
    (0..size)
        .map(|idx| {
            let sxx = window(&ixx, idx);
            let syy = window(&iyy, idx);
            let sxy = window(&ixy, idx);
            let det = sxx * syy - sxy * sxy;
            let trace = sxx + syy;
            det - 0.04 * trace * trace
        })
        .collect()
}

fn random_image(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n * n).map(|_| rng.gen_range(0.0..0.2)).collect()
}

/// Packaged Sobel application on an `n x n` random image.
pub fn sobel(n: usize, seed: u64) -> Application {
    let image = random_image(n, seed);
    let expected = sobel_reference(&image, n);
    Application {
        name: "Sobel Filter Detection".into(),
        program: sobel_program(n),
        inputs: HashMap::from([("image".to_string(), image)]),
        expected: HashMap::from([("edges".to_string(), expected)]),
        tolerance: 1e-2,
    }
}

/// Packaged Harris application on an `n x n` random image.
pub fn harris(n: usize, seed: u64) -> Application {
    let image = random_image(n, seed);
    let expected = harris_reference(&image, n);
    Application {
        name: "Harris Corner Detection".into(),
        program: harris_program(n),
        inputs: HashMap::from([("image".to_string(), image)]),
        expected: HashMap::from([("corners".to_string(), expected)]),
        tolerance: 1e-2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_backend::run_reference;
    use eva_core::{compile, CompilerOptions};

    #[test]
    fn sobel_program_matches_reference() {
        let app = sobel(8, 1);
        let outputs = run_reference(&app.program, &app.inputs).unwrap();
        for (a, b) in outputs["edges"].iter().zip(&app.expected["edges"]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn harris_program_matches_reference() {
        let app = harris(8, 2);
        let outputs = run_reference(&app.program, &app.inputs).unwrap();
        for (a, b) in outputs["corners"].iter().zip(&app.expected["corners"]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn harris_is_the_largest_application() {
        // The paper calls Harris one of the most complex CKKS programs; it has
        // clearly more instructions than Sobel and still compiles cleanly.
        let sobel_nodes = sobel_program(8).len();
        let harris_nodes = harris_program(8).len();
        assert!(harris_nodes > sobel_nodes);
        assert!(compile(&harris_program(8), &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn rotation_keys_are_bounded_by_window_size() {
        let compiled = compile(&sobel_program(16), &CompilerOptions::default()).unwrap();
        // 3x3 window minus the zero rotation.
        assert!(compiled.rotation_steps.len() <= 8);
    }
}
