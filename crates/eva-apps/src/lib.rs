//! # eva-apps — the applications evaluated in the EVA paper (Table 8)
//!
//! Each module builds the corresponding EVA program through the frontend
//! builder, provides a plaintext reference computation, and a generator for
//! random test inputs:
//!
//! * [`path_length`] — length of an encrypted path in 3-D space (the secure
//!   fitness-tracking kernel of Section 8.3);
//! * [`regression`] — linear, polynomial and multivariate regression on
//!   encrypted vectors;
//! * [`image`] — Sobel filter detection and Harris corner detection on
//!   encrypted images (Figures 6 and Section 8.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod path_length;
pub mod regression;

use std::collections::HashMap;

use eva_core::Program;

/// A packaged application: the EVA program plus matching sample inputs and the
/// plaintext reference output, so benchmarks and tests can treat all
/// applications uniformly (one row of the paper's Table 8 each).
#[derive(Debug, Clone)]
pub struct Application {
    /// Human-readable name (matches Table 8).
    pub name: String,
    /// The EVA input program.
    pub program: Program,
    /// Sample input bindings.
    pub inputs: HashMap<String, Vec<f64>>,
    /// Expected (plaintext) outputs for the sample inputs.
    pub expected: HashMap<String, Vec<f64>>,
    /// Tolerance within which encrypted results should match `expected`.
    pub tolerance: f64,
}

/// Builds every application of Table 8 with the given RNG seed.
pub fn all_applications(seed: u64) -> Vec<Application> {
    vec![
        path_length::application(4096, seed),
        regression::linear(2048, seed + 1),
        regression::polynomial(4096, seed + 2),
        regression::multivariate(2048, seed + 3),
        image::sobel(64, seed + 4),
        image::harris(64, seed + 5),
    ]
}

/// The cubic polynomial approximation of `sqrt` used by the paper's Sobel
/// example (Figure 6): `2.214 x - 1.098 x^2 + 0.173 x^3`.
pub fn sqrt_approx(x: f64) -> f64 {
    2.214 * x - 1.098 * x * x + 0.173 * x * x * x
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_backend::run_reference;
    use eva_core::{compile, CompilerOptions};

    #[test]
    fn all_applications_compile_and_match_their_reference_outputs() {
        for app in all_applications(7) {
            let compiled = compile(&app.program, &CompilerOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to compile: {e}", app.name));
            let outputs = run_reference(&compiled.program, &app.inputs)
                .unwrap_or_else(|e| panic!("{} failed to execute: {e}", app.name));
            for (name, expected) in &app.expected {
                let actual = &outputs[name];
                for (i, (a, b)) in actual.iter().zip(expected).enumerate() {
                    assert!(
                        (a - b).abs() < app.tolerance,
                        "{}: output {name}[{i}] = {a}, expected {b}",
                        app.name
                    );
                }
            }
        }
    }

    #[test]
    fn applications_report_expected_vector_sizes() {
        let sizes: Vec<usize> = all_applications(1)
            .iter()
            .map(|a| a.program.vec_size())
            .collect();
        assert_eq!(sizes, vec![4096, 2048, 4096, 2048, 4096, 4096]);
    }
}
