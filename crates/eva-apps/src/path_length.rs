//! Length of an encrypted path in 3-dimensional space.
//!
//! Given two encrypted point streams `(x1, y1, z1)` and `(x2, y2, z2)` the
//! program computes, slot-wise, an approximation of the Euclidean distance
//! between corresponding points using the cubic square-root approximation of
//! the paper's Sobel example. Summing the slots (a plaintext post-processing
//! step) yields the path length — the kernel of a secure fitness application.

use std::collections::HashMap;

use eva_frontend::{Expr, ProgramBuilder};
use rand::{Rng, SeedableRng};

use crate::{sqrt_approx, Application};

/// Scale (bits) used for the encrypted coordinates.
pub const INPUT_SCALE: u32 = 30;

/// Builds the path-length program for `vec_size` path segments.
pub fn program(vec_size: usize) -> eva_core::Program {
    let mut b = ProgramBuilder::with_default_scale("path_length_3d", vec_size, INPUT_SCALE);
    let x1 = b.input_cipher("x1", INPUT_SCALE);
    let y1 = b.input_cipher("y1", INPUT_SCALE);
    let z1 = b.input_cipher("z1", INPUT_SCALE);
    let x2 = b.input_cipher("x2", INPUT_SCALE);
    let y2 = b.input_cipher("y2", INPUT_SCALE);
    let z2 = b.input_cipher("z2", INPUT_SCALE);
    let dx = &x1 - &x2;
    let dy = &y1 - &y2;
    let dz = &z1 - &z2;
    let squared = &(&dx * &dx) + &(&dy * &dy) + (&dz * &dz);
    let distance = sqrt_poly(&squared);
    b.output("distance", distance, INPUT_SCALE);
    b.build()
}

/// The cubic polynomial approximation of the square root as an expression.
fn sqrt_poly(x: &Expr) -> Expr {
    x * 2.214 + &(x * x) * -1.098 + &(&(x * x) * x) * 0.173
}

/// Builds the packaged application with random sample inputs.
pub fn application(vec_size: usize, seed: u64) -> Application {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut coord =
        |_: &str| -> Vec<f64> { (0..vec_size).map(|_| rng.gen_range(-0.5..0.5)).collect() };
    let inputs: HashMap<String, Vec<f64>> = ["x1", "y1", "z1", "x2", "y2", "z2"]
        .iter()
        .map(|&name| (name.to_string(), coord(name)))
        .collect();
    let expected: Vec<f64> = (0..vec_size)
        .map(|i| {
            let dx = inputs["x1"][i] - inputs["x2"][i];
            let dy = inputs["y1"][i] - inputs["y2"][i];
            let dz = inputs["z1"][i] - inputs["z2"][i];
            sqrt_approx(dx * dx + dy * dy + dz * dz)
        })
        .collect();
    Application {
        name: "3-dimensional Path Length".into(),
        program: program(vec_size),
        inputs,
        expected: [("distance".to_string(), expected)].into_iter().collect(),
        tolerance: 1e-2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_backend::run_reference;

    #[test]
    fn reference_execution_matches_closed_form() {
        let app = application(64, 3);
        let outputs = run_reference(&app.program, &app.inputs).unwrap();
        for (a, b) in outputs["distance"].iter().zip(&app.expected["distance"]) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn multiplicative_depth_is_bounded() {
        // squared differences (1), cubing (2 more) and the polynomial's
        // constant coefficients (1 more) give a depth of at most 4.
        let p = program(16);
        assert!(p.multiplicative_depth() <= 4);
    }
}
