//! Statistical machine-learning applications: linear, polynomial and
//! multivariate regression on encrypted feature vectors (paper Section 8.3).
//!
//! In each case the model coefficients are public (plaintext) and the data is
//! encrypted: the server evaluates the model on ciphertexts and returns
//! encrypted predictions plus residuals against encrypted labels.

use eva_frontend::ProgramBuilder;
use rand::{Rng, SeedableRng};

use crate::Application;

const DATA_SCALE: u32 = 30;
const COEFF_SCALE: u32 = 20;

/// Linear regression `pred = w * x + b`, plus residuals against labels `y`.
pub fn linear_program(vec_size: usize, w: f64, b: f64) -> eva_core::Program {
    let mut builder =
        ProgramBuilder::with_default_scale("linear_regression", vec_size, COEFF_SCALE);
    let x = builder.input_cipher("x", DATA_SCALE);
    let y = builder.input_cipher("y", DATA_SCALE);
    let pred = &x * w + b;
    let residual = &pred - &y;
    builder.output("prediction", pred, DATA_SCALE);
    builder.output("residual", residual, DATA_SCALE);
    builder.build()
}

/// Cubic polynomial regression `pred = w3 x^3 + w2 x^2 + w1 x + b`.
pub fn polynomial_program(vec_size: usize, coeffs: [f64; 4]) -> eva_core::Program {
    let [b, w1, w2, w3] = coeffs;
    let mut builder =
        ProgramBuilder::with_default_scale("polynomial_regression", vec_size, COEFF_SCALE);
    let x = builder.input_cipher("x", DATA_SCALE);
    let x2 = &x * &x;
    let x3 = &x2 * &x;
    let pred = &x * w1 + &x2 * w2 + &x3 * w3 + b;
    builder.output("prediction", pred, DATA_SCALE);
    builder.build()
}

/// Multivariate regression over four encrypted feature vectors.
pub fn multivariate_program(vec_size: usize, weights: [f64; 4], bias: f64) -> eva_core::Program {
    let mut builder =
        ProgramBuilder::with_default_scale("multivariate_regression", vec_size, COEFF_SCALE);
    let features: Vec<_> = (0..4)
        .map(|i| builder.input_cipher(format!("x{i}"), DATA_SCALE))
        .collect();
    let mut pred = &features[0] * weights[0];
    for (feature, &w) in features.iter().zip(&weights).skip(1) {
        pred = pred + feature * w;
    }
    pred = pred + bias;
    builder.output("prediction", pred, DATA_SCALE);
    builder.build()
}

fn random_vec(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Packaged linear-regression application with random data.
pub fn linear(vec_size: usize, seed: u64) -> Application {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (w, b) = (0.75, -0.2);
    let x = random_vec(&mut rng, vec_size);
    let y = random_vec(&mut rng, vec_size);
    let pred: Vec<f64> = x.iter().map(|&v| w * v + b).collect();
    let residual: Vec<f64> = pred.iter().zip(&y).map(|(p, v)| p - v).collect();
    Application {
        name: "Linear Regression".into(),
        program: linear_program(vec_size, w, b),
        inputs: [("x".to_string(), x), ("y".to_string(), y)]
            .into_iter()
            .collect(),
        expected: [
            ("prediction".to_string(), pred),
            ("residual".to_string(), residual),
        ]
        .into_iter()
        .collect(),
        tolerance: 1e-3,
    }
}

/// Packaged polynomial-regression application with random data.
pub fn polynomial(vec_size: usize, seed: u64) -> Application {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let coeffs = [0.1, 0.8, -0.4, 0.25];
    let x = random_vec(&mut rng, vec_size);
    let pred: Vec<f64> = x
        .iter()
        .map(|&v| coeffs[0] + coeffs[1] * v + coeffs[2] * v * v + coeffs[3] * v * v * v)
        .collect();
    Application {
        name: "Polynomial Regression".into(),
        program: polynomial_program(vec_size, coeffs),
        inputs: [("x".to_string(), x)].into_iter().collect(),
        expected: [("prediction".to_string(), pred)].into_iter().collect(),
        tolerance: 1e-3,
    }
}

/// Packaged multivariate-regression application with random data.
pub fn multivariate(vec_size: usize, seed: u64) -> Application {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let weights = [0.3, -0.5, 0.9, 0.2];
    let bias = 0.05;
    let features: Vec<Vec<f64>> = (0..4).map(|_| random_vec(&mut rng, vec_size)).collect();
    let pred: Vec<f64> = (0..vec_size)
        .map(|i| bias + (0..4).map(|k| weights[k] * features[k][i]).sum::<f64>())
        .collect();
    Application {
        name: "Multivariate Regression".into(),
        program: multivariate_program(vec_size, weights, bias),
        inputs: features
            .into_iter()
            .enumerate()
            .map(|(i, f)| (format!("x{i}"), f))
            .collect(),
        expected: [("prediction".to_string(), pred)].into_iter().collect(),
        tolerance: 1e-3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_backend::run_reference;
    use eva_core::{compile, CompilerOptions};

    #[test]
    fn linear_regression_outputs_predictions_and_residuals() {
        let app = linear(32, 1);
        let outputs = run_reference(&app.program, &app.inputs).unwrap();
        assert_eq!(outputs.len(), 2);
        for (a, b) in outputs["residual"].iter().zip(&app.expected["residual"]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn polynomial_regression_depth_and_compilation() {
        let app = polynomial(32, 2);
        assert_eq!(app.program.multiplicative_depth(), 3);
        assert!(compile(&app.program, &CompilerOptions::default()).is_ok());
    }

    #[test]
    fn multivariate_prediction_matches_dot_product() {
        let app = multivariate(16, 3);
        let outputs = run_reference(&app.program, &app.inputs).unwrap();
        for (a, b) in outputs["prediction"]
            .iter()
            .zip(&app.expected["prediction"])
        {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
