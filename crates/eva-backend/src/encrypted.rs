//! The encrypted executor: runs a compiled EVA program against the RNS-CKKS
//! scheme, handling key generation, input encryption, plaintext encoding of
//! non-cipher operands and output decryption.
//!
//! The executor is split into explicit phases (context/key generation, input
//! encryption, execution, decryption) so the benchmark harness can time each
//! phase separately, exactly like the paper's Table 7.

use std::collections::HashMap;
use std::sync::Arc;

use eva_ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksError, CkksParameters, Decryptor, Evaluator,
    GaloisKeys, KeyGenerator, RelinearizationKey, SymmetricEncryptor,
};
use eva_core::passes::group_rotation_fanouts;
use eva_core::{CompiledProgram, EvaError, NodeId, NodeKind, Opcode, Program, ValueType};

use crate::keys::ProgramKeyDerivation;

/// A value flowing through the encrypted executor: either a ciphertext or a
/// plaintext vector (the executor keeps plaintext data unencoded and encodes
/// it on demand at the level and scale its cipher consumer requires).
#[derive(Debug, Clone)]
pub enum NodeValue {
    /// An encrypted value.
    Cipher(Ciphertext),
    /// A plaintext vector of program-vector-size elements.
    Plain(Vec<f64>),
}

impl NodeValue {
    /// Approximate heap memory held by this value, in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            NodeValue::Cipher(ct) => ct.memory_bytes(),
            NodeValue::Plain(v) => v.len() * std::mem::size_of::<f64>(),
        }
    }
}

/// The secret-free half of the executor: the CKKS context, the encoder used
/// for plaintext operands, the evaluator and the **evaluation keys**
/// (relinearization and Galois keys).
///
/// This is exactly the state an untrusted deployment server holds: it can
/// execute a compiled program over ciphertexts it received, but it can
/// neither encrypt under the client's public key nor decrypt anything. The
/// client-side [`EncryptedContext`] wraps this with an encryptor and a
/// decryptor.
pub struct EvaluationContext {
    context: CkksContext,
    encoder: CkksEncoder,
    evaluator: Evaluator,
    // The evaluation keys are held behind `Arc`s so a deployment server can
    // share one cached multi-megabyte key set across concurrent resumed
    // sessions without deep-cloning it per connection.
    relin_key: Option<Arc<RelinearizationKey>>,
    galois_keys: Arc<GaloisKeys>,
}

impl std::fmt::Debug for EvaluationContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaluationContext")
            .field("degree", &self.context.degree())
            .field("levels", &self.context.max_level())
            .finish()
    }
}

/// CKKS context plus **all** key material needed to run one compiled program
/// in-process: the evaluation half ([`EvaluationContext`]) plus the
/// encryptor and the secret-key decryptor.
///
/// Inputs are encrypted with the **symmetric seeded** path
/// ([`SymmetricEncryptor`]): the in-process executor owns the secret key, and
/// using the same encryption the deployment client ships over the wire keeps
/// seeded in-process runs bit-identical to client/server runs.
pub struct EncryptedContext {
    eval: EvaluationContext,
    encryptor: SymmetricEncryptor,
    decryptor: Decryptor,
}

impl std::fmt::Debug for EncryptedContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptedContext")
            .field("degree", &self.eval.context.degree())
            .field("levels", &self.eval.context.max_level())
            .finish()
    }
}

fn to_eva_error(err: CkksError) -> EvaError {
    EvaError::Execution(format!("CKKS backend error: {err}"))
}

/// Builds the CKKS parameters a compiled program's spec describes.
///
/// # Errors
///
/// Returns [`EvaError::Execution`] if the spec cannot be instantiated.
pub fn parameters_from_spec(spec: &eva_core::ParameterSpec) -> Result<CkksParameters, EvaError> {
    // Build the context from the *actual primes* the compiler selected
    // and annotated exact scales against — regenerating primes from bit
    // sizes here would break the bit-identity between the compiler's
    // scale predictions and the evaluator's observations. The bit-size
    // path remains as a fallback for hand-built specs without primes.
    if !spec.data_primes.is_empty() {
        CkksParameters::from_primes(
            spec.degree,
            &spec.data_primes,
            spec.special_prime,
            spec.secure,
        )
    } else if spec.secure {
        CkksParameters::with_special_prime_bits(
            spec.degree,
            &spec.data_prime_bits,
            spec.special_prime_bits,
        )
    } else {
        CkksParameters::new_insecure(spec.degree, &spec.data_prime_bits, spec.special_prime_bits)
    }
    .map_err(|e| EvaError::Execution(format!("invalid encryption parameters: {e}")))
}

/// Whether the compiled program contains a RELINEARIZE instruction (and hence
/// needs a relinearization key).
pub fn needs_relinearization(compiled: &CompiledProgram) -> bool {
    compiled.program.nodes().iter().any(|n| {
        matches!(
            n.kind,
            NodeKind::Instruction {
                op: Opcode::Relinearize,
                ..
            }
        )
    })
}

impl EvaluationContext {
    /// Assembles an evaluation context from a CKKS context and evaluation
    /// keys — the server side of the deployment split, where the keys arrive
    /// over the wire instead of from a local key generator.
    pub fn from_parts(
        context: CkksContext,
        relin_key: Option<RelinearizationKey>,
        galois_keys: GaloisKeys,
    ) -> Self {
        Self::from_shared(context, relin_key.map(Arc::new), Arc::new(galois_keys))
    }

    /// Like [`EvaluationContext::from_parts`], but sharing already-`Arc`'d
    /// evaluation keys — the deployment server's session-resumption path,
    /// where one cached key set backs many concurrent sessions and a deep
    /// clone of tens of megabytes per connection would defeat the cache.
    pub fn from_shared(
        context: CkksContext,
        relin_key: Option<Arc<RelinearizationKey>>,
        galois_keys: Arc<GaloisKeys>,
    ) -> Self {
        let encoder = CkksEncoder::new(context.clone());
        let evaluator = Evaluator::new(context.clone());
        Self {
            context,
            encoder,
            evaluator,
            relin_key,
            galois_keys,
        }
    }

    /// The underlying CKKS context.
    pub fn context(&self) -> &CkksContext {
        &self.context
    }

    /// The evaluator (shared, thread-safe).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The encoder used for plaintext operands.
    pub fn encoder(&self) -> &CkksEncoder {
        &self.encoder
    }

    /// Binds already-encrypted inputs (plus plaintext input vectors) to the
    /// program's input nodes — the server-side counterpart of
    /// [`EncryptedContext::encrypt_inputs`], used when ciphertexts arrive
    /// over the wire. Every value is validated against the program's
    /// annotations before it is accepted:
    ///
    /// * ciphertexts must match the context's ring degree, sit at the top
    ///   level with exactly two polynomials in NTT form, carry the node's
    ///   exact `log2` scale bit-for-bit, and have every limb canonical
    ///   (`< q_i`);
    /// * plaintext vectors must have between 1 and `vec_size` values, and are
    ///   replicated to the program vector size exactly like locally supplied
    ///   inputs.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if an input is missing, unknown or
    /// fails validation.
    pub fn bind_inputs(
        &self,
        compiled: &CompiledProgram,
        mut ciphers: HashMap<String, Ciphertext>,
        mut plains: HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<NodeId, NodeValue>, EvaError> {
        let program = &compiled.program;
        let size = program.vec_size();
        let live = program.live_mask();
        let mut bindings = HashMap::new();
        for (id, node) in program.nodes().iter().enumerate() {
            if !live[id] {
                continue;
            }
            let NodeKind::Input { name } = &node.kind else {
                continue;
            };
            let value = match node.ty {
                ValueType::Cipher => {
                    let ct = ciphers.remove(name).ok_or_else(|| {
                        EvaError::Execution(format!("missing encrypted input {name:?}"))
                    })?;
                    self.validate_input_ciphertext(name, &ct, node.scale_log2)?;
                    NodeValue::Cipher(ct)
                }
                _ => {
                    let raw = plains.remove(name).ok_or_else(|| {
                        EvaError::Execution(format!("missing plaintext input {name:?}"))
                    })?;
                    if raw.is_empty() || raw.len() > size {
                        return Err(EvaError::Execution(format!(
                            "input {name:?} has length {}, expected between 1 and {size}",
                            raw.len()
                        )));
                    }
                    if raw.iter().any(|v| !v.is_finite()) {
                        return Err(EvaError::Execution(format!(
                            "input {name:?} contains non-finite values"
                        )));
                    }
                    let replicated: Vec<f64> = (0..size).map(|i| raw[i % raw.len()]).collect();
                    NodeValue::Plain(replicated)
                }
            };
            bindings.insert(id, value);
        }
        if let Some(name) = ciphers.keys().chain(plains.keys()).next() {
            return Err(EvaError::Execution(format!(
                "input {name:?} does not match any live program input"
            )));
        }
        Ok(bindings)
    }

    fn validate_input_ciphertext(
        &self,
        name: &str,
        ct: &Ciphertext,
        expected_scale_log2: f64,
    ) -> Result<(), EvaError> {
        let context = &self.context;
        let fail = |why: String| {
            Err(EvaError::Execution(format!(
                "encrypted input {name:?} rejected: {why}"
            )))
        };
        if ct.size() != 2 {
            return fail(format!("expected 2 polynomials, found {}", ct.size()));
        }
        if ct.level() != context.max_level() {
            return fail(format!(
                "expected a top-level ciphertext (level {}), found level {}",
                context.max_level(),
                ct.level()
            ));
        }
        if ct.scale_log2().to_bits() != expected_scale_log2.to_bits() {
            return fail(format!(
                "scale 2^{} is not bit-identical to the program's input scale 2^{}",
                ct.scale_log2(),
                expected_scale_log2
            ));
        }
        let moduli = context.key_basis().moduli();
        for poly in ct.polys() {
            if poly.degree() != context.degree() {
                return fail(format!(
                    "ring degree {} does not match the context degree {}",
                    poly.degree(),
                    context.degree()
                ));
            }
            if poly.form() != eva_poly::PolyForm::Ntt {
                return fail("polynomials must be in NTT form".into());
            }
            for (i, row) in poly.rows().enumerate() {
                let q = moduli[i].value();
                if row.iter().any(|&limb| limb >= q) {
                    return fail(format!("non-canonical limb in residue row {i}"));
                }
            }
        }
        Ok(())
    }

    /// Collects a program's outputs from computed node values by name,
    /// **without decrypting** — the server side sends these back over the
    /// wire for the client to decrypt.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if an output value is missing.
    pub fn named_outputs(
        compiled: &CompiledProgram,
        values: &HashMap<NodeId, NodeValue>,
    ) -> Result<Vec<(String, NodeValue)>, EvaError> {
        let mut outputs = Vec::with_capacity(compiled.program.outputs().len());
        for output in compiled.program.outputs() {
            let value = values.get(&output.node).ok_or_else(|| {
                EvaError::Execution(format!("output {:?} was not computed", output.name))
            })?;
            outputs.push((output.name.clone(), value.clone()));
        }
        Ok(outputs)
    }

    /// Executes one instruction given its already-computed argument values.
    ///
    /// This is the shared per-node kernel used by both the serial and the
    /// parallel executor.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if the CKKS backend rejects an
    /// operation; for a validated compiled program this indicates an internal
    /// bug, which is exactly the class of error the paper's validation pass is
    /// meant to preclude.
    pub fn execute_node(
        &self,
        program: &Program,
        id: NodeId,
        args: &[&NodeValue],
    ) -> Result<NodeValue, EvaError> {
        let size = program.vec_size();
        let node = program.node(id);
        let NodeKind::Instruction { op, args: arg_ids } = &node.kind else {
            return Err(EvaError::Execution(format!(
                "node {id} is not an instruction"
            )));
        };
        // Pure plaintext computation falls back to reference semantics.
        if args.iter().all(|a| matches!(a, NodeValue::Plain(_))) {
            let plain_args: Vec<&Vec<f64>> = args
                .iter()
                .map(|a| match a {
                    NodeValue::Plain(v) => v,
                    NodeValue::Cipher(_) => unreachable!(),
                })
                .collect();
            return Ok(NodeValue::Plain(plain_apply(*op, &plain_args, size)));
        }

        let ev = &self.evaluator;
        let result = match op {
            Opcode::Negate => {
                let ct = expect_cipher(args[0])?;
                ev.negate(ct)
            }
            Opcode::Add | Opcode::Sub => {
                let (ct, other, swapped) = split_cipher_plain(args)?;
                match other {
                    NodeValue::Cipher(rhs) => {
                        if matches!(op, Opcode::Add) {
                            ev.add(ct, rhs).map_err(to_eva_error)?
                        } else {
                            ev.sub(ct, rhs).map_err(to_eva_error)?
                        }
                    }
                    NodeValue::Plain(values) => {
                        // Encode the plaintext operand at the ciphertext's exact
                        // scale and level so the exact-equality constraint holds.
                        let pt = self.encoder.encode(values, ct.scale_log2(), ct.level());
                        let mut out = if matches!(op, Opcode::Add) {
                            ev.add_plain(ct, &pt).map_err(to_eva_error)?
                        } else {
                            ev.sub_plain(ct, &pt).map_err(to_eva_error)?
                        };
                        // a SUB with a plaintext left operand computes plain - cipher.
                        if swapped && matches!(op, Opcode::Sub) {
                            out = ev.negate(&out);
                        }
                        out
                    }
                }
            }
            Opcode::Multiply => {
                let (ct, other, _) = split_cipher_plain(args)?;
                match other {
                    NodeValue::Cipher(rhs) => ev.multiply(ct, rhs).map_err(to_eva_error)?,
                    NodeValue::Plain(values) => {
                        // Plaintext factors are encoded at their annotated
                        // exact scale — for the compiler's exact match-scale
                        // corrections this is a tiny non-integral delta.
                        let plain_id = arg_ids
                            .iter()
                            .copied()
                            .find(|&a| !program.node(a).ty.is_cipher())
                            .expect("one operand is plaintext");
                        let scale_log2 = program.node(plain_id).scale_log2;
                        let pt = self.encoder.encode(values, scale_log2, ct.level());
                        ev.multiply_plain(ct, &pt).map_err(to_eva_error)?
                    }
                }
            }
            Opcode::RotateLeft(steps) => {
                let ct = expect_cipher(args[0])?;
                ev.rotate(ct, *steps as i64, &self.galois_keys)
                    .map_err(to_eva_error)?
            }
            Opcode::RotateRight(steps) => {
                let ct = expect_cipher(args[0])?;
                ev.rotate(ct, -(*steps as i64), &self.galois_keys)
                    .map_err(to_eva_error)?
            }
            Opcode::Relinearize => {
                let ct = expect_cipher(args[0])?;
                let key = self.relin_key.as_ref().ok_or_else(|| {
                    EvaError::Execution("program relinearizes but no relinearization key".into())
                })?;
                ev.relinearize(ct, key).map_err(to_eva_error)?
            }
            Opcode::ModSwitch => {
                let ct = expect_cipher(args[0])?;
                ev.mod_switch_to_next(ct).map_err(to_eva_error)?
            }
            Opcode::Rescale(_) => {
                let ct = expect_cipher(args[0])?;
                ev.rescale_to_next(ct).map_err(to_eva_error)?
            }
        };
        // The compiler's exact-scale phase promises its per-node annotations
        // are bit-identical to the scales the evaluator produces; check that
        // on every node in debug builds (CI runs a debug-assertions job so
        // this executes on the encrypted network paths).
        debug_assert_eq!(
            result.scale_log2().to_bits(),
            node.scale_log2.to_bits(),
            "node {id} ({op}): executor scale 2^{} deviates from the compiler's \
             exact annotation 2^{}",
            result.scale_log2(),
            node.scale_log2,
        );
        Ok(NodeValue::Cipher(result))
    }

    /// Executes one rotation fan-out group hoisted: the shared source is
    /// RNS-decomposed once and every member's Galois key is applied to the
    /// shared digits (`Evaluator::rotate_hoisted`). Returns the member
    /// values in `members` order.
    ///
    /// Both executors route fan-out members through this kernel; a plaintext
    /// source falls back to reference rotation semantics per member.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if the CKKS backend rejects the
    /// hoisted rotation (e.g. a missing Galois key).
    pub fn execute_rotation_group(
        &self,
        program: &Program,
        members: &[(NodeId, i64)],
        source: &NodeValue,
    ) -> Result<Vec<NodeValue>, EvaError> {
        match source {
            NodeValue::Plain(v) => Ok(members
                .iter()
                .map(|&(_, step)| NodeValue::Plain(plain_rotate(v, step, program.vec_size())))
                .collect()),
            NodeValue::Cipher(ct) => {
                let steps: Vec<i64> = members.iter().map(|&(_, s)| s).collect();
                let rotated = self
                    .evaluator
                    .rotate_hoisted(ct, &steps, &self.galois_keys)
                    .map_err(to_eva_error)?;
                Ok(members
                    .iter()
                    .zip(rotated)
                    .map(|(&(id, _), result)| {
                        debug_assert_eq!(
                            result.scale_log2().to_bits(),
                            program.node(id).scale_log2.to_bits(),
                            "hoisted node {id}: executor scale 2^{} deviates from the \
                             compiler's exact annotation 2^{}",
                            result.scale_log2(),
                            program.node(id).scale_log2,
                        );
                        NodeValue::Cipher(result)
                    })
                    .collect())
            }
        }
    }

    /// Serial execution of the whole program: computes every node in
    /// topological order and returns the values of the output nodes.
    ///
    /// Rotation fan-outs (two or more live rotations of one source, per
    /// [`group_rotation_fanouts`]) execute hoisted: when the first member is
    /// reached in topological order, the whole group is computed at once and
    /// the remaining members' values are pre-stored.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`EncryptedContext::execute_node`].
    pub fn execute_serial(
        &self,
        compiled: &CompiledProgram,
        bindings: HashMap<NodeId, NodeValue>,
    ) -> Result<HashMap<NodeId, NodeValue>, EvaError> {
        self.execute_serial_inner(compiled, bindings, None)
    }

    /// [`execute_serial`](Self::execute_serial) with an allocation-counting
    /// [`MemoryAudit`]: the same execution, additionally measuring the real
    /// peak number of simultaneously-live values/ciphertexts and their bytes.
    ///
    /// The audit is the ground truth that `eva-core`'s static
    /// `predict_peak_memory` forecast must upper-bound (the `report --cost`
    /// pipeline asserts `predicted ≥ audited` on every workload).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`EncryptedContext::execute_node`].
    pub fn execute_serial_audited(
        &self,
        compiled: &CompiledProgram,
        bindings: HashMap<NodeId, NodeValue>,
    ) -> Result<(HashMap<NodeId, NodeValue>, MemoryAudit), EvaError> {
        let mut audit = MemoryAudit::default();
        let outputs = self.execute_serial_inner(compiled, bindings, Some(&mut audit))?;
        Ok((outputs, audit))
    }

    fn execute_serial_inner(
        &self,
        compiled: &CompiledProgram,
        mut bindings: HashMap<NodeId, NodeValue>,
        mut audit: Option<&mut MemoryAudit>,
    ) -> Result<HashMap<NodeId, NodeValue>, EvaError> {
        let program = &compiled.program;
        let uses = program.uses();
        // Compiled programs arrive dead-free (compile() runs a final
        // dead-code elimination and the verifier rejects any survivors), but
        // the executor keeps its own live mask as defense in depth: a raw or
        // tampered program could still carry dead branches, which are not
        // covered by the prime budget or exact-scale annotations.
        let live = program.live_mask();
        let mut remaining_uses: Vec<usize> = uses
            .iter()
            .map(|u| u.iter().filter(|&&c| live[c]).count())
            .collect();
        // Output nodes must survive until decryption.
        for output in program.outputs() {
            remaining_uses[output.node] += 1;
        }
        let mut values: Vec<Option<NodeValue>> = vec![None; program.len()];
        for (id, value) in bindings.drain() {
            values[id] = Some(value);
        }
        // Rotation fan-outs execute hoisted: map each member node to its
        // group so the first member reached triggers the whole group.
        let fanouts = group_rotation_fanouts(program);
        let mut member_group: HashMap<NodeId, usize> = HashMap::new();
        for (g, fanout) in fanouts.iter().enumerate() {
            for &(id, _) in &fanout.members {
                member_group.insert(id, g);
            }
        }
        // Live-set accounting for the audit, mirroring the static forecast:
        // the binding set is the baseline, every materialized value adds,
        // every release subtracts, and the peak is sampled while a result
        // coexists with its not-yet-released parents.
        let mut current_values = 0usize;
        let mut current_ciphers = 0usize;
        let mut current_bytes = 0usize;
        if audit.is_some() {
            for value in values.iter().flatten() {
                current_values += 1;
                current_ciphers += usize::from(matches!(value, NodeValue::Cipher(_)));
                current_bytes += value.memory_bytes();
            }
            if let Some(a) = audit.as_deref_mut() {
                a.record(current_values, current_ciphers, current_bytes);
            }
        }
        for id in program.topological_order() {
            if !live[id] {
                continue;
            }
            let node = program.node(id);
            match &node.kind {
                NodeKind::Input { .. } => {
                    if values[id].is_none() {
                        return Err(EvaError::Execution(format!(
                            "input node {id} was not bound before execution"
                        )));
                    }
                }
                NodeKind::Constant { value } => {
                    let plain = NodeValue::Plain(value.to_vector(program.vec_size()));
                    if let Some(a) = audit.as_deref_mut() {
                        current_values += 1;
                        current_bytes += plain.memory_bytes();
                        a.record(current_values, current_ciphers, current_bytes);
                    }
                    values[id] = Some(plain);
                }
                NodeKind::Instruction { args, .. } => {
                    if values[id].is_none() {
                        if let Some(&g) = member_group.get(&id) {
                            // First member of a fan-out reached: execute the
                            // whole group hoisted and pre-store every
                            // member's value.
                            let fanout = &fanouts[g];
                            let source = values[fanout.source]
                                .as_ref()
                                .expect("fan-out source computed first");
                            let results =
                                self.execute_rotation_group(program, &fanout.members, source)?;
                            for (&(mid, _), result) in fanout.members.iter().zip(results) {
                                if let Some(a) = audit.as_deref_mut() {
                                    current_values += 1;
                                    current_ciphers +=
                                        usize::from(matches!(result, NodeValue::Cipher(_)));
                                    current_bytes += result.memory_bytes();
                                    a.record(current_values, current_ciphers, current_bytes);
                                }
                                values[mid] = Some(result);
                            }
                        } else {
                            let arg_refs: Vec<&NodeValue> = args
                                .iter()
                                .map(|&a| values[a].as_ref().expect("parents computed first"))
                                .collect();
                            let result = self.execute_node(program, id, &arg_refs)?;
                            if let Some(a) = audit.as_deref_mut() {
                                // The result coexists with all parents for an
                                // instant.
                                current_values += 1;
                                current_ciphers +=
                                    usize::from(matches!(result, NodeValue::Cipher(_)));
                                current_bytes += result.memory_bytes();
                                a.record(current_values, current_ciphers, current_bytes);
                            }
                            values[id] = Some(result);
                        }
                    }
                    // Release parent values that have no further consumers
                    // (the executor's memory-reuse rule from Section 6.1).
                    // Decrement once per distinct parent, matching `Program::uses`.
                    let mut distinct = args.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    for a in distinct {
                        remaining_uses[a] = remaining_uses[a].saturating_sub(1);
                        if remaining_uses[a] == 0 {
                            if let Some(released) = values[a].take() {
                                if audit.is_some() {
                                    current_values -= 1;
                                    current_ciphers -=
                                        usize::from(matches!(released, NodeValue::Cipher(_)));
                                    current_bytes -= released.memory_bytes();
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut result = HashMap::new();
        for output in program.outputs() {
            if let Some(value) = values[output.node].clone() {
                result.insert(output.node, value);
            }
        }
        Ok(result)
    }
}

/// The measured peak memory state of one audited serial execution — the
/// runtime counterpart of `eva-core`'s static `MemoryForecast`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryAudit {
    /// Maximum number of simultaneously-live values (ciphertext or plain).
    pub peak_live_values: usize,
    /// Maximum number of simultaneously-live **ciphertexts**.
    pub peak_live_ciphertexts: usize,
    /// Maximum simultaneous bytes across all live values.
    pub peak_bytes: usize,
}

impl MemoryAudit {
    fn record(&mut self, values: usize, ciphers: usize, bytes: usize) {
        self.peak_live_values = self.peak_live_values.max(values);
        self.peak_live_ciphertexts = self.peak_live_ciphertexts.max(ciphers);
        self.peak_bytes = self.peak_bytes.max(bytes);
    }
}

impl EncryptedContext {
    /// Generates the encryption context and all keys the compiled program
    /// needs (public key, relinearization key if the program relinearizes,
    /// Galois keys for exactly the rotation steps the program's ROTATE nodes
    /// use).
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if the parameter specification cannot be
    /// instantiated.
    pub fn setup(compiled: &CompiledProgram, seed: Option<u64>) -> Result<Self, EvaError> {
        let params = parameters_from_spec(&compiled.parameters)?;
        let context = CkksContext::new(params)
            .map_err(|e| EvaError::Execution(format!("context creation failed: {e}")))?;

        let mut keygen = match seed {
            Some(seed) => KeyGenerator::from_seed(context.clone(), seed),
            None => KeyGenerator::new(context.clone()),
        };
        // The public key is not used for input encryption (the symmetric
        // seeded path below is), but generating it keeps the keygen draw
        // order identical to the deployment client's handshake — and to every
        // seeded fixture since PR 3 — so relin/Galois keys stay bit-stable.
        let _public_key = keygen.create_public_key();
        let relin_key =
            needs_relinearization(compiled).then(|| keygen.create_relinearization_key());
        let galois_keys = keygen.create_galois_keys_for_program(&compiled.program);

        let secret_key = keygen.secret_key().clone();
        let encryptor = match seed {
            Some(seed) => SymmetricEncryptor::from_seed(
                context.clone(),
                secret_key.clone(),
                seed.wrapping_add(1),
            ),
            None => SymmetricEncryptor::new(context.clone(), secret_key.clone()),
        };
        let decryptor = Decryptor::new(context.clone(), secret_key);
        Ok(Self {
            eval: EvaluationContext::from_parts(context, relin_key, galois_keys),
            encryptor,
            decryptor,
        })
    }

    /// The secret-free evaluation half (context, evaluator, evaluation
    /// keys) — what the executors and the deployment server actually run
    /// against.
    pub fn evaluation(&self) -> &EvaluationContext {
        &self.eval
    }

    /// The underlying CKKS context.
    pub fn context(&self) -> &CkksContext {
        self.eval.context()
    }

    /// The evaluator (shared, thread-safe).
    pub fn evaluator(&self) -> &Evaluator {
        self.eval.evaluator()
    }

    /// Encrypts the program's `Cipher` inputs and collects plaintext inputs,
    /// returning the initial node-value bindings for execution.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if an input is missing or too long.
    pub fn encrypt_inputs(
        &mut self,
        compiled: &CompiledProgram,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<NodeId, NodeValue>, EvaError> {
        let program = &compiled.program;
        let size = program.vec_size();
        let top_level = self.eval.context.max_level();
        // Dead inputs are skipped: the executors never read them, so they
        // need neither a bound value nor an encode+encrypt.
        let live = program.live_mask();
        let mut bindings = HashMap::new();
        for (id, node) in program.nodes().iter().enumerate() {
            if !live[id] {
                continue;
            }
            let NodeKind::Input { name } = &node.kind else {
                continue;
            };
            let raw = inputs
                .get(name)
                .ok_or_else(|| EvaError::Execution(format!("missing input value for {name:?}")))?;
            if raw.is_empty() || raw.len() > size {
                return Err(EvaError::Execution(format!(
                    "input {name:?} has length {}, expected between 1 and {size}",
                    raw.len()
                )));
            }
            let replicated: Vec<f64> = (0..size).map(|i| raw[i % raw.len()]).collect();
            let value = match node.ty {
                ValueType::Cipher => {
                    // Encode/encrypt stamp the node's exact log2 scale.
                    let plaintext =
                        self.eval
                            .encoder
                            .encode(&replicated, node.scale_log2, top_level);
                    NodeValue::Cipher(self.encryptor.encrypt(&plaintext))
                }
                _ => NodeValue::Plain(replicated),
            };
            bindings.insert(id, value);
        }
        Ok(bindings)
    }

    /// Executes one instruction given its already-computed argument values
    /// (delegates to the evaluation half).
    ///
    /// # Errors
    ///
    /// See [`EvaluationContext::execute_node`].
    pub fn execute_node(
        &self,
        program: &Program,
        id: NodeId,
        args: &[&NodeValue],
    ) -> Result<NodeValue, EvaError> {
        self.eval.execute_node(program, id, args)
    }

    /// Serial execution of the whole program (delegates to the evaluation
    /// half).
    ///
    /// # Errors
    ///
    /// See [`EvaluationContext::execute_serial`].
    pub fn execute_serial(
        &self,
        compiled: &CompiledProgram,
        bindings: HashMap<NodeId, NodeValue>,
    ) -> Result<HashMap<NodeId, NodeValue>, EvaError> {
        self.eval.execute_serial(compiled, bindings)
    }

    /// Audited serial execution (delegates to the evaluation half).
    ///
    /// # Errors
    ///
    /// See [`EvaluationContext::execute_serial_audited`].
    pub fn execute_serial_audited(
        &self,
        compiled: &CompiledProgram,
        bindings: HashMap<NodeId, NodeValue>,
    ) -> Result<(HashMap<NodeId, NodeValue>, MemoryAudit), EvaError> {
        self.eval.execute_serial_audited(compiled, bindings)
    }

    /// The secret key's leak-audit probe (see
    /// [`eva_ckks::SecretKey::leak_probe`]): raw bytes that deployment tests
    /// scan captured traffic for.
    pub fn secret_key_probe(&self) -> Vec<u8> {
        self.decryptor.secret_key_probe()
    }

    /// Decrypts the program outputs into plain vectors of the program's
    /// vector size.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::Execution`] if an output value is missing.
    pub fn decrypt_outputs(
        &self,
        compiled: &CompiledProgram,
        values: &HashMap<NodeId, NodeValue>,
    ) -> Result<HashMap<String, Vec<f64>>, EvaError> {
        let size = compiled.program.vec_size();
        let mut outputs = HashMap::new();
        for (name, value) in EvaluationContext::named_outputs(compiled, values)? {
            let decoded = match value {
                NodeValue::Cipher(ct) => {
                    let full = self.decryptor.decrypt_to_values(&ct, size.max(1));
                    full[..size].to_vec()
                }
                NodeValue::Plain(v) => v,
            };
            outputs.insert(name, decoded);
        }
        Ok(outputs)
    }
}

fn expect_cipher(value: &NodeValue) -> Result<&Ciphertext, EvaError> {
    match value {
        NodeValue::Cipher(ct) => Ok(ct),
        NodeValue::Plain(_) => Err(EvaError::Execution(
            "expected an encrypted operand but found a plaintext one".into(),
        )),
    }
}

/// Splits a binary argument pair into (cipher operand, other operand, swapped)
/// where `swapped` indicates that the cipher operand was the right-hand one.
fn split_cipher_plain<'a>(
    args: &[&'a NodeValue],
) -> Result<(&'a Ciphertext, &'a NodeValue, bool), EvaError> {
    match (args[0], args[1]) {
        (NodeValue::Cipher(a), other) => Ok((a, other, false)),
        (other, NodeValue::Cipher(b)) => Ok((b, other, true)),
        _ => Err(EvaError::Execution(
            "binary cipher instruction with no encrypted operand".into(),
        )),
    }
}

fn plain_apply(op: Opcode, args: &[&Vec<f64>], size: usize) -> Vec<f64> {
    match op {
        Opcode::Negate => args[0].iter().map(|v| -v).collect(),
        Opcode::Add => args[0].iter().zip(args[1]).map(|(a, b)| a + b).collect(),
        Opcode::Sub => args[0].iter().zip(args[1]).map(|(a, b)| a - b).collect(),
        Opcode::Multiply => args[0].iter().zip(args[1]).map(|(a, b)| a * b).collect(),
        Opcode::RotateLeft(steps) => plain_rotate(args[0], steps as i64, size),
        Opcode::RotateRight(steps) => plain_rotate(args[0], -(steps as i64), size),
        Opcode::Relinearize | Opcode::ModSwitch | Opcode::Rescale(_) => args[0].clone(),
    }
}

fn plain_rotate(v: &[f64], steps: i64, size: usize) -> Vec<f64> {
    (0..size)
        .map(|i| v[(i as i64 + steps).rem_euclid(size as i64) as usize])
        .collect()
}

/// Convenience entry point: set up keys, encrypt, execute serially and
/// decrypt. Mirrors what a user of the original EVA Python package gets from
/// its `evaluate` helper.
///
/// # Errors
///
/// Propagates setup and execution errors.
pub fn run_encrypted(
    compiled: &CompiledProgram,
    inputs: &HashMap<String, Vec<f64>>,
) -> Result<HashMap<String, Vec<f64>>, EvaError> {
    let mut context = EncryptedContext::setup(compiled, None)?;
    let bindings = context.encrypt_inputs(compiled, inputs)?;
    let values = context.execute_serial(compiled, bindings)?;
    context.decrypt_outputs(compiled, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_reference;
    use eva_core::{compile, CompilerOptions, Opcode as Op, Program};

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn x2y3_encrypted_matches_reference() {
        let mut p = Program::new("x2y3", 8);
        let x = p.input_cipher("x", 40);
        let y = p.input_cipher("y", 30);
        let x2 = p.instruction(Op::Multiply, &[x, x]);
        let y2 = p.instruction(Op::Multiply, &[y, y]);
        let y3 = p.instruction(Op::Multiply, &[y2, y]);
        let out = p.instruction(Op::Multiply, &[x2, y3]);
        p.output("out", out, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();

        let inputs: HashMap<String, Vec<f64>> = [
            (
                "x".to_string(),
                vec![0.5, 1.0, -0.25, 2.0, 0.1, 0.7, -1.0, 0.3],
            ),
            (
                "y".to_string(),
                vec![1.0, 0.5, 2.0, -1.0, 0.9, 1.1, 0.2, -0.4],
            ),
        ]
        .into_iter()
        .collect();
        let expected = run_reference(&compiled.program, &inputs).unwrap();
        let actual = run_encrypted(&compiled, &inputs).unwrap();
        assert!(close(&actual["out"], &expected["out"], 1e-3));
    }

    #[test]
    fn mixed_plaintext_and_rotation_program() {
        let mut p = Program::new("sobel_like", 16);
        let image = p.input_cipher("image", 30);
        let weights = p.input_vector("weights", 20);
        let c = p.constant(eva_core::ConstantValue::Scalar(0.25), 20);
        let shifted = p.instruction(Op::RotateLeft(3), &[image]);
        let weighted = p.instruction(Op::Multiply, &[shifted, weights]);
        let scaled = p.instruction(Op::Multiply, &[weighted, c]);
        let sum = p.instruction(Op::Add, &[scaled, image]);
        let diff = p.instruction(Op::Sub, &[sum, image]);
        p.output("out", diff, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();

        let inputs: HashMap<String, Vec<f64>> = [
            (
                "image".to_string(),
                (0..16).map(|i| (i as f64) / 8.0 - 1.0).collect::<Vec<_>>(),
            ),
            (
                "weights".to_string(),
                (0..16).map(|i| ((i % 3) as f64) - 1.0).collect::<Vec<_>>(),
            ),
        ]
        .into_iter()
        .collect();
        let expected = run_reference(&compiled.program, &inputs).unwrap();
        let actual = run_encrypted(&compiled, &inputs).unwrap();
        assert!(close(&actual["out"], &expected["out"], 1e-3));
    }

    #[test]
    fn plain_minus_cipher_is_handled() {
        let mut p = Program::new("swap", 8);
        let x = p.input_cipher("x", 30);
        let v = p.input_vector("v", 30);
        let diff = p.instruction(Op::Sub, &[v, x]);
        p.output("out", diff, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        let inputs: HashMap<String, Vec<f64>> = [
            ("x".to_string(), vec![1.0; 8]),
            ("v".to_string(), vec![3.0; 8]),
        ]
        .into_iter()
        .collect();
        let actual = run_encrypted(&compiled, &inputs).unwrap();
        assert!(close(&actual["out"], &[2.0; 8], 1e-4));
    }

    #[test]
    fn missing_input_is_an_error() {
        let mut p = Program::new("missing", 8);
        let x = p.input_cipher("x", 30);
        p.output("out", x, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        assert!(run_encrypted(&compiled, &HashMap::new()).is_err());
    }

    #[test]
    fn audit_is_bounded_by_the_static_forecast() {
        let mut p = Program::new("audited", 16);
        let image = p.input_cipher("image", 30);
        let weights = p.input_vector("weights", 20);
        let shifted = p.instruction(Op::RotateLeft(3), &[image]);
        let weighted = p.instruction(Op::Multiply, &[shifted, weights]);
        let sum = p.instruction(Op::Add, &[weighted, image]);
        p.output("out", sum, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();

        let inputs: HashMap<String, Vec<f64>> = [
            ("image".to_string(), vec![0.5; 16]),
            ("weights".to_string(), vec![-1.0; 16]),
        ]
        .into_iter()
        .collect();
        let mut context = EncryptedContext::setup(&compiled, Some(11)).unwrap();
        let bindings = context.encrypt_inputs(&compiled, &inputs).unwrap();
        let (values, audit) = context.execute_serial_audited(&compiled, bindings).unwrap();
        let actual = context.decrypt_outputs(&compiled, &values).unwrap();
        let expected = run_reference(&compiled.program, &inputs).unwrap();
        assert!(close(&actual["out"], &expected["out"], 1e-3));

        assert!(audit.peak_live_ciphertexts >= 2);
        assert!(audit.peak_bytes > 0);
        let forecast = eva_core::predict_peak_memory(&compiled).unwrap();
        assert!(
            forecast.peak_live_values >= audit.peak_live_values
                && forecast.peak_live_ciphertexts >= audit.peak_live_ciphertexts
                && forecast.peak_bytes >= audit.peak_bytes,
            "forecast {forecast:?} must upper-bound audit {audit:?}"
        );
    }
}
