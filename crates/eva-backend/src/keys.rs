//! Program-driven key derivation: generate exactly the evaluation keys a
//! compiled EVA program needs.
//!
//! As the paper notes (Section 2.1), every rotation step count needs its own
//! Galois key, and keys are by far the largest objects a client uploads to a
//! deployment server. Deriving the key set from the program's ROTATE nodes —
//! instead of generating keys for, say, all power-of-two steps — directly
//! shrinks the key-upload bytes on the wire.

use eva_ckks::{GaloisKeys, KeyGenerator};
use eva_core::{select_rotation_steps, Program};

/// Extension methods on [`KeyGenerator`] that derive key material from a
/// compiled EVA program. (Defined here rather than in `eva-ckks` because the
/// scheme crate deliberately knows nothing about the EVA IR.)
pub trait ProgramKeyDerivation {
    /// Generates Galois keys for **exactly** the rotation step set used by
    /// the program's ROTATE nodes (the compiler's rotation-selection
    /// analysis), so a client uploads only the keys the circuit needs.
    fn create_galois_keys_for_program(&mut self, program: &Program) -> GaloisKeys;
}

impl ProgramKeyDerivation for KeyGenerator {
    fn create_galois_keys_for_program(&mut self, program: &Program) -> GaloisKeys {
        self.create_galois_keys(&select_rotation_steps(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_ckks::{CkksContext, CkksParameters, KeyGenerator};
    use eva_core::{compile, CompilerOptions, Opcode, Program};

    fn context() -> CkksContext {
        let params = CkksParameters::new_insecure(64, &[40, 40], 45).unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn derives_exactly_the_programs_rotation_steps() {
        let mut p = Program::new("rot", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(3), &[x]);
        let b = p.instruction(Opcode::RotateRight(2), &[a]);
        let c = p.instruction(Opcode::RotateLeft(3), &[b]);
        p.output("out", c, 30);
        let mut keygen = KeyGenerator::from_seed(context(), 9);
        let keys = keygen.create_galois_keys_for_program(&p);
        assert_eq!(keys.step_count(), 2);
        assert!(keys.supports_step(3));
        assert!(keys.supports_step(-2));
        assert!(!keys.supports_step(1));
    }

    #[test]
    fn matches_the_compilers_rotation_step_selection() {
        let mut p = Program::new("rot", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateRight(4), &[x]);
        let sum = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", sum, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        // Seeded generators draw identical randomness for identical step
        // sequences, so deriving from the program must equal generating from
        // the compiler's selected steps.
        let ctx = context();
        let from_program = KeyGenerator::from_seed(ctx.clone(), 5)
            .create_galois_keys_for_program(&compiled.program);
        let mut other = KeyGenerator::from_seed(ctx, 5);
        let from_steps = other.create_galois_keys(&compiled.rotation_steps);
        assert_eq!(from_program.step_elements(), from_steps.step_elements());
    }
}
