//! # eva-backend — executors for compiled EVA programs
//!
//! The compiler in `eva-core` produces a transformed program plus encryption
//! parameters; this crate runs it:
//!
//! * [`mod@reference`] — the paper's `id`-scheme reference semantics on plaintext
//!   vectors (Section 3), used to define correctness and to measure the
//!   numeric fidelity of encrypted execution.
//! * [`encrypted`] — key generation, input encryption, serial execution
//!   against the `eva-ckks` RNS-CKKS scheme, and output decryption, with the
//!   phases split out so they can be timed separately (paper Table 7).
//! * [`parallel`] — the asynchronous DAG executor of Section 6.1: a
//!   dependence-counting scheduler over a pool of worker threads that also
//!   retires (frees) ciphertexts as soon as their last consumer has run.
//! * [`keys`] — program-driven key derivation: generate exactly the Galois
//!   keys a compiled program's ROTATE nodes need.
//!
//! The encrypted executor is split along the deployment trust boundary:
//! [`EvaluationContext`] holds only public evaluation state (context,
//! encoder, evaluator, relinearization + Galois keys) and is what both
//! executors run against — locally and on the `eva-service` server, where
//! the keys arrive over the wire; [`EncryptedContext`] wraps it with the
//! encryptor and secret-key decryptor for in-process runs.
//!
//! ```no_run
//! use std::collections::HashMap;
//! use eva_core::{compile, CompilerOptions, Opcode, Program};
//! use eva_backend::run_encrypted;
//!
//! let mut program = Program::new("square", 8);
//! let x = program.input_cipher("x", 30);
//! let sq = program.instruction(Opcode::Multiply, &[x, x]);
//! program.output("out", sq, 30);
//! let compiled = compile(&program, &CompilerOptions::default()).unwrap();
//!
//! let inputs: HashMap<String, Vec<f64>> =
//!     [("x".to_string(), vec![1.5; 8])].into_iter().collect();
//! let outputs = run_encrypted(&compiled, &inputs).unwrap();
//! assert!((outputs["out"][0] - 2.25).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encrypted;
pub mod keys;
pub mod parallel;
pub mod reference;

pub use encrypted::{
    needs_relinearization, parameters_from_spec, run_encrypted, EncryptedContext,
    EvaluationContext, MemoryAudit, NodeValue,
};
pub use keys::ProgramKeyDerivation;
pub use parallel::{execute_parallel, execute_parallel_with_options, ExecutionStats};
pub use reference::run_reference;
