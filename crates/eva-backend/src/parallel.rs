//! The parallel executor (paper Section 6.1).
//!
//! The EVA executor schedules the DAG of FHE instructions asynchronously: a
//! node becomes *ready* once all of its parents have been computed, ready
//! nodes are executed by a pool of worker threads, and a node's value is
//! *retired* (its memory released) as soon as its last consumer has used it.
//! The original system uses the Galois parallel runtime; this reproduction
//! uses a dependence-counting scheduler over crossbeam scoped threads with the
//! same two properties: cross-kernel parallelism and memory reuse.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex, RwLock};

use eva_core::passes::{group_rotation_fanouts, RotationFanout};
use eva_core::{CompiledProgram, EvaError, NodeId, NodeKind};

use crate::encrypted::{EvaluationContext, NodeValue};

/// Statistics collected by one parallel execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Number of instruction nodes executed.
    pub nodes_executed: usize,
    /// Peak bytes of live node values observed during execution (an
    /// approximation of the executor's working set; used by the memory-reuse
    /// ablation).
    pub peak_live_bytes: usize,
    /// Total bytes that were freed early thanks to retire-based memory reuse.
    pub bytes_retired: usize,
}

struct Shared<'a> {
    context: &'a EvaluationContext,
    program: &'a eva_core::Program,
    values: Vec<RwLock<Option<NodeValue>>>,
    pending_parents: Vec<AtomicUsize>,
    remaining_uses: Vec<AtomicUsize>,
    ready: SegQueue<NodeId>,
    remaining_nodes: AtomicUsize,
    live_bytes: AtomicUsize,
    peak_live_bytes: AtomicUsize,
    bytes_retired: AtomicUsize,
    error: Mutex<Option<EvaError>>,
    reuse_memory: bool,
    /// Rotation fan-out groups (two or more live rotations of one source),
    /// executed hoisted by whichever worker claims the group first.
    fanouts: Vec<RotationFanout>,
    /// Member node → index into [`Shared::fanouts`].
    member_group: HashMap<NodeId, usize>,
    /// One claim flag per fan-out group: every member lands in the ready
    /// queue when the shared source completes, the first worker to pop any
    /// member CAS-claims the group and executes it whole, and later pops of
    /// the remaining members no-op.
    group_claimed: Vec<AtomicBool>,
    /// Guards the sleep/wake handshake: a worker only blocks on [`Shared::wake`]
    /// while holding this lock *after* re-checking the ready queue and the
    /// termination conditions, and every producer notifies while holding the
    /// same lock, so a wakeup can never slip between the check and the wait.
    wake_lock: Mutex<()>,
    wake: Condvar,
}

impl<'a> Shared<'a> {
    fn record_allocation(&self, bytes: usize) {
        let live = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_live_bytes.fetch_max(live, Ordering::Relaxed);
    }

    fn record_release(&self, bytes: usize) {
        self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.bytes_retired.fetch_add(bytes, Ordering::Relaxed);
    }

    fn fail(&self, err: EvaError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        // Unblock everyone so the workers can observe the failure and exit.
        self.remaining_nodes.store(0, Ordering::SeqCst);
        let _guard = self.wake_lock.lock();
        self.wake.notify_all();
    }

    fn failed(&self) -> bool {
        self.error.lock().is_some()
    }
}

/// Executes a compiled program using `num_threads` worker threads, with
/// retire-based memory reuse enabled.
///
/// # Errors
///
/// Propagates node-execution errors from the CKKS backend.
pub fn execute_parallel(
    context: &EvaluationContext,
    compiled: &CompiledProgram,
    bindings: HashMap<NodeId, NodeValue>,
    num_threads: usize,
) -> Result<HashMap<NodeId, NodeValue>, EvaError> {
    execute_parallel_with_options(context, compiled, bindings, num_threads, true)
        .map(|(values, _)| values)
}

/// Like [`execute_parallel`] but with explicit control over memory reuse and
/// with execution statistics returned alongside the outputs.
///
/// # Errors
///
/// Propagates node-execution errors from the CKKS backend.
pub fn execute_parallel_with_options(
    context: &EvaluationContext,
    compiled: &CompiledProgram,
    mut bindings: HashMap<NodeId, NodeValue>,
    num_threads: usize,
    reuse_memory: bool,
) -> Result<(HashMap<NodeId, NodeValue>, ExecutionStats), EvaError> {
    let program = &compiled.program;
    let n = program.len();
    let num_threads = num_threads.max(1);
    // Only nodes that reach an output participate: dead branches are not
    // covered by the compiler's prime budget or exact-scale annotations.
    let live = program.live_mask();
    let uses: Vec<Vec<NodeId>> = program
        .uses()
        .iter()
        .map(|us| us.iter().copied().filter(|&c| live[c]).collect())
        .collect();
    let live_count = live.iter().filter(|&&l| l).count();

    let mut values: Vec<RwLock<Option<NodeValue>>> = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(RwLock::new(None));
    }
    let mut pending = Vec::with_capacity(n);
    let mut remaining_uses = Vec::with_capacity(n);
    for id in 0..n {
        let distinct_parents = {
            let mut args: Vec<NodeId> = program.args(id).to_vec();
            args.sort_unstable();
            args.dedup();
            args.len()
        };
        pending.push(AtomicUsize::new(distinct_parents));
        let mut use_count = uses[id].len();
        if program.outputs().iter().any(|o| o.node == id) {
            use_count += 1; // outputs must survive until decryption
        }
        remaining_uses.push(AtomicUsize::new(use_count));
    }

    let fanouts = group_rotation_fanouts(program);
    let mut member_group = HashMap::new();
    for (g, fanout) in fanouts.iter().enumerate() {
        for &(id, _) in &fanout.members {
            member_group.insert(id, g);
        }
    }
    let group_claimed = (0..fanouts.len()).map(|_| AtomicBool::new(false)).collect();

    let shared = Shared {
        context,
        program,
        values,
        pending_parents: pending,
        remaining_uses,
        ready: SegQueue::new(),
        remaining_nodes: AtomicUsize::new(live_count),
        live_bytes: AtomicUsize::new(0),
        peak_live_bytes: AtomicUsize::new(0),
        bytes_retired: AtomicUsize::new(0),
        error: Mutex::new(None),
        reuse_memory,
        fanouts,
        member_group,
        group_claimed,
        wake_lock: Mutex::new(()),
        wake: Condvar::new(),
    };

    // Seed initial values: bound inputs and materialized constants become ready
    // immediately; their consumers' dependence counters are decremented below.
    for (id, node) in program.nodes().iter().enumerate() {
        if !live[id] {
            continue;
        }
        match &node.kind {
            NodeKind::Input { name } => {
                let value = bindings.remove(&id).ok_or_else(|| {
                    EvaError::Execution(format!("input node {id} ({name:?}) was not bound"))
                })?;
                shared.record_allocation(value.memory_bytes());
                *shared.values[id].write() = Some(value);
            }
            NodeKind::Constant { value } => {
                let materialized = NodeValue::Plain(value.to_vector(program.vec_size()));
                shared.record_allocation(materialized.memory_bytes());
                *shared.values[id].write() = Some(materialized);
            }
            NodeKind::Instruction { .. } => {}
        }
    }
    // Inputs and constants are already available: retire them from the node
    // count and notify their consumers. Every instruction has at least one
    // parent, so all ready instructions are discovered through notification.
    for (id, node) in program.nodes().iter().enumerate() {
        if live[id] && !matches!(node.kind, NodeKind::Instruction { .. }) {
            shared.remaining_nodes.fetch_sub(1, Ordering::SeqCst);
            notify_children(&shared, id, &uses);
        }
    }

    let executed = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..num_threads {
            scope.spawn(|_| worker(&shared, &uses, &executed));
        }
    })
    .map_err(|_| EvaError::Execution("a worker thread panicked".into()))?;

    if let Some(err) = shared.error.lock().take() {
        return Err(err);
    }

    let mut outputs = HashMap::new();
    for output in program.outputs() {
        let value = shared.values[output.node]
            .read()
            .clone()
            .ok_or_else(|| EvaError::Execution(format!("output {:?} not computed", output.name)))?;
        outputs.insert(output.node, value);
    }
    let stats = ExecutionStats {
        nodes_executed: executed.load(Ordering::Relaxed),
        peak_live_bytes: shared.peak_live_bytes.load(Ordering::Relaxed),
        bytes_retired: shared.bytes_retired.load(Ordering::Relaxed),
    };
    Ok((outputs, stats))
}

fn notify_children(shared: &Shared<'_>, id: NodeId, uses: &[Vec<NodeId>]) {
    for &child in &uses[id] {
        if shared.pending_parents[child].fetch_sub(1, Ordering::SeqCst) == 1 {
            shared.ready.push(child);
            // Taking the wake lock orders this notification after any worker
            // that found the queue empty but has not yet gone to sleep.
            let _guard = shared.wake_lock.lock();
            shared.wake.notify_one();
        }
    }
}

/// Pops the next ready node, blocking on the condvar (no timeout polling)
/// until one appears or the execution terminates. Returns `None` on shutdown
/// (all nodes done or a failure was recorded).
fn next_ready(shared: &Shared<'_>) -> Option<NodeId> {
    // Fast path: check for shutdown and grab work without touching the lock.
    if shared.failed() || shared.remaining_nodes.load(Ordering::SeqCst) == 0 {
        let _guard = shared.wake_lock.lock();
        shared.wake.notify_all();
        return None;
    }
    if let Some(id) = shared.ready.pop() {
        return Some(id);
    }
    let mut guard = shared.wake_lock.lock();
    loop {
        if shared.failed() || shared.remaining_nodes.load(Ordering::SeqCst) == 0 {
            shared.wake.notify_all();
            return None;
        }
        // Re-check under the lock: a producer pushes and then notifies while
        // holding the lock, so either the pop below sees the node or the wait
        // below observes the notification.
        if let Some(id) = shared.ready.pop() {
            return Some(id);
        }
        shared.wake.wait(&mut guard);
    }
}

/// Executes one claimed rotation fan-out group hoisted and performs every
/// member's bookkeeping (value store, parent retire, child notification,
/// node-count decrement) on behalf of the workers that popped — or will
/// pop — the other members.
fn execute_group(shared: &Shared<'_>, g: usize, uses: &[Vec<NodeId>], executed: &AtomicUsize) {
    let fanout = &shared.fanouts[g];
    let result = {
        let guard = shared.values[fanout.source].read();
        let source = guard
            .as_ref()
            .expect("fan-out source is live until every member retires it");
        shared
            .context
            .execute_rotation_group(shared.program, &fanout.members, source)
    };
    match result {
        Ok(results) => {
            for (&(mid, _), value) in fanout.members.iter().zip(results) {
                shared.record_allocation(value.memory_bytes());
                *shared.values[mid].write() = Some(value);
                executed.fetch_add(1, Ordering::Relaxed);
                // Each member retires its (shared) parent once, exactly as
                // the unhoisted path would.
                if shared.remaining_uses[fanout.source].fetch_sub(1, Ordering::SeqCst) == 1
                    && shared.reuse_memory
                {
                    let mut slot = shared.values[fanout.source].write();
                    if let Some(old) = slot.take() {
                        shared.record_release(old.memory_bytes());
                    }
                }
                notify_children(shared, mid, uses);
                if shared.remaining_nodes.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let _guard = shared.wake_lock.lock();
                    shared.wake.notify_all();
                }
            }
        }
        Err(err) => shared.fail(err),
    }
}

fn worker(shared: &Shared<'_>, uses: &[Vec<NodeId>], executed: &AtomicUsize) {
    loop {
        let Some(id) = next_ready(shared) else {
            return;
        };

        // Fan-out members are executed as a whole group by whichever worker
        // claims the group first; everyone else drops the node on the floor
        // (the owner does all of its bookkeeping).
        if let Some(&g) = shared.member_group.get(&id) {
            if !shared.group_claimed[g].swap(true, Ordering::SeqCst) {
                execute_group(shared, g, uses, executed);
            }
            continue;
        }

        // Gather argument values (shared read locks).
        let program = shared.program;
        let args: Vec<NodeId> = program.args(id).to_vec();
        let guards: Vec<_> = args.iter().map(|&a| shared.values[a].read()).collect();
        let arg_refs: Vec<&NodeValue> = guards
            .iter()
            .map(|g| {
                g.as_ref()
                    .expect("parent value is live until all uses retire")
            })
            .collect();
        let result = shared.context.execute_node(program, id, &arg_refs);
        drop(guards);

        match result {
            Ok(value) => {
                shared.record_allocation(value.memory_bytes());
                *shared.values[id].write() = Some(value);
                executed.fetch_add(1, Ordering::Relaxed);
                // Retire parents whose last consumer this was.
                let mut distinct = args.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for a in distinct {
                    if shared.remaining_uses[a].fetch_sub(1, Ordering::SeqCst) == 1
                        && shared.reuse_memory
                    {
                        let mut slot = shared.values[a].write();
                        if let Some(old) = slot.take() {
                            shared.record_release(old.memory_bytes());
                        }
                    }
                }
                notify_children(shared, id, uses);
                if shared.remaining_nodes.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last node: rouse every sleeping worker so they can exit.
                    let _guard = shared.wake_lock.lock();
                    shared.wake.notify_all();
                }
            }
            Err(err) => {
                shared.fail(err);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encrypted::{run_encrypted, EncryptedContext};
    use crate::reference::run_reference;
    use eva_core::{compile, CompilerOptions, Opcode as Op, Program};

    fn wide_program() -> Program {
        // Eight independent chains that rejoin at the end: a good shape for
        // exercising cross-kernel parallelism.
        let mut p = Program::new("wide", 8);
        let x = p.input_cipher("x", 30);
        let w = p.input_vector("w", 20);
        let mut partials = Vec::new();
        for i in 0..8 {
            let rot = p.instruction(Op::RotateLeft(i % 4), &[x]);
            let prod = p.instruction(Op::Multiply, &[rot, w]);
            partials.push(prod);
        }
        let mut acc = partials[0];
        for &part in &partials[1..] {
            acc = p.instruction(Op::Add, &[acc, part]);
        }
        p.output("out", acc, 30);
        p
    }

    #[test]
    fn parallel_matches_serial_and_reference() {
        let program = wide_program();
        let compiled = compile(&program, &CompilerOptions::default()).unwrap();
        let inputs: HashMap<String, Vec<f64>> = [
            (
                "x".to_string(),
                vec![0.5, -0.25, 1.0, 2.0, 0.125, -1.5, 0.75, 0.0],
            ),
            (
                "w".to_string(),
                vec![1.0, 2.0, -1.0, 0.5, 0.25, -2.0, 1.5, 3.0],
            ),
        ]
        .into_iter()
        .collect();
        let expected = run_reference(&compiled.program, &inputs).unwrap();
        let serial = run_encrypted(&compiled, &inputs).unwrap();

        let mut ctx = EncryptedContext::setup(&compiled, Some(7)).unwrap();
        let bindings = ctx.encrypt_inputs(&compiled, &inputs).unwrap();
        let (values, stats) =
            execute_parallel_with_options(ctx.evaluation(), &compiled, bindings, 2, true).unwrap();
        let parallel = ctx.decrypt_outputs(&compiled, &values).unwrap();

        for ((a, b), c) in parallel["out"]
            .iter()
            .zip(&serial["out"])
            .zip(&expected["out"])
        {
            assert!((a - b).abs() < 1e-3, "parallel vs serial: {a} vs {b}");
            assert!((a - c).abs() < 1e-2, "parallel vs reference: {a} vs {c}");
        }
        assert!(stats.nodes_executed > 0);
        assert!(stats.peak_live_bytes > 0);
    }

    #[test]
    fn memory_reuse_reduces_peak_live_bytes() {
        let program = {
            // A long dependent chain: with memory reuse the executor should
            // only ever hold a couple of ciphertexts.
            let mut p = Program::new("chain", 8);
            let x = p.input_cipher("x", 30);
            let mut acc = x;
            for i in 0..6 {
                acc = p.instruction(Op::RotateLeft(1 + (i % 3)), &[acc]);
            }
            p.output("out", acc, 30);
            p
        };
        // Compile unoptimized: this test exercises the executor's
        // memory-reuse machinery, and the optimizer would compose-merge the
        // single-use rotation chain down to one node.
        let compiled = compile(&program, &CompilerOptions::unoptimized()).unwrap();
        let inputs: HashMap<String, Vec<f64>> =
            [("x".to_string(), vec![1.0; 8])].into_iter().collect();

        let mut ctx = EncryptedContext::setup(&compiled, Some(3)).unwrap();
        let bindings = ctx.encrypt_inputs(&compiled, &inputs).unwrap();
        let (_, with_reuse) =
            execute_parallel_with_options(ctx.evaluation(), &compiled, bindings, 1, true).unwrap();

        let bindings = ctx.encrypt_inputs(&compiled, &inputs).unwrap();
        let (_, without_reuse) =
            execute_parallel_with_options(ctx.evaluation(), &compiled, bindings, 1, false).unwrap();

        assert!(with_reuse.peak_live_bytes < without_reuse.peak_live_bytes);
        assert!(with_reuse.bytes_retired > 0);
        assert_eq!(without_reuse.bytes_retired, 0);
    }

    #[test]
    fn unbound_input_is_detected() {
        let program = wide_program();
        let compiled = compile(&program, &CompilerOptions::default()).unwrap();
        let ctx = EncryptedContext::setup(&compiled, Some(1)).unwrap();
        let result = execute_parallel(ctx.evaluation(), &compiled, HashMap::new(), 2);
        assert!(result.is_err());
    }
}
