//! The reference executor: the paper's `id` "encryption" scheme (Section 3,
//! Execution Semantics), which stores Cipher values as plain vectors and makes
//! every homomorphic instruction its own plaintext counterpart.
//!
//! The reference executor defines what a program *means*; the encrypted
//! executors are correct exactly when their decrypted outputs approximate the
//! reference outputs. It runs on both input programs and compiled programs
//! (the maintenance instructions RESCALE/MODSWITCH/RELINEARIZE are value-wise
//! identities).

use std::collections::HashMap;

use eva_core::{EvaError, NodeKind, Opcode, Program};

/// Executes `program` on plaintext vectors according to the reference
/// semantics and returns the named outputs.
///
/// Inputs of type `Cipher` and `Vector` are looked up by name in `inputs`;
/// vectors shorter than the program vector size are repeated cyclically
/// (matching the paper's input-replication rule), longer ones are an error.
///
/// # Errors
///
/// Returns [`EvaError::Execution`] if an input is missing or has an
/// incompatible length.
pub fn run_reference(
    program: &Program,
    inputs: &HashMap<String, Vec<f64>>,
) -> Result<HashMap<String, Vec<f64>>, EvaError> {
    let size = program.vec_size();
    let mut values: Vec<Option<Vec<f64>>> = vec![None; program.len()];

    for id in program.topological_order() {
        let node = program.node(id);
        let value = match &node.kind {
            NodeKind::Input { name } => {
                let raw = inputs.get(name).ok_or_else(|| {
                    EvaError::Execution(format!("missing input value for {name:?}"))
                })?;
                Some(replicate(raw, size, name)?)
            }
            NodeKind::Constant { value } => Some(value.to_vector(size)),
            NodeKind::Instruction { op, args } => {
                let arg_values: Vec<&Vec<f64>> = args
                    .iter()
                    .map(|&a| values[a].as_ref().expect("parents are computed first"))
                    .collect();
                Some(apply_op(*op, &arg_values, size))
            }
        };
        values[id] = value;
    }

    let mut outputs = HashMap::new();
    for output in program.outputs() {
        let value = values[output.node]
            .as_ref()
            .expect("output nodes are computed")
            .clone();
        outputs.insert(output.name.clone(), value);
    }
    Ok(outputs)
}

fn replicate(raw: &[f64], size: usize, name: &str) -> Result<Vec<f64>, EvaError> {
    if raw.is_empty() || raw.len() > size {
        return Err(EvaError::Execution(format!(
            "input {name:?} has length {}, expected between 1 and {size}",
            raw.len()
        )));
    }
    Ok((0..size).map(|i| raw[i % raw.len()]).collect())
}

fn apply_op(op: Opcode, args: &[&Vec<f64>], size: usize) -> Vec<f64> {
    match op {
        Opcode::Negate => args[0].iter().map(|v| -v).collect(),
        Opcode::Add => elementwise(args[0], args[1], |a, b| a + b),
        Opcode::Sub => elementwise(args[0], args[1], |a, b| a - b),
        Opcode::Multiply => elementwise(args[0], args[1], |a, b| a * b),
        Opcode::RotateLeft(steps) => rotate_left(args[0], steps as i64, size),
        Opcode::RotateRight(steps) => rotate_left(args[0], -(steps as i64), size),
        Opcode::Relinearize | Opcode::ModSwitch | Opcode::Rescale(_) => args[0].clone(),
    }
}

fn elementwise(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

fn rotate_left(v: &[f64], steps: i64, size: usize) -> Vec<f64> {
    (0..size)
        .map(|i| {
            let src = (i as i64 + steps).rem_euclid(size as i64) as usize;
            v[src]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_core::Program;

    fn inputs(pairs: &[(&str, Vec<f64>)]) -> HashMap<String, Vec<f64>> {
        pairs
            .iter()
            .map(|(name, v)| (name.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn arithmetic_and_rotation_semantics() {
        let mut p = Program::new("ref", 4);
        let x = p.input_cipher("x", 30);
        let y = p.input_vector("y", 30);
        let sum = p.instruction(Opcode::Add, &[x, y]);
        let rot = p.instruction(Opcode::RotateLeft(1), &[sum]);
        let neg = p.instruction(Opcode::Negate, &[rot]);
        let rot_r = p.instruction(Opcode::RotateRight(2), &[neg]);
        p.output("out", rot_r, 30);

        let result = run_reference(
            &p,
            &inputs(&[
                ("x", vec![1.0, 2.0, 3.0, 4.0]),
                ("y", vec![10.0, 20.0, 30.0, 40.0]),
            ]),
        )
        .unwrap();
        // sum = [11,22,33,44]; rot left 1 = [22,33,44,11]; neg; rot right 2 =
        // [-44,-11,-22,-33].
        assert_eq!(result["out"], vec![-44.0, -11.0, -22.0, -33.0]);
    }

    #[test]
    fn short_inputs_are_replicated() {
        let mut p = Program::new("rep", 8);
        let x = p.input_cipher("x", 30);
        let sq = p.instruction(Opcode::Multiply, &[x, x]);
        p.output("out", sq, 30);
        let result = run_reference(&p, &inputs(&[("x", vec![2.0, 3.0])])).unwrap();
        assert_eq!(result["out"], vec![4.0, 9.0, 4.0, 9.0, 4.0, 9.0, 4.0, 9.0]);
    }

    #[test]
    fn maintenance_instructions_are_value_identities() {
        let mut p = Program::new("x2y3", 8);
        let x = p.input_cipher("x", 60);
        let y = p.input_cipher("y", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let y2 = p.instruction(Opcode::Multiply, &[y, y]);
        let y3 = p.instruction(Opcode::Multiply, &[y2, y]);
        let out = p.instruction(Opcode::Multiply, &[x2, y3]);
        p.output("out", out, 30);
        let input_map = inputs(&[("x", vec![0.5; 8]), ("y", vec![2.0; 8])]);
        let before = run_reference(&p, &input_map).unwrap();

        let compiled = eva_core::compile(&p, &eva_core::CompilerOptions::default()).unwrap();
        let after = run_reference(&compiled.program, &input_map).unwrap();
        assert_eq!(before["out"], after["out"]);
        assert!((before["out"][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_and_oversized_inputs_are_errors() {
        let mut p = Program::new("err", 4);
        let x = p.input_cipher("x", 30);
        p.output("out", x, 30);
        assert!(run_reference(&p, &HashMap::new()).is_err());
        assert!(run_reference(&p, &inputs(&[("x", vec![1.0; 9])])).is_err());
    }
}
