//! Ablation of the compiler's design choices (DESIGN.md): waterline vs
//! always rescaling and eager vs lazy mod-switching, measured both as compile
//! time (Criterion) and as the resulting modulus-chain length / total modulus
//! size (printed once per strategy).

use criterion::{criterion_group, criterion_main, Criterion};
use eva_core::{compile, CompilerOptions, ModSwitchStrategy, RescaleStrategy};
use eva_tensor::{lower_network, networks::lenet5_small, LoweringMode};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let network = lenet5_small(42);
    let eva_program = lower_network(&network, LoweringMode::Eva).program;
    let chet_program = lower_network(&network, LoweringMode::ChetBaseline).program;

    let strategies = [
        (
            "waterline_eager",
            &eva_program,
            RescaleStrategy::Waterline,
            ModSwitchStrategy::Eager,
        ),
        (
            "waterline_lazy",
            &eva_program,
            RescaleStrategy::Waterline,
            ModSwitchStrategy::Lazy,
        ),
        (
            "always_lazy_chet",
            &chet_program,
            RescaleStrategy::Always,
            ModSwitchStrategy::Lazy,
        ),
    ];

    println!("\n-- ablation: resulting encryption parameters (LeNet-5-small) --");
    for (name, program, rescale, mod_switch) in &strategies {
        let options = CompilerOptions {
            rescale: *rescale,
            mod_switch: *mod_switch,
            max_rescale_bits: 60,
            ..CompilerOptions::default()
        };
        match compile(program, &options) {
            Ok(compiled) => println!(
                "{name:<20} r={:<3} log2Q={:<5} N={:<6} rescales={} modswitches={}",
                compiled.parameters.chain_length(),
                compiled.parameters.total_bits(),
                compiled.parameters.degree,
                compiled.stats.rescales_inserted,
                compiled.stats.mod_switches_inserted,
            ),
            Err(err) => println!("{name:<20} failed: {err}"),
        }
    }

    let mut group = c.benchmark_group("ablation_compile");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    for (name, program, rescale, mod_switch) in &strategies {
        let options = CompilerOptions {
            rescale: *rescale,
            mod_switch: *mod_switch,
            max_rescale_bits: 60,
            ..CompilerOptions::default()
        };
        group.bench_function(*name, |b| b.iter(|| compile(program, &options).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
