//! Application benchmarks (the paper's Table 8): encrypted end-to-end
//! execution of the arithmetic, statistical-ML and image-processing programs.
//!
//! The Criterion loops use reduced vector sizes so the full `cargo bench` run
//! stays laptop-friendly; the `report --table 8` binary measures the
//! paper-sized variants (2048/4096 slots, 64x64 images).

use criterion::{criterion_group, criterion_main, Criterion};
use eva_backend::EncryptedContext;
use eva_core::{compile, CompilerOptions};
use std::time::Duration;

fn bench_applications(c: &mut Criterion) {
    let apps = vec![
        eva_apps::regression::linear(256, 1),
        eva_apps::regression::polynomial(256, 2),
        eva_apps::path_length::application(256, 3),
        eva_apps::image::sobel(16, 4),
    ];

    let mut group = c.benchmark_group("applications_encrypted");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    for app in apps {
        let compiled = compile(&app.program, &CompilerOptions::default()).expect("compile");
        let mut context = EncryptedContext::setup(&compiled, Some(5)).expect("setup");
        group.bench_function(app.name.clone(), |b| {
            b.iter(|| {
                let bindings = context.encrypt_inputs(&compiled, &app.inputs).unwrap();
                let values = context.execute_serial(&compiled, bindings).unwrap();
                context.decrypt_outputs(&compiled, &values).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_applications);
criterion_main!(benches);
