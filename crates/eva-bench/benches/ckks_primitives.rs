//! Microbenchmarks of the RNS-CKKS substrate: the per-instruction costs that
//! every latency number in the paper's evaluation decomposes into.

use criterion::{criterion_group, criterion_main, Criterion};
use eva_ckks::{
    CkksContext, CkksEncoder, CkksParameters, Decryptor, Encryptor, Evaluator, KeyGenerator,
};
use std::time::Duration;

fn bench_primitives(c: &mut Criterion) {
    let params = CkksParameters::new(8192, &[40, 40, 40]).expect("parameters");
    let context = CkksContext::new(params).expect("context");
    let mut keygen = KeyGenerator::from_seed(context.clone(), 1);
    let public_key = keygen.create_public_key();
    let relin_key = keygen.create_relinearization_key();
    let galois_keys = keygen.create_galois_keys(&[1]);
    let encoder = CkksEncoder::new(context.clone());
    let mut encryptor = Encryptor::from_seed(context.clone(), public_key, 2);
    let decryptor = Decryptor::new(context.clone(), keygen.secret_key().clone());
    let evaluator = Evaluator::new(context.clone());

    let values: Vec<f64> = (0..context.slot_count())
        .map(|i| (i as f64).sin())
        .collect();
    let scale = 40.0;
    let plaintext = encoder.encode(&values, scale, 3);
    let ct_a = encryptor.encrypt(&plaintext);
    let ct_b = encryptor.encrypt(&plaintext);
    let product = evaluator.multiply(&ct_a, &ct_b).expect("multiply");

    let mut group = c.benchmark_group("ckks_primitives_n8192");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("encode", |b| b.iter(|| encoder.encode(&values, scale, 3)));
    group.bench_function("encrypt", |b| b.iter(|| encryptor.encrypt(&plaintext)));
    group.bench_function("decrypt", |b| {
        b.iter(|| decryptor.decrypt_to_values(&ct_a, context.slot_count()))
    });
    group.bench_function("add", |b| b.iter(|| evaluator.add(&ct_a, &ct_b).unwrap()));
    group.bench_function("multiply_plain", |b| {
        b.iter(|| evaluator.multiply_plain(&ct_a, &plaintext).unwrap())
    });
    group.bench_function("multiply", |b| {
        b.iter(|| evaluator.multiply(&ct_a, &ct_b).unwrap())
    });
    group.bench_function("relinearize", |b| {
        b.iter(|| evaluator.relinearize(&product, &relin_key).unwrap())
    });
    group.bench_function("rescale", |b| {
        b.iter(|| evaluator.rescale_to_next(&ct_a).unwrap())
    });
    group.bench_function("rotate_by_1", |b| {
        b.iter(|| evaluator.rotate(&ct_a, 1, &galois_keys).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
