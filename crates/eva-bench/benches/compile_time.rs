//! Compilation-time benchmarks (the "Compilation" column of the paper's
//! Table 7): how long the EVA compiler itself takes on each evaluation
//! program.

use criterion::{criterion_group, criterion_main, Criterion};
use eva_core::{compile, CompilerOptions};
use eva_tensor::{all_networks, lower_network, LoweringMode};
use std::time::Duration;

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for network in all_networks(42) {
        let lowered = lower_network(&network, LoweringMode::Eva);
        group.bench_function(format!("dnn/{}", network.name), |b| {
            b.iter(|| compile(&lowered.program, &CompilerOptions::default()).unwrap())
        });
    }
    for app in [
        eva_apps::image::sobel(64, 1),
        eva_apps::image::harris(64, 2),
        eva_apps::path_length::application(4096, 3),
    ] {
        group.bench_function(format!("app/{}", app.name), |b| {
            b.iter(|| compile(&app.program, &CompilerOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time);
criterion_main!(benches);
