//! Encrypted DNN inference latency, CHET baseline vs EVA (the paper's
//! Table 5).
//!
//! A single inference takes on the order of minutes, so this harness does its
//! own timing (one measured run per configuration) instead of a Criterion
//! loop. By default only LeNet-5-small is measured; set `EVA_BENCH_FULL=1` to
//! measure every network of Table 3.

use eva_bench::{measure_inference, prepare_network, random_image};
use eva_tensor::all_networks;

fn main() {
    let full = std::env::var("EVA_BENCH_FULL").is_ok();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let networks = all_networks(42);
    let limit = if full { networks.len() } else { 1 };

    println!("== Table 5: encrypted inference latency, CHET vs EVA ({threads} threads) ==");
    for network in networks.iter().take(limit) {
        let prepared = prepare_network(network);
        let image = random_image(network, 9);
        let eva = measure_inference(&prepared.eva.0, &prepared.eva.1, network, &image, threads);
        let chet = measure_inference(&prepared.chet.0, &prepared.chet.1, network, &image, threads);
        println!(
            "{:<20} CHET: {:>9.2?}  EVA: {:>9.2?}  speedup {:.2}x  (EVA max logit err {:.2e}, argmax match {})",
            network.name,
            chet.execute_time,
            eva.execute_time,
            chet.execute_time.as_secs_f64() / eva.execute_time.as_secs_f64(),
            eva.max_error,
            eva.argmax_agrees,
        );
    }
    if !full {
        println!("(set EVA_BENCH_FULL=1 to measure every network of Table 3)");
    }
}
