//! Microbenchmarks of the arithmetic substrate's hottest kernels: the
//! negacyclic NTT (forward and inverse) and the fused dyadic RNS kernels that
//! every ciphertext multiply/relinearize decomposes into.
//!
//! Set `EVA_BENCH_QUICK=1` to run a fast smoke configuration (used by CI to
//! catch kernel regressions without burning minutes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use eva_bench::{dyadic_bench_config, ntt_bench_degrees, random_ntt_poly};
use eva_math::{generate_ntt_primes, Modulus, NttTables};
use eva_poly::RnsBasis;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn quick_mode() -> bool {
    std::env::var("EVA_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn random_values(degree: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..degree).map(|_| rng.gen_range(0..q)).collect()
}

fn bench_ntt(c: &mut Criterion) {
    let quick = quick_mode();
    let degrees = ntt_bench_degrees(quick);
    let mut group = c.benchmark_group("ntt");
    group
        .measurement_time(Duration::from_secs(if quick { 1 } else { 3 }))
        .sample_size(if quick { 10 } else { 50 });
    for &degree in degrees {
        let q_val = generate_ntt_primes(degree, &[50]).expect("50-bit NTT prime")[0];
        let modulus = Modulus::new(q_val).expect("valid modulus");
        let tables = NttTables::new(degree, modulus).expect("NTT tables");
        let input = random_values(degree, q_val, degree as u64);

        let mut buf = input.clone();
        group.bench_function(format!("forward_n{degree}_q50"), |b| {
            b.iter(|| {
                buf.copy_from_slice(&input);
                tables.forward(black_box(&mut buf));
            })
        });
        let mut eval = input.clone();
        tables.forward(&mut eval);
        let mut buf = eval.clone();
        group.bench_function(format!("inverse_n{degree}_q50"), |b| {
            b.iter(|| {
                buf.copy_from_slice(&eval);
                tables.inverse(black_box(&mut buf));
            })
        });
    }
    group.finish();
}

fn bench_dyadic(c: &mut Criterion) {
    let quick = quick_mode();
    let (degree, level) = dyadic_bench_config(quick);
    let primes = generate_ntt_primes(degree, &vec![50; level]).expect("primes");
    let basis = RnsBasis::new(degree, &primes).expect("basis");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let a = random_ntt_poly(&basis, level, &mut rng);
    let b_poly = random_ntt_poly(&basis, level, &mut rng);

    let mut group = c.benchmark_group(&format!("dyadic_n{degree}_l{level}"));
    group
        .measurement_time(Duration::from_secs(if quick { 1 } else { 3 }))
        .sample_size(if quick { 10 } else { 50 });
    let mut acc = a.clone();
    group.bench_function("add_assign", |bench| {
        bench.iter(|| acc.add_assign(black_box(&b_poly), &basis))
    });
    let mut acc = a.clone();
    group.bench_function("sub_assign", |bench| {
        bench.iter(|| acc.sub_assign(black_box(&b_poly), &basis))
    });
    group.bench_function("dyadic_mul", |bench| {
        bench.iter(|| a.dyadic_mul(black_box(&b_poly), &basis))
    });
    let mut acc = a.clone();
    group.bench_function("dyadic_mul_acc", |bench| {
        bench.iter(|| a.dyadic_mul_acc(black_box(&b_poly), &mut acc, &basis))
    });
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_dyadic);
criterion_main!(benches);
