//! Strong-scaling measurements (the paper's Figure 7): encrypted execution
//! latency as a function of worker-thread count.
//!
//! The default run sweeps the thread counts on the Sobel application (cheap
//! enough for CI); set `EVA_BENCH_FULL=1` to sweep the LeNet-5-small network
//! in both CHET and EVA modes, which is the actual Figure 7 series.

use std::collections::HashMap;
use std::time::Instant;

use eva_backend::{execute_parallel, EncryptedContext};
use eva_bench::{prepare_network, random_image};
use eva_core::{compile, CompilerOptions};
use eva_tensor::{networks::lenet5_small, pack_input};

fn main() {
    let full = std::env::var("EVA_BENCH_FULL").is_ok();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts: Vec<usize> = (1..=max_threads).collect();

    println!("== Figure 7 (scaling): Sobel 32x32, EVA mode ==");
    let app = eva_apps::image::sobel(32, 3);
    let compiled = compile(&app.program, &CompilerOptions::default()).expect("compile");
    let mut context = EncryptedContext::setup(&compiled, Some(7)).expect("setup");
    for &threads in &thread_counts {
        let bindings = context
            .encrypt_inputs(&compiled, &app.inputs)
            .expect("encrypt");
        let start = Instant::now();
        execute_parallel(context.evaluation(), &compiled, bindings, threads).expect("execute");
        println!(
            "sobel_32x32 threads={threads} latency={:.2?}",
            start.elapsed()
        );
    }

    if full {
        println!("== Figure 7 (scaling): LeNet-5-small, CHET vs EVA ==");
        let network = lenet5_small(42);
        let prepared = prepare_network(&network);
        let image = random_image(&network, 5);
        for (label, lowered, compiled) in [
            ("EVA", &prepared.eva.0, &prepared.eva.1),
            ("CHET", &prepared.chet.0, &prepared.chet.1),
        ] {
            let mut context = EncryptedContext::setup(compiled, Some(11)).expect("setup");
            let packed = pack_input(&image, compiled.program.vec_size());
            let inputs: HashMap<String, Vec<f64>> =
                [(lowered.input_name.clone(), packed)].into_iter().collect();
            for &threads in &thread_counts {
                let bindings = context.encrypt_inputs(compiled, &inputs).expect("encrypt");
                let start = Instant::now();
                execute_parallel(context.evaluation(), compiled, bindings, threads)
                    .expect("execute");
                println!(
                    "lenet5_small mode={label} threads={threads} latency={:.2?}",
                    start.elapsed()
                );
            }
        }
    } else {
        println!("(set EVA_BENCH_FULL=1 for the LeNet-5-small CHET-vs-EVA sweep)");
    }
}
