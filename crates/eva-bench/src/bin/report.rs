//! `report` — regenerate the tables and figures of the EVA paper's evaluation.
//!
//! ```text
//! cargo run --release -p eva-bench --bin report -- --all            # quick set
//! cargo run --release -p eva-bench --bin report -- --table 6
//! cargo run --release -p eva-bench --bin report -- --figure 7 --full
//! cargo run --release -p eva-bench --bin report -- --primitives     # BENCH_primitives.json
//! cargo run --release -p eva-bench --bin report -- --analysis       # verifier + noise budgets
//! cargo run --release -p eva-bench --bin report -- --cost           # BENCH_cost.json
//! cargo run --release -p eva-bench --bin report -- --throughput     # BENCH_throughput.json
//! cargo run --release -p eva-bench --bin report -- --dot sobel.dot  # annotated graphviz dump
//! ```
//!
//! By default the encrypted-latency measurements (Tables 5, 7 and Figure 7)
//! only run the smaller networks so the report finishes in minutes on a
//! laptop; pass `--full` to measure every network of Table 3.

use std::time::Instant;

use eva_bench::*;
use eva_core::analysis::{estimate_noise, verify_compiled, NoiseModel};
use eva_core::{
    compile, CompiledProgram, CompilerOptions, ModSwitchStrategy, Opcode, Program, RescaleStrategy,
};
use eva_tensor::all_networks;

struct Options {
    tables: Vec<u32>,
    figures: Vec<u32>,
    full: bool,
    threads: usize,
    /// `Some(path)` when `--primitives [path]` was passed: time the arithmetic
    /// substrate kernels and write the JSON baseline to `path`.
    primitives: Option<String>,
    /// `Some(path)` when `--wire [path]` was passed: measure wire object
    /// sizes and localhost service round-trip latency, writing `path`.
    wire: Option<String>,
    /// `Some(path)` when `--service [path]` was passed: measure the
    /// fault-tolerant service baseline (session setup cold/warm/after a
    /// restart, evaluation success rate under injected faults), writing `path`.
    service: Option<String>,
    /// `Some(path)` when `--throughput [path]` was passed: measure session
    /// and evaluation throughput of the blocking baseline transport vs the
    /// event-driven reactor, writing `path`.
    throughput: Option<String>,
    /// `--analysis`: time the static verifier and dump per-output worst-case
    /// noise budgets for the example circuits (Sobel, LeNet).
    analysis: bool,
    /// `Some(path)` when `--cost [path]` was passed: price the Sobel and
    /// LeNet-5-small circuits with the static cost model, run one audited
    /// encrypted execution of each and write the baseline to `path`.
    cost: Option<String>,
    /// `Some(path)` when `--dot [path]` was passed: write the Sobel circuit
    /// as annotated Graphviz DOT (level + noise budget per node) to `path`.
    dot: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        tables: Vec::new(),
        figures: Vec::new(),
        full: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        primitives: None,
        wire: None,
        service: None,
        throughput: None,
        analysis: false,
        cost: None,
        dot: None,
    };
    let mut iter = args.iter().peekable();
    let mut all = args.is_empty();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--full" => options.full = true,
            "--table" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    options.tables.push(n);
                }
            }
            "--figure" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    options.figures.push(n);
                }
            }
            "--threads" => {
                if let Some(n) = iter.next().and_then(|v| v.parse().ok()) {
                    options.threads = n;
                }
            }
            "--primitives" => {
                // Optional path operand; defaults to the repo-root baseline file.
                let path = match iter.peek() {
                    Some(p) if !p.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_primitives.json".to_string(),
                };
                options.primitives = Some(path);
            }
            "--wire" => {
                let path = match iter.peek() {
                    Some(p) if !p.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_wire.json".to_string(),
                };
                options.wire = Some(path);
            }
            "--service" => {
                let path = match iter.peek() {
                    Some(p) if !p.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_service.json".to_string(),
                };
                options.service = Some(path);
            }
            "--throughput" => {
                let path = match iter.peek() {
                    Some(p) if !p.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_throughput.json".to_string(),
                };
                options.throughput = Some(path);
            }
            "--analysis" => options.analysis = true,
            "--cost" => {
                let path = match iter.peek() {
                    Some(p) if !p.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "BENCH_cost.json".to_string(),
                };
                options.cost = Some(path);
            }
            "--dot" => {
                let path = match iter.peek() {
                    Some(p) if !p.starts_with("--") => iter.next().unwrap().clone(),
                    _ => "sobel.dot".to_string(),
                };
                options.dot = Some(path);
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    if all {
        options.tables = vec![3, 4, 5, 6, 7, 8];
        options.figures = vec![2, 3, 5, 7];
    }
    options
}

fn main() {
    let options = parse_args();

    if let Some(path) = &options.primitives {
        println!("== Arithmetic-substrate primitives (writing {path}) ==");
        let timings = measure_primitives(false);
        for t in &timings {
            println!(
                "{:<36} mean={:>10.3}µs min={:>10.3}µs ({} samples)",
                t.name, t.mean_us, t.min_us, t.samples
            );
        }
        // Carry historical reference sections over from the existing baseline
        // so re-baselining never silently deletes them.
        let preserved: Vec<String> = std::fs::read_to_string(path)
            .ok()
            .iter()
            .flat_map(|old| {
                ["pre_lazy_reference_us"]
                    .iter()
                    .filter_map(|key| extract_json_section(old, key))
                    .collect::<Vec<_>>()
            })
            .collect();
        let json = primitives_json(&timings, &preserved);
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {err}");
        }
    }

    if let Some(path) = &options.wire {
        println!("== Deployment wire baseline (writing {path}) ==");
        let sizes = measure_wire_sizes();
        for entry in &sizes {
            println!("{:<32} {:>12} bytes", entry.name, entry.bytes);
        }
        let timings = measure_service_roundtrip(false);
        for t in &timings {
            println!(
                "{:<36} mean={:>10.3}µs min={:>10.3}µs ({} samples)",
                t.name, t.mean_us, t.min_us, t.samples
            );
        }
        let json = wire_json(&sizes, &timings, &[]);
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {err}");
        }
    }

    if let Some(path) = &options.service {
        println!("== Service resilience baseline (writing {path}) ==");
        let resilience = measure_service_resilience(false);
        for t in &resilience.timings {
            println!(
                "{:<36} mean={:>10.3}µs min={:>10.3}µs ({} samples)",
                t.name, t.mean_us, t.min_us, t.samples
            );
        }
        println!(
            "fault injection: {}/{} rounds recovered bit-identically \
             ({} retried evaluations, {} resumed retries)",
            resilience.recovered,
            resilience.fault_rounds,
            resilience.retried_evaluations,
            resilience.resumed_retries
        );
        let json = service_json(&resilience, &[]);
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {err}");
        }
    }

    if let Some(path) = &options.throughput {
        println!("== Service throughput: blocking baseline vs reactor (writing {path}) ==");
        let transports = measure_throughput(false);
        for t in &transports {
            println!(
                "{:<10} cold {:>8.2} sessions/s  warm {:>8.2} sessions/s  ({} handshakes each)",
                t.transport, t.cold_sessions_per_sec, t.warm_sessions_per_sec, t.handshake_samples
            );
            for (n, rate) in &t.evals_per_sec {
                println!(
                    "{:<10}   N={n:<3} {rate:>10.2} evaluations/s ({} rounds/session)",
                    "", t.rounds_per_session
                );
            }
        }
        let reactor = evals_rate_at(&transports, "reactor", 8).expect("reactor rate at N=8");
        let blocking = evals_rate_at(&transports, "blocking", 8).expect("blocking rate at N=8");
        let ratio = reactor / blocking;
        println!(
            "throughput-smoke: reactor vs blocking evaluations/s at N=8: {ratio:.2}x ({})",
            if ratio >= 1.0 { "PASS" } else { "FAIL" }
        );
        let json = throughput_json(&transports);
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {err}");
        }
    }

    if let Some(path) = &options.cost {
        println!("== Static cost model vs measured execution (writing {path}) ==");
        let measurements = measure_cost(false);
        for m in &measurements {
            println!(
                "{:<16} nodes {:>5} -> {:<5} rotation steps {:>3} -> {:<3} key switches {:>4} -> {:<4}",
                m.name,
                m.unoptimized.nodes,
                m.optimized.nodes,
                m.unoptimized.distinct_rotation_steps,
                m.optimized.distinct_rotation_steps,
                m.unoptimized.key_switches,
                m.optimized.key_switches,
            );
            println!(
                "  predicted {:>12.1}µs  measured {:>12.1}µs  peak ciphertexts predicted {} audited {}  max error {:.2e}",
                m.optimized.predicted_us,
                m.measured_execute_us,
                m.forecast.peak_live_ciphertexts,
                m.audit.peak_live_ciphertexts,
                m.max_error,
            );
            assert!(
                m.forecast.peak_bytes >= m.audit.peak_bytes
                    && m.forecast.peak_live_ciphertexts >= m.audit.peak_live_ciphertexts,
                "{}: static forecast {:?} must upper-bound the audit {:?}",
                m.name,
                m.forecast,
                m.audit
            );
        }
        let json = cost_json(&measurements);
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {err}");
        }
    }

    let networks = all_networks(42);
    let heavy_limit = if options.full { networks.len() } else { 1 };

    if options.analysis {
        println!("== Static analysis: verifier timing and worst-case noise budgets ==");
        let sobel = compile(
            &eva_apps::image::sobel_program(16),
            &CompilerOptions::default(),
        )
        .expect("sobel compiles");
        analysis_entry("sobel 16x16", &sobel);
        for network in networks.iter().take(heavy_limit) {
            let prepared = prepare_network(network);
            analysis_entry(&network.name, &prepared.eva.1);
        }
        if !options.full {
            println!("(pass --full to analyse every network of Table 3)");
        }
    }

    if let Some(path) = &options.dot {
        let sobel = compile(
            &eva_apps::image::sobel_program(16),
            &CompilerOptions::default(),
        )
        .expect("sobel compiles");
        let dot = sobel.to_dot();
        match std::fs::write(path, &dot) {
            Ok(()) => println!(
                "wrote annotated DOT for sobel 16x16 ({} nodes) to {path}",
                sobel.program.len()
            ),
            Err(err) => eprintln!("failed to write {path}: {err}"),
        }
    }

    for &figure in &options.figures {
        match figure {
            2 => figure2(),
            3 => figure3(),
            5 => figure5(),
            7 => {
                println!("\n== Figure 7: strong scaling of encrypted inference (CHET vs EVA) ==");
                let threads: Vec<usize> = (1..=options.threads).collect();
                for network in networks.iter().take(heavy_limit) {
                    let prepared = prepare_network(network);
                    for line in figure7_scaling(&prepared, &threads, 5) {
                        println!("{line}");
                    }
                }
                if !options.full {
                    println!("(pass --full to measure every network of Table 3)");
                }
            }
            other => eprintln!("no such figure: {other}"),
        }
    }

    for &table in &options.tables {
        match table {
            3 => {
                println!("\n== Table 3: networks used in the evaluation ==");
                for network in &networks {
                    println!("{}", table3_network_inventory(network));
                }
            }
            4 => {
                println!("\n== Table 4: input/output scales and accuracy proxy ==");
                for network in &networks {
                    let prepared = prepare_network(network);
                    println!("{}", table4_accuracy(&prepared, 7));
                }
            }
            5 => {
                println!(
                    "\n== Table 5: encrypted inference latency (CHET vs EVA, {} threads) ==",
                    options.threads
                );
                for network in networks.iter().take(heavy_limit) {
                    let prepared = prepare_network(network);
                    println!("{}", table5_latency(&prepared, options.threads, 9));
                }
                if !options.full {
                    println!("(pass --full to measure every network of Table 3)");
                }
            }
            6 => {
                println!("\n== Table 6: encryption parameters selected (CHET vs EVA) ==");
                for network in &networks {
                    let prepared = prepare_network(network);
                    println!("{}", table6_parameters(&prepared));
                }
            }
            7 => {
                println!("\n== Table 7: compilation, context, encryption, decryption times ==");
                for network in networks.iter().take(heavy_limit) {
                    println!("{}", table7_compile_times(network, options.threads, 11));
                }
                if !options.full {
                    println!("(pass --full to measure every network of Table 3)");
                }
            }
            8 => {
                println!("\n== Table 8: arithmetic, statistical ML and image applications ==");
                let apps = eva_apps::all_applications(21);
                let limit = if options.full { apps.len() } else { 4 };
                for app in apps.iter().take(limit) {
                    println!("{}", table8_applications(app));
                }
                if !options.full {
                    println!("(pass --full to also measure the 64x64 Sobel and Harris kernels)");
                }
            }
            other => eprintln!("no such table: {other}"),
        }
    }
}

/// Times the verifier and the noise estimator on one compiled circuit and
/// prints the per-output worst-case budgets.
fn analysis_entry(label: &str, compiled: &CompiledProgram) {
    let start = Instant::now();
    let report = verify_compiled(compiled);
    let verify_time = start.elapsed();
    let start = Instant::now();
    let noise = estimate_noise(compiled, &NoiseModel::default());
    let noise_time = start.elapsed();
    println!(
        "{label:<24} {:>6} nodes  verify {:>9.2?} ({})  noise model {:>9.2?}",
        compiled.program.len(),
        verify_time,
        if report.is_clean() {
            "clean".to_string()
        } else {
            format!("{} errors", report.error_count())
        },
        noise_time,
    );
    for output in noise.output_budgets(&compiled.program) {
        println!(
            "  output {:<16} budget {:>7.1} bits   worst-case message error 2^{:.1}",
            output.name, output.budget_bits, output.message_error_log2
        );
    }
}

fn x2y3() -> Program {
    let mut p = Program::new("x2y3", 8);
    let x = p.input_cipher("x", 60);
    let y = p.input_cipher("y", 30);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let y2 = p.instruction(Opcode::Multiply, &[y, y]);
    let y3 = p.instruction(Opcode::Multiply, &[y2, y]);
    let out = p.instruction(Opcode::Multiply, &[x2, y3]);
    p.output("out", out, 30);
    p
}

fn report_compilation(name: &str, program: &Program, options: &CompilerOptions) {
    match compile(program, options) {
        Ok(compiled) => println!(
            "{name:<30} rescale={:<2} modswitch={:<2} matchscale={:<2} relin={:<2} -> r={} log2Q={}",
            compiled.stats.rescales_inserted,
            compiled.stats.mod_switches_inserted,
            compiled.stats.scale_fixes_inserted,
            compiled.stats.relinearizations_inserted,
            compiled.parameters.chain_length(),
            compiled.parameters.total_bits()
        ),
        Err(err) => println!("{name:<30} does not compile: {err}"),
    }
}

fn figure2() {
    println!("\n== Figure 2: x^2 * y^3 under the rescale insertion strategies ==");
    report_compilation(
        "always-rescale + lazy",
        &x2y3(),
        &CompilerOptions {
            rescale: RescaleStrategy::Always,
            mod_switch: ModSwitchStrategy::Lazy,
            ..CompilerOptions::default()
        },
    );
    report_compilation(
        "waterline + eager (EVA)",
        &x2y3(),
        &CompilerOptions::default(),
    );
}

fn figure3() {
    println!("\n== Figure 3: x^2 + x — MATCH-SCALE avoids consuming a prime ==");
    let mut p = Program::new("x2_plus_x", 8);
    let x = p.input_cipher("x", 30);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let sum = p.instruction(Opcode::Add, &[x2, x]);
    p.output("out", sum, 30);
    report_compilation("waterline + eager (EVA)", &p, &CompilerOptions::default());
}

fn figure5() {
    println!("\n== Figure 5: x^2 + x + x — eager vs lazy MODSWITCH insertion ==");
    let mut p = Program::new("x2xx", 8);
    let x = p.input_cipher("x", 60);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let add1 = p.instruction(Opcode::Add, &[x2, x]);
    let add2 = p.instruction(Opcode::Add, &[add1, x]);
    p.output("out", add2, 60);
    report_compilation(
        "lazy modswitch",
        &p,
        &CompilerOptions {
            mod_switch: ModSwitchStrategy::Lazy,
            ..CompilerOptions::default()
        },
    );
    report_compilation("eager modswitch (EVA)", &p, &CompilerOptions::default());
}
