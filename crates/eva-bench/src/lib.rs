//! # eva-bench — the benchmark harness for the paper's evaluation
//!
//! One function per experiment family, shared by the Criterion benches and the
//! `report` binary that regenerates the rows of every table and the series of
//! every figure in Section 8 of the paper:
//!
//! | Paper artifact | Harness entry point |
//! |---|---|
//! | Table 3 (networks)            | [`table3_network_inventory`] |
//! | Table 4 (scales & accuracy)   | [`table4_accuracy`] |
//! | Table 5 (latency)             | [`table5_latency`] |
//! | Table 6 (encryption params)   | [`table6_parameters`] |
//! | Table 7 (compile/keygen time) | [`table7_compile_times`] |
//! | Table 8 (applications)        | [`table8_applications`] |
//! | Figure 7 (strong scaling)     | [`figure7_scaling`] |
//!
//! Figures 2, 3 and 5 are structural (graph rewriting) results; they are
//! covered by the integration test `tests/figures_2_3_5.rs` and printed by the
//! `report` binary from the same pass statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use eva_backend::{execute_parallel, run_reference, EncryptedContext};
use eva_core::CompiledProgram;
use eva_tensor::{lower_network, pack_input, LoweredNetwork, LoweringMode, Network, Tensor};
use rand::{Rng, SeedableRng};

/// A compiled network together with both lowering modes, ready to measure.
#[derive(Debug)]
pub struct PreparedNetwork {
    /// The network description.
    pub network: Network,
    /// EVA-mode lowering and compilation.
    pub eva: (LoweredNetwork, CompiledProgram),
    /// CHET-baseline lowering and compilation.
    pub chet: (LoweredNetwork, CompiledProgram),
}

/// Lowers and compiles a network in both modes.
///
/// # Panics
///
/// Panics if either mode fails to compile (the networks shipped with this
/// crate always compile).
pub fn prepare_network(network: &Network) -> PreparedNetwork {
    let eva_lowered = lower_network(network, LoweringMode::Eva);
    let eva_compiled = eva_lowered.compile().expect("EVA-mode compilation");
    let chet_lowered = lower_network(network, LoweringMode::ChetBaseline);
    let chet_compiled = chet_lowered.compile().expect("CHET-mode compilation");
    PreparedNetwork {
        network: network.clone(),
        eva: (eva_lowered, eva_compiled),
        chet: (chet_lowered, chet_compiled),
    }
}

/// A random input image for a network (the MNIST/CIFAR substitution).
pub fn random_image(network: &Network, seed: u64) -> Tensor {
    let (c, h, w) = network.input_shape;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_data(
        c,
        h,
        w,
        (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Result of one encrypted inference measurement.
#[derive(Debug, Clone)]
pub struct InferenceMeasurement {
    /// Wall-clock time for context and key generation.
    pub context_time: Duration,
    /// Wall-clock time for input encryption.
    pub encrypt_time: Duration,
    /// Wall-clock time for homomorphic execution.
    pub execute_time: Duration,
    /// Wall-clock time for output decryption.
    pub decrypt_time: Duration,
    /// Maximum absolute error of the encrypted logits vs plaintext inference.
    pub max_error: f64,
    /// Whether the encrypted and plaintext argmax agree (the accuracy proxy).
    pub argmax_agrees: bool,
}

/// Runs one encrypted inference of a prepared network/mode and measures every
/// phase (the Table 5 / Table 7 measurement).
///
/// # Panics
///
/// Panics on backend errors, which indicate an internal bug for compiled
/// programs.
pub fn measure_inference(
    lowered: &LoweredNetwork,
    compiled: &CompiledProgram,
    network: &Network,
    image: &Tensor,
    threads: usize,
) -> InferenceMeasurement {
    let start = Instant::now();
    let mut context = EncryptedContext::setup(compiled, Some(42)).expect("context setup");
    let context_time = start.elapsed();

    let packed = pack_input(image, compiled.program.vec_size());
    let inputs: HashMap<String, Vec<f64>> =
        [(lowered.input_name.clone(), packed)].into_iter().collect();
    let start = Instant::now();
    let bindings = context
        .encrypt_inputs(compiled, &inputs)
        .expect("encryption");
    let encrypt_time = start.elapsed();

    let start = Instant::now();
    let values = execute_parallel(&context, compiled, bindings, threads).expect("execution");
    let execute_time = start.elapsed();

    let start = Instant::now();
    let outputs = context
        .decrypt_outputs(compiled, &values)
        .expect("decryption");
    let decrypt_time = start.elapsed();

    let logits = lowered.extract_logits(&outputs[&lowered.output_name]);
    let expected = network.infer_plain(image);
    let max_error = logits
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    InferenceMeasurement {
        context_time,
        encrypt_time,
        execute_time,
        decrypt_time,
        max_error,
        argmax_agrees: argmax(&logits) == argmax(&expected),
    }
}

/// Index of the maximum element.
pub fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// One row of Table 3: the network inventory.
pub fn table3_network_inventory(network: &Network) -> String {
    let counts = network.layer_counts();
    format!(
        "{:<20} conv={:<2} fc={:<2} act={:<2} fp_ops={:<9}",
        network.name,
        counts.conv,
        counts.fc,
        counts.act,
        network.flop_count()
    )
}

/// One row of Table 4: scales used and the accuracy proxy (max logit error and
/// argmax agreement of EVA-mode encrypted inference vs plaintext inference,
/// computed by the reference semantics so it stays fast).
pub fn table4_accuracy(prepared: &PreparedNetwork, seed: u64) -> String {
    let image = random_image(&prepared.network, seed);
    let (lowered, compiled) = &prepared.eva;
    let packed = pack_input(&image, compiled.program.vec_size());
    let inputs: HashMap<String, Vec<f64>> =
        [(lowered.input_name.clone(), packed)].into_iter().collect();
    let outputs = run_reference(&compiled.program, &inputs).expect("reference execution");
    let logits = lowered.extract_logits(&outputs[&lowered.output_name]);
    let expected = prepared.network.infer_plain(&image);
    let max_err = logits
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    format!(
        "{:<20} scales(cipher/vector/scalar/out)={}/{}/{}/{}  max_logit_err={:.2e}  argmax_match={}",
        prepared.network.name,
        lowered.scales.cipher,
        lowered.scales.vector,
        lowered.scales.scalar,
        lowered.scales.output,
        max_err,
        argmax(&logits) == argmax(&expected),
    )
}

/// One row of Table 6: encryption parameters selected for CHET vs EVA.
pub fn table6_parameters(prepared: &PreparedNetwork) -> String {
    let eva = &prepared.eva.1.parameters;
    let chet = &prepared.chet.1.parameters;
    format!(
        "{:<20} CHET: log2N={:<2} log2Q={:<5} r={:<3} | EVA: log2N={:<2} log2Q={:<5} r={:<3}",
        prepared.network.name,
        (chet.degree as f64).log2() as u32,
        chet.total_bits(),
        chet.chain_length(),
        (eva.degree as f64).log2() as u32,
        eva.total_bits(),
        eva.chain_length(),
    )
}

/// One row of Table 5: average encrypted-inference latency for CHET vs EVA.
pub fn table5_latency(prepared: &PreparedNetwork, threads: usize, seed: u64) -> String {
    let image = random_image(&prepared.network, seed);
    let eva = measure_inference(
        &prepared.eva.0,
        &prepared.eva.1,
        &prepared.network,
        &image,
        threads,
    );
    let chet = measure_inference(
        &prepared.chet.0,
        &prepared.chet.1,
        &prepared.network,
        &image,
        threads,
    );
    format!(
        "{:<20} CHET: {:>8.2?}  EVA: {:>8.2?}  speedup: {:.2}x",
        prepared.network.name,
        chet.execute_time,
        eva.execute_time,
        chet.execute_time.as_secs_f64() / eva.execute_time.as_secs_f64()
    )
}

/// One row of Table 7: compilation / context / encryption / decryption times
/// for EVA mode.
pub fn table7_compile_times(network: &Network, threads: usize, seed: u64) -> String {
    let start = Instant::now();
    let lowered = lower_network(network, LoweringMode::Eva);
    let compiled = lowered.compile().expect("compilation");
    let compile_time = start.elapsed();
    let image = random_image(network, seed);
    let m = measure_inference(&lowered, &compiled, network, &image, threads);
    format!(
        "{:<20} compile={:>8.2?} context={:>8.2?} encrypt={:>8.2?} decrypt={:>8.2?}",
        network.name, compile_time, m.context_time, m.encrypt_time, m.decrypt_time
    )
}

/// One row of Table 8: application vector size, program size and 1-thread
/// encrypted execution time.
pub fn table8_applications(app: &eva_apps::Application) -> String {
    let compiled =
        eva_core::compile(&app.program, &eva_core::CompilerOptions::default()).expect("compile");
    let mut context = EncryptedContext::setup(&compiled, Some(11)).expect("setup");
    let bindings = context
        .encrypt_inputs(&compiled, &app.inputs)
        .expect("encrypt");
    let start = Instant::now();
    let values = context
        .execute_serial(&compiled, bindings)
        .expect("execute");
    let time = start.elapsed();
    let outputs = context
        .decrypt_outputs(&compiled, &values)
        .expect("decrypt");
    let max_err = app
        .expected
        .iter()
        .map(|(name, expected)| {
            outputs[name]
                .iter()
                .zip(expected)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    format!(
        "{:<28} vec_size={:<5} nodes={:<5} time={:>8.2?} max_err={:.2e}",
        app.name,
        app.program.vec_size(),
        compiled.program.len(),
        time,
        max_err
    )
}

/// One series point of Figure 7: execution latency at a given thread count for
/// both CHET and EVA modes.
pub fn figure7_scaling(prepared: &PreparedNetwork, threads: &[usize], seed: u64) -> Vec<String> {
    let image = random_image(&prepared.network, seed);
    threads
        .iter()
        .map(|&t| {
            let eva = measure_inference(
                &prepared.eva.0,
                &prepared.eva.1,
                &prepared.network,
                &image,
                t,
            );
            let chet = measure_inference(
                &prepared.chet.0,
                &prepared.chet.1,
                &prepared.network,
                &image,
                t,
            );
            format!(
                "{:<20} threads={} CHET={:>8.2?} EVA={:>8.2?}",
                prepared.network.name, t, chet.execute_time, eva.execute_time
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_tensor::networks::lenet5_small;

    #[test]
    fn inventory_and_parameter_rows_are_formatted() {
        let network = lenet5_small(1);
        let row = table3_network_inventory(&network);
        assert!(row.contains("LeNet-5-small"));
        assert!(row.contains("conv=2"));

        let prepared = prepare_network(&network);
        let params = table6_parameters(&prepared);
        assert!(params.contains("CHET") && params.contains("EVA"));
        let accuracy = table4_accuracy(&prepared, 3);
        assert!(accuracy.contains("argmax_match"));
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
