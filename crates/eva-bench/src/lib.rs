//! # eva-bench — the benchmark harness for the paper's evaluation
//!
//! One function per experiment family, shared by the Criterion benches and the
//! `report` binary that regenerates the rows of every table and the series of
//! every figure in Section 8 of the paper:
//!
//! | Paper artifact | Harness entry point |
//! |---|---|
//! | Table 3 (networks)            | [`table3_network_inventory`] |
//! | Table 4 (scales & accuracy)   | [`table4_accuracy`] |
//! | Table 5 (latency)             | [`table5_latency`] |
//! | Table 6 (encryption params)   | [`table6_parameters`] |
//! | Table 7 (compile/keygen time) | [`table7_compile_times`] |
//! | Table 8 (applications)        | [`table8_applications`] |
//! | Figure 7 (strong scaling)     | [`figure7_scaling`] |
//!
//! Figures 2, 3 and 5 are structural (graph rewriting) results; they are
//! covered by the integration test `tests/figures_2_3_5.rs` and printed by the
//! `report` binary from the same pass statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use eva_backend::{execute_parallel, run_reference, EncryptedContext};
use eva_core::CompiledProgram;
use eva_tensor::{lower_network, pack_input, LoweredNetwork, LoweringMode, Network, Tensor};
use rand::{Rng, SeedableRng};

/// A compiled network together with both lowering modes, ready to measure.
#[derive(Debug)]
pub struct PreparedNetwork {
    /// The network description.
    pub network: Network,
    /// EVA-mode lowering and compilation.
    pub eva: (LoweredNetwork, CompiledProgram),
    /// CHET-baseline lowering and compilation.
    pub chet: (LoweredNetwork, CompiledProgram),
}

/// Lowers and compiles a network in both modes.
///
/// # Panics
///
/// Panics if either mode fails to compile (the networks shipped with this
/// crate always compile).
pub fn prepare_network(network: &Network) -> PreparedNetwork {
    let eva_lowered = lower_network(network, LoweringMode::Eva);
    let eva_compiled = eva_lowered.compile().expect("EVA-mode compilation");
    let chet_lowered = lower_network(network, LoweringMode::ChetBaseline);
    let chet_compiled = chet_lowered.compile().expect("CHET-mode compilation");
    PreparedNetwork {
        network: network.clone(),
        eva: (eva_lowered, eva_compiled),
        chet: (chet_lowered, chet_compiled),
    }
}

/// A random input image for a network (the MNIST/CIFAR substitution).
pub fn random_image(network: &Network, seed: u64) -> Tensor {
    let (c, h, w) = network.input_shape;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Tensor::from_data(
        c,
        h,
        w,
        (0..c * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Result of one encrypted inference measurement.
#[derive(Debug, Clone)]
pub struct InferenceMeasurement {
    /// Wall-clock time for context and key generation.
    pub context_time: Duration,
    /// Wall-clock time for input encryption.
    pub encrypt_time: Duration,
    /// Wall-clock time for homomorphic execution.
    pub execute_time: Duration,
    /// Wall-clock time for output decryption.
    pub decrypt_time: Duration,
    /// Maximum absolute error of the encrypted logits vs plaintext inference.
    pub max_error: f64,
    /// Whether the encrypted and plaintext argmax agree (the accuracy proxy).
    pub argmax_agrees: bool,
}

/// Runs one encrypted inference of a prepared network/mode and measures every
/// phase (the Table 5 / Table 7 measurement).
///
/// # Panics
///
/// Panics on backend errors, which indicate an internal bug for compiled
/// programs.
pub fn measure_inference(
    lowered: &LoweredNetwork,
    compiled: &CompiledProgram,
    network: &Network,
    image: &Tensor,
    threads: usize,
) -> InferenceMeasurement {
    let start = Instant::now();
    let mut context = EncryptedContext::setup(compiled, Some(42)).expect("context setup");
    let context_time = start.elapsed();

    let packed = pack_input(image, compiled.program.vec_size());
    let inputs: HashMap<String, Vec<f64>> =
        [(lowered.input_name.clone(), packed)].into_iter().collect();
    let start = Instant::now();
    let bindings = context
        .encrypt_inputs(compiled, &inputs)
        .expect("encryption");
    let encrypt_time = start.elapsed();

    let start = Instant::now();
    let values =
        execute_parallel(context.evaluation(), compiled, bindings, threads).expect("execution");
    let execute_time = start.elapsed();

    let start = Instant::now();
    let outputs = context
        .decrypt_outputs(compiled, &values)
        .expect("decryption");
    let decrypt_time = start.elapsed();

    let logits = lowered.extract_logits(&outputs[&lowered.output_name]);
    let expected = network.infer_plain(image);
    let max_error = logits
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    InferenceMeasurement {
        context_time,
        encrypt_time,
        execute_time,
        decrypt_time,
        max_error,
        argmax_agrees: argmax(&logits) == argmax(&expected),
    }
}

/// One timed kernel: mean/min per-iteration wall-clock over `samples` runs.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel identifier, e.g. `ntt_forward_n8192_q50`.
    pub name: String,
    /// Mean per-iteration time in microseconds.
    pub mean_us: f64,
    /// Minimum per-iteration time in microseconds.
    pub min_us: f64,
    /// Number of timed iterations.
    pub samples: usize,
}

fn time_kernel<F: FnMut()>(name: &str, samples: usize, mut routine: F) -> KernelTiming {
    routine(); // warm-up
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        routine();
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    KernelTiming {
        name: name.to_string(),
        mean_us: total.as_secs_f64() * 1e6 / samples as f64,
        min_us: min.as_secs_f64() * 1e6,
        samples,
    }
}

/// Ring degrees the NTT kernel baseline covers (shared by the `ntt_kernels`
/// criterion bench and [`measure_primitives`] so both always measure the same
/// suite).
pub const NTT_BENCH_DEGREES: &[usize] = &[4096, 8192, 16384];

/// Quick-mode (CI smoke) subset of [`NTT_BENCH_DEGREES`].
pub const NTT_BENCH_DEGREES_QUICK: &[usize] = &[4096];

/// The NTT degrees to measure for the given mode.
pub fn ntt_bench_degrees(quick: bool) -> &'static [usize] {
    if quick {
        NTT_BENCH_DEGREES_QUICK
    } else {
        NTT_BENCH_DEGREES
    }
}

/// The `(degree, level)` configuration of the fused dyadic-kernel baseline
/// for the given mode (shared by the criterion bench and
/// [`measure_primitives`]).
pub fn dyadic_bench_config(quick: bool) -> (usize, usize) {
    if quick {
        (2048, 3)
    } else {
        (8192, 3)
    }
}

/// A uniformly random NTT-form polynomial over the first `level` primes of
/// `basis`, for benchmark inputs.
pub fn random_ntt_poly(
    basis: &eva_poly::RnsBasis,
    level: usize,
    rng: &mut rand::rngs::StdRng,
) -> eva_poly::RnsPoly {
    let mut poly = eva_poly::RnsPoly::zero(basis.degree(), level, eva_poly::PolyForm::Ntt);
    for (row, modulus) in poly.rows_mut().zip(basis.moduli()) {
        eva_math::sample_uniform_into(rng, row, modulus);
    }
    poly
}

/// Times the arithmetic-substrate primitives every latency table decomposes
/// into: the negacyclic NTT at the evaluation degrees, the fused dyadic RNS
/// kernels, and the CKKS ciphertext operations at N = 8192.
///
/// `quick` shrinks sizes and sample counts for CI smoke runs.
///
/// # Panics
///
/// Panics if prime generation or context setup fails (fixed, known-good
/// parameters).
pub fn measure_primitives(quick: bool) -> Vec<KernelTiming> {
    use eva_ckks::{CkksContext, CkksEncoder, CkksParameters, Encryptor, Evaluator, KeyGenerator};
    use eva_math::{generate_ntt_primes, Modulus, NttTables};
    use eva_poly::RnsBasis;
    use rand::Rng;

    let samples = if quick { 5 } else { 30 };
    let mut out = Vec::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    for &degree in ntt_bench_degrees(quick) {
        let q_val = generate_ntt_primes(degree, &[50]).expect("50-bit NTT prime")[0];
        let tables =
            NttTables::new(degree, Modulus::new(q_val).expect("modulus")).expect("NTT tables");
        let input: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();
        let mut buf = input.clone();
        out.push(time_kernel(
            &format!("ntt_forward_n{degree}_q50"),
            samples,
            || {
                buf.copy_from_slice(&input);
                tables.forward(&mut buf);
            },
        ));
        let mut eval = input.clone();
        tables.forward(&mut eval);
        let mut buf = eval.clone();
        out.push(time_kernel(
            &format!("ntt_inverse_n{degree}_q50"),
            samples,
            || {
                buf.copy_from_slice(&eval);
                tables.inverse(&mut buf);
            },
        ));
    }

    let (degree, level) = dyadic_bench_config(quick);
    let primes = generate_ntt_primes(degree, &vec![50; level]).expect("primes");
    let basis = RnsBasis::new(degree, &primes).expect("basis");
    let a = random_ntt_poly(&basis, level, &mut rng);
    let b = random_ntt_poly(&basis, level, &mut rng);
    let mut acc = a.clone();
    out.push(time_kernel(
        &format!("dyadic_add_assign_n{degree}_l{level}"),
        samples,
        || acc.add_assign(&b, &basis),
    ));
    let mut acc = a.clone();
    out.push(time_kernel(
        &format!("dyadic_sub_assign_n{degree}_l{level}"),
        samples,
        || acc.sub_assign(&b, &basis),
    ));
    out.push(time_kernel(
        &format!("dyadic_mul_n{degree}_l{level}"),
        samples,
        || {
            let _ = a.dyadic_mul(&b, &basis);
        },
    ));
    let mut acc = a.clone();
    out.push(time_kernel(
        &format!("dyadic_mul_acc_n{degree}_l{level}"),
        samples,
        || a.dyadic_mul_acc(&b, &mut acc, &basis),
    ));

    if !quick {
        let params = CkksParameters::new(8192, &[40, 40, 40]).expect("parameters");
        let context = CkksContext::new(params).expect("context");
        let mut keygen = KeyGenerator::from_seed(context.clone(), 1);
        let public_key = keygen.create_public_key();
        let relin_key = keygen.create_relinearization_key();
        let encoder = CkksEncoder::new(context.clone());
        let mut encryptor = Encryptor::from_seed(context.clone(), public_key, 2);
        let evaluator = Evaluator::new(context.clone());
        let values: Vec<f64> = (0..context.slot_count())
            .map(|i| (i as f64).sin())
            .collect();
        let plaintext = encoder.encode(&values, 40.0, 3);
        let ct_a = encryptor.encrypt(&plaintext);
        let ct_b = encryptor.encrypt(&plaintext);
        let product = evaluator.multiply(&ct_a, &ct_b).expect("multiply");
        out.push(time_kernel("ckks_multiply_n8192_l3", samples, || {
            let _ = evaluator.multiply(&ct_a, &ct_b).unwrap();
        }));
        out.push(time_kernel("ckks_relinearize_n8192_l3", samples, || {
            let _ = evaluator.relinearize(&product, &relin_key).unwrap();
        }));
        out.push(time_kernel("ckks_rescale_n8192_l3", samples, || {
            let _ = evaluator.rescale_to_next(&ct_a).unwrap();
        }));
        // Rotation fan-out baseline: one lone rotation, then an 8-way
        // fan-out applying eight Galois keys to one shared RNS
        // decomposition. The hoisted kernel must come in well under 8×
        // the single-rotation time — CI pins that ratio. The single
        // rotation draws its step round-robin from the same eight-step
        // set so both kernels touch the fan-out's full Galois-key working
        // set; rotating by one perpetually cache-hot key would flatter
        // the sequential baseline.
        let fanout_steps: Vec<i64> = (1..=8).collect();
        let galois_keys = keygen.create_galois_keys(&fanout_steps);
        let mut next_step = 0usize;
        out.push(time_kernel("ckks_rotate_n8192_l3", samples, || {
            let step = fanout_steps[next_step % fanout_steps.len()];
            next_step += 1;
            let _ = evaluator.rotate(&ct_a, step, &galois_keys).unwrap();
        }));
        out.push(time_kernel(
            "ckks_rotate_hoisted_x8_n8192_l3",
            samples,
            || {
                let _ = evaluator
                    .rotate_hoisted(&ct_a, &fanout_steps, &galois_keys)
                    .unwrap();
            },
        ));
    }
    out
}

/// Renders kernel timings as the `BENCH_primitives.json` document (hand-rolled
/// JSON; the vendored serde is a stand-in, so no derive machinery is used).
///
/// `preserved` carries verbatim top-level sections rescued from a previous
/// baseline file (see [`extract_json_section`]) so re-baselining does not
/// silently delete the hand-recorded historical reference numbers.
pub fn primitives_json(timings: &[KernelTiming], preserved: &[String]) -> String {
    let mut s = String::from("{\n  \"schema\": \"eva-bench-primitives-v1\",\n");
    s.push_str(
        "  \"note\": \"Regenerate the 'kernels' section with: cargo run --release -p eva-bench \
         --bin report -- --primitives BENCH_primitives.json. Other sections are preserved \
         verbatim across regeneration.\",\n",
    );
    s.push_str("  \"kernels\": {\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{ \"mean_us\": {:.3}, \"min_us\": {:.3}, \"samples\": {} }}{comma}\n",
            t.name, t.mean_us, t.min_us, t.samples
        ));
    }
    s.push_str("  }");
    for section in preserved {
        s.push_str(",\n  ");
        s.push_str(section);
    }
    s.push_str("\n}\n");
    s
}

/// Extracts a top-level `"key": { ... }` object from a JSON document as the
/// verbatim `"key": {...}` fragment (brace matching; no string-escape
/// handling, which the baseline file does not use). Returns `None` if the key
/// is absent or malformed.
pub fn extract_json_section(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let start = doc.find(&needle)?;
    let open = start + doc[start..].find('{')?;
    let mut depth = 0usize;
    for (offset, ch) in doc[open..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(doc[start..=open + offset].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// One wire-size entry for the serialization baseline.
#[derive(Debug, Clone)]
pub struct WireSize {
    /// Object identifier, e.g. `ciphertext_n8192_l3`.
    pub name: String,
    /// Encoded size in bytes (`eva-wire` format, envelope included).
    pub bytes: usize,
}

/// Measures the encoded sizes of every runtime wire object at the two
/// deployment-relevant ring degrees (N = 4096 and N = 8192), so future PRs
/// can track serialization overhead the way `BENCH_primitives.json` tracks
/// kernel latency.
///
/// # Panics
///
/// Panics if context setup fails (fixed, known-good parameters).
pub fn measure_wire_sizes() -> Vec<WireSize> {
    use eva_ckks::{
        CkksContext, CkksEncoder, CkksParameters, Encryptor, KeyGenerator, SymmetricEncryptor,
    };
    use eva_wire::WireObject;

    let mut out = Vec::new();
    for (degree, data_bits, special_bits) in [
        (4096usize, vec![30u32, 30], 40u32),
        (8192, vec![40, 40, 40], 60),
    ] {
        let params = CkksParameters::with_special_prime_bits(degree, &data_bits, special_bits)
            .expect("baseline parameters");
        let context = CkksContext::new(params).expect("context");
        let level = context.max_level();
        let mut keygen = KeyGenerator::from_seed(context.clone(), 77);
        let public_key = keygen.create_public_key();
        let relin_key = keygen.create_relinearization_key();
        let galois_one_step = keygen.create_galois_keys(&[1]);
        let encoder = CkksEncoder::new(context.clone());
        let mut encryptor = Encryptor::from_seed(context.clone(), public_key.clone(), 78);
        let mut symmetric =
            SymmetricEncryptor::from_seed(context.clone(), keygen.secret_key().clone(), 79);
        let values: Vec<f64> = (0..context.slot_count())
            .map(|i| (i as f64).cos())
            .collect();
        let plaintext = encoder.encode(&values, f64::from(*data_bits.last().unwrap()), level);
        let ciphertext = encryptor.encrypt(&plaintext);
        let seeded_ciphertext = symmetric.encrypt_seeded(&plaintext);

        let mut push = |name: String, bytes: usize| out.push(WireSize { name, bytes });
        push(
            format!("ciphertext_n{degree}_l{level}"),
            ciphertext.to_wire_bytes().len(),
        );
        push(
            format!("seeded_ciphertext_n{degree}_l{level}"),
            seeded_ciphertext.to_wire_bytes().len(),
        );
        push(
            format!("plaintext_n{degree}_l{level}"),
            plaintext.to_wire_bytes().len(),
        );
        push(
            format!("public_key_n{degree}"),
            public_key.to_wire_bytes().len(),
        );
        push(
            format!("relin_key_n{degree}"),
            relin_key.to_wire_bytes().len(),
        );
        push(
            format!("galois_key_per_step_n{degree}"),
            galois_one_step.to_wire_bytes().len(),
        );
    }
    out
}

/// Measures end-to-end client/server latency over a real localhost TCP
/// socket: the one-time cold session setup (handshake, parameter
/// validation, key generation and evaluation-key upload), the **warm**
/// reconnect setup (session resumption: the server still caches the keys,
/// so neither generation nor upload happens) and the per-evaluation round
/// trip (encrypt → ship → execute → ship back → decrypt) for a small
/// compiled program.
///
/// `quick` shrinks the sample count for CI smoke runs.
///
/// # Panics
///
/// Panics if compilation or the localhost sessions fail.
pub fn measure_service_roundtrip(quick: bool) -> Vec<KernelTiming> {
    use eva_core::{compile, CompilerOptions, Opcode, Program};
    use eva_service::{bytes_with_tag, EvaClient, EvaServer, RecordingStream, TAG_EVAL_KEYS};
    use std::net::{TcpListener, TcpStream};

    let samples = if quick { 2 } else { 10 };
    let mut p = Program::new("x2_plus_x", 8);
    let x = p.input_cipher("x", 30);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let sum = p.instruction(Opcode::Add, &[x2, x]);
    p.output("out", sum, 30);
    let compiled = compile(&p, &CompilerOptions::default()).expect("compile");
    let degree = compiled.parameters.degree;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr");
    let server = EvaServer::new(compiled).expect("server");
    let server_thread = std::thread::spawn(move || server.serve_sessions(&listener, 2));

    let start = Instant::now();
    let mut client = EvaClient::connect(addr, Some(42)).expect("handshake");
    let setup = start.elapsed();
    let ticket = client.resumption_ticket().expect("seeded session");

    let inputs: HashMap<String, Vec<f64>> = [("x".to_string(), vec![0.5; 8])].into_iter().collect();
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    client.evaluate(&inputs).expect("warm-up evaluation");
    for _ in 0..samples {
        let start = Instant::now();
        let outputs = client.evaluate(&inputs).expect("evaluation");
        let elapsed = start.elapsed();
        assert!(
            (outputs["out"][0] - 0.75).abs() < 1e-3,
            "service result drifted"
        );
        total += elapsed;
        min = min.min(elapsed);
    }
    client.finish().expect("goodbye");

    // Warm reconnect: resume the cached evaluation keys; the transcript must
    // carry zero EvalKeys bytes.
    let start = Instant::now();
    let stream = RecordingStream::new(TcpStream::connect(addr).expect("reconnect"));
    let mut client = EvaClient::handshake_resuming(stream, ticket).expect("warm handshake");
    let warm_setup = start.elapsed();
    assert!(client.resumed(), "server dropped the cached keys");
    client.evaluate(&inputs).expect("warm evaluation");
    let stream = client.finish().expect("warm goodbye");
    assert_eq!(
        bytes_with_tag(stream.sent(), TAG_EVAL_KEYS).expect("frame audit"),
        0,
        "warm reconnect uploaded evaluation-key bytes"
    );
    server_thread
        .join()
        .expect("server thread")
        .expect("server sessions");

    vec![
        KernelTiming {
            name: format!("service_session_setup_n{degree}"),
            mean_us: setup.as_secs_f64() * 1e6,
            min_us: setup.as_secs_f64() * 1e6,
            samples: 1,
        },
        KernelTiming {
            name: format!("service_warm_resume_setup_n{degree}"),
            mean_us: warm_setup.as_secs_f64() * 1e6,
            min_us: warm_setup.as_secs_f64() * 1e6,
            samples: 1,
        },
        KernelTiming {
            name: format!("service_roundtrip_x2_plus_x_n{degree}"),
            mean_us: total.as_secs_f64() * 1e6 / samples as f64,
            min_us: min.as_secs_f64() * 1e6,
            samples,
        },
    ]
}

/// The service-resilience baseline measured by `report --service`.
#[derive(Debug, Clone)]
pub struct ServiceResilience {
    /// Session-setup timings: cold (key upload), warm resume (memory cache)
    /// and warm resume after a full server restart (disk cache).
    pub timings: Vec<KernelTiming>,
    /// Number of injected fault rounds.
    pub fault_rounds: usize,
    /// Rounds whose evaluation completed bit-identically despite the fault.
    pub recovered: usize,
    /// Evaluations that needed at least one retry.
    pub retried_evaluations: u64,
    /// Retries that resumed the session ticket (zero key bytes re-uploaded).
    pub resumed_retries: u64,
}

/// Measures the fault-tolerant service path end to end: session setup cold
/// (evaluation-key upload), warm (resumption from the server's in-memory
/// cache) and warm **after a full server restart** (resumption from the
/// disk-backed key store), plus the evaluation success rate of a retrying
/// client driven through the four injected fault classes — a stall past the
/// server's read deadline, a short read, a mid-frame disconnect and an
/// in-transit bit flip.
///
/// `quick` shortens the injected stall for CI smoke runs.
///
/// # Panics
///
/// Panics if compilation or the clean localhost sessions fail; faulted
/// rounds that fail to recover are counted, not fatal.
pub fn measure_service_resilience(quick: bool) -> ServiceResilience {
    use eva_core::{compile, CompilerOptions, Opcode, Program};
    use eva_service::{
        bytes_with_tag, frame_index, ChaosStream, EvaClient, EvaServer, Fault, RecordingStream,
        ReliableClient, RetryPolicy, ServerConfig, ServiceError, TAG_EVAL_KEYS,
    };
    use std::net::{TcpListener, TcpStream};
    use std::sync::{Arc, Mutex};

    const SEED: u64 = 42;
    let (deadline, stall) = if quick {
        (Duration::from_millis(400), Duration::from_millis(1000))
    } else {
        (Duration::from_secs(1), Duration::from_millis(2500))
    };

    let mut p = Program::new("x2_plus_x", 8);
    let x = p.input_cipher("x", 30);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let sum = p.instruction(Opcode::Add, &[x2, x]);
    p.output("out", sum, 30);
    let compiled = compile(&p, &CompilerOptions::default()).expect("compile");
    let degree = compiled.parameters.degree;
    let inputs: HashMap<String, Vec<f64>> = [("x".to_string(), vec![0.5; 8])].into_iter().collect();

    let store_dir = std::env::temp_dir().join(format!("eva-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    // ---- Incarnation 1: disk-backed server; cold and warm setups. -------
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr");
    let server = EvaServer::new(compiled.clone())
        .expect("server")
        .with_threads(2)
        .with_key_store(&store_dir)
        .expect("key store");
    let control = server.clone();
    let serve = std::thread::spawn(move || server.serve_forever(&listener));

    let start = Instant::now();
    let mut client =
        EvaClient::handshake_deterministic(TcpStream::connect(addr).expect("connect"), SEED)
            .expect("cold handshake");
    let cold_setup = start.elapsed();
    let ticket = client.resumption_ticket().expect("seeded session");
    let expected = client.evaluate(&inputs).expect("cold evaluation");
    client.finish().expect("cold goodbye");

    // Warm reconnect, recorded: zero key bytes, and the wire geometry the
    // fault plans aim at (deterministic sessions repeat the same bytes).
    let start = Instant::now();
    let stream = RecordingStream::new(TcpStream::connect(addr).expect("reconnect"));
    let mut client =
        EvaClient::handshake_resuming_deterministic(stream, ticket).expect("warm handshake");
    let warm_setup = start.elapsed();
    assert!(client.resumed(), "server dropped the cached keys");
    client.evaluate(&inputs).expect("warm evaluation");
    let (_, warm_sent, warm_received) = client.finish().expect("warm goodbye").into_parts();
    assert_eq!(
        bytes_with_tag(&warm_sent, TAG_EVAL_KEYS).expect("frame audit"),
        0,
        "warm reconnect uploaded evaluation-key bytes"
    );
    let hello_len = 9 + frame_index(&warm_sent).expect("sent frames")[0].1;
    let manifest_len = 9 + frame_index(&warm_received).expect("received frames")[0].1;

    // ---- The retrying client, one fault class per round. ----------------
    let next_plan: Arc<Mutex<Vec<Fault>>> = Arc::default();
    let stage = Arc::clone(&next_plan);
    let connector = move |_attempt: u32| -> Result<_, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let plan = std::mem::take(&mut *next_plan.lock().unwrap());
        Ok(ChaosStream::new(stream, plan))
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
        jitter: Duration::from_millis(10),
        seed: 13,
    };
    let mut client = ReliableClient::new(connector, SEED, policy)
        .with_ticket(ticket)
        .deterministic_for_tests();

    let faults = [
        Fault::DelayWrite {
            at: hello_len + 20, // 20 bytes into the Inputs frame
            delay: stall,
        },
        Fault::TruncateRead {
            at: manifest_len + 20, // 20 bytes into the Outputs frame
        },
        Fault::DisconnectWrite { at: hello_len + 20 },
        Fault::FlipReadBit {
            at: manifest_len, // the Outputs frame's tag byte
            bit: 1,
        },
    ];
    let fault_rounds = faults.len();
    let mut recovered = 0usize;
    for fault in faults {
        // The stall round only terminates once the server's read deadline
        // cuts the session, so tighten it for just that round.
        let is_stall = matches!(fault, Fault::DelayWrite { .. });
        if is_stall {
            let _ = control.clone().with_config(ServerConfig {
                read_deadline: Some(deadline),
                ..ServerConfig::default()
            });
        }
        *stage.lock().unwrap() = vec![fault];
        client.disconnect();
        let result = client.evaluate(&inputs);
        if is_stall {
            let _ = control.clone().with_config(ServerConfig::default());
        }
        match result {
            Ok(outputs)
                if outputs["out"]
                    .iter()
                    .zip(&expected["out"])
                    .all(|(a, b)| a.to_bits() == b.to_bits()) =>
            {
                recovered += 1;
            }
            Ok(_) => eprintln!("fault round completed but the outputs deviate"),
            Err(err) => eprintln!("fault round failed to recover: {err}"),
        }
    }
    let stats = client.stats();
    client.finish().expect("retry goodbye");
    control.shutdown();
    serve.join().expect("serve thread").expect("serve_forever");

    // ---- Incarnation 2: fresh server state, same store directory. -------
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr");
    let server = EvaServer::new(compiled)
        .expect("server")
        .with_key_store(&store_dir)
        .expect("key store");
    let control = server.clone();
    let serve = std::thread::spawn(move || server.serve_forever(&listener));

    let start = Instant::now();
    let stream = RecordingStream::new(TcpStream::connect(addr).expect("reconnect"));
    let mut client =
        EvaClient::handshake_resuming_deterministic(stream, ticket).expect("restart handshake");
    let restart_setup = start.elapsed();
    assert!(client.resumed(), "restart forgot the disk-cached keys");
    client.evaluate(&inputs).expect("post-restart evaluation");
    let stream = client.finish().expect("restart goodbye");
    assert_eq!(
        bytes_with_tag(stream.sent(), TAG_EVAL_KEYS).expect("frame audit"),
        0,
        "post-restart resumption uploaded evaluation-key bytes"
    );
    control.shutdown();
    serve.join().expect("serve thread").expect("serve_forever");
    let _ = std::fs::remove_dir_all(&store_dir);

    let one_shot = |name: String, elapsed: Duration| KernelTiming {
        name,
        mean_us: elapsed.as_secs_f64() * 1e6,
        min_us: elapsed.as_secs_f64() * 1e6,
        samples: 1,
    };
    ServiceResilience {
        timings: vec![
            one_shot(format!("service_cold_setup_n{degree}"), cold_setup),
            one_shot(format!("service_warm_resume_n{degree}"), warm_setup),
            one_shot(format!("service_restart_resume_n{degree}"), restart_setup),
        ],
        fault_rounds,
        recovered,
        retried_evaluations: stats.retried_evaluations,
        resumed_retries: stats.resumed_retries,
    }
}

/// Renders the resilience baseline as the `BENCH_service.json` document
/// (hand-rolled JSON like [`wire_json`]; `preserved` carries verbatim
/// sections over from a previous baseline).
pub fn service_json(resilience: &ServiceResilience, preserved: &[String]) -> String {
    let mut s = String::from("{\n  \"schema\": \"eva-bench-service-v1\",\n");
    s.push_str(
        "  \"note\": \"Regenerate with: cargo run --release -p eva-bench --bin report -- \
         --service BENCH_service.json. Session setups are localhost TCP handshakes against \
         eva-service with a disk-backed key store: cold uploads the evaluation keys, \
         warm_resume resumes them from the server's in-memory cache, restart_resume resumes \
         them from disk after a full server restart — zero key bytes cross the wire in either \
         warm case. fault_injection drives a retrying client through one round per fault class \
         (stall past the read deadline, short read, mid-frame disconnect, bit flip); a round \
         counts as recovered only if the outputs are bit-identical to the clean run.\",\n",
    );
    s.push_str("  \"session_setup\": {\n");
    for (i, t) in resilience.timings.iter().enumerate() {
        let comma = if i + 1 == resilience.timings.len() {
            ""
        } else {
            ","
        };
        s.push_str(&format!(
            "    \"{}\": {{ \"mean_us\": {:.3}, \"min_us\": {:.3}, \"samples\": {} }}{comma}\n",
            t.name, t.mean_us, t.min_us, t.samples
        ));
    }
    s.push_str("  },\n  \"fault_injection\": {\n");
    s.push_str(&format!("    \"rounds\": {},\n", resilience.fault_rounds));
    s.push_str(&format!("    \"recovered\": {},\n", resilience.recovered));
    s.push_str(&format!(
        "    \"success_rate\": {:.3},\n",
        resilience.recovered as f64 / resilience.fault_rounds.max(1) as f64
    ));
    s.push_str(&format!(
        "    \"retried_evaluations\": {},\n",
        resilience.retried_evaluations
    ));
    s.push_str(&format!(
        "    \"resumed_retries\": {}\n",
        resilience.resumed_retries
    ));
    s.push_str("  }");
    for section in preserved {
        s.push_str(",\n  ");
        s.push_str(section);
    }
    s.push_str("\n}\n");
    s
}

/// Sessions-per-second and evaluations-per-second of one service transport,
/// measured by `report --throughput`.
#[derive(Debug, Clone)]
pub struct TransportThroughput {
    /// `"blocking"` (thread per session) or `"reactor"` (event-driven core).
    pub transport: String,
    /// Sequential cold handshakes (full evaluation-key upload) per second.
    pub cold_sessions_per_sec: f64,
    /// Sequential warm handshakes (cached-key resumption) per second.
    pub warm_sessions_per_sec: f64,
    /// Handshakes timed per mode.
    pub handshake_samples: usize,
    /// `(concurrent_sessions, evaluations_per_sec)` at each measured width.
    pub evals_per_sec: Vec<(usize, f64)>,
    /// Evaluation rounds each concurrent session runs.
    pub rounds_per_session: usize,
}

/// Measures session and evaluation throughput of **both** service
/// transports over the same compiled program: the legacy thread-per-session
/// blocking server (`serve_forever_blocking`) and the event-driven reactor
/// (`serve_forever`), each serving cold and warm handshakes plus concurrent
/// warm sessions at widths 1, 8 and 64. Evaluations run single-threaded so
/// the comparison isolates transport and scheduling overhead rather than
/// executor parallelism.
///
/// `quick` shrinks sample counts for CI smoke runs.
///
/// # Panics
///
/// Panics if compilation or any localhost session fails.
pub fn measure_throughput(quick: bool) -> Vec<TransportThroughput> {
    use eva_core::{compile, CompilerOptions, Opcode, Program};

    let mut p = Program::new("x2_plus_x", 8);
    let x = p.input_cipher("x", 30);
    let x2 = p.instruction(Opcode::Multiply, &[x, x]);
    let sum = p.instruction(Opcode::Add, &[x2, x]);
    p.output("out", sum, 30);
    let compiled = compile(&p, &CompilerOptions::default()).expect("compile");

    vec![
        measure_transport(&compiled, "blocking", true, quick),
        measure_transport(&compiled, "reactor", false, quick),
    ]
}

fn measure_transport(
    compiled: &CompiledProgram,
    name: &str,
    blocking: bool,
    quick: bool,
) -> TransportThroughput {
    use eva_service::{EvaClient, EvaServer, ServerConfig};
    use std::net::{TcpListener, TcpStream};
    use std::sync::{Arc, Barrier};

    let handshakes = if quick { 3 } else { 6 };
    let rounds = if quick { 2 } else { 4 };
    let widths = [1usize, 8, 64];

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr");
    // Twice the widest measured width: a session slot is released slightly
    // after the client's goodbye returns, so back-to-back phases briefly
    // overlap — at the default limit of exactly 64 that overlap turns one
    // of the 64 concurrent handshakes into a busy rejection.
    let server = EvaServer::new(compiled.clone())
        .expect("server")
        .with_threads(1)
        .with_config(ServerConfig {
            max_sessions: 128,
            ..ServerConfig::default()
        });
    let control = server.clone();
    let serve = std::thread::spawn(move || {
        if blocking {
            server.serve_forever_blocking(&listener)
        } else {
            server.serve_forever(&listener)
        }
    });
    let inputs: HashMap<String, Vec<f64>> = [("x".to_string(), vec![0.5; 8])].into_iter().collect();

    // Cold handshakes: key generation + full evaluation-key upload each time.
    let start = Instant::now();
    let mut ticket = None;
    for i in 0..handshakes {
        let client = EvaClient::connect(addr, Some(1_000 + i as u64)).expect("cold handshake");
        ticket = client.resumption_ticket();
        client.finish().expect("cold goodbye");
    }
    let cold = start.elapsed();
    let ticket = ticket.expect("seeded sessions mint tickets");

    // The evaluation-key upload carries no acknowledgement, so the last cold
    // session's cache insert races a reconnect. One evaluated session
    // settles it: by the time outputs come back the server has processed
    // (and cached) the keys, so the warm phase below times pure resumption.
    {
        let stream = TcpStream::connect(addr).expect("sync connect");
        let mut client = EvaClient::handshake_resuming(stream, ticket).expect("sync handshake");
        client.evaluate(&inputs).expect("sync evaluation");
        client.finish().expect("sync goodbye");
    }

    // Warm handshakes: resume the last cold session's server-cached keys.
    let start = Instant::now();
    for _ in 0..handshakes {
        let stream = TcpStream::connect(addr).expect("reconnect");
        let client = EvaClient::handshake_resuming(stream, ticket).expect("warm handshake");
        assert!(client.resumed(), "server dropped the cached keys");
        client.finish().expect("warm goodbye");
    }
    let warm = start.elapsed();

    // Concurrent evaluation throughput: N warm sessions released together,
    // each running `rounds` evaluations. Handshakes happen before the
    // barrier, so the clock covers only the evaluation traffic.
    let mut evals_per_sec = Vec::new();
    for &n in &widths {
        let barrier = Arc::new(Barrier::new(n + 1));
        let mut handles = Vec::new();
        for _ in 0..n {
            let barrier = Arc::clone(&barrier);
            let inputs = inputs.clone();
            handles.push(std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut client =
                    EvaClient::handshake_resuming(stream, ticket).expect("warm handshake");
                barrier.wait();
                for _ in 0..rounds {
                    let outputs = client.evaluate(&inputs).expect("evaluation");
                    assert!(
                        (outputs["out"][0] - 0.75).abs() < 1e-3,
                        "service result drifted"
                    );
                }
                client.finish().expect("goodbye");
            }));
        }
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            handle.join().expect("session thread");
        }
        let elapsed = start.elapsed();
        evals_per_sec.push((n, (n * rounds) as f64 / elapsed.as_secs_f64()));
    }

    control.shutdown();
    serve.join().expect("serve thread").expect("serve_forever");

    TransportThroughput {
        transport: name.to_string(),
        cold_sessions_per_sec: handshakes as f64 / cold.as_secs_f64(),
        warm_sessions_per_sec: handshakes as f64 / warm.as_secs_f64(),
        handshake_samples: handshakes,
        evals_per_sec,
        rounds_per_session: rounds,
    }
}

/// The evaluations-per-second rate one transport achieved at a concurrency
/// width (`None` if that width was not measured).
pub fn evals_rate_at(transports: &[TransportThroughput], transport: &str, n: usize) -> Option<f64> {
    transports
        .iter()
        .find(|t| t.transport == transport)
        .and_then(|t| {
            t.evals_per_sec
                .iter()
                .find(|(width, _)| *width == n)
                .map(|(_, rate)| *rate)
        })
}

/// Renders the throughput baseline as the `BENCH_throughput.json` document
/// (hand-rolled JSON like [`service_json`]).
pub fn throughput_json(transports: &[TransportThroughput]) -> String {
    let mut s = String::from("{\n  \"schema\": \"eva-bench-throughput-v1\",\n");
    s.push_str(
        "  \"note\": \"Regenerate with: cargo run --release -p eva-bench --bin report -- \
         --throughput BENCH_throughput.json. Localhost TCP throughput of the two service \
         transports over the same compiled x^2+x program with single-threaded evaluations: \
         blocking is the legacy thread-per-session baseline (serve_forever_blocking), reactor \
         is the event-driven core (one epoll IO thread multiplexing every session into a \
         shared cost-aware evaluation scheduler). sessions_per_sec time sequential handshakes \
         (cold = full evaluation-key upload, warm = cached-key resumption); \
         evaluations_per_sec run N concurrent warm sessions released together.\",\n",
    );
    for t in transports {
        s.push_str(&format!("  \"{}\": {{\n", t.transport));
        s.push_str(&format!(
            "    \"cold_sessions_per_sec\": {:.3},\n",
            t.cold_sessions_per_sec
        ));
        s.push_str(&format!(
            "    \"warm_sessions_per_sec\": {:.3},\n",
            t.warm_sessions_per_sec
        ));
        s.push_str(&format!(
            "    \"handshake_samples\": {},\n",
            t.handshake_samples
        ));
        s.push_str(&format!(
            "    \"rounds_per_session\": {},\n",
            t.rounds_per_session
        ));
        s.push_str("    \"evaluations_per_sec\": {\n");
        for (i, (n, rate)) in t.evals_per_sec.iter().enumerate() {
            let comma = if i + 1 == t.evals_per_sec.len() {
                ""
            } else {
                ","
            };
            s.push_str(&format!("      \"n{n}\": {rate:.3}{comma}\n"));
        }
        s.push_str("    }\n  },\n");
    }
    let reactor = evals_rate_at(transports, "reactor", 8);
    let blocking = evals_rate_at(transports, "blocking", 8);
    match (reactor, blocking) {
        (Some(r), Some(b)) if b > 0.0 => {
            s.push_str(&format!(
                "  \"reactor_vs_blocking_evals_at_8\": {:.3}\n",
                r / b
            ));
        }
        _ => {
            // Drop the trailing comma of the last transport section.
            let trimmed = s.trim_end_matches(['\n', ',']).len();
            s.truncate(trimmed);
            s.push('\n');
        }
    }
    s.push_str("}\n");
    s
}

/// Renders the wire baseline as the `BENCH_wire.json` document (hand-rolled
/// JSON like [`primitives_json`]; `preserved` carries verbatim sections from
/// a previous baseline).
pub fn wire_json(sizes: &[WireSize], timings: &[KernelTiming], preserved: &[String]) -> String {
    let mut s = String::from("{\n  \"schema\": \"eva-bench-wire-v2\",\n");
    s.push_str(
        "  \"note\": \"Regenerate with: cargo run --release -p eva-bench --bin report -- --wire \
         BENCH_wire.json. Sizes are eva-wire encodings (envelope included); seeded_ciphertext_* \
         is the EVAD transport form fresh inputs actually travel as (~half the EVAC bytes). \
         Latency is a localhost TCP round trip through eva-service; warm_resume_setup is a \
         reconnect that resumes server-cached evaluation keys (zero key-upload bytes).\",\n",
    );
    s.push_str("  \"wire_sizes\": {\n");
    for (i, entry) in sizes.iter().enumerate() {
        let comma = if i + 1 == sizes.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{ \"bytes\": {} }}{comma}\n",
            entry.name, entry.bytes
        ));
    }
    s.push_str("  },\n  \"service_latency\": {\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{}\": {{ \"mean_us\": {:.3}, \"min_us\": {:.3}, \"samples\": {} }}{comma}\n",
            t.name, t.mean_us, t.min_us, t.samples
        ));
    }
    s.push_str("  }");
    for section in preserved {
        s.push_str(",\n  ");
        s.push_str(section);
    }
    s.push_str("\n}\n");
    s
}

/// Index of the maximum element.
pub fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// One row of Table 3: the network inventory.
pub fn table3_network_inventory(network: &Network) -> String {
    let counts = network.layer_counts();
    format!(
        "{:<20} conv={:<2} fc={:<2} act={:<2} fp_ops={:<9}",
        network.name,
        counts.conv,
        counts.fc,
        counts.act,
        network.flop_count()
    )
}

/// One row of Table 4: scales used and the accuracy proxy (max logit error and
/// argmax agreement of EVA-mode encrypted inference vs plaintext inference,
/// computed by the reference semantics so it stays fast).
pub fn table4_accuracy(prepared: &PreparedNetwork, seed: u64) -> String {
    let image = random_image(&prepared.network, seed);
    let (lowered, compiled) = &prepared.eva;
    let packed = pack_input(&image, compiled.program.vec_size());
    let inputs: HashMap<String, Vec<f64>> =
        [(lowered.input_name.clone(), packed)].into_iter().collect();
    let outputs = run_reference(&compiled.program, &inputs).expect("reference execution");
    let logits = lowered.extract_logits(&outputs[&lowered.output_name]);
    let expected = prepared.network.infer_plain(&image);
    let max_err = logits
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    format!(
        "{:<20} scales(cipher/vector/scalar/out)={}/{}/{}/{}  max_logit_err={:.2e}  argmax_match={}",
        prepared.network.name,
        lowered.scales.cipher,
        lowered.scales.vector,
        lowered.scales.scalar,
        lowered.scales.output,
        max_err,
        argmax(&logits) == argmax(&expected),
    )
}

/// One row of Table 6: encryption parameters selected for CHET vs EVA.
pub fn table6_parameters(prepared: &PreparedNetwork) -> String {
    let eva = &prepared.eva.1.parameters;
    let chet = &prepared.chet.1.parameters;
    format!(
        "{:<20} CHET: log2N={:<2} log2Q={:<5} r={:<3} | EVA: log2N={:<2} log2Q={:<5} r={:<3}",
        prepared.network.name,
        (chet.degree as f64).log2() as u32,
        chet.total_bits(),
        chet.chain_length(),
        (eva.degree as f64).log2() as u32,
        eva.total_bits(),
        eva.chain_length(),
    )
}

/// One row of Table 5: average encrypted-inference latency for CHET vs EVA.
pub fn table5_latency(prepared: &PreparedNetwork, threads: usize, seed: u64) -> String {
    let image = random_image(&prepared.network, seed);
    let eva = measure_inference(
        &prepared.eva.0,
        &prepared.eva.1,
        &prepared.network,
        &image,
        threads,
    );
    let chet = measure_inference(
        &prepared.chet.0,
        &prepared.chet.1,
        &prepared.network,
        &image,
        threads,
    );
    format!(
        "{:<20} CHET: {:>8.2?}  EVA: {:>8.2?}  speedup: {:.2}x",
        prepared.network.name,
        chet.execute_time,
        eva.execute_time,
        chet.execute_time.as_secs_f64() / eva.execute_time.as_secs_f64()
    )
}

/// One row of Table 7: compilation / context / encryption / decryption times
/// for EVA mode.
pub fn table7_compile_times(network: &Network, threads: usize, seed: u64) -> String {
    let start = Instant::now();
    let lowered = lower_network(network, LoweringMode::Eva);
    let compiled = lowered.compile().expect("compilation");
    let compile_time = start.elapsed();
    let image = random_image(network, seed);
    let m = measure_inference(&lowered, &compiled, network, &image, threads);
    format!(
        "{:<20} compile={:>8.2?} context={:>8.2?} encrypt={:>8.2?} decrypt={:>8.2?}",
        network.name, compile_time, m.context_time, m.encrypt_time, m.decrypt_time
    )
}

/// One row of Table 8: application vector size, program size and 1-thread
/// encrypted execution time.
pub fn table8_applications(app: &eva_apps::Application) -> String {
    let compiled =
        eva_core::compile(&app.program, &eva_core::CompilerOptions::default()).expect("compile");
    let mut context = EncryptedContext::setup(&compiled, Some(11)).expect("setup");
    let bindings = context
        .encrypt_inputs(&compiled, &app.inputs)
        .expect("encrypt");
    let start = Instant::now();
    let values = context
        .execute_serial(&compiled, bindings)
        .expect("execute");
    let time = start.elapsed();
    let outputs = context
        .decrypt_outputs(&compiled, &values)
        .expect("decrypt");
    let max_err = app
        .expected
        .iter()
        .map(|(name, expected)| {
            outputs[name]
                .iter()
                .zip(expected)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    format!(
        "{:<28} vec_size={:<5} nodes={:<5} time={:>8.2?} max_err={:.2e}",
        app.name,
        app.program.vec_size(),
        compiled.program.len(),
        time,
        max_err
    )
}

/// One series point of Figure 7: execution latency at a given thread count for
/// both CHET and EVA modes.
pub fn figure7_scaling(prepared: &PreparedNetwork, threads: &[usize], seed: u64) -> Vec<String> {
    let image = random_image(&prepared.network, seed);
    threads
        .iter()
        .map(|&t| {
            let eva = measure_inference(
                &prepared.eva.0,
                &prepared.eva.1,
                &prepared.network,
                &image,
                t,
            );
            let chet = measure_inference(
                &prepared.chet.0,
                &prepared.chet.1,
                &prepared.network,
                &image,
                t,
            );
            format!(
                "{:<20} threads={} CHET={:>8.2?} EVA={:>8.2?}",
                prepared.network.name, t, chet.execute_time, eva.execute_time
            )
        })
        .collect()
}

/// One workload's static cost-model measurement: the optimizer's effect on
/// the static counts, the cost model's latency prediction vs one measured
/// serial encrypted execution, and the peak-memory forecast vs the
/// allocation-counting executor audit (the `BENCH_cost.json` entry).
#[derive(Debug, Clone)]
pub struct CostMeasurement {
    /// Workload identifier, e.g. `sobel_16x16`.
    pub name: String,
    /// Static cost report of the unoptimized compile.
    pub unoptimized: eva_core::CostReport,
    /// Static cost report of the optimized compile.
    pub optimized: eva_core::CostReport,
    /// Referenced duplicate nodes the optimizer's CSE pass merged.
    pub cse_merged: usize,
    /// Dead nodes removed across all DCE runs.
    pub dce_removed: usize,
    /// Rotations rewritten to left-normal form, bypassed or compose-merged.
    pub rotations_canonicalized: usize,
    /// Rotations eliminated by baby-step/giant-step factoring.
    pub rotations_factored: usize,
    /// Rotations re-parented by the rotation-chaining pass.
    pub rotations_chained: usize,
    /// Wall-clock of one serial encrypted execution of the optimized
    /// program, in microseconds (compare with `optimized.predicted_us`).
    pub measured_execute_us: f64,
    /// Static peak-memory forecast for the optimized program.
    pub forecast: eva_core::MemoryForecast,
    /// Allocation-counting audit of the measured execution; the forecast
    /// must upper-bound it.
    pub audit: eva_backend::MemoryAudit,
    /// Maximum absolute output error of the optimized encrypted execution
    /// vs the plaintext reference (value preservation under optimization).
    pub max_error: f64,
}

/// The cost-model workloads: Sobel 16×16 always, LeNet-5-small unless
/// `quick` (its serial encrypted execution takes minutes).
fn cost_workloads(quick: bool) -> Vec<(String, eva_core::Program, HashMap<String, Vec<f64>>)> {
    let mut out = Vec::new();
    let sobel = eva_apps::image::sobel_program(16);
    let image: Vec<f64> = (0..256).map(|i| ((i % 17) as f64) / 17.0).collect();
    out.push((
        "sobel_16x16".to_string(),
        sobel,
        [("image".to_string(), image)].into_iter().collect(),
    ));
    if !quick {
        let network = eva_tensor::networks::lenet5_small(42);
        let lowered = lower_network(&network, LoweringMode::Eva);
        let packed = pack_input(&random_image(&network, 7), lowered.program.vec_size());
        out.push((
            "lenet5_small".to_string(),
            lowered.program.clone(),
            [(lowered.input_name.clone(), packed)].into_iter().collect(),
        ));
    }
    out
}

/// Measures the static cost model against reality for each workload:
/// compiles the unoptimized and optimized twins, prices both with
/// [`eva_core::estimate_cost`], forecasts peak memory, then runs one audited
/// serial encrypted execution of the optimized program.
///
/// # Panics
///
/// Panics on compile or backend errors (the shipped workloads always
/// compile and execute).
pub fn measure_cost(quick: bool) -> Vec<CostMeasurement> {
    use eva_core::{compile, estimate_cost, CompilerOptions, CostModel};

    let model = CostModel::default();
    let mut out = Vec::new();
    for (name, program, inputs) in cost_workloads(quick) {
        let unopt =
            compile(&program, &CompilerOptions::unoptimized()).expect("unoptimized compile");
        let opt = compile(&program, &CompilerOptions::default()).expect("optimized compile");
        let unoptimized = estimate_cost(&unopt, &model).expect("unoptimized cost");
        let optimized = estimate_cost(&opt, &model).expect("optimized cost");
        let forecast = eva_core::predict_peak_memory(&opt).expect("forecast");

        let mut context = EncryptedContext::setup(&opt, Some(42)).expect("context setup");
        let bindings = context.encrypt_inputs(&opt, &inputs).expect("encryption");
        let start = Instant::now();
        let (values, audit) = context
            .execute_serial_audited(&opt, bindings)
            .expect("execution");
        let measured_execute_us = start.elapsed().as_secs_f64() * 1e6;
        let outputs = context.decrypt_outputs(&opt, &values).expect("decryption");
        let expected = run_reference(&opt.program, &inputs).expect("reference");
        let max_error = outputs
            .iter()
            .flat_map(|(k, v)| v.iter().zip(&expected[k]).map(|(a, b)| (a - b).abs()))
            .fold(0.0f64, f64::max);

        out.push(CostMeasurement {
            name,
            unoptimized,
            optimized,
            cse_merged: opt.stats.cse_merged,
            dce_removed: opt.stats.dce_removed,
            rotations_canonicalized: opt.stats.rotations_canonicalized,
            rotations_factored: opt.stats.rotations_factored,
            rotations_chained: opt.stats.rotations_chained,
            measured_execute_us,
            forecast,
            audit,
            max_error,
        });
    }
    out
}

fn cost_report_json(report: &eva_core::CostReport, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"nodes\": {}, \"adds\": {}, \"multiplies\": {}, \
         \"multiplies_plain\": {},\n{indent}  \"rotations\": {}, \
         \"distinct_rotation_steps\": {}, \"relinearizations\": {},\n{indent}  \
         \"rescales\": {}, \"mod_switches\": {}, \"key_switches\": {},\n{indent}  \
         \"hoisted_groups\": {}, \"hoisted_rotations\": {},\n{indent}  \
         \"ntts\": {}, \"predicted_us\": {:.1}\n{indent}}}",
        report.nodes,
        report.adds,
        report.multiplies,
        report.multiplies_plain,
        report.rotations,
        report.distinct_rotation_steps,
        report.relinearizations,
        report.rescales,
        report.mod_switches,
        report.key_switches,
        report.hoisted_groups,
        report.hoisted_rotations,
        report.ntts,
        report.predicted_us,
    )
}

/// Renders cost measurements as the `BENCH_cost.json` document. The flat
/// `ci` section repeats the deterministic static counts under
/// `<workload>_<metric>` keys so CI can grep single scalars for
/// non-regression without a JSON parser.
pub fn cost_json(measurements: &[CostMeasurement]) -> String {
    let mut s = String::from("{\n  \"schema\": \"eva-bench-cost-v1\",\n");
    s.push_str(
        "  \"note\": \"Regenerate with: cargo run --release -p eva-bench --bin report -- \
         --cost BENCH_cost.json. The 'ci' section holds deterministic static counts; \
         *_us and *_bytes fields are machine-dependent.\",\n",
    );
    s.push_str("  \"workloads\": {\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {{\n", m.name));
        s.push_str(&format!(
            "      \"unoptimized\": {},\n",
            cost_report_json(&m.unoptimized, "      ")
        ));
        s.push_str(&format!(
            "      \"optimized\": {},\n",
            cost_report_json(&m.optimized, "      ")
        ));
        s.push_str(&format!(
            "      \"optimizer_stats\": {{ \"cse_merged\": {}, \"dce_removed\": {}, \
             \"rotations_canonicalized\": {}, \"rotations_factored\": {}, \
             \"rotations_chained\": {} }},\n",
            m.cse_merged,
            m.dce_removed,
            m.rotations_canonicalized,
            m.rotations_factored,
            m.rotations_chained
        ));
        s.push_str(&format!(
            "      \"measured_execute_us\": {:.1},\n      \"max_error\": {:.3e},\n",
            m.measured_execute_us, m.max_error
        ));
        s.push_str(&format!(
            "      \"predicted_peak_live_ciphertexts\": {}, \
             \"audited_peak_live_ciphertexts\": {},\n      \
             \"predicted_peak_bytes\": {}, \"audited_peak_bytes\": {}\n    }}{comma}\n",
            m.forecast.peak_live_ciphertexts,
            m.audit.peak_live_ciphertexts,
            m.forecast.peak_bytes,
            m.audit.peak_bytes,
        ));
    }
    s.push_str("  },\n  \"ci\": {\n");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        s.push_str(&format!(
            "    \"{0}_nodes\": {1},\n    \"{0}_distinct_rotation_steps\": {2},\n    \
             \"{0}_key_switches\": {3},\n    \"{0}_hoisted_groups\": {4},\n    \
             \"{0}_hoisted_rotations\": {5},\n    \"{0}_unoptimized_nodes\": {6},\n    \
             \"{0}_unoptimized_distinct_rotation_steps\": {7},\n    \
             \"{0}_unoptimized_key_switches\": {8}{comma}\n",
            m.name,
            m.optimized.nodes,
            m.optimized.distinct_rotation_steps,
            m.optimized.key_switches,
            m.optimized.hoisted_groups,
            m.optimized.hoisted_rotations,
            m.unoptimized.nodes,
            m.unoptimized.distinct_rotation_steps,
            m.unoptimized.key_switches,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_tensor::networks::lenet5_small;

    #[test]
    fn inventory_and_parameter_rows_are_formatted() {
        let network = lenet5_small(1);
        let row = table3_network_inventory(&network);
        assert!(row.contains("LeNet-5-small"));
        assert!(row.contains("conv=2"));

        let prepared = prepare_network(&network);
        let params = table6_parameters(&prepared);
        assert!(params.contains("CHET") && params.contains("EVA"));
        let accuracy = table4_accuracy(&prepared, 3);
        assert!(accuracy.contains("argmax_match"));
    }

    #[test]
    fn primitives_report_has_expected_kernels_and_valid_json_shape() {
        let timings = measure_primitives(true);
        let names: Vec<&str> = timings.iter().map(|t| t.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("ntt_forward_")));
        assert!(names.iter().any(|n| n.starts_with("ntt_inverse_")));
        assert!(names.iter().any(|n| n.starts_with("dyadic_mul_acc_")));
        assert!(timings.iter().all(|t| t.mean_us > 0.0 && t.min_us > 0.0));
        let json = primitives_json(&timings, &[]);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("mean_us").count(), timings.len());
    }

    #[test]
    fn rebaselining_preserves_historical_sections() {
        let timings = vec![KernelTiming {
            name: "k".into(),
            mean_us: 1.0,
            min_us: 0.5,
            samples: 3,
        }];
        let old = primitives_json(
            &timings,
            &["\"pre_lazy_reference_us\": {\n    \"k\": { \"mean_us\": 9.0 }\n  }".to_string()],
        );
        // Re-extracting from the emitted document must round-trip the section.
        let section = extract_json_section(&old, "pre_lazy_reference_us").unwrap();
        assert!(section.contains("\"mean_us\": 9.0"));
        let regenerated = primitives_json(&timings, &[section]);
        assert!(regenerated.contains("pre_lazy_reference_us"));
        assert!(regenerated.contains("\"mean_us\": 9.0"));
        assert_eq!(extract_json_section(&old, "missing_key"), None);
    }

    #[test]
    fn wire_baseline_covers_sizes_and_roundtrip_latency() {
        let sizes = measure_wire_sizes();
        let names: Vec<&str> = sizes.iter().map(|s| s.name.as_str()).collect();
        for expected in [
            "ciphertext_n4096_l2",
            "ciphertext_n8192_l3",
            "seeded_ciphertext_n4096_l2",
            "seeded_ciphertext_n8192_l3",
            "public_key_n8192",
            "relin_key_n8192",
            "galois_key_per_step_n4096",
        ] {
            assert!(names.contains(&expected), "missing wire size {expected}");
        }
        assert!(sizes.iter().all(|s| s.bytes > 0));
        // A fresh ciphertext is two polynomials over (level, special-free)
        // primes: 2 * 3 * 8192 * 8 bytes of limbs plus framing overhead.
        let ct = sizes
            .iter()
            .find(|s| s.name == "ciphertext_n8192_l3")
            .unwrap();
        assert!(ct.bytes >= 2 * 3 * 8192 * 8);
        assert!(ct.bytes < 2 * 3 * 8192 * 8 + 256);
        // The seeded transport form carries one polynomial plus a 32-byte
        // seed: at most 55% of the full encoding (the ISSUE 5 acceptance
        // bound), asymptotically 50%.
        let seeded = sizes
            .iter()
            .find(|s| s.name == "seeded_ciphertext_n8192_l3")
            .unwrap();
        assert!(
            seeded.bytes * 100 <= ct.bytes * 55,
            "seeded ciphertext is {} bytes, full is {} — not within 55%",
            seeded.bytes,
            ct.bytes
        );

        let timings = measure_service_roundtrip(true);
        assert!(timings
            .iter()
            .any(|t| t.name.starts_with("service_session_setup")));
        assert!(timings
            .iter()
            .any(|t| t.name.starts_with("service_warm_resume_setup")));
        assert!(timings
            .iter()
            .any(|t| t.name.starts_with("service_roundtrip")));
        assert!(timings.iter().all(|t| t.mean_us > 0.0));

        let json = wire_json(&sizes, &timings, &[]);
        assert!(json.contains("\"wire_sizes\""));
        assert!(json.contains("\"service_latency\""));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 3.0, -2.0]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
