//! Regression test for the rescale-drift fix: the end-to-end encrypted LeNet
//! path used by `report --table 5` and `report --figure 7` must run green
//! under the evaluator's **exact-equality** scale checking (the 2^-10 drift
//! tolerance is gone), with the paper-level accuracy proxy intact.

use eva_bench::{measure_inference, prepare_network, random_image};
use eva_tensor::networks::lenet5_small;

#[test]
fn lenet_table5_figure7_path_is_exact_and_accurate() {
    let network = lenet5_small(1);
    let prepared = prepare_network(&network);
    let image = random_image(&network, 1);

    // Both lowerings must have needed exact match-scale fixes: this is the
    // network family whose drifted adds used to crash the executor.
    assert!(
        prepared.eva.1.stats.exact_scale_fixes_inserted > 0,
        "expected the exact-scale phase to correct rescale drift in EVA-mode LeNet"
    );
    assert!(
        prepared.chet.1.stats.exact_scale_fixes_inserted > 0,
        "expected the exact-scale phase to correct rescale drift in CHET-mode LeNet"
    );

    // The EVA (waterline) lowering — the mode whose drift used to be papered
    // over by the tolerance — takes the same path as `--table 5` /
    // `--figure 7`: parallel executor, seeded keys. Under exact-equality
    // scale checks any residual drift would abort execution rather than show
    // up as extra error. (The CHET-mode encrypted path runs via
    // `report --table 5`; it is kept out of the test suite for time.)
    let measurement = measure_inference(&prepared.eva.0, &prepared.eva.1, &network, &image, 2);
    assert!(
        measurement.max_error <= 1e-4,
        "max logit error {:.3e} exceeds the 1e-4 budget",
        measurement.max_error
    );
    assert!(measurement.argmax_agrees, "argmax flipped under encryption");
}
