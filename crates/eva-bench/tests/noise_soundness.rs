//! Soundness of the worst-case noise estimator, pinned against *measured*
//! decryption error on the two example circuits the paper evaluates.
//!
//! The estimator's contract is one-sided: for range-correct executions its
//! per-output `message_error_log2` is an upper bound, with high probability,
//! on the observed decryption error. This test runs Sobel edge detection and
//! LeNet-5 inference end to end under encryption and asserts
//!
//! 1. the gate **accepts** both programs at the default safety margin (the
//!    whole point of calibrating the model — a sound but uselessly loose
//!    bound would refuse real workloads), and
//! 2. the measured max error never exceeds the estimated bound.
//!
//! The bound is deliberately conservative (worst-case magnitudes compound
//! through every multiply), so the gap between the two sides is large; the
//! assertion is about the *direction* of the inequality, not its tightness.

use std::collections::HashMap;

use eva_backend::{run_encrypted, run_reference};
use eva_bench::{measure_inference, prepare_network, random_image};
use eva_core::analysis::{estimate_noise, NoiseModel, DEFAULT_SAFETY_MARGIN_BITS};
use eva_core::{compile, CompilerOptions};
use eva_tensor::networks::lenet5_small;

#[test]
fn sobel_estimate_bounds_measured_error() {
    let n = 16usize;
    let program = eva_apps::image::sobel_program(n);
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();

    let noise = estimate_noise(&compiled, &NoiseModel::default());
    let budgets = noise.output_budgets(&compiled.program);
    assert!(!budgets.is_empty());
    for output in &budgets {
        assert!(
            output.budget_bits >= DEFAULT_SAFETY_MARGIN_BITS,
            "gate would refuse Sobel: output {:?} budget {:.1} bits",
            output.name,
            output.budget_bits
        );
    }

    // A step-edge test image in [0, 1]: inputs respect the range contract.
    let mut image = vec![0.0f64; n * n];
    for i in n / 4..3 * n / 4 {
        for j in n / 4..3 * n / 4 {
            image[i * n + j] = 0.2;
        }
    }
    let inputs: HashMap<String, Vec<f64>> = [("image".to_string(), image)].into_iter().collect();
    let reference = run_reference(&compiled.program, &inputs).unwrap();
    let encrypted = run_encrypted(&compiled, &inputs).unwrap();

    for output in &budgets {
        let observed = reference[&output.name]
            .iter()
            .zip(&encrypted[&output.name])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let bound = output.message_error_log2.exp2();
        assert!(
            observed <= bound,
            "output {:?}: measured error {observed:.3e} exceeds the estimated \
             worst-case bound {bound:.3e} (2^{:.1}) — the noise model is unsound",
            output.name,
            output.message_error_log2
        );
    }
}

#[test]
fn lenet_estimate_bounds_measured_error() {
    let network = lenet5_small(1);
    let prepared = prepare_network(&network);
    let compiled = &prepared.eva.1;

    let noise = estimate_noise(compiled, &NoiseModel::default());
    let budgets = noise.output_budgets(&compiled.program);
    assert!(!budgets.is_empty());
    for output in &budgets {
        assert!(
            output.budget_bits >= DEFAULT_SAFETY_MARGIN_BITS,
            "gate would refuse LeNet: output {:?} budget {:.1} bits",
            output.name,
            output.budget_bits
        );
    }

    // measure_inference compares encrypted logits against the plaintext
    // reference semantics of the same compiled program — exactly the error
    // the estimator bounds.
    let image = random_image(&network, 1);
    let measurement = measure_inference(&prepared.eva.0, compiled, &network, &image, 2);
    let bound_log2 = budgets
        .iter()
        .map(|o| o.message_error_log2)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        measurement.max_error <= bound_log2.exp2(),
        "measured max logit error {:.3e} exceeds the estimated worst-case bound 2^{bound_log2:.1}",
        measurement.max_error
    );
}
