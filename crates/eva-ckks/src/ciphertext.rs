//! The ciphertext type.

use eva_poly::RnsPoly;

/// An RNS-CKKS ciphertext: two (or, right after a multiplication, three)
/// polynomials in NTT form spanning `level` data primes, plus the fixed-point
/// scale of the encrypted message.
///
/// The scale is carried in the `log2` domain as an `f64` and is tracked
/// *exactly*: every evaluator operation updates it with the same `f64`
/// arithmetic the compiler's exact-scale analysis performs, so a compiled
/// program's per-node scale annotations are bit-identical to the values
/// observed here.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) polys: Vec<RnsPoly>,
    pub(crate) scale_log2: f64,
    pub(crate) level: usize,
}

impl Ciphertext {
    /// Creates a ciphertext from raw parts. Exposed for the executor crates;
    /// most users obtain ciphertexts from the encryptor or evaluator.
    pub fn from_parts(polys: Vec<RnsPoly>, scale_log2: f64, level: usize) -> Self {
        assert!(
            !polys.is_empty(),
            "a ciphertext needs at least one polynomial"
        );
        assert!(polys.iter().all(|p| p.level() == level));
        Self {
            polys,
            scale_log2,
            level,
        }
    }

    /// Number of polynomials (2 normally, 3 right after a multiplication).
    pub fn size(&self) -> usize {
        self.polys.len()
    }

    /// `log2` of the fixed-point scale of the encrypted message, tracked
    /// exactly (non-integral once a rescale has divided by a real prime).
    pub fn scale_log2(&self) -> f64 {
        self.scale_log2
    }

    /// The fixed-point scale as a linear factor (`2^scale_log2`). Only for
    /// display and encoding math; comparisons must use [`Self::scale_log2`].
    pub fn scale(&self) -> f64 {
        self.scale_log2.exp2()
    }

    /// Number of data primes this ciphertext currently spans (its level).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The component polynomials.
    pub fn polys(&self) -> &[RnsPoly] {
        &self.polys
    }

    /// Approximate heap memory held by this ciphertext, in bytes. Used by the
    /// executor's memory-reuse accounting.
    pub fn memory_bytes(&self) -> usize {
        self.polys
            .iter()
            .map(|p| p.level() * p.degree() * std::mem::size_of::<u64>())
            .sum()
    }
}
