//! The ciphertext types: fully materialized [`Ciphertext`]s and the
//! half-size [`SeededCiphertext`] transport form.

use eva_poly::{PolyForm, RnsPoly};
use rand::rngs::ChaCha20Rng;

use crate::context::CkksContext;
use crate::error::CkksError;

/// An RNS-CKKS ciphertext: two (or, right after a multiplication, three)
/// polynomials in NTT form spanning `level` data primes, plus the fixed-point
/// scale of the encrypted message.
///
/// The scale is carried in the `log2` domain as an `f64` and is tracked
/// *exactly*: every evaluator operation updates it with the same `f64`
/// arithmetic the compiler's exact-scale analysis performs, so a compiled
/// program's per-node scale annotations are bit-identical to the values
/// observed here.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) polys: Vec<RnsPoly>,
    pub(crate) scale_log2: f64,
    pub(crate) level: usize,
}

impl Ciphertext {
    /// Creates a ciphertext from raw parts. Exposed for the executor crates;
    /// most users obtain ciphertexts from the encryptor or evaluator.
    pub fn from_parts(polys: Vec<RnsPoly>, scale_log2: f64, level: usize) -> Self {
        assert!(
            !polys.is_empty(),
            "a ciphertext needs at least one polynomial"
        );
        assert!(polys.iter().all(|p| p.level() == level));
        Self {
            polys,
            scale_log2,
            level,
        }
    }

    /// Number of polynomials (2 normally, 3 right after a multiplication).
    pub fn size(&self) -> usize {
        self.polys.len()
    }

    /// `log2` of the fixed-point scale of the encrypted message, tracked
    /// exactly (non-integral once a rescale has divided by a real prime).
    pub fn scale_log2(&self) -> f64 {
        self.scale_log2
    }

    /// The fixed-point scale as a linear factor (`2^scale_log2`). Only for
    /// display and encoding math; comparisons must use [`Self::scale_log2`].
    pub fn scale(&self) -> f64 {
        self.scale_log2.exp2()
    }

    /// Number of data primes this ciphertext currently spans (its level).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The component polynomials.
    pub fn polys(&self) -> &[RnsPoly] {
        &self.polys
    }

    /// Approximate heap memory held by this ciphertext, in bytes. Used by the
    /// executor's memory-reuse accounting.
    pub fn memory_bytes(&self) -> usize {
        self.polys
            .iter()
            .map(|p| p.level() * p.degree() * std::mem::size_of::<u64>())
            .sum()
    }
}

/// A fresh ciphertext in seeded transport form: the uniformly random `a`
/// polynomial is represented by the 32-byte ChaCha20 key it was expanded
/// from, so only the `b` polynomial travels in full — roughly **half** the
/// wire bytes of a two-polynomial [`Ciphertext`].
///
/// Only the *encryptor* can produce this form (the `a` component of a
/// computed ciphertext is no longer uniform), which is why it is emitted by
/// [`SymmetricEncryptor::encrypt_seeded`](crate::SymmetricEncryptor::encrypt_seeded)
/// and consumed by [`SeededCiphertext::expand`] on the receiving side.
/// Expansion is deterministic: the same seed over the same parameters always
/// reproduces the same `a`, bit for bit, so a seeded ciphertext and its
/// expansion are interchangeable.
#[derive(Debug, Clone)]
pub struct SeededCiphertext {
    pub(crate) seed: [u8; 32],
    pub(crate) b: RnsPoly,
    pub(crate) scale_log2: f64,
    pub(crate) level: usize,
}

impl SeededCiphertext {
    /// Reassembles a seeded ciphertext from raw parts (wire codec
    /// constructor). `b` is the `c0` polynomial; `seed` keys the ChaCha20
    /// expansion of the `c1 = a` polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `b`'s level disagrees with `level`.
    pub fn from_parts(seed: [u8; 32], b: RnsPoly, scale_log2: f64, level: usize) -> Self {
        assert_eq!(b.level(), level, "seeded ciphertext level mismatch");
        Self {
            seed,
            b,
            scale_log2,
            level,
        }
    }

    /// The 32-byte ChaCha20 key the `a` polynomial expands from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The `b = c0` polynomial (the only one shipped in full).
    pub fn b(&self) -> &RnsPoly {
        &self.b
    }

    /// `log2` of the fixed-point scale (exact; see [`Ciphertext::scale_log2`]).
    pub fn scale_log2(&self) -> f64 {
        self.scale_log2
    }

    /// Number of data primes this ciphertext spans.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Expands the seed back into the full two-polynomial [`Ciphertext`],
    /// bit-identical to the unseeded encryption this transport form was
    /// derived from.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParameters`] if the ciphertext's shape
    /// does not fit `context` (wrong ring degree or more primes than the
    /// context's chain), so hostile wire data cannot push the expansion out
    /// of its domain.
    pub fn expand(&self, context: &CkksContext) -> Result<Ciphertext, CkksError> {
        if self.b.degree() != context.degree() {
            return Err(CkksError::InvalidParameters(format!(
                "seeded ciphertext degree {} does not match the context degree {}",
                self.b.degree(),
                context.degree()
            )));
        }
        if self.level == 0 || self.level > context.max_level() {
            return Err(CkksError::InvalidParameters(format!(
                "seeded ciphertext level {} outside the context's 1..={} chain",
                self.level,
                context.max_level()
            )));
        }
        let a = expand_seeded_a(context, &self.seed, self.level);
        Ok(Ciphertext::from_parts(
            vec![self.b.clone(), a],
            self.scale_log2,
            self.level,
        ))
    }
}

/// Expands a 32-byte seed into the uniformly random `a` polynomial over the
/// first `level` primes of the context's key basis, directly in NTT form
/// (the uniform distribution is invariant under the NTT, so sampling in
/// evaluation form is sound — the same trick SEAL uses for seeded objects).
///
/// The expansion RNG is a ChaCha20 keystream keyed by `seed` alone: it is
/// completely determined by `(seed, parameters)`, independent of who runs
/// it, which is what makes the seeded transport form exact.
pub(crate) fn expand_seeded_a(context: &CkksContext, seed: &[u8; 32], level: usize) -> RnsPoly {
    let basis = context.key_basis();
    let mut rng = ChaCha20Rng::from_key_bytes(*seed);
    let mut a = RnsPoly::zero(basis.degree(), level, PolyForm::Ntt);
    for (row, modulus) in a.rows_mut().zip(basis.moduli()) {
        eva_math::sample_uniform_into(&mut rng, row, modulus);
    }
    a
}
