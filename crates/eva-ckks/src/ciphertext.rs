//! The ciphertext type.

use eva_poly::RnsPoly;

/// An RNS-CKKS ciphertext: two (or, right after a multiplication, three)
/// polynomials in NTT form spanning `level` data primes, plus the fixed-point
/// scale of the encrypted message.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) polys: Vec<RnsPoly>,
    pub(crate) scale: f64,
    pub(crate) level: usize,
}

impl Ciphertext {
    /// Creates a ciphertext from raw parts. Exposed for the executor crates;
    /// most users obtain ciphertexts from the encryptor or evaluator.
    pub fn from_parts(polys: Vec<RnsPoly>, scale: f64, level: usize) -> Self {
        assert!(
            !polys.is_empty(),
            "a ciphertext needs at least one polynomial"
        );
        assert!(polys.iter().all(|p| p.level() == level));
        Self {
            polys,
            scale,
            level,
        }
    }

    /// Number of polynomials (2 normally, 3 right after a multiplication).
    pub fn size(&self) -> usize {
        self.polys.len()
    }

    /// The fixed-point scale of the encrypted message.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of data primes this ciphertext currently spans (its level).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The component polynomials.
    pub fn polys(&self) -> &[RnsPoly] {
        &self.polys
    }

    /// Approximate heap memory held by this ciphertext, in bytes. Used by the
    /// executor's memory-reuse accounting.
    pub fn memory_bytes(&self) -> usize {
        self.polys
            .iter()
            .map(|p| p.level() * p.degree() * std::mem::size_of::<u64>())
            .sum()
    }
}
