//! The CKKS context: shared precomputed state derived from encryption
//! parameters (prime chain, NTT tables, embedding tables, CRT composers).

use std::sync::Arc;

use eva_math::fft::SpecialFft;
use eva_math::galois::GaloisTool;
use eva_poly::crt::CrtComposer;
use eva_poly::RnsBasis;

use crate::params::{CkksParameters, ParameterError};

/// Shared, immutable precomputed state for one set of [`CkksParameters`].
///
/// The context owns a single [`RnsBasis`] over the *key modulus* — the data
/// primes followed by the special key-switching prime — so ciphertexts (which
/// span a prefix of the data primes) and keys (which span the whole chain) use
/// the same NTT tables. It is cheap to clone (`Arc` internally) and is `Send +
/// Sync`, which the parallel executor relies on.
#[derive(Debug, Clone)]
pub struct CkksContext {
    inner: Arc<ContextInner>,
}

#[derive(Debug)]
struct ContextInner {
    params: CkksParameters,
    key_basis: RnsBasis,
    fft: SpecialFft,
    galois: GaloisTool,
    /// `composers[k-1]` composes residues over the first `k` data primes.
    composers: Vec<CrtComposer>,
    /// `log2` of each data prime, cached once so every rescale subtracts the
    /// exact same `f64` the compiler's exact-scale analysis used.
    data_prime_log2s: Vec<f64>,
}

impl CkksContext {
    /// Builds a context from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError::PrimeGeneration`] if the underlying basis
    /// cannot be constructed (which indicates an internal inconsistency, since
    /// the parameters were already validated).
    pub fn new(params: CkksParameters) -> Result<Self, ParameterError> {
        let mut chain: Vec<u64> = params.data_primes().to_vec();
        chain.push(params.special_prime());
        let key_basis = RnsBasis::new(params.degree(), &chain)
            .map_err(|e| ParameterError::PrimeGeneration(e.to_string()))?;
        let fft = SpecialFft::new(params.degree());
        let galois = GaloisTool::new(params.degree());
        let composers = (1..=params.level_count())
            .map(|k| CrtComposer::new(&key_basis.moduli()[..k]))
            .collect();
        let data_prime_log2s = params
            .data_primes()
            .iter()
            .map(|&q| (q as f64).log2())
            .collect();
        Ok(Self {
            inner: Arc::new(ContextInner {
                params,
                key_basis,
                fft,
                galois,
                composers,
                data_prime_log2s,
            }),
        })
    }

    /// The encryption parameters this context was built from.
    pub fn params(&self) -> &CkksParameters {
        &self.inner.params
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.inner.params.degree()
    }

    /// Slot count `N / 2`.
    pub fn slot_count(&self) -> usize {
        self.inner.params.slot_count()
    }

    /// Number of data primes (the maximum ciphertext level).
    pub fn max_level(&self) -> usize {
        self.inner.params.level_count()
    }

    /// The shared basis over data primes followed by the special prime.
    pub fn key_basis(&self) -> &RnsBasis {
        &self.inner.key_basis
    }

    /// Index of the special prime inside the key basis.
    pub fn special_index(&self) -> usize {
        self.inner.params.level_count()
    }

    /// The canonical-embedding FFT tables.
    pub fn fft(&self) -> &SpecialFft {
        &self.inner.fft
    }

    /// Galois element bookkeeping.
    pub fn galois(&self) -> &GaloisTool {
        &self.inner.galois
    }

    /// The CRT composer for ciphertexts spanning `level` data primes.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or exceeds the number of data primes.
    pub fn composer(&self, level: usize) -> &CrtComposer {
        &self.inner.composers[level - 1]
    }

    /// The actual value of data prime `i`.
    pub fn data_prime(&self, i: usize) -> u64 {
        self.inner.params.data_primes()[i]
    }

    /// Cached `log2` of data prime `i` (the exact `f64` a rescale at level
    /// `i + 1` subtracts from the scale).
    pub fn data_prime_log2(&self, i: usize) -> f64 {
        self.inner.data_prime_log2s[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_exposes_consistent_shapes() {
        let params = CkksParameters::new_insecure(64, &[30, 30, 40], 45).unwrap();
        let ctx = CkksContext::new(params).unwrap();
        assert_eq!(ctx.degree(), 64);
        assert_eq!(ctx.slot_count(), 32);
        assert_eq!(ctx.max_level(), 3);
        assert_eq!(ctx.special_index(), 3);
        assert_eq!(ctx.key_basis().len(), 4);
        assert_eq!(ctx.composer(1).len(), 1);
        assert_eq!(ctx.composer(3).len(), 3);
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CkksContext>();
    }
}
