//! CKKS encoding: real vectors ⇄ scaled integer polynomials.
//!
//! Encoding multiplies the slot values by the fixed-point scale, interpolates
//! them through the canonical embedding (inverse special FFT) and rounds to an
//! integer polynomial; decoding is the reverse. When fewer than `N/2` slots
//! are supplied the values are packed sparsely, which is equivalent to
//! encoding the vector replicated `N/2 / slots` times — exactly the input
//! replication the EVA language specifies for undersized vectors (Section 3).

use eva_math::fft::Complex;
use eva_poly::{PolyForm, RnsPoly};

use crate::context::CkksContext;

/// An encoded (unencrypted) polynomial, carrying its scale and level.
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded polynomial (NTT form, spanning `level` data primes).
    pub poly: RnsPoly,
    /// `log2` of the fixed-point scale the values were multiplied by,
    /// tracked exactly (see [`crate::Ciphertext::scale_log2`]).
    pub scale_log2: f64,
    /// Number of data primes this plaintext spans.
    pub level: usize,
}

/// Encodes and decodes vectors of reals for a fixed [`CkksContext`].
#[derive(Debug, Clone)]
pub struct CkksEncoder {
    context: CkksContext,
}

impl CkksEncoder {
    /// Creates an encoder for the given context.
    pub fn new(context: CkksContext) -> Self {
        Self { context }
    }

    /// The number of slots available at full packing (`N / 2`).
    pub fn slot_count(&self) -> usize {
        self.context.slot_count()
    }

    /// Encodes `values` at the given `log2` scale and level.
    ///
    /// `values.len()` must be a power of two not exceeding the slot count; a
    /// shorter vector is packed sparsely (replicated in slot space). The
    /// plaintext is stamped with exactly `scale_log2`; the linear factor used
    /// in the rounding arithmetic is `2^scale_log2`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two, exceeds the slot count, or
    /// if `level` is out of range.
    pub fn encode(&self, values: &[f64], scale_log2: f64, level: usize) -> Plaintext {
        let slots = values.len();
        let nh = self.context.degree() / 2;
        assert!(
            slots.is_power_of_two() && slots <= nh,
            "value count {slots} must be a power of two at most {nh}"
        );
        assert!(scale_log2.is_finite(), "scale must be finite");
        assert!(
            level >= 1 && level <= self.context.max_level(),
            "level {level} out of range"
        );
        let scale = scale_log2.exp2();
        let mut work: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        self.context.fft().embed_inverse(&mut work);
        let gap = nh / slots;
        let n = self.context.degree();
        let mut coeffs = vec![0i128; n];
        for (i, v) in work.iter().enumerate() {
            coeffs[i * gap] = round_to_i128(v.re * scale);
            coeffs[nh + i * gap] = round_to_i128(v.im * scale);
        }
        let mut poly = self.context.key_basis().poly_from_i128(&coeffs, level);
        poly.to_ntt(self.context.key_basis());
        Plaintext {
            poly,
            scale_log2,
            level,
        }
    }

    /// Decodes a plaintext back into `slots` real values.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is not a power of two or exceeds the slot count.
    pub fn decode(&self, plaintext: &Plaintext, slots: usize) -> Vec<f64> {
        let nh = self.context.degree() / 2;
        assert!(
            slots.is_power_of_two() && slots <= nh,
            "slot count {slots} must be a power of two at most {nh}"
        );
        let mut poly = plaintext.poly.clone();
        poly.to_coeff(self.context.key_basis());
        self.decode_poly(&poly, plaintext.scale_log2, plaintext.level, slots)
    }

    /// Decodes a coefficient-form polynomial with explicit `log2` scale and
    /// level. Used directly by the decryptor to avoid an extra copy.
    pub(crate) fn decode_poly(
        &self,
        poly: &RnsPoly,
        scale_log2: f64,
        level: usize,
        slots: usize,
    ) -> Vec<f64> {
        assert_eq!(poly.form(), PolyForm::Coeff);
        let scale = scale_log2.exp2();
        let nh = self.context.degree() / 2;
        let gap = nh / slots;
        let composer = self.context.composer(level);
        let mut residue_buf = vec![0u64; level];
        let mut values: Vec<Complex> = Vec::with_capacity(slots);
        for i in 0..slots {
            let re_idx = i * gap;
            let im_idx = nh + i * gap;
            for j in 0..level {
                residue_buf[j] = poly.residue(j)[re_idx];
            }
            let re = composer.compose_centered_f64(&residue_buf) / scale;
            for j in 0..level {
                residue_buf[j] = poly.residue(j)[im_idx];
            }
            let im = composer.compose_centered_f64(&residue_buf) / scale;
            values.push(Complex::new(re, im));
        }
        self.context.fft().embed(&mut values);
        values.into_iter().map(|v| v.re).collect()
    }
}

fn round_to_i128(value: f64) -> i128 {
    assert!(
        value.is_finite() && value.abs() < 1.7e38,
        "encoded coefficient {value} overflows the supported range; \
         check input scales"
    );
    value.round() as i128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParameters;

    fn context() -> CkksContext {
        let params = CkksParameters::new_insecure(128, &[40, 40, 40], 45).unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip_full_slots() {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx.clone());
        let values: Vec<f64> = (0..64).map(|i| (i as f64 - 32.0) / 7.0).collect();
        let scale = 30.0;
        let pt = encoder.encode(&values, scale, 3);
        let decoded = encoder.decode(&pt, 64);
        for (a, b) in decoded.iter().zip(&values) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_encoding_replicates_vector() {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx);
        let values = vec![1.5, -2.25, 3.0, 0.125];
        let pt = encoder.encode(&values, 30.0, 2);
        // Decoding at full width must show the 4-vector replicated 16 times.
        let full = encoder.decode(&pt, 64);
        for (i, v) in full.iter().enumerate() {
            assert!((v - values[i % 4]).abs() < 1e-6, "slot {i}: {v}");
        }
    }

    #[test]
    fn decoding_at_lower_level_still_works() {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx);
        let values = vec![0.5; 64];
        let pt = encoder.encode(&values, 25.0, 1);
        let decoded = encoder.decode(&pt, 64);
        assert!(decoded.iter().all(|v| (v - 0.5).abs() < 1e-5));
    }

    #[test]
    fn encoding_error_scales_inversely_with_scale() {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx);
        let values: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let coarse = encoder.decode(&encoder.encode(&values, 12.0, 2), 64);
        let fine = encoder.decode(&encoder.encode(&values, 40.0, 2), 64);
        let err = |out: &[f64]| {
            out.iter()
                .zip(&values)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(err(&fine) < err(&coarse));
        assert!(err(&fine) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn encode_rejects_non_power_of_two() {
        let ctx = context();
        let encoder = CkksEncoder::new(ctx);
        encoder.encode(&[1.0, 2.0, 3.0], 20.0, 1);
    }
}
