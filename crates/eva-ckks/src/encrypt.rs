//! Encryption and decryption.
//!
//! Two encryptors exist:
//!
//! * [`Encryptor`] — classic public-key encryption. Anyone holding the
//!   public key can encrypt; both ciphertext polynomials are dense.
//! * [`SymmetricEncryptor`] — secret-key encryption producing
//!   [`SeededCiphertext`]s: the uniform `a` polynomial is replaced by the
//!   32-byte ChaCha20 seed it expands from, halving fresh-ciphertext wire
//!   bytes. This is the natural choice for the deployment client, which owns
//!   the secret key anyway.

use rand::rngs::{ChaCha20Rng, StdRng};
use rand::{RngCore, SeedableRng};

use crate::ciphertext::{expand_seeded_a, Ciphertext, SeededCiphertext};
use crate::context::CkksContext;
use crate::encoder::{CkksEncoder, Plaintext};
use crate::keys::{PublicKey, SecretKey};

/// Encrypts plaintexts under a public key.
///
/// [`Encryptor::new`] draws the ephemeral secrets and errors from a ChaCha20
/// generator keyed from OS entropy; [`Encryptor::from_seed`] keeps the
/// deterministic xoshiro256** generator for reproducible tests.
pub struct Encryptor {
    context: CkksContext,
    public_key: PublicKey,
    rng: Box<dyn RngCore + Send + Sync>,
}

impl std::fmt::Debug for Encryptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Encryptor")
            .field("degree", &self.context.degree())
            .finish()
    }
}

impl Encryptor {
    /// Creates an encryptor whose randomness comes from a ChaCha20 generator
    /// keyed from OS entropy.
    pub fn new(context: CkksContext, public_key: PublicKey) -> Self {
        Self {
            context,
            public_key,
            rng: Box::new(ChaCha20Rng::from_os_entropy()),
        }
    }

    /// Creates an encryptor with deterministic encryption randomness
    /// (xoshiro256**; tests and benchmarks only — not a CSPRNG).
    pub fn from_seed(context: CkksContext, public_key: PublicKey, seed: u64) -> Self {
        Self {
            context,
            public_key,
            rng: Box::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Encrypts a plaintext. The resulting ciphertext inherits the plaintext's
    /// scale and level.
    pub fn encrypt(&mut self, plaintext: &Plaintext) -> Ciphertext {
        let basis = self.context.key_basis();
        let level = plaintext.level;
        let n = self.context.degree();

        // Ephemeral secret u (ternary) and errors e0, e1.
        let ternary = eva_math::sample_ternary(&mut self.rng, n);
        let signed: Vec<i64> = ternary.iter().map(|&v| v as i64).collect();
        let mut u = basis.poly_from_signed(&signed, level);
        u.to_ntt(basis);

        let make_error = |rng: &mut (dyn RngCore + Send + Sync)| {
            let cbd = eva_math::sample_cbd(rng, n);
            let signed: Vec<i64> = cbd.iter().map(|&v| v as i64).collect();
            let mut e = basis.poly_from_signed(&signed, level);
            e.to_ntt(basis);
            e
        };
        let e0 = make_error(&mut self.rng);
        let e1 = make_error(&mut self.rng);

        let pk0 = self.public_key.p0.truncated(level);
        let pk1 = self.public_key.p1.truncated(level);

        let mut c0 = pk0.dyadic_mul(&u, basis);
        c0.add_assign(&e0, basis);
        c0.add_assign(&plaintext.poly, basis);

        let mut c1 = pk1.dyadic_mul(&u, basis);
        c1.add_assign(&e1, basis);

        Ciphertext::from_parts(vec![c0, c1], plaintext.scale_log2, level)
    }
}

/// Encrypts plaintexts under the **secret key**, emitting seed-compressible
/// ciphertexts.
///
/// A symmetric encryption is `(b, a)` with `a` uniformly random and
/// `b = -(a·s) + e + m`. Because `a` is *purely* random — unlike the
/// public-key path, where `c1 = pk1·u + e1` depends on secrets — it can be
/// derived from a 32-byte seed and shipped as that seed:
/// [`SymmetricEncryptor::encrypt_seeded`] returns a [`SeededCiphertext`]
/// holding `(seed, b)`, and [`SeededCiphertext::expand`] reproduces the full
/// ciphertext bit-for-bit anywhere. [`SymmetricEncryptor::encrypt`] is the
/// unseeded convenience path; it is *defined* as `encrypt_seeded` followed by
/// `expand`, so the two paths can never diverge.
///
/// Like [`Encryptor`], [`SymmetricEncryptor::new`] draws randomness from a
/// ChaCha20 generator keyed from OS entropy and
/// [`SymmetricEncryptor::from_seed`] keeps the deterministic xoshiro256**
/// generator for reproducible tests.
pub struct SymmetricEncryptor {
    context: CkksContext,
    secret_key: SecretKey,
    rng: Box<dyn RngCore + Send + Sync>,
}

impl std::fmt::Debug for SymmetricEncryptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymmetricEncryptor")
            .field("degree", &self.context.degree())
            .finish()
    }
}

impl SymmetricEncryptor {
    /// Creates a symmetric encryptor whose randomness comes from a ChaCha20
    /// generator keyed from OS entropy.
    pub fn new(context: CkksContext, secret_key: SecretKey) -> Self {
        Self {
            context,
            secret_key,
            rng: Box::new(ChaCha20Rng::from_os_entropy()),
        }
    }

    /// Creates a symmetric encryptor with deterministic encryption randomness
    /// (xoshiro256**; tests and benchmarks only — not a CSPRNG).
    pub fn from_seed(context: CkksContext, secret_key: SecretKey, seed: u64) -> Self {
        Self {
            context,
            secret_key,
            rng: Box::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Encrypts a plaintext into the seeded transport form. The per-ciphertext
    /// expansion seed is drawn from the encryptor's own RNG; the error
    /// polynomial is drawn next, so the draw order is fixed and
    /// seeded/unseeded encryptions under the same RNG state coincide.
    pub fn encrypt_seeded(&mut self, plaintext: &Plaintext) -> SeededCiphertext {
        let basis = self.context.key_basis();
        let level = plaintext.level;
        let n = self.context.degree();

        // Per-ciphertext expansion seed (little-endian u64 fill).
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&self.rng.next_u64().to_le_bytes());
        }
        let a = expand_seeded_a(&self.context, &seed, level);

        let cbd = eva_math::sample_cbd(&mut self.rng, n);
        let signed: Vec<i64> = cbd.iter().map(|&v| v as i64).collect();
        let mut e = basis.poly_from_signed(&signed, level);
        e.to_ntt(basis);

        // b = -(a·s) + e + m over the first `level` primes.
        let s = self.secret_key.ntt.truncated(level);
        let mut b = a.dyadic_mul(&s, basis);
        b.negate(basis);
        b.add_assign(&e, basis);
        b.add_assign(&plaintext.poly, basis);

        SeededCiphertext {
            seed,
            b,
            scale_log2: plaintext.scale_log2,
            level,
        }
    }

    /// Encrypts a plaintext into a full [`Ciphertext`] — exactly the
    /// expansion of [`SymmetricEncryptor::encrypt_seeded`], so the seeded and
    /// unseeded paths are bit-identical by construction.
    pub fn encrypt(&mut self, plaintext: &Plaintext) -> Ciphertext {
        self.encrypt_seeded(plaintext)
            .expand(&self.context)
            .expect("a freshly produced seeded ciphertext always fits its own context")
    }
}

/// Decrypts ciphertexts with the secret key and decodes them back to reals.
#[derive(Debug)]
pub struct Decryptor {
    context: CkksContext,
    secret_key: SecretKey,
    encoder: CkksEncoder,
}

impl Decryptor {
    /// Creates a decryptor.
    pub fn new(context: CkksContext, secret_key: SecretKey) -> Self {
        let encoder = CkksEncoder::new(context.clone());
        Self {
            context,
            secret_key,
            encoder,
        }
    }

    /// Decrypts a ciphertext into the underlying (still encoded) polynomial.
    pub fn decrypt(&self, ciphertext: &Ciphertext) -> Plaintext {
        let basis = self.context.key_basis();
        let level = ciphertext.level();
        let s = self.secret_key.ntt.truncated(level);

        // m = c0 + c1*s + c2*s^2 + ...
        let mut acc = ciphertext.polys()[0].clone();
        let mut s_power = s.clone();
        for poly in &ciphertext.polys()[1..] {
            let term = poly.dyadic_mul(&s_power, basis);
            acc.add_assign(&term, basis);
            s_power.dyadic_mul_assign(&s, basis);
        }
        Plaintext {
            poly: acc,
            scale_log2: ciphertext.scale_log2(),
            level,
        }
    }

    /// Decrypts and decodes a ciphertext into `slots` real values.
    pub fn decrypt_to_values(&self, ciphertext: &Ciphertext, slots: usize) -> Vec<f64> {
        let plaintext = self.decrypt(ciphertext);
        self.encoder.decode(&plaintext, slots)
    }

    /// The held secret key's leak-audit probe (see
    /// [`SecretKey::leak_probe`]).
    pub fn secret_key_probe(&self) -> Vec<u8> {
        self.secret_key.leak_probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParameters;

    fn setup() -> (CkksContext, CkksEncoder, Encryptor, Decryptor) {
        let params = CkksParameters::new_insecure(256, &[40, 40, 40], 45).unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 11);
        let pk = keygen.create_public_key();
        let encoder = CkksEncoder::new(ctx.clone());
        let encryptor = Encryptor::from_seed(ctx.clone(), pk, 12);
        let decryptor = Decryptor::new(ctx.clone(), keygen.secret_key().clone());
        (ctx, encoder, encryptor, decryptor)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (_ctx, encoder, mut encryptor, decryptor) = setup();
        let values: Vec<f64> = (0..128).map(|i| (i as f64 / 128.0) - 0.5).collect();
        let scale = 40.0;
        let pt = encoder.encode(&values, scale, 3);
        let ct = encryptor.encrypt(&pt);
        assert_eq!(ct.size(), 2);
        assert_eq!(ct.level(), 3);
        let decrypted = decryptor.decrypt_to_values(&ct, 128);
        for (a, b) in decrypted.iter().zip(&values) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let (_ctx, encoder, mut encryptor, _) = setup();
        let pt = encoder.encode(&[1.0; 128], 30.0, 2);
        let a = encryptor.encrypt(&pt);
        let b = encryptor.encrypt(&pt);
        assert_ne!(
            a.polys()[1],
            b.polys()[1],
            "two encryptions share randomness"
        );
    }

    #[test]
    fn decrypting_with_wrong_key_garbles_message() {
        let (ctx, encoder, mut encryptor, _) = setup();
        let other = KeyGenerator::from_seed(ctx.clone(), 999);
        let wrong = Decryptor::new(ctx, other.secret_key().clone());
        let values = vec![0.25; 128];
        let pt = encoder.encode(&values, 40.0, 1);
        let ct = encryptor.encrypt(&pt);
        let garbled = wrong.decrypt_to_values(&ct, 128);
        let max_err = garbled
            .iter()
            .zip(&values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err > 1.0, "wrong key should not decrypt correctly");
    }

    #[test]
    fn symmetric_encryption_decrypts_and_matches_its_expansion() {
        let (ctx, encoder, _, _) = setup();
        let keygen = KeyGenerator::from_seed(ctx.clone(), 11);
        let decryptor = Decryptor::new(ctx.clone(), keygen.secret_key().clone());
        let values: Vec<f64> = (0..128).map(|i| (i as f64 / 64.0) - 1.0).collect();
        let pt = encoder.encode(&values, 40.0, 3);

        // Seeded and unseeded paths from the same RNG state are bit-identical.
        let mut enc_a = SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 21);
        let mut enc_b = SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 21);
        let seeded = enc_a.encrypt_seeded(&pt);
        let full = enc_b.encrypt(&pt);
        let expanded = seeded.expand(&ctx).unwrap();
        assert_eq!(expanded.polys(), full.polys());
        assert_eq!(expanded.scale_log2().to_bits(), full.scale_log2().to_bits());
        assert_eq!(expanded.level(), full.level());

        // Both decrypt to the message.
        for ct in [&expanded, &full] {
            let decrypted = decryptor.decrypt_to_values(ct, 128);
            for (a, b) in decrypted.iter().zip(&values) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn seeded_expansion_rejects_foreign_shapes() {
        let (ctx, encoder, _, _) = setup();
        let keygen = KeyGenerator::from_seed(ctx.clone(), 11);
        let mut enc = SymmetricEncryptor::from_seed(ctx.clone(), keygen.secret_key().clone(), 5);
        let pt = encoder.encode(&[1.0; 4], 30.0, 2);
        let seeded = enc.encrypt_seeded(&pt);
        // A context with a shorter chain cannot expand a level-2 ciphertext...
        let small =
            CkksContext::new(CkksParameters::new_insecure(256, &[40], 45).unwrap()).unwrap();
        assert!(seeded.expand(&small).is_err());
        // ...and neither can one with a different ring degree.
        let other = CkksContext::new(CkksParameters::new_insecure(512, &[40, 40, 40], 45).unwrap())
            .unwrap();
        assert!(seeded.expand(&other).is_err());
    }

    #[test]
    fn symmetric_encryption_is_randomized() {
        let (ctx, encoder, _, _) = setup();
        let keygen = KeyGenerator::from_seed(ctx.clone(), 11);
        let mut enc = SymmetricEncryptor::from_seed(ctx, keygen.secret_key().clone(), 6);
        let pt = encoder.encode(&[1.0; 128], 30.0, 2);
        let a = enc.encrypt_seeded(&pt);
        let b = enc.encrypt_seeded(&pt);
        assert_ne!(
            a.seed(),
            b.seed(),
            "two encryptions share an expansion seed"
        );
    }

    #[test]
    fn fresh_ciphertext_memory_accounting() {
        let (_ctx, encoder, mut encryptor, _) = setup();
        let pt = encoder.encode(&[0.0; 128], 30.0, 3);
        let ct = encryptor.encrypt(&pt);
        // 2 polynomials * 3 primes * 256 coefficients * 8 bytes.
        assert_eq!(ct.memory_bytes(), 2 * 3 * 256 * 8);
    }
}
