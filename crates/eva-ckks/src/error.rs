//! Error type for scheme-level operations.

use std::fmt;

/// Errors returned by the CKKS evaluator and related components.
///
/// These are precisely the runtime failures the paper says FHE libraries throw
/// when cryptographic constraints are violated (Section 4.2); the EVA compiler's
/// validation passes exist to guarantee a compiled program never triggers them.
#[derive(Debug, Clone, PartialEq)]
pub enum CkksError {
    /// Two operands are at different levels (different coefficient moduli);
    /// violates the paper's Constraint 1.
    LevelMismatch {
        /// Level of the left operand.
        left: usize,
        /// Level of the right operand.
        right: usize,
    },
    /// Two addition/subtraction operands have different scales; violates the
    /// paper's Constraint 2. Scales are compared with exact `f64` equality
    /// (no drift tolerance); the fields carry both exact `log2` scales.
    ScaleMismatch {
        /// Exact `log2` scale of the left operand.
        left: f64,
        /// Exact `log2` scale of the right operand.
        right: f64,
    },
    /// A multiplication operand has more than two polynomials; violates the
    /// paper's Constraint 3 (relinearization required first).
    TooManyPolynomials {
        /// Number of polynomials found.
        size: usize,
    },
    /// Rescaling or mod-switching past the last remaining prime.
    ModulusChainExhausted,
    /// A rotation step for which no Galois key was generated.
    MissingGaloisKey {
        /// The requested rotation step.
        step: i64,
    },
    /// The ciphertext has an unexpected number of polynomials for the
    /// requested operation.
    InvalidCiphertextSize {
        /// Number of polynomials found.
        found: usize,
        /// Number of polynomials expected.
        expected: usize,
    },
    /// Plaintext and ciphertext shapes (level) disagree.
    PlaintextLevelMismatch {
        /// Ciphertext level.
        ciphertext: usize,
        /// Plaintext level.
        plaintext: usize,
    },
    /// An externally supplied object (e.g. a wire-decoded seeded ciphertext)
    /// does not fit the context it is being used with: wrong ring degree or
    /// more primes than the context's modulus chain.
    InvalidParameters(String),
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkksError::LevelMismatch { left, right } => {
                write!(f, "operand levels differ: {left} vs {right}")
            }
            CkksError::ScaleMismatch { left, right } => {
                write!(
                    f,
                    "operand scales differ (exact-equality check): \
                     2^{left:.17e} vs 2^{right:.17e} (delta {:.3e} bits)",
                    left - right
                )
            }
            CkksError::TooManyPolynomials { size } => {
                write!(
                    f,
                    "ciphertext has {size} polynomials; relinearize before multiplying"
                )
            }
            CkksError::ModulusChainExhausted => {
                write!(f, "no primes left in the modulus chain")
            }
            CkksError::MissingGaloisKey { step } => {
                write!(f, "no Galois key was generated for rotation step {step}")
            }
            CkksError::InvalidCiphertextSize { found, expected } => {
                write!(f, "ciphertext has {found} polynomials, expected {expected}")
            }
            CkksError::PlaintextLevelMismatch {
                ciphertext,
                plaintext,
            } => {
                write!(
                    f,
                    "plaintext level {plaintext} does not match ciphertext level {ciphertext}"
                )
            }
            CkksError::InvalidParameters(msg) => {
                write!(f, "object does not fit the context: {msg}")
            }
        }
    }
}

impl std::error::Error for CkksError {}
