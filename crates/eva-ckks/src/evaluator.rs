//! Homomorphic evaluation: the operations the EVA instruction set lowers to.
//!
//! Every EVA opcode of the paper's Table 2 maps onto exactly one method here:
//! NEGATE → [`Evaluator::negate`], ADD/SUB → [`Evaluator::add`] /
//! [`Evaluator::sub`] (or the `_plain` variants), MULTIPLY →
//! [`Evaluator::multiply`] / [`Evaluator::multiply_plain`], ROTATELEFT /
//! ROTATERIGHT → [`Evaluator::rotate`], RELINEARIZE →
//! [`Evaluator::relinearize`], MODSWITCH → [`Evaluator::mod_switch_to_next`]
//! and RESCALE → [`Evaluator::rescale_to_next`].
//!
//! The methods enforce the same operand constraints SEAL enforces (equal
//! levels for binary operations, equal scales for addition, at most two
//! polynomials before a multiplication), returning [`CkksError`] instead of
//! panicking — these are the runtime exceptions the EVA compiler's validation
//! pass is designed to rule out ahead of time.

use eva_poly::{PolyForm, RnsPoly};

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoder::Plaintext;
use crate::error::CkksError;
use crate::keys::{GaloisKeys, KeySwitchKey, RelinearizationKey};

/// Stateless homomorphic evaluator bound to one [`CkksContext`].
#[derive(Debug, Clone)]
pub struct Evaluator {
    context: CkksContext,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(context: CkksContext) -> Self {
        Self { context }
    }

    /// The context this evaluator operates under.
    pub fn context(&self) -> &CkksContext {
        &self.context
    }

    fn check_binary(&self, a: &Ciphertext, b: &Ciphertext) -> Result<(), CkksError> {
        if a.level() != b.level() {
            return Err(CkksError::LevelMismatch {
                left: a.level(),
                right: b.level(),
            });
        }
        Ok(())
    }

    /// Scales are compared with **exact** `f64` equality. There is no drift
    /// tolerance: the compiler's exact-scale phase tracks scales with the
    /// same `f64` arithmetic performed here (against the same primes), so a
    /// mismatch is a genuine constraint violation, never inherent prime
    /// drift.
    fn check_scales(&self, a: f64, b: f64) -> Result<(), CkksError> {
        if a != b {
            return Err(CkksError::ScaleMismatch { left: a, right: b });
        }
        Ok(())
    }

    fn check_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<(), CkksError> {
        if ct.level() != pt.level {
            return Err(CkksError::PlaintextLevelMismatch {
                ciphertext: ct.level(),
                plaintext: pt.level,
            });
        }
        Ok(())
    }

    /// Negates every encrypted slot.
    pub fn negate(&self, ct: &Ciphertext) -> Ciphertext {
        let basis = self.context.key_basis();
        let polys = ct
            .polys()
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.negate(basis);
                p
            })
            .collect();
        Ciphertext::from_parts(polys, ct.scale_log2(), ct.level())
    }

    /// Adds two ciphertexts element-wise.
    ///
    /// # Errors
    ///
    /// Fails if the operands differ in level (Constraint 1) or scale
    /// (Constraint 2).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_binary(a, b)?;
        self.check_scales(a.scale_log2(), b.scale_log2())?;
        let basis = self.context.key_basis();
        let size = a.size().max(b.size());
        let level = a.level();
        let mut polys = Vec::with_capacity(size);
        for i in 0..size {
            let poly = match (a.polys().get(i), b.polys().get(i)) {
                (Some(x), Some(y)) => {
                    let mut x = x.clone();
                    x.add_assign(y, basis);
                    x
                }
                (Some(x), None) => x.clone(),
                (None, Some(y)) => y.clone(),
                (None, None) => unreachable!(),
            };
            polys.push(poly);
        }
        Ok(Ciphertext::from_parts(polys, a.scale_log2(), level))
    }

    /// Subtracts `b` from `a` element-wise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::add`].
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        let negated = self.negate(b);
        self.add(a, &negated)
    }

    /// Adds an encoded plaintext to a ciphertext.
    ///
    /// # Errors
    ///
    /// Fails if levels or scales disagree.
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        self.check_plain(ct, pt)?;
        self.check_scales(ct.scale_log2(), pt.scale_log2)?;
        let basis = self.context.key_basis();
        let mut polys: Vec<RnsPoly> = ct.polys().to_vec();
        polys[0].add_assign(&pt.poly, basis);
        Ok(Ciphertext::from_parts(polys, ct.scale_log2(), ct.level()))
    }

    /// Subtracts an encoded plaintext from a ciphertext.
    ///
    /// # Errors
    ///
    /// Fails if levels or scales disagree.
    pub fn sub_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        self.check_plain(ct, pt)?;
        self.check_scales(ct.scale_log2(), pt.scale_log2)?;
        let basis = self.context.key_basis();
        let mut polys: Vec<RnsPoly> = ct.polys().to_vec();
        polys[0].sub_assign(&pt.poly, basis);
        Ok(Ciphertext::from_parts(polys, ct.scale_log2(), ct.level()))
    }

    /// Multiplies two ciphertexts element-wise. The result has three
    /// polynomials and the product of the operand scales; relinearize to bring
    /// it back to two polynomials.
    ///
    /// # Errors
    ///
    /// Fails if levels disagree (Constraint 1) or either operand has more than
    /// two polynomials (Constraint 3).
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_binary(a, b)?;
        if a.size() != 2 {
            return Err(CkksError::TooManyPolynomials { size: a.size() });
        }
        if b.size() != 2 {
            return Err(CkksError::TooManyPolynomials { size: b.size() });
        }
        let basis = self.context.key_basis();
        let (a0, a1) = (&a.polys()[0], &a.polys()[1]);
        let (b0, b1) = (&b.polys()[0], &b.polys()[1]);
        // The three output polynomials are the only allocations: the cross
        // term accumulates into c1 via the fused dyadic kernel instead of
        // materializing `a1 * b0` separately.
        let c0 = a0.dyadic_mul(b0, basis);
        let mut c1 = a0.dyadic_mul(b1, basis);
        a1.dyadic_mul_acc(b0, &mut c1, basis);
        let c2 = a1.dyadic_mul(b1, basis);
        Ok(Ciphertext::from_parts(
            vec![c0, c1, c2],
            a.scale_log2() + b.scale_log2(),
            a.level(),
        ))
    }

    /// Multiplies a ciphertext by an encoded plaintext element-wise. The
    /// result scale is the product of the two scales.
    ///
    /// # Errors
    ///
    /// Fails if the plaintext level does not match the ciphertext level.
    pub fn multiply_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        self.check_plain(ct, pt)?;
        let basis = self.context.key_basis();
        let polys = ct
            .polys()
            .iter()
            .map(|p| p.dyadic_mul(&pt.poly, basis))
            .collect();
        Ok(Ciphertext::from_parts(
            polys,
            ct.scale_log2() + pt.scale_log2,
            ct.level(),
        ))
    }

    /// Squares a ciphertext (shorthand for multiplying it by itself).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::multiply`].
    pub fn square(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.multiply(ct, ct)
    }

    /// Reduces a three-polynomial ciphertext back to two polynomials using the
    /// relinearization key (the paper's RELINEARIZE instruction).
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext does not have exactly three polynomials.
    pub fn relinearize(
        &self,
        ct: &Ciphertext,
        key: &RelinearizationKey,
    ) -> Result<Ciphertext, CkksError> {
        if ct.size() != 3 {
            return Err(CkksError::InvalidCiphertextSize {
                found: ct.size(),
                expected: 3,
            });
        }
        let basis = self.context.key_basis();
        // The switch-key outputs are owned, so the ciphertext components are
        // accumulated into them directly — no cloned temporaries.
        let (mut d0, mut d1) = self.switch_key(&ct.polys()[2], &key.key, ct.level());
        d0.add_assign(&ct.polys()[0], basis);
        d1.add_assign(&ct.polys()[1], basis);
        Ok(Ciphertext::from_parts(
            vec![d0, d1],
            ct.scale_log2(),
            ct.level(),
        ))
    }

    /// Divides the message by the last prime of the ciphertext's chain and
    /// drops that prime (the paper's RESCALE instruction). The scale is
    /// divided by the actual prime value — in the `log2` domain, the cached
    /// `log2 q` of that prime is subtracted, the very same `f64` the
    /// compiler's exact-scale analysis subtracts, so predicted and observed
    /// scales stay bit-identical.
    ///
    /// # Errors
    ///
    /// Fails if only one prime remains in the chain.
    pub fn rescale_to_next(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        if ct.level() <= 1 {
            return Err(CkksError::ModulusChainExhausted);
        }
        let basis = self.context.key_basis();
        let divisor_log2 = self.context.data_prime_log2(ct.level() - 1);
        let polys = ct
            .polys()
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.rescale_by_last(basis);
                p
            })
            .collect();
        Ok(Ciphertext::from_parts(
            polys,
            ct.scale_log2() - divisor_log2,
            ct.level() - 1,
        ))
    }

    /// Drops the last prime of the chain without scaling the message (the
    /// paper's MODSWITCH instruction).
    ///
    /// # Errors
    ///
    /// Fails if only one prime remains in the chain.
    pub fn mod_switch_to_next(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        if ct.level() <= 1 {
            return Err(CkksError::ModulusChainExhausted);
        }
        let polys = ct
            .polys()
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.drop_last();
                p
            })
            .collect();
        Ok(Ciphertext::from_parts(
            polys,
            ct.scale_log2(),
            ct.level() - 1,
        ))
    }

    /// Rotates the encrypted slot vector left by `steps` positions (negative
    /// steps rotate right), using the corresponding Galois key.
    ///
    /// # Errors
    ///
    /// Fails if no Galois key for `steps` exists or the ciphertext has more
    /// than two polynomials.
    pub fn rotate(
        &self,
        ct: &Ciphertext,
        steps: i64,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext, CkksError> {
        if ct.size() != 2 {
            return Err(CkksError::InvalidCiphertextSize {
                found: ct.size(),
                expected: 2,
            });
        }
        if steps == 0 {
            return Ok(ct.clone());
        }
        let (galois_elt, key) = keys.key_for_step(steps)?;
        let basis = self.context.key_basis();

        let rotate_poly = |poly: &RnsPoly| -> RnsPoly {
            let mut coeff = poly.clone();
            coeff.to_coeff(basis);
            coeff.apply_galois(galois_elt, basis)
        };

        let mut c0_rot = rotate_poly(&ct.polys()[0]);
        c0_rot.to_ntt(basis);
        let mut c1_rot = rotate_poly(&ct.polys()[1]);
        c1_rot.to_ntt(basis);

        let (d0, d1) = self.switch_key(&c1_rot, key, ct.level());
        c0_rot.add_assign(&d0, basis);
        Ok(Ciphertext::from_parts(
            vec![c0_rot, d1],
            ct.scale_log2(),
            ct.level(),
        ))
    }

    /// Key switching: given a polynomial `target` (NTT form, spanning `level`
    /// data primes) that multiplies some source key `s_src` in a decryption
    /// equation, produce `(d0, d1)` such that `d0 + d1·s ≈ target · s_src`.
    ///
    /// The extended accumulators are two contiguous [`RnsPoly`] buffers whose
    /// data rows are rewritten in place by the final mod-down, so they
    /// *become* the outputs; the per-(digit, prime) lifted-digit row and the
    /// mod-down delta row are reused scratch buffers rather than fresh
    /// allocations inside the loops.
    fn switch_key(&self, target: &RnsPoly, key: &KeySwitchKey, level: usize) -> (RnsPoly, RnsPoly) {
        let basis = self.context.key_basis();
        let n = self.context.degree();
        let special = self.context.special_index();

        let mut target_coeff = target.clone();
        target_coeff.to_coeff(basis);

        // Extended accumulators: rows 0..level are the data primes, row
        // `level` is the special prime (basis index `special`).
        let ext = level + 1;
        let mut acc0 = RnsPoly::zero(n, ext, PolyForm::Ntt);
        let mut acc1 = RnsPoly::zero(n, ext, PolyForm::Ntt);
        let mut lifted = vec![0u64; n];

        for j in 0..level {
            let digit = target_coeff.residue(j);
            let (k0, k1) = &key.digits[j];
            for pos in 0..ext {
                let m_idx = if pos == level { special } else { pos };
                let modulus = &basis.moduli()[m_idx];
                for (dst, &c) in lifted.iter_mut().zip(digit) {
                    *dst = modulus.reduce(c);
                }
                basis.ntt_tables()[m_idx].forward(&mut lifted);
                let k0_row = k0.residue(m_idx);
                let k1_row = k1.residue(m_idx);
                let acc0_row = acc0.residue_mut(pos);
                for ((a, &t), &k) in acc0_row.iter_mut().zip(&lifted).zip(k0_row) {
                    *a = modulus.add(*a, modulus.mul(t, k));
                }
                let acc1_row = acc1.residue_mut(pos);
                for ((a, &t), &k) in acc1_row.iter_mut().zip(&lifted).zip(k1_row) {
                    *a = modulus.add(*a, modulus.mul(t, k));
                }
            }
        }

        let mut special_coeff = lifted; // reuse as the mod-down scratch
        let mut delta = vec![0u64; n];
        self.mod_down_special(&mut acc0, level, &mut special_coeff, &mut delta);
        self.mod_down_special(&mut acc1, level, &mut special_coeff, &mut delta);
        (acc0, acc1)
    }

    /// Floors away the special-prime row of an extended accumulator (rows
    /// 0..level = data primes in NTT form, row `level` = special prime),
    /// dividing the data rows by `P` in place and dropping the special row.
    ///
    /// `special_coeff` and `delta` are caller-provided row-sized scratch
    /// buffers, reused across invocations.
    fn mod_down_special(
        &self,
        acc: &mut RnsPoly,
        level: usize,
        special_coeff: &mut [u64],
        delta: &mut [u64],
    ) {
        let basis = self.context.key_basis();
        let special = self.context.special_index();
        let p_value = self.context.params().special_prime();
        let half_p = p_value / 2;

        special_coeff.copy_from_slice(acc.residue(level));
        basis.ntt_tables()[special].inverse(special_coeff);

        for i in 0..level {
            let q_i = &basis.moduli()[i];
            let inv_p = q_i
                .inv(q_i.reduce(p_value))
                .expect("special prime is invertible modulo data primes");
            let pre = q_i.shoup(inv_p);
            let p_mod_qi = q_i.reduce(p_value);
            for (d, &c) in delta.iter_mut().zip(special_coeff.iter()) {
                *d = if c > half_p {
                    q_i.sub(q_i.reduce(c), p_mod_qi)
                } else {
                    q_i.reduce(c)
                };
            }
            basis.ntt_tables()[i].forward(delta);
            let row = acc.residue_mut(i);
            for (a, &d) in row.iter_mut().zip(delta.iter()) {
                *a = q_i.mul_shoup(q_i.sub(*a, d), &pre);
            }
        }
        acc.drop_last();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::CkksEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParameters;

    struct Fixture {
        encoder: CkksEncoder,
        encryptor: Encryptor,
        decryptor: Decryptor,
        evaluator: Evaluator,
        keygen: KeyGenerator,
        slots: usize,
    }

    fn fixture() -> Fixture {
        let params = CkksParameters::new_insecure(256, &[40, 40, 40, 40], 45).unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 21);
        let pk = keygen.create_public_key();
        Fixture {
            encoder: CkksEncoder::new(ctx.clone()),
            encryptor: Encryptor::from_seed(ctx.clone(), pk, 22),
            decryptor: Decryptor::new(ctx.clone(), keygen.secret_key().clone()),
            evaluator: Evaluator::new(ctx),
            keygen,
            slots: 128,
        }
    }

    fn assert_close(actual: &[f64], expected: &[f64], tolerance: f64) {
        for (i, (a, b)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (a - b).abs() < tolerance,
                "slot {i}: {a} vs expected {b} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn add_sub_negate() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = (0..f.slots).map(|i| (i as f64).cos()).collect();
        let ct_x = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_y = f.encryptor.encrypt(&f.encoder.encode(&ys, scale, 4));

        let sum = f.evaluator.add(&ct_x, &ct_y).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&sum, f.slots),
            &expected,
            1e-4,
        );

        let diff = f.evaluator.sub(&ct_x, &ct_y).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a - b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&diff, f.slots),
            &expected,
            1e-4,
        );

        let neg = f.evaluator.negate(&ct_x);
        let expected: Vec<f64> = xs.iter().map(|a| -a).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&neg, f.slots),
            &expected,
            1e-4,
        );
    }

    #[test]
    fn plaintext_operations() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| (i as f64 + 1.0) / 64.0).collect();
        let ps: Vec<f64> = (0..f.slots).map(|i| ((i % 7) as f64) - 3.0).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let pt = f.encoder.encode(&ps, scale, 4);

        let sum = f.evaluator.add_plain(&ct, &pt).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ps).map(|(a, b)| a + b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&sum, f.slots),
            &expected,
            1e-4,
        );

        let diff = f.evaluator.sub_plain(&ct, &pt).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ps).map(|(a, b)| a - b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&diff, f.slots),
            &expected,
            1e-4,
        );

        let prod = f.evaluator.multiply_plain(&ct, &pt).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ps).map(|(a, b)| a * b).collect();
        assert_eq!(
            prod.scale_log2(),
            scale + scale,
            "multiply adds log2 scales"
        );
        assert_close(
            &f.decryptor.decrypt_to_values(&prod, f.slots),
            &expected,
            1e-3,
        );
    }

    #[test]
    fn multiply_relinearize_rescale() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots)
            .map(|i| (i as f64 / f.slots as f64) - 0.5)
            .collect();
        let ys: Vec<f64> = (0..f.slots).map(|i| ((i * 3) % 11) as f64 / 11.0).collect();
        let ct_x = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_y = f.encryptor.encrypt(&f.encoder.encode(&ys, scale, 4));
        let rk = f.keygen.create_relinearization_key();

        let raw = f.evaluator.multiply(&ct_x, &ct_y).unwrap();
        assert_eq!(raw.size(), 3);
        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a * b).collect();
        // Decrypting the 3-polynomial ciphertext directly must already work.
        assert_close(
            &f.decryptor.decrypt_to_values(&raw, f.slots),
            &expected,
            1e-3,
        );

        let relin = f.evaluator.relinearize(&raw, &rk).unwrap();
        assert_eq!(relin.size(), 2);
        assert_close(
            &f.decryptor.decrypt_to_values(&relin, f.slots),
            &expected,
            1e-3,
        );

        let rescaled = f.evaluator.rescale_to_next(&relin).unwrap();
        assert_eq!(rescaled.level(), 3);
        assert!((rescaled.scale_log2() - 40.0).abs() < 0.1);
        assert_close(
            &f.decryptor.decrypt_to_values(&rescaled, f.slots),
            &expected,
            1e-3,
        );
    }

    #[test]
    fn mod_switch_preserves_message_and_scale() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| (i % 5) as f64 * 0.2).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let switched = f.evaluator.mod_switch_to_next(&ct).unwrap();
        assert_eq!(switched.level(), 3);
        assert_eq!(switched.scale_log2(), scale);
        assert_close(
            &f.decryptor.decrypt_to_values(&switched, f.slots),
            &xs,
            1e-4,
        );
    }

    #[test]
    fn rotation_left_and_right() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| i as f64 / 10.0).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let gk = f.keygen.create_galois_keys(&[1, 3, -2]);

        for &step in &[1i64, 3, -2] {
            let rotated = f.evaluator.rotate(&ct, step, &gk).unwrap();
            let expected: Vec<f64> = (0..f.slots)
                .map(|i| {
                    let src = (i as i64 + step).rem_euclid(f.slots as i64) as usize;
                    xs[src]
                })
                .collect();
            assert_close(
                &f.decryptor.decrypt_to_values(&rotated, f.slots),
                &expected,
                1e-3,
            );
        }
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let mut f = fixture();
        let xs = vec![1.25; 128];
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, 40.0, 2));
        let gk = f.keygen.create_galois_keys(&[]);
        let out = f.evaluator.rotate(&ct, 0, &gk).unwrap();
        assert_close(&f.decryptor.decrypt_to_values(&out, 128), &xs, 1e-4);
    }

    #[test]
    fn constraint_violations_are_reported() {
        let mut f = fixture();
        let scale = 40.0;
        let xs = vec![0.5; 128];
        let ct_high = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_low = f.evaluator.mod_switch_to_next(&ct_high).unwrap();

        // Level mismatch (Constraint 1).
        assert!(matches!(
            f.evaluator.add(&ct_high, &ct_low),
            Err(CkksError::LevelMismatch { .. })
        ));

        // Scale mismatch (Constraint 2).
        let other_scale = f.encryptor.encrypt(&f.encoder.encode(&xs, 30.0, 4));
        assert!(matches!(
            f.evaluator.add(&ct_high, &other_scale),
            Err(CkksError::ScaleMismatch { .. })
        ));

        // Too many polynomials (Constraint 3).
        let product = f.evaluator.multiply(&ct_high, &ct_high).unwrap();
        assert!(matches!(
            f.evaluator.multiply(&product, &ct_high),
            Err(CkksError::TooManyPolynomials { .. })
        ));

        // Missing rotation key.
        let gk = f.keygen.create_galois_keys(&[1]);
        assert!(matches!(
            f.evaluator.rotate(&ct_high, 7, &gk),
            Err(CkksError::MissingGaloisKey { step: 7 })
        ));

        // Exhausted modulus chain.
        let mut ct = ct_high.clone();
        for _ in 0..3 {
            ct = f.evaluator.mod_switch_to_next(&ct).unwrap();
        }
        assert!(matches!(
            f.evaluator.mod_switch_to_next(&ct),
            Err(CkksError::ModulusChainExhausted)
        ));
    }

    #[test]
    fn deep_polynomial_evaluation_x2y3() {
        // The paper's running example (Figure 2): x^2 * y^3 with rescaling.
        let mut f = fixture();
        let xs: Vec<f64> = (0..f.slots).map(|i| 0.3 + (i % 4) as f64 * 0.1).collect();
        let ys: Vec<f64> = (0..f.slots).map(|i| 0.5 + (i % 3) as f64 * 0.05).collect();
        let rk = f.keygen.create_relinearization_key();
        let scale = 40.0;

        let ct_x = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_y = f.encryptor.encrypt(&f.encoder.encode(&ys, scale, 4));

        // x^2, rescale once.
        let x2 = f
            .evaluator
            .relinearize(&f.evaluator.square(&ct_x).unwrap(), &rk)
            .unwrap();
        let x2 = f.evaluator.rescale_to_next(&x2).unwrap();
        // y^2, rescale once; y^3 = y^2 * (y at the lower level), rescale again.
        let y2 = f
            .evaluator
            .relinearize(&f.evaluator.square(&ct_y).unwrap(), &rk)
            .unwrap();
        let y2 = f.evaluator.rescale_to_next(&y2).unwrap();
        let y_low = f.evaluator.mod_switch_to_next(&ct_y).unwrap();
        let y3 = f
            .evaluator
            .relinearize(&f.evaluator.multiply(&y2, &y_low).unwrap(), &rk)
            .unwrap();
        let y3 = f.evaluator.rescale_to_next(&y3).unwrap();
        // x^2 down to y^3's level, then multiply.
        let x2_low = f.evaluator.mod_switch_to_next(&x2).unwrap();
        let result = f
            .evaluator
            .relinearize(&f.evaluator.multiply(&x2_low, &y3).unwrap(), &rk)
            .unwrap();
        let result = f.evaluator.rescale_to_next(&result).unwrap();

        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| x * x * y * y * y).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&result, f.slots),
            &expected,
            1e-2,
        );
    }
}
