//! Homomorphic evaluation: the operations the EVA instruction set lowers to.
//!
//! Every EVA opcode of the paper's Table 2 maps onto exactly one method here:
//! NEGATE → [`Evaluator::negate`], ADD/SUB → [`Evaluator::add`] /
//! [`Evaluator::sub`] (or the `_plain` variants), MULTIPLY →
//! [`Evaluator::multiply`] / [`Evaluator::multiply_plain`], ROTATELEFT /
//! ROTATERIGHT → [`Evaluator::rotate`], RELINEARIZE →
//! [`Evaluator::relinearize`], MODSWITCH → [`Evaluator::mod_switch_to_next`]
//! and RESCALE → [`Evaluator::rescale_to_next`].
//!
//! The methods enforce the same operand constraints SEAL enforces (equal
//! levels for binary operations, equal scales for addition, at most two
//! polynomials before a multiplication), returning [`CkksError`] instead of
//! panicking — these are the runtime exceptions the EVA compiler's validation
//! pass is designed to rule out ahead of time.

use eva_poly::{PolyForm, RnsPoly};

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoder::Plaintext;
use crate::error::CkksError;
use crate::keys::{GaloisKeys, KeySwitchKey, RelinearizationKey, RotationKey};

/// Reusable RNS decomposition of a key-switch target.
///
/// Produced by [`Evaluator::decompose_for_key_switch`]: for each data prime
/// `q_j` of the target's chain it holds the digit `target mod q_j` lifted to
/// every modulus of the extended basis (data primes + special prime) in NTT
/// form. Decomposing costs `l(l+2)` NTTs and is independent of the key being
/// applied, so a rotation fan-out decomposes its source **once** and applies
/// each Galois key to the shared digits — hoisted key-switching. The
/// automorphism commutes with the decomposition (it is applied to the
/// decomposed digits as a pure NTT-domain permutation), which is what makes
/// the sharing sound.
#[derive(Debug, Clone)]
pub struct KeySwitchDecomposition {
    level: usize,
    digits: Vec<RnsPoly>,
}

impl KeySwitchDecomposition {
    /// Number of data primes in the decomposed target's chain.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The lifted digits: `digits()[j]` spans `level() + 1` NTT rows, where
    /// row `pos < level()` is modulus `q_pos` and the last row is the special
    /// prime.
    pub fn digits(&self) -> &[RnsPoly] {
        &self.digits
    }
}

/// Reusable key-switch work buffers (see
/// [`Evaluator::key_switch_scratch`]): lazy accumulator pair plus the
/// special-row and delta rows of the mod-down. A hoisted rotation fan-out
/// allocates one of these and threads it through every member, so the
/// ~0.5 MB of intermediates is mapped and faulted once per fan-out rather
/// than once per rotation.
struct KeySwitchScratch {
    acc0: Vec<u64>,
    acc1: Vec<u64>,
    special: Vec<u64>,
    delta: Vec<u64>,
}

/// Extended key-switch accumulators in **lazy** `[0, 2q)` form.
///
/// Produced by [`Evaluator::apply_key_switch_lazy`], which keeps every limb
/// lazily reduced across the fused digit-accumulation loop instead of
/// canonicalizing per multiply-accumulate step.
/// [`Evaluator::finish_key_switch`] canonicalizes once and mods away the
/// special prime. Row `pos < level` of either accumulator is modulus `q_pos`;
/// row `level` is the special prime.
#[derive(Debug, Clone)]
pub struct LazyKeySwitchAcc {
    level: usize,
    degree: usize,
    acc0: Vec<u64>,
    acc1: Vec<u64>,
}

impl LazyKeySwitchAcc {
    /// Number of data primes (the accumulators carry `level() + 1` rows).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Lazy rows of the first accumulator (`d0` after finishing).
    pub fn rows0(&self) -> impl Iterator<Item = &[u64]> {
        self.acc0.chunks_exact(self.degree)
    }

    /// Lazy rows of the second accumulator (`d1` after finishing).
    pub fn rows1(&self) -> impl Iterator<Item = &[u64]> {
        self.acc1.chunks_exact(self.degree)
    }
}

/// Stateless homomorphic evaluator bound to one [`CkksContext`].
#[derive(Debug, Clone)]
pub struct Evaluator {
    context: CkksContext,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(context: CkksContext) -> Self {
        Self { context }
    }

    /// The context this evaluator operates under.
    pub fn context(&self) -> &CkksContext {
        &self.context
    }

    fn check_binary(&self, a: &Ciphertext, b: &Ciphertext) -> Result<(), CkksError> {
        if a.level() != b.level() {
            return Err(CkksError::LevelMismatch {
                left: a.level(),
                right: b.level(),
            });
        }
        Ok(())
    }

    /// Scales are compared with **exact** `f64` equality. There is no drift
    /// tolerance: the compiler's exact-scale phase tracks scales with the
    /// same `f64` arithmetic performed here (against the same primes), so a
    /// mismatch is a genuine constraint violation, never inherent prime
    /// drift.
    fn check_scales(&self, a: f64, b: f64) -> Result<(), CkksError> {
        if a != b {
            return Err(CkksError::ScaleMismatch { left: a, right: b });
        }
        Ok(())
    }

    fn check_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<(), CkksError> {
        if ct.level() != pt.level {
            return Err(CkksError::PlaintextLevelMismatch {
                ciphertext: ct.level(),
                plaintext: pt.level,
            });
        }
        Ok(())
    }

    /// Negates every encrypted slot.
    pub fn negate(&self, ct: &Ciphertext) -> Ciphertext {
        let basis = self.context.key_basis();
        let polys = ct
            .polys()
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.negate(basis);
                p
            })
            .collect();
        Ciphertext::from_parts(polys, ct.scale_log2(), ct.level())
    }

    /// Adds two ciphertexts element-wise.
    ///
    /// # Errors
    ///
    /// Fails if the operands differ in level (Constraint 1) or scale
    /// (Constraint 2).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_binary(a, b)?;
        self.check_scales(a.scale_log2(), b.scale_log2())?;
        let basis = self.context.key_basis();
        let size = a.size().max(b.size());
        let level = a.level();
        let mut polys = Vec::with_capacity(size);
        for i in 0..size {
            let poly = match (a.polys().get(i), b.polys().get(i)) {
                (Some(x), Some(y)) => {
                    let mut x = x.clone();
                    x.add_assign(y, basis);
                    x
                }
                (Some(x), None) => x.clone(),
                (None, Some(y)) => y.clone(),
                (None, None) => unreachable!(),
            };
            polys.push(poly);
        }
        Ok(Ciphertext::from_parts(polys, a.scale_log2(), level))
    }

    /// Subtracts `b` from `a` element-wise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::add`].
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        let negated = self.negate(b);
        self.add(a, &negated)
    }

    /// Adds an encoded plaintext to a ciphertext.
    ///
    /// # Errors
    ///
    /// Fails if levels or scales disagree.
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        self.check_plain(ct, pt)?;
        self.check_scales(ct.scale_log2(), pt.scale_log2)?;
        let basis = self.context.key_basis();
        let mut polys: Vec<RnsPoly> = ct.polys().to_vec();
        polys[0].add_assign(&pt.poly, basis);
        Ok(Ciphertext::from_parts(polys, ct.scale_log2(), ct.level()))
    }

    /// Subtracts an encoded plaintext from a ciphertext.
    ///
    /// # Errors
    ///
    /// Fails if levels or scales disagree.
    pub fn sub_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        self.check_plain(ct, pt)?;
        self.check_scales(ct.scale_log2(), pt.scale_log2)?;
        let basis = self.context.key_basis();
        let mut polys: Vec<RnsPoly> = ct.polys().to_vec();
        polys[0].sub_assign(&pt.poly, basis);
        Ok(Ciphertext::from_parts(polys, ct.scale_log2(), ct.level()))
    }

    /// Multiplies two ciphertexts element-wise. The result has three
    /// polynomials and the product of the operand scales; relinearize to bring
    /// it back to two polynomials.
    ///
    /// # Errors
    ///
    /// Fails if levels disagree (Constraint 1) or either operand has more than
    /// two polynomials (Constraint 3).
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.check_binary(a, b)?;
        if a.size() != 2 {
            return Err(CkksError::TooManyPolynomials { size: a.size() });
        }
        if b.size() != 2 {
            return Err(CkksError::TooManyPolynomials { size: b.size() });
        }
        let basis = self.context.key_basis();
        let (a0, a1) = (&a.polys()[0], &a.polys()[1]);
        let (b0, b1) = (&b.polys()[0], &b.polys()[1]);
        // The three output polynomials are the only allocations: the cross
        // term accumulates into c1 via the fused dyadic kernel instead of
        // materializing `a1 * b0` separately.
        let c0 = a0.dyadic_mul(b0, basis);
        let mut c1 = a0.dyadic_mul(b1, basis);
        a1.dyadic_mul_acc(b0, &mut c1, basis);
        let c2 = a1.dyadic_mul(b1, basis);
        Ok(Ciphertext::from_parts(
            vec![c0, c1, c2],
            a.scale_log2() + b.scale_log2(),
            a.level(),
        ))
    }

    /// Multiplies a ciphertext by an encoded plaintext element-wise. The
    /// result scale is the product of the two scales.
    ///
    /// # Errors
    ///
    /// Fails if the plaintext level does not match the ciphertext level.
    pub fn multiply_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, CkksError> {
        self.check_plain(ct, pt)?;
        let basis = self.context.key_basis();
        let polys = ct
            .polys()
            .iter()
            .map(|p| p.dyadic_mul(&pt.poly, basis))
            .collect();
        Ok(Ciphertext::from_parts(
            polys,
            ct.scale_log2() + pt.scale_log2,
            ct.level(),
        ))
    }

    /// Squares a ciphertext (shorthand for multiplying it by itself).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Evaluator::multiply`].
    pub fn square(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        self.multiply(ct, ct)
    }

    /// Reduces a three-polynomial ciphertext back to two polynomials using the
    /// relinearization key (the paper's RELINEARIZE instruction).
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext does not have exactly three polynomials.
    pub fn relinearize(
        &self,
        ct: &Ciphertext,
        key: &RelinearizationKey,
    ) -> Result<Ciphertext, CkksError> {
        if ct.size() != 3 {
            return Err(CkksError::InvalidCiphertextSize {
                found: ct.size(),
                expected: 3,
            });
        }
        let basis = self.context.key_basis();
        // The switch-key outputs are owned, so the ciphertext components are
        // accumulated into them directly — no cloned temporaries.
        let (mut d0, mut d1) = self.switch_key(&ct.polys()[2], &key.key, ct.level());
        d0.add_assign(&ct.polys()[0], basis);
        d1.add_assign(&ct.polys()[1], basis);
        Ok(Ciphertext::from_parts(
            vec![d0, d1],
            ct.scale_log2(),
            ct.level(),
        ))
    }

    /// Divides the message by the last prime of the ciphertext's chain and
    /// drops that prime (the paper's RESCALE instruction). The scale is
    /// divided by the actual prime value — in the `log2` domain, the cached
    /// `log2 q` of that prime is subtracted, the very same `f64` the
    /// compiler's exact-scale analysis subtracts, so predicted and observed
    /// scales stay bit-identical.
    ///
    /// # Errors
    ///
    /// Fails if only one prime remains in the chain.
    pub fn rescale_to_next(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        if ct.level() <= 1 {
            return Err(CkksError::ModulusChainExhausted);
        }
        let basis = self.context.key_basis();
        let divisor_log2 = self.context.data_prime_log2(ct.level() - 1);
        let polys = ct
            .polys()
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.rescale_by_last(basis);
                p
            })
            .collect();
        Ok(Ciphertext::from_parts(
            polys,
            ct.scale_log2() - divisor_log2,
            ct.level() - 1,
        ))
    }

    /// Drops the last prime of the chain without scaling the message (the
    /// paper's MODSWITCH instruction).
    ///
    /// # Errors
    ///
    /// Fails if only one prime remains in the chain.
    pub fn mod_switch_to_next(&self, ct: &Ciphertext) -> Result<Ciphertext, CkksError> {
        if ct.level() <= 1 {
            return Err(CkksError::ModulusChainExhausted);
        }
        let polys = ct
            .polys()
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.drop_last();
                p
            })
            .collect();
        Ok(Ciphertext::from_parts(
            polys,
            ct.scale_log2(),
            ct.level() - 1,
        ))
    }

    /// Rotates the encrypted slot vector left by `steps` positions (negative
    /// steps rotate right), using the corresponding Galois key.
    ///
    /// Rotation by step 0 is a scale-preserving no-op clone and requires no
    /// Galois key.
    ///
    /// # Errors
    ///
    /// Fails if no Galois key for `steps` exists or the ciphertext has more
    /// than two polynomials.
    pub fn rotate(
        &self,
        ct: &Ciphertext,
        steps: i64,
        keys: &GaloisKeys,
    ) -> Result<Ciphertext, CkksError> {
        if ct.size() != 2 {
            return Err(CkksError::InvalidCiphertextSize {
                found: ct.size(),
                expected: 2,
            });
        }
        if steps == 0 {
            return Ok(ct.clone());
        }
        let decomp = self.decompose_for_key_switch(&ct.polys()[1], ct.level());
        let mut scratch = self.key_switch_scratch(ct.level());
        self.rotate_decomposed(ct, &decomp, steps, keys, &mut scratch)
    }

    /// Rotates one ciphertext by every step in `steps` with **hoisted**
    /// key-switching: the expensive RNS decomposition of `c1` is computed
    /// once and each Galois key is applied to the shared digits, so `k`
    /// rotations cost one decompose plus `k` cheap applies instead of `k`
    /// full key-switches.
    ///
    /// Results are **bit-identical** to calling [`Evaluator::rotate`] once
    /// per step (both routes run the same decompose → permute → apply →
    /// mod-down primitives). Step 0 entries yield a no-op clone and require
    /// no Galois key.
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext does not have exactly two polynomials or a
    /// Galois key for any non-zero step is missing.
    pub fn rotate_hoisted(
        &self,
        ct: &Ciphertext,
        steps: &[i64],
        keys: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>, CkksError> {
        if ct.size() != 2 {
            return Err(CkksError::InvalidCiphertextSize {
                found: ct.size(),
                expected: 2,
            });
        }
        let mut decomp = None;
        let mut scratch = self.key_switch_scratch(ct.level());
        let mut out = Vec::with_capacity(steps.len());
        for &step in steps {
            if step == 0 {
                out.push(ct.clone());
                continue;
            }
            let decomp = decomp
                .get_or_insert_with(|| self.decompose_for_key_switch(&ct.polys()[1], ct.level()));
            out.push(self.rotate_decomposed(ct, decomp, step, keys, &mut scratch)?);
        }
        Ok(out)
    }

    /// One rotation given an already-decomposed `c1`: permute `c0` and the
    /// shared digits by the automorphism (NTT-domain gathers), apply the
    /// Galois key lazily and mod away the special prime. Accumulator and
    /// mod-down buffers come from `scratch`, so a hoisted fan-out touches
    /// each large intermediate's pages once instead of once per member.
    fn rotate_decomposed(
        &self,
        ct: &Ciphertext,
        decomp: &KeySwitchDecomposition,
        steps: i64,
        keys: &GaloisKeys,
        scratch: &mut KeySwitchScratch,
    ) -> Result<Ciphertext, CkksError> {
        let (galois_elt, _) = keys.key_for_step(steps)?;
        let rot =
            keys.rotation_key_for(galois_elt, self.context.galois(), self.context.key_basis());

        self.apply_rotation_into(decomp, rot, &mut scratch.acc0, &mut scratch.acc1);
        let c0_rot = self.mod_down_into(
            &scratch.acc0,
            decomp.level,
            Some(&rot.table),
            Some(&ct.polys()[0]),
            &mut scratch.special,
            &mut scratch.delta,
        );
        let d1 = self.mod_down_into(
            &scratch.acc1,
            decomp.level,
            Some(&rot.table),
            None,
            &mut scratch.special,
            &mut scratch.delta,
        );
        Ok(Ciphertext::from_parts(
            vec![c0_rot, d1],
            ct.scale_log2(),
            ct.level(),
        ))
    }

    /// Allocates the reusable buffers one key switch at `level` needs: the
    /// two lazy extended accumulators plus the special-row and delta rows of
    /// the mod-down. Reused across every member of a hoisted fan-out.
    fn key_switch_scratch(&self, level: usize) -> KeySwitchScratch {
        let n = self.context.degree();
        let ext = level + 1;
        KeySwitchScratch {
            acc0: vec![0u64; ext * n],
            acc1: vec![0u64; ext * n],
            special: vec![0u64; n],
            delta: vec![0u64; level * n],
        }
    }

    /// RNS-decomposes a key-switch target (NTT form, spanning `level` data
    /// primes): digit `j` is the target's residue `j` lifted to every
    /// modulus of the extended basis (data primes + special prime), forward
    /// transformed. This is the key-independent half of key switching —
    /// `l(l+2)` NTTs — reusable across every key applied to the same target.
    pub fn decompose_for_key_switch(
        &self,
        target: &RnsPoly,
        level: usize,
    ) -> KeySwitchDecomposition {
        let basis = self.context.key_basis();
        let n = self.context.degree();
        let special = self.context.special_index();
        let ext = level + 1;

        let mut target_coeff = target.clone();
        target_coeff.to_coeff(basis);

        let digits = (0..level)
            .map(|j| {
                let digit = target_coeff.residue(j);
                let mut lifted = RnsPoly::zero(n, ext, PolyForm::Ntt);
                for pos in 0..ext {
                    let m_idx = if pos == level { special } else { pos };
                    let modulus = &basis.moduli()[m_idx];
                    let row = lifted.residue_mut(pos);
                    for (dst, &c) in row.iter_mut().zip(digit) {
                        *dst = modulus.reduce(c);
                    }
                    basis.ntt_tables()[m_idx].forward(row);
                }
                lifted
            })
            .collect();
        KeySwitchDecomposition { level, digits }
    }

    /// The key-dependent half of key switching: multiply-accumulates every
    /// decomposed digit against the key's digit pair, keeping both extended
    /// accumulators in lazy `[0, 2q)` form across the whole fused loop (one
    /// canonicalization happens later, in
    /// [`Evaluator::finish_key_switch`]). When `ntt_permutation` is given
    /// (a table from `GaloisTool::ntt_permutation`), the automorphism is
    /// applied to the digits on the fly — fused into the gather of the
    /// multiply-accumulate, costing zero extra passes.
    pub fn apply_key_switch_lazy(
        &self,
        decomp: &KeySwitchDecomposition,
        key: &KeySwitchKey,
        ntt_permutation: Option<&[u32]>,
    ) -> LazyKeySwitchAcc {
        let n = self.context.degree();
        let ext = decomp.level + 1;
        let mut acc0 = vec![0u64; ext * n];
        let mut acc1 = vec![0u64; ext * n];
        self.apply_key_switch_into(decomp, key, ntt_permutation, &mut acc0, &mut acc1);
        LazyKeySwitchAcc {
            level: decomp.level,
            degree: n,
            acc0,
            acc1,
        }
    }

    /// [`Evaluator::apply_key_switch_lazy`] writing into caller-owned
    /// accumulator buffers (each `(level + 1) * degree` long). Every element
    /// is overwritten — the first digit writes instead of accumulating — so
    /// the buffers need no clearing between reuses.
    fn apply_key_switch_into(
        &self,
        decomp: &KeySwitchDecomposition,
        key: &KeySwitchKey,
        ntt_permutation: Option<&[u32]>,
        acc0: &mut [u64],
        acc1: &mut [u64],
    ) {
        let basis = self.context.key_basis();
        let n = self.context.degree();
        let special = self.context.special_index();
        let level = decomp.level;
        let ext = level + 1;
        debug_assert_eq!(acc0.len(), ext * n);
        debug_assert_eq!(acc1.len(), ext * n);
        let shoup = key.shoup_quotients(basis);
        // The ring degree is a power of two, so masking a gather index keeps
        // it provably in range (the permutation's entries already are) and
        // lets the compiler drop the bounds check in the hot loop.
        let idx_mask = n - 1;

        for (digit_idx, (digit, ((k0, k1), (s0, s1)))) in decomp
            .digits
            .iter()
            .zip(key.digits.iter().zip(shoup))
            .enumerate()
        {
            for pos in 0..ext {
                let m_idx = if pos == level { special } else { pos };
                let modulus = &basis.moduli()[m_idx];
                let q = modulus.value();
                let two_q = q << 1;
                let digit_row = digit.residue(pos);
                let k0_row = &k0.residue(m_idx)[..n];
                let k1_row = &k1.residue(m_idx)[..n];
                let s0_row = &s0[m_idx * n..(m_idx + 1) * n];
                let s1_row = &s1[m_idx * n..(m_idx + 1) * n];
                let a0 = &mut acc0[pos * n..(pos + 1) * n];
                let a1 = &mut acc1[pos * n..(pos + 1) * n];
                // Lazy accumulate with Shoup-precomputed key operands: the
                // product lands in [0, 2q) for any digit representative, the
                // running sum in [0, 4q); one mask-selected subtraction of 2q
                // restores the [0, 2q) invariant without canonicalizing. The
                // first digit writes its products directly instead of
                // accumulating into the zeroed rows.
                let prod = |t: u64, k: u64, kq: u64| -> u64 {
                    let hi = ((t as u128 * kq as u128) >> 64) as u64;
                    t.wrapping_mul(k).wrapping_sub(hi.wrapping_mul(q))
                };
                let lazy_add = |a: u64, p: u64| -> u64 {
                    let s = a + p;
                    s - (two_q & ((s >= two_q) as u64).wrapping_neg())
                };
                match (ntt_permutation, digit_idx == 0) {
                    (Some(table), true) => {
                        for i in 0..n {
                            let t = digit_row[table[i] as usize & idx_mask];
                            a0[i] = prod(t, k0_row[i], s0_row[i]);
                            a1[i] = prod(t, k1_row[i], s1_row[i]);
                        }
                    }
                    (Some(table), false) => {
                        for i in 0..n {
                            let t = digit_row[table[i] as usize & idx_mask];
                            a0[i] = lazy_add(a0[i], prod(t, k0_row[i], s0_row[i]));
                            a1[i] = lazy_add(a1[i], prod(t, k1_row[i], s1_row[i]));
                        }
                    }
                    (None, true) => {
                        for i in 0..n {
                            let t = digit_row[i];
                            a0[i] = prod(t, k0_row[i], s0_row[i]);
                            a1[i] = prod(t, k1_row[i], s1_row[i]);
                        }
                    }
                    (None, false) => {
                        for i in 0..n {
                            let t = digit_row[i];
                            a0[i] = lazy_add(a0[i], prod(t, k0_row[i], s0_row[i]));
                            a1[i] = lazy_add(a1[i], prod(t, k1_row[i], s1_row[i]));
                        }
                    }
                }
            }
        }
    }

    /// Floors the special prime away from lazy key-switch accumulators,
    /// yielding the canonical `(d0, d1)` key-switch output pair over the
    /// data primes.
    ///
    /// The lazy `[0, 2q)` rows never see a separate canonicalization pass:
    /// the special row feeds the inverse NTT directly (Harvey butterflies
    /// accept lazy input) and the data rows are canonicalized inside the
    /// flooring multiply itself, whose Shoup product tolerates any `u64`
    /// representative.
    pub fn finish_key_switch(&self, lazy: LazyKeySwitchAcc) -> (RnsPoly, RnsPoly) {
        let n = self.context.degree();
        let mut special = vec![0u64; n];
        let mut delta = vec![0u64; lazy.level * n];
        let d0 = self.mod_down_into(&lazy.acc0, lazy.level, None, None, &mut special, &mut delta);
        let d1 = self.mod_down_into(&lazy.acc1, lazy.level, None, None, &mut special, &mut delta);
        (d0, d1)
    }

    /// The rotation fast path's multiply-accumulate: every decomposed digit
    /// against a [`RotationKey`]'s inverse-permuted interleaved stream. All
    /// loads are sequential — digits, key operands and Shoup quotients
    /// stream linearly — and the result is the **pre-automorphism**
    /// accumulator pair `b = Σ dⱼ·σ⁻¹(kⱼ)`; the mod-down applies the
    /// automorphism gather (`σ(b)` equals what
    /// [`Evaluator::apply_key_switch_lazy`] with a fused permutation
    /// computes, limb for limb). Lazy `[0, 2q)` form throughout, first
    /// digit writes instead of accumulating.
    fn apply_rotation_into(
        &self,
        decomp: &KeySwitchDecomposition,
        rot: &RotationKey,
        acc0: &mut [u64],
        acc1: &mut [u64],
    ) {
        let basis = self.context.key_basis();
        let n = self.context.degree();
        let special = self.context.special_index();
        let level = decomp.level;
        let ext = level + 1;
        debug_assert_eq!(acc0.len(), ext * n);
        debug_assert_eq!(acc1.len(), ext * n);

        for (digit_idx, (digit, kd)) in decomp.digits.iter().zip(&rot.digits).enumerate() {
            for pos in 0..ext {
                let m_idx = if pos == level { special } else { pos };
                let modulus = &basis.moduli()[m_idx];
                let q = modulus.value();
                let two_q = q << 1;
                let digit_row = &digit.residue(pos)[..n];
                let krow = &kd[m_idx * 4 * n..(m_idx + 1) * 4 * n];
                let a0 = &mut acc0[pos * n..(pos + 1) * n];
                let a1 = &mut acc1[pos * n..(pos + 1) * n];
                let prod = |t: u64, k: u64, kq: u64| -> u64 {
                    let hi = ((t as u128 * kq as u128) >> 64) as u64;
                    t.wrapping_mul(k).wrapping_sub(hi.wrapping_mul(q))
                };
                let lazy_add = |a: u64, p: u64| -> u64 {
                    let s = a + p;
                    s - (two_q & ((s >= two_q) as u64).wrapping_neg())
                };
                if digit_idx == 0 {
                    for (i, quad) in krow.chunks_exact(4).enumerate() {
                        let t = digit_row[i];
                        a0[i] = prod(t, quad[0], quad[1]);
                        a1[i] = prod(t, quad[2], quad[3]);
                    }
                } else {
                    for (i, quad) in krow.chunks_exact(4).enumerate() {
                        let t = digit_row[i];
                        a0[i] = lazy_add(a0[i], prod(t, quad[0], quad[1]));
                        a1[i] = lazy_add(a1[i], prod(t, quad[2], quad[3]));
                    }
                }
            }
        }
    }

    /// Floors the special prime off one lazy accumulator (see
    /// [`Evaluator::finish_key_switch`]), with `special_coeff` (`degree`
    /// long) and `delta` (`level × degree`, one row per data prime) as
    /// caller-owned work rows.
    ///
    /// When `out_perm` is given, the accumulator is read **through** the
    /// automorphism gather table — this is how the rotation fast path
    /// applies `σ` to the pre-automorphism accumulators of
    /// [`Evaluator::apply_rotation_into`], fused into reads the mod-down
    /// makes anyway. When `fold` carries a ciphertext polynomial, it is
    /// gathered through the same table and added into the output in the
    /// same pass — the permuted `c0` of a rotation never exists as a
    /// separate polynomial.
    fn mod_down_into(
        &self,
        flat: &[u64],
        level: usize,
        out_perm: Option<&[u32]>,
        fold: Option<&RnsPoly>,
        special_coeff: &mut [u64],
        delta: &mut [u64],
    ) -> RnsPoly {
        let basis = self.context.key_basis();
        let n = self.context.degree();
        let special = self.context.special_index();
        let p_value = self.context.params().special_prime();
        let half_p = p_value / 2;
        let idx_mask = n - 1;

        let special_row = &flat[level * n..(level + 1) * n];
        match out_perm {
            Some(table) => {
                for (d, &t) in special_coeff.iter_mut().zip(table) {
                    *d = special_row[t as usize & idx_mask];
                }
            }
            None => special_coeff.copy_from_slice(special_row),
        }
        basis.ntt_tables()[special].inverse(special_coeff);

        // Centered round of the special residue into every data prime in one
        // pass over the coefficients (the `> P/2` test is shared; each prime
        // gets its own reduction into its delta row) ...
        let consts: Vec<_> = (0..level)
            .map(|i| {
                let q_i = &basis.moduli()[i];
                let inv_p = q_i
                    .inv(q_i.reduce(p_value))
                    .expect("special prime is invertible modulo data primes");
                (q_i, q_i.shoup(inv_p), q_i.reduce(p_value))
            })
            .collect();
        for (ci, &c) in special_coeff.iter().enumerate() {
            let wrap = c > half_p;
            for (m, (q_i, _, p_mod_qi)) in consts.iter().enumerate() {
                let r = q_i.reduce(c);
                delta[m * n + ci] = if wrap { q_i.sub(r, *p_mod_qi) } else { r };
            }
        }

        // ... transformed lazily (outputs in [0, 4q)) and floored off in one
        // fused pass per row: acc − delta as the representative
        // `acc + 4q − delta < 6q`, then × P⁻¹ via the any-input Shoup
        // product, reduced once to canonical form.
        let mut data = Vec::with_capacity(level * n);
        for (m, (q_i, pre, _)) in consts.iter().enumerate() {
            let four_q = q_i.value() << 2;
            let drow = &mut delta[m * n..(m + 1) * n];
            basis.ntt_tables()[m].forward_lazy(drow);
            let acc_row = &flat[m * n..(m + 1) * n];
            let floored = |a: u64, d: u64| q_i.reduce_once(q_i.mul_shoup_lazy(a + four_q - d, pre));
            match (out_perm, fold) {
                (Some(table), Some(poly)) => {
                    let fold_row = &poly.residue(m)[..n];
                    data.extend(drow.iter().zip(table).map(|(&d, &t)| {
                        let s = t as usize & idx_mask;
                        q_i.add(floored(acc_row[s], d), fold_row[s])
                    }));
                }
                (Some(table), None) => {
                    data.extend(
                        drow.iter()
                            .zip(table)
                            .map(|(&d, &t)| floored(acc_row[t as usize & idx_mask], d)),
                    );
                }
                (None, Some(poly)) => {
                    let fold_row = &poly.residue(m)[..n];
                    data.extend(
                        acc_row
                            .iter()
                            .zip(drow.iter())
                            .zip(fold_row)
                            .map(|((&a, &d), &f)| q_i.add(floored(a, d), f)),
                    );
                }
                (None, None) => {
                    data.extend(
                        acc_row
                            .iter()
                            .zip(drow.iter())
                            .map(|(&a, &d)| floored(a, d)),
                    );
                }
            }
        }
        RnsPoly::from_flat(n, data, PolyForm::Ntt)
    }

    /// Key switching: given a polynomial `target` (NTT form, spanning `level`
    /// data primes) that multiplies some source key `s_src` in a decryption
    /// equation, produce `(d0, d1)` such that `d0 + d1·s ≈ target · s_src`.
    ///
    /// Composition of the three public primitives: decompose, lazy apply,
    /// finish.
    fn switch_key(&self, target: &RnsPoly, key: &KeySwitchKey, level: usize) -> (RnsPoly, RnsPoly) {
        let decomp = self.decompose_for_key_switch(target, level);
        let lazy = self.apply_key_switch_lazy(&decomp, key, None);
        self.finish_key_switch(lazy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::CkksEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParameters;

    struct Fixture {
        encoder: CkksEncoder,
        encryptor: Encryptor,
        decryptor: Decryptor,
        evaluator: Evaluator,
        keygen: KeyGenerator,
        slots: usize,
    }

    fn fixture() -> Fixture {
        let params = CkksParameters::new_insecure(256, &[40, 40, 40, 40], 45).unwrap();
        let ctx = CkksContext::new(params).unwrap();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 21);
        let pk = keygen.create_public_key();
        Fixture {
            encoder: CkksEncoder::new(ctx.clone()),
            encryptor: Encryptor::from_seed(ctx.clone(), pk, 22),
            decryptor: Decryptor::new(ctx.clone(), keygen.secret_key().clone()),
            evaluator: Evaluator::new(ctx),
            keygen,
            slots: 128,
        }
    }

    fn assert_close(actual: &[f64], expected: &[f64], tolerance: f64) {
        for (i, (a, b)) in actual.iter().zip(expected).enumerate() {
            assert!(
                (a - b).abs() < tolerance,
                "slot {i}: {a} vs expected {b} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn add_sub_negate() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = (0..f.slots).map(|i| (i as f64).cos()).collect();
        let ct_x = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_y = f.encryptor.encrypt(&f.encoder.encode(&ys, scale, 4));

        let sum = f.evaluator.add(&ct_x, &ct_y).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a + b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&sum, f.slots),
            &expected,
            1e-4,
        );

        let diff = f.evaluator.sub(&ct_x, &ct_y).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a - b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&diff, f.slots),
            &expected,
            1e-4,
        );

        let neg = f.evaluator.negate(&ct_x);
        let expected: Vec<f64> = xs.iter().map(|a| -a).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&neg, f.slots),
            &expected,
            1e-4,
        );
    }

    #[test]
    fn plaintext_operations() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| (i as f64 + 1.0) / 64.0).collect();
        let ps: Vec<f64> = (0..f.slots).map(|i| ((i % 7) as f64) - 3.0).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let pt = f.encoder.encode(&ps, scale, 4);

        let sum = f.evaluator.add_plain(&ct, &pt).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ps).map(|(a, b)| a + b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&sum, f.slots),
            &expected,
            1e-4,
        );

        let diff = f.evaluator.sub_plain(&ct, &pt).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ps).map(|(a, b)| a - b).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&diff, f.slots),
            &expected,
            1e-4,
        );

        let prod = f.evaluator.multiply_plain(&ct, &pt).unwrap();
        let expected: Vec<f64> = xs.iter().zip(&ps).map(|(a, b)| a * b).collect();
        assert_eq!(
            prod.scale_log2(),
            scale + scale,
            "multiply adds log2 scales"
        );
        assert_close(
            &f.decryptor.decrypt_to_values(&prod, f.slots),
            &expected,
            1e-3,
        );
    }

    #[test]
    fn multiply_relinearize_rescale() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots)
            .map(|i| (i as f64 / f.slots as f64) - 0.5)
            .collect();
        let ys: Vec<f64> = (0..f.slots).map(|i| ((i * 3) % 11) as f64 / 11.0).collect();
        let ct_x = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_y = f.encryptor.encrypt(&f.encoder.encode(&ys, scale, 4));
        let rk = f.keygen.create_relinearization_key();

        let raw = f.evaluator.multiply(&ct_x, &ct_y).unwrap();
        assert_eq!(raw.size(), 3);
        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(a, b)| a * b).collect();
        // Decrypting the 3-polynomial ciphertext directly must already work.
        assert_close(
            &f.decryptor.decrypt_to_values(&raw, f.slots),
            &expected,
            1e-3,
        );

        let relin = f.evaluator.relinearize(&raw, &rk).unwrap();
        assert_eq!(relin.size(), 2);
        assert_close(
            &f.decryptor.decrypt_to_values(&relin, f.slots),
            &expected,
            1e-3,
        );

        let rescaled = f.evaluator.rescale_to_next(&relin).unwrap();
        assert_eq!(rescaled.level(), 3);
        assert!((rescaled.scale_log2() - 40.0).abs() < 0.1);
        assert_close(
            &f.decryptor.decrypt_to_values(&rescaled, f.slots),
            &expected,
            1e-3,
        );
    }

    #[test]
    fn mod_switch_preserves_message_and_scale() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| (i % 5) as f64 * 0.2).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let switched = f.evaluator.mod_switch_to_next(&ct).unwrap();
        assert_eq!(switched.level(), 3);
        assert_eq!(switched.scale_log2(), scale);
        assert_close(
            &f.decryptor.decrypt_to_values(&switched, f.slots),
            &xs,
            1e-4,
        );
    }

    #[test]
    fn rotation_left_and_right() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| i as f64 / 10.0).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let gk = f.keygen.create_galois_keys(&[1, 3, -2]);

        for &step in &[1i64, 3, -2] {
            let rotated = f.evaluator.rotate(&ct, step, &gk).unwrap();
            let expected: Vec<f64> = (0..f.slots)
                .map(|i| {
                    let src = (i as i64 + step).rem_euclid(f.slots as i64) as usize;
                    xs[src]
                })
                .collect();
            assert_close(
                &f.decryptor.decrypt_to_values(&rotated, f.slots),
                &expected,
                1e-3,
            );
        }
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let mut f = fixture();
        let xs = vec![1.25; 128];
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, 40.0, 2));
        // Step 0 must require no Galois key at all — neither at keygen (no
        // key material is generated for it) nor at rotate time (no lookup).
        let gk = f.keygen.create_galois_keys(&[]);
        let out = f.evaluator.rotate(&ct, 0, &gk).unwrap();
        assert_eq!(out.polys(), ct.polys(), "step 0 is a bit-exact clone");
        assert_eq!(out.scale_log2(), ct.scale_log2(), "scale is preserved");
        assert_close(&f.decryptor.decrypt_to_values(&out, 128), &xs, 1e-4);
        // Same through the hoisted path.
        let hoisted = f.evaluator.rotate_hoisted(&ct, &[0], &gk).unwrap();
        assert_eq!(hoisted.len(), 1);
        assert_eq!(hoisted[0].polys(), ct.polys());
    }

    #[test]
    fn hoisted_rotations_are_bit_identical_to_sequential() {
        let mut f = fixture();
        let scale = 40.0;
        let xs: Vec<f64> = (0..f.slots).map(|i| (i as f64).sin()).collect();
        let ct = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let steps = [1i64, 3, -2, 0, 7];
        let gk = f.keygen.create_galois_keys(&steps);

        let hoisted = f.evaluator.rotate_hoisted(&ct, &steps, &gk).unwrap();
        assert_eq!(hoisted.len(), steps.len());
        for (h, &step) in hoisted.iter().zip(&steps) {
            let sequential = f.evaluator.rotate(&ct, step, &gk).unwrap();
            assert_eq!(h.polys(), sequential.polys(), "step {step}");
            assert_eq!(h.scale_log2(), sequential.scale_log2());
            let expected: Vec<f64> = (0..f.slots)
                .map(|i| xs[(i as i64 + step).rem_euclid(f.slots as i64) as usize])
                .collect();
            assert_close(&f.decryptor.decrypt_to_values(h, f.slots), &expected, 1e-3);
        }
    }

    #[test]
    fn constraint_violations_are_reported() {
        let mut f = fixture();
        let scale = 40.0;
        let xs = vec![0.5; 128];
        let ct_high = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_low = f.evaluator.mod_switch_to_next(&ct_high).unwrap();

        // Level mismatch (Constraint 1).
        assert!(matches!(
            f.evaluator.add(&ct_high, &ct_low),
            Err(CkksError::LevelMismatch { .. })
        ));

        // Scale mismatch (Constraint 2).
        let other_scale = f.encryptor.encrypt(&f.encoder.encode(&xs, 30.0, 4));
        assert!(matches!(
            f.evaluator.add(&ct_high, &other_scale),
            Err(CkksError::ScaleMismatch { .. })
        ));

        // Too many polynomials (Constraint 3).
        let product = f.evaluator.multiply(&ct_high, &ct_high).unwrap();
        assert!(matches!(
            f.evaluator.multiply(&product, &ct_high),
            Err(CkksError::TooManyPolynomials { .. })
        ));

        // Missing rotation key.
        let gk = f.keygen.create_galois_keys(&[1]);
        assert!(matches!(
            f.evaluator.rotate(&ct_high, 7, &gk),
            Err(CkksError::MissingGaloisKey { step: 7 })
        ));

        // Exhausted modulus chain.
        let mut ct = ct_high.clone();
        for _ in 0..3 {
            ct = f.evaluator.mod_switch_to_next(&ct).unwrap();
        }
        assert!(matches!(
            f.evaluator.mod_switch_to_next(&ct),
            Err(CkksError::ModulusChainExhausted)
        ));
    }

    #[test]
    fn deep_polynomial_evaluation_x2y3() {
        // The paper's running example (Figure 2): x^2 * y^3 with rescaling.
        let mut f = fixture();
        let xs: Vec<f64> = (0..f.slots).map(|i| 0.3 + (i % 4) as f64 * 0.1).collect();
        let ys: Vec<f64> = (0..f.slots).map(|i| 0.5 + (i % 3) as f64 * 0.05).collect();
        let rk = f.keygen.create_relinearization_key();
        let scale = 40.0;

        let ct_x = f.encryptor.encrypt(&f.encoder.encode(&xs, scale, 4));
        let ct_y = f.encryptor.encrypt(&f.encoder.encode(&ys, scale, 4));

        // x^2, rescale once.
        let x2 = f
            .evaluator
            .relinearize(&f.evaluator.square(&ct_x).unwrap(), &rk)
            .unwrap();
        let x2 = f.evaluator.rescale_to_next(&x2).unwrap();
        // y^2, rescale once; y^3 = y^2 * (y at the lower level), rescale again.
        let y2 = f
            .evaluator
            .relinearize(&f.evaluator.square(&ct_y).unwrap(), &rk)
            .unwrap();
        let y2 = f.evaluator.rescale_to_next(&y2).unwrap();
        let y_low = f.evaluator.mod_switch_to_next(&ct_y).unwrap();
        let y3 = f
            .evaluator
            .relinearize(&f.evaluator.multiply(&y2, &y_low).unwrap(), &rk)
            .unwrap();
        let y3 = f.evaluator.rescale_to_next(&y3).unwrap();
        // x^2 down to y^3's level, then multiply.
        let x2_low = f.evaluator.mod_switch_to_next(&x2).unwrap();
        let result = f
            .evaluator
            .relinearize(&f.evaluator.multiply(&x2_low, &y3).unwrap(), &rk)
            .unwrap();
        let result = f.evaluator.rescale_to_next(&result).unwrap();

        let expected: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| x * x * y * y * y).collect();
        assert_close(
            &f.decryptor.decrypt_to_values(&result, f.slots),
            &expected,
            1e-2,
        );
    }
}
