//! Key material and key generation: secret, public, relinearization and
//! Galois keys.
//!
//! Key switching follows the RNS "one digit per data prime, one special prime"
//! construction used by SEAL: the key for digit `j` hides `(P mod q_j) · s_src`
//! in its `q_j` residue, so that accumulating `d_j ·` key over all digits and
//! flooring away the special prime `P` yields an encryption of
//! `target · s_src` under the target secret `s`.

use std::collections::HashMap;
use std::sync::OnceLock;

use eva_math::galois::GaloisTool;
use eva_poly::{PolyForm, RnsBasis, RnsPoly};
use rand::rngs::{ChaCha20Rng, StdRng};
use rand::{RngCore, SeedableRng};

use crate::context::CkksContext;
use crate::error::CkksError;

/// The secret key: a uniformly random ternary polynomial.
///
/// Deliberately **not** serializable: `eva-wire` implements codecs for every
/// other runtime object but provides no encoder for this type, so a secret
/// key can never be framed onto a socket by the service layer.
#[derive(Debug, Clone)]
pub struct SecretKey {
    /// `s` in NTT form over the full key basis (data primes + special prime).
    pub(crate) ntt: RnsPoly,
    /// `s` in coefficient form, needed to derive Galois-rotated keys.
    pub(crate) coeff: RnsPoly,
}

impl SecretKey {
    /// Raw little-endian bytes of the first residue row of `s` in coefficient
    /// form, exposed **only** so deployment tests can scan captured network
    /// traffic and assert these bytes never appear on the wire. Do not use
    /// for anything else.
    pub fn leak_probe(&self) -> Vec<u8> {
        self.coeff
            .residue(0)
            .iter()
            .flat_map(|&c| c.to_le_bytes())
            .collect()
    }
}

/// The public encryption key `(-(a·s + e), a)` over the full key basis.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) p0: RnsPoly,
    pub(crate) p1: RnsPoly,
}

impl PublicKey {
    /// Reassembles a public key from its two polynomials (the inverse of
    /// [`PublicKey::p0`] / [`PublicKey::p1`]; used by the wire codec).
    ///
    /// # Panics
    ///
    /// Panics if the polynomials disagree in degree or level.
    pub fn from_parts(p0: RnsPoly, p1: RnsPoly) -> Self {
        assert_eq!(p0.degree(), p1.degree(), "public key degree mismatch");
        assert_eq!(p0.level(), p1.level(), "public key level mismatch");
        Self { p0, p1 }
    }

    /// The `-(a·s + e)` component.
    pub fn p0(&self) -> &RnsPoly {
        &self.p0
    }

    /// The uniformly random `a` component.
    pub fn p1(&self) -> &RnsPoly {
        &self.p1
    }
}

/// A generic key-switching key: one `(k0_j, k1_j)` pair per data prime digit.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    pub(crate) digits: Vec<(RnsPoly, RnsPoly)>,
    /// Per-digit Shoup quotients (`floor(k·2^64/q)` for every key element,
    /// flat `rows × degree` matching the digit polynomials), built lazily on
    /// the first key switch and reused by every later apply. A cache of
    /// derived constants only — never serialized, never compared.
    pub(crate) shoup: OnceLock<Vec<(Vec<u64>, Vec<u64>)>>,
}

impl KeySwitchKey {
    /// Reassembles a key-switching key from its digit pairs (wire codec
    /// constructor).
    pub fn from_digits(digits: Vec<(RnsPoly, RnsPoly)>) -> Self {
        Self {
            digits,
            shoup: OnceLock::new(),
        }
    }

    /// The `(k0_j, k1_j)` pair for every data prime digit `j`.
    pub fn digits(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.digits
    }

    /// The Shoup quotient tables for this key's digits over `basis`, built
    /// on first use (one `u128` division per key element, amortized across
    /// every subsequent key-switch apply).
    pub(crate) fn shoup_quotients(&self, basis: &RnsBasis) -> &[(Vec<u64>, Vec<u64>)] {
        self.shoup.get_or_init(|| {
            let quotients = |poly: &RnsPoly| -> Vec<u64> {
                let mut flat = Vec::with_capacity(poly.level() * poly.degree());
                for (row, modulus) in poly.rows().zip(basis.moduli()) {
                    flat.extend(row.iter().map(|&k| modulus.shoup(k).quotient));
                }
                flat
            };
            self.digits
                .iter()
                .map(|(k0, k1)| (quotients(k0), quotients(k1)))
                .collect()
        })
    }
}

/// Relinearization key: switches the `s²` component of a freshly multiplied
/// ciphertext back to the secret `s` (the paper's RELINEARIZE target).
#[derive(Debug, Clone)]
pub struct RelinearizationKey {
    pub(crate) key: KeySwitchKey,
}

impl RelinearizationKey {
    /// Reassembles a relinearization key from its key-switching key (wire
    /// codec constructor).
    pub fn from_key_switch_key(key: KeySwitchKey) -> Self {
        Self { key }
    }

    /// The underlying key-switching key (from `s²` to `s`).
    pub fn key_switch_key(&self) -> &KeySwitchKey {
        &self.key
    }
}

/// Rotation (Galois) keys for a chosen set of rotation steps.
///
/// As the paper notes (Section 2.1), *each rotation step count needs a
/// distinct public key*; the EVA compiler's rotation-selection pass determines
/// which steps to generate keys for.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    /// Galois element → switching key (from the rotated secret to `s`).
    pub(crate) keys: HashMap<u64, KeySwitchKey>,
    /// Rotation step → Galois element, for convenient lookup.
    pub(crate) steps: HashMap<i64, u64>,
    /// Galois element → rotation-ready key form, built lazily on the first
    /// rotation and shared by every later one. Derived constants only —
    /// never serialized, never compared.
    pub(crate) tables: OnceLock<HashMap<u64, RotationKey>>,
}

/// Rotation-ready form of one Galois key.
///
/// Holds the NTT-domain automorphism gather table plus, per digit, the
/// **inverse-permuted** key operands interleaved with their Shoup quotients
/// (`[k0, q0, k1, q1]` per ring index, row-major over the key basis).
/// Because `σ(d)·k = σ(d · σ⁻¹(k))`, storing `σ⁻¹(k)` lets the fan-out
/// multiply-accumulate read every stream linearly; the automorphism gather
/// moves into the mod-down, fused into passes it already makes.
#[derive(Debug, Clone)]
pub(crate) struct RotationKey {
    /// `output[i] = input[table[i]]` gather table for the automorphism.
    pub(crate) table: Vec<u32>,
    /// One flat `rows × degree × 4` interleaved stream per digit.
    pub(crate) digits: Vec<Vec<u64>>,
}

impl GaloisKeys {
    /// Reassembles Galois keys from `(step, element)` pairs and
    /// `(element, key)` pairs (wire codec constructor). The caller is
    /// responsible for the referential integrity the codec validates (every
    /// step's element has a key); a dangling element surfaces later as
    /// [`CkksError::MissingGaloisKey`].
    pub fn from_parts(steps: Vec<(i64, u64)>, keys: Vec<(u64, KeySwitchKey)>) -> Self {
        Self {
            steps: steps.into_iter().collect(),
            keys: keys.into_iter().collect(),
            tables: OnceLock::new(),
        }
    }

    /// The `(step, Galois element)` pairs, sorted by step (deterministic
    /// iteration order for serialization).
    pub fn step_elements(&self) -> Vec<(i64, u64)> {
        let mut pairs: Vec<(i64, u64)> = self.steps.iter().map(|(&s, &e)| (s, e)).collect();
        pairs.sort_unstable_by_key(|&(s, _)| s);
        pairs
    }

    /// The `(Galois element, key)` pairs, sorted by element (deterministic
    /// iteration order for serialization).
    pub fn element_keys(&self) -> Vec<(u64, &KeySwitchKey)> {
        let mut pairs: Vec<(u64, &KeySwitchKey)> = self.keys.iter().map(|(&e, k)| (e, k)).collect();
        pairs.sort_unstable_by_key(|&(e, _)| e);
        pairs
    }

    /// The rotation steps for which keys are present.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Whether a key for the given rotation step exists.
    pub fn supports_step(&self, step: i64) -> bool {
        self.steps.contains_key(&step)
    }

    pub(crate) fn key_for_step(&self, step: i64) -> Result<(u64, &KeySwitchKey), CkksError> {
        let elt = *self
            .steps
            .get(&step)
            .ok_or(CkksError::MissingGaloisKey { step })?;
        let key = self
            .keys
            .get(&elt)
            .ok_or(CkksError::MissingGaloisKey { step })?;
        Ok((elt, key))
    }

    /// The cached rotation-ready form of the key for `elt`, computing the
    /// forms for every held Galois element on first use (one scatter and
    /// one Shoup division per key element, amortized across every later
    /// rotation).
    pub(crate) fn rotation_key_for(
        &self,
        elt: u64,
        galois: &GaloisTool,
        basis: &RnsBasis,
    ) -> &RotationKey {
        let cache = self.tables.get_or_init(|| {
            self.keys
                .iter()
                .map(|(&e, key)| {
                    let table = galois.ntt_permutation(e);
                    let n = table.len();
                    let digits = key
                        .digits
                        .iter()
                        .map(|(k0, k1)| {
                            let mut flat = vec![0u64; k0.level() * n * 4];
                            for (m, ((r0, r1), modulus)) in
                                k0.rows().zip(k1.rows()).zip(basis.moduli()).enumerate()
                            {
                                let dst = &mut flat[m * n * 4..(m + 1) * n * 4];
                                // Scatter through the table: the permuted key
                                // satisfies `k'[table[i]] = k[i]`, i.e.
                                // `k' = σ⁻¹(k)` for the gather convention
                                // `σ(x)[i] = x[table[i]]`.
                                for i in 0..n {
                                    let d = 4 * table[i] as usize;
                                    dst[d] = r0[i];
                                    dst[d + 1] = modulus.shoup(r0[i]).quotient;
                                    dst[d + 2] = r1[i];
                                    dst[d + 3] = modulus.shoup(r1[i]).quotient;
                                }
                            }
                            flat
                        })
                        .collect();
                    (e, RotationKey { table, digits })
                })
                .collect()
        });
        &cache[&elt]
    }
}

/// Generates all key material for one [`CkksContext`].
///
/// The generator owns its RNG. [`KeyGenerator::new`] keys a ChaCha20 CSPRNG
/// stand-in from OS entropy (the security-relevant path); use
/// [`KeyGenerator::from_seed`] for reproducible keys in tests and benchmarks,
/// which deliberately keeps the fast deterministic xoshiro256** generator.
pub struct KeyGenerator {
    context: CkksContext,
    secret: SecretKey,
    rng: Box<dyn RngCore + Send + Sync>,
}

impl std::fmt::Debug for KeyGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyGenerator")
            .field("degree", &self.context.degree())
            .finish()
    }
}

impl KeyGenerator {
    /// Creates a key generator with a fresh random secret key, drawing all
    /// randomness from a ChaCha20 generator keyed from OS entropy.
    pub fn new(context: CkksContext) -> Self {
        Self::with_rng(context, Box::new(ChaCha20Rng::from_os_entropy()))
    }

    /// Creates a key generator whose secret key and all subsequently generated
    /// keys are derived deterministically from `seed` (xoshiro256**; test and
    /// benchmark fixtures only — not a CSPRNG).
    pub fn from_seed(context: CkksContext, seed: u64) -> Self {
        Self::with_rng(context, Box::new(StdRng::seed_from_u64(seed)))
    }

    fn with_rng(context: CkksContext, mut rng: Box<dyn RngCore + Send + Sync>) -> Self {
        let secret = Self::generate_secret(&context, &mut *rng);
        Self {
            context,
            secret,
            rng,
        }
    }

    fn generate_secret(context: &CkksContext, rng: &mut (dyn RngCore + Send + Sync)) -> SecretKey {
        let basis = context.key_basis();
        let n = context.degree();
        let ternary = eva_math::sample_ternary(rng, n);
        let signed: Vec<i64> = ternary.iter().map(|&v| v as i64).collect();
        let coeff = basis.poly_from_signed(&signed, basis.len());
        let mut ntt = coeff.clone();
        ntt.to_ntt(basis);
        SecretKey { ntt, coeff }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.secret
    }

    /// Samples a uniformly random polynomial directly in NTT form over the
    /// first `level` primes of the key basis.
    fn sample_uniform_ntt(&mut self, level: usize) -> RnsPoly {
        let basis = self.context.key_basis();
        let mut poly = RnsPoly::zero(basis.degree(), level, PolyForm::Ntt);
        for (row, modulus) in poly.rows_mut().zip(basis.moduli()) {
            eva_math::sample_uniform_into(&mut self.rng, row, modulus);
        }
        poly
    }

    /// Samples a small error polynomial over the first `level` primes, NTT form.
    fn sample_error_ntt(&mut self, level: usize) -> RnsPoly {
        let basis = self.context.key_basis();
        let cbd = eva_math::sample_cbd(&mut self.rng, basis.degree());
        let signed: Vec<i64> = cbd.iter().map(|&v| v as i64).collect();
        let mut poly = basis.poly_from_signed(&signed, level);
        poly.to_ntt(basis);
        poly
    }

    /// Generates a public key.
    pub fn create_public_key(&mut self) -> PublicKey {
        let context = self.context.clone();
        let basis = context.key_basis();
        let full = basis.len();
        let a = self.sample_uniform_ntt(full);
        let e = self.sample_error_ntt(full);
        // p0 = -(a*s + e)
        let mut p0 = a.dyadic_mul(&self.secret.ntt, basis);
        p0.add_assign(&e, basis);
        p0.negate(basis);
        PublicKey { p0, p1: a }
    }

    /// Generates a relinearization key (switching from `s²` to `s`).
    pub fn create_relinearization_key(&mut self) -> RelinearizationKey {
        let basis = self.context.key_basis();
        let s_squared = self.secret.ntt.dyadic_mul(&self.secret.ntt, basis);
        RelinearizationKey {
            key: self.create_key_switch_key(&s_squared),
        }
    }

    /// Generates Galois keys for the given rotation steps.
    ///
    /// Duplicate steps are collapsed; step 0 is skipped entirely — a
    /// rotation by zero is a no-op clone in the evaluator, so no key
    /// material is generated (and none needs to be uploaded) for it.
    pub fn create_galois_keys(&mut self, steps: &[i64]) -> GaloisKeys {
        let context = self.context.clone();
        let basis = context.key_basis();
        let mut galois_keys = GaloisKeys::default();
        for &step in steps {
            if step == 0 {
                continue;
            }
            let elt = self.context.galois().galois_elt_from_step(step);
            galois_keys.steps.insert(step, elt);
            if galois_keys.keys.contains_key(&elt) {
                continue;
            }
            // Source key: s composed with the automorphism.
            let mut rotated = self.secret.coeff.apply_galois(elt, basis);
            rotated.to_ntt(basis);
            let key = self.create_key_switch_key(&rotated);
            galois_keys.keys.insert(elt, key);
        }
        galois_keys
    }

    /// Builds a key-switching key from `source` (an NTT-form polynomial over
    /// the full key basis, e.g. `s²` or a rotated `s`) to the secret key.
    fn create_key_switch_key(&mut self, source: &RnsPoly) -> KeySwitchKey {
        let context = self.context.clone();
        let basis = context.key_basis();
        let full = basis.len();
        let special = context.special_index();
        let p_value = context.params().special_prime();
        let digit_count = context.max_level();
        let mut digits = Vec::with_capacity(digit_count);
        for j in 0..digit_count {
            let a = self.sample_uniform_ntt(full);
            let e = self.sample_error_ntt(full);
            // k0 = -(a*s + e) with (P mod q_j) * source added into residue j.
            let mut k0 = a.dyadic_mul(&self.secret.ntt, basis);
            k0.add_assign(&e, basis);
            k0.negate(basis);
            let q_j = &basis.moduli()[j];
            let p_mod_qj = q_j.reduce(p_value);
            let pre = q_j.shoup(p_mod_qj);
            let src_row = source.residue(j);
            let row = k0.residue_mut(j);
            for (dst, &src) in row.iter_mut().zip(src_row) {
                *dst = q_j.add(*dst, q_j.mul_shoup(src, &pre));
            }
            debug_assert!(special == full - 1);
            digits.push((k0, a));
        }
        KeySwitchKey::from_digits(digits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParameters;

    fn context() -> CkksContext {
        let params = CkksParameters::new_insecure(64, &[40, 40], 45).unwrap();
        CkksContext::new(params).unwrap()
    }

    #[test]
    fn secret_key_is_ternary() {
        let ctx = context();
        let keygen = KeyGenerator::from_seed(ctx.clone(), 1);
        let coeff = &keygen.secret_key().coeff;
        let q0 = ctx.key_basis().moduli()[0].value();
        for &c in coeff.residue(0) {
            assert!(
                c == 0 || c == 1 || c == q0 - 1,
                "non-ternary coefficient {c}"
            );
        }
    }

    #[test]
    fn entropy_keyed_generators_produce_distinct_secrets() {
        // KeyGenerator::new draws from the ChaCha20 CSPRNG path.
        let ctx = context();
        let a = KeyGenerator::new(ctx.clone());
        let b = KeyGenerator::new(ctx);
        assert_ne!(
            a.secret_key().coeff,
            b.secret_key().coeff,
            "two entropy-keyed generators must not share a secret"
        );
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let ctx = context();
        let a = KeyGenerator::from_seed(ctx.clone(), 42);
        let b = KeyGenerator::from_seed(ctx, 42);
        assert_eq!(a.secret_key().coeff, b.secret_key().coeff);
    }

    #[test]
    fn public_key_decrypts_to_small_error() {
        // p0 + p1*s = -e must decode to near-zero under the secret key.
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 3);
        let pk = keygen.create_public_key();
        let basis = ctx.key_basis();
        let mut check = pk.p1.dyadic_mul(&keygen.secret_key().ntt, basis);
        check.add_assign(&pk.p0, basis);
        check.to_coeff(basis);
        // Interpret each coefficient modulo the first prime, centered: must be tiny.
        let q0 = basis.moduli()[0];
        for &c in check.residue(0) {
            let centered = if c > q0.value() / 2 {
                c as i64 - q0.value() as i64
            } else {
                c as i64
            };
            assert!(
                centered.abs() < 64,
                "error coefficient too large: {centered}"
            );
        }
    }

    #[test]
    fn galois_keys_track_requested_steps() {
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx, 4);
        let gk = keygen.create_galois_keys(&[1, 2, -1, 2]);
        assert!(gk.supports_step(1));
        assert!(gk.supports_step(-1));
        assert!(gk.supports_step(2));
        assert!(!gk.supports_step(5));
        assert_eq!(gk.step_count(), 3);
        assert!(gk.key_for_step(5).is_err());
    }

    #[test]
    fn step_zero_generates_no_key_material() {
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx, 11);
        let gk = keygen.create_galois_keys(&[0, 1, 0]);
        // Rotation by zero is a no-op clone in the evaluator, so requesting
        // it must not cost any key material (elt = 1 would otherwise be a
        // full useless key-switch key) nor a steps entry.
        assert_eq!(gk.step_count(), 1);
        assert!(gk.supports_step(1));
        assert!(!gk.supports_step(0));
        assert_eq!(gk.keys.len(), 1);
        assert!(!gk.keys.contains_key(&1));
    }

    /// Pins the canonicalization contract documented in
    /// `eva-core::analysis::rotations`: on the slot count `nh`, the Galois
    /// element is `5^(step mod nh) mod 2N`, so a right rotation by `s`
    /// (spelled `−s`) and its canonical left form `nh − s` derive the *same*
    /// automorphism — and therefore share one key-switch key.
    #[test]
    fn galois_element_of_negative_step_matches_canonical_left_form() {
        let ctx = context();
        let nh = ctx.slot_count() as i64;
        let tool = ctx.galois();
        for s in 1..nh {
            assert_eq!(
                tool.galois_elt_from_step(-s),
                tool.galois_elt_from_step(nh - s),
                "galois_elt(−{s}) must equal galois_elt({nh} − {s})"
            );
        }
        // The shared element means the generated key material is shared too:
        // requesting both spellings yields two step entries, one key.
        let mut keygen = KeyGenerator::from_seed(ctx, 9);
        let gk = keygen.create_galois_keys(&[-3, nh - 3]);
        assert_eq!(gk.step_count(), 2);
        let (elt_neg, _) = gk.key_for_step(-3).unwrap();
        let (elt_left, _) = gk.key_for_step(nh - 3).unwrap();
        assert_eq!(elt_neg, elt_left);
        assert_eq!(gk.keys.len(), 1, "one automorphism, one key");
    }

    #[test]
    fn relin_key_has_one_digit_per_data_prime() {
        let ctx = context();
        let mut keygen = KeyGenerator::from_seed(ctx.clone(), 5);
        let rk = keygen.create_relinearization_key();
        assert_eq!(rk.key.digits.len(), ctx.max_level());
        for (k0, k1) in &rk.key.digits {
            assert_eq!(k0.level(), ctx.key_basis().len());
            assert_eq!(k1.level(), ctx.key_basis().len());
        }
    }
}
