//! A pure-Rust implementation of the RNS-CKKS homomorphic encryption scheme.
//!
//! This crate plays the role Microsoft SEAL plays for the EVA paper: it is the
//! execution target the compiled EVA programs run against. It implements the
//! RNS variant of CKKS (Cheon et al., "A full RNS variant of approximate
//! homomorphic encryption"): batched fixed-point vectors are encoded into
//! integer polynomials, encrypted under Ring-LWE, and evaluated with
//! element-wise addition, multiplication and slot rotation, with explicit
//! RESCALE / MODSWITCH / RELINEARIZE maintenance operations — exactly the
//! instruction set the EVA language exposes (paper Table 2).
//!
//! # Components
//!
//! * [`CkksParameters`] / [`CkksContext`] — encryption parameters validated
//!   against the 128-bit security standard, and the precomputed state derived
//!   from them.
//! * [`CkksEncoder`] — canonical-embedding encoding of real vectors.
//! * [`KeyGenerator`], [`PublicKey`], [`SecretKey`], [`RelinearizationKey`],
//!   [`GaloisKeys`] — key material.
//! * [`Encryptor`] / [`Decryptor`] — public-key encryption and decryption.
//! * [`SymmetricEncryptor`] / [`SeededCiphertext`] — secret-key encryption
//!   whose uniform `a` polynomial travels as a 32-byte ChaCha20 seed,
//!   halving fresh-ciphertext wire bytes (the deployment transport form).
//! * [`Evaluator`] — the homomorphic operations (one per EVA opcode).
//!
//! # Example
//!
//! ```
//! use eva_ckks::{
//!     CkksContext, CkksEncoder, CkksParameters, Decryptor, Encryptor, Evaluator, KeyGenerator,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 8192 is the smallest degree whose security budget fits three 40-bit data
//! // primes plus the 60-bit special prime. The extra prime below the scale
//! // leaves room for the result after one rescale.
//! let params = CkksParameters::new(8192, &[40, 40, 40])?;
//! let context = CkksContext::new(params)?;
//! let mut keygen = KeyGenerator::new(context.clone());
//! let public_key = keygen.create_public_key();
//! let relin_key = keygen.create_relinearization_key();
//!
//! let encoder = CkksEncoder::new(context.clone());
//! let mut encryptor = Encryptor::new(context.clone(), public_key);
//! let decryptor = Decryptor::new(context.clone(), keygen.secret_key().clone());
//! let evaluator = Evaluator::new(context);
//!
//! let values = vec![1.5, -2.0, 0.25, 3.0];
//! // Scales are handled in the log2 domain: 40.0 means a scale of 2^40.
//! let scale_log2 = 40.0;
//! // Encode at the top level (3 data primes are available).
//! let ct = encryptor.encrypt(&encoder.encode(&values, scale_log2, 3));
//! let squared = evaluator.relinearize(&evaluator.square(&ct)?, &relin_key)?;
//! let squared = evaluator.rescale_to_next(&squared)?;
//! let result = decryptor.decrypt_to_values(&squared, 4);
//! assert!((result[0] - 2.25).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ciphertext;
pub mod context;
pub mod encoder;
pub mod encrypt;
pub mod error;
pub mod evaluator;
pub mod keys;
pub mod params;

pub use ciphertext::{Ciphertext, SeededCiphertext};
pub use context::CkksContext;
pub use encoder::{CkksEncoder, Plaintext};
pub use encrypt::{Decryptor, Encryptor, SymmetricEncryptor};
pub use error::CkksError;
pub use evaluator::{Evaluator, KeySwitchDecomposition, LazyKeySwitchAcc};
pub use keys::{GaloisKeys, KeyGenerator, KeySwitchKey, PublicKey, RelinearizationKey, SecretKey};
pub use params::{max_coeff_modulus_bits, minimal_degree_for_bits, CkksParameters, ParameterError};
