//! Encryption parameters and the security-standard validation table.
//!
//! The EVA compiler emits a vector of prime bit sizes (Section 6.2 of the
//! paper); [`CkksParameters`] turns that into an actual prime chain and checks
//! it against the homomorphic encryption security standard's bound on
//! `log2 Q` for each ring degree at 128-bit security, exactly as SEAL does
//! when it validates parameters.

use eva_math::primes::{generate_ntt_primes, PrimeGenError};

/// Maximum total bits of the coefficient modulus (including the special prime)
/// admissible at 128-bit security for a given ring degree, following the
/// HomomorphicEncryption.org security standard (and extrapolating one doubling
/// for degree 65536, which the standard tables stop short of).
pub fn max_coeff_modulus_bits(degree: usize) -> Option<u32> {
    match degree {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        65536 => Some(1762),
        _ => None,
    }
}

/// Returns the smallest supported ring degree whose 128-bit-security budget can
/// accommodate `total_bits` bits of coefficient modulus.
pub fn minimal_degree_for_bits(total_bits: u32) -> Option<usize> {
    for degree in [1024usize, 2048, 4096, 8192, 16384, 32768, 65536] {
        if let Some(max) = max_coeff_modulus_bits(degree) {
            if total_bits <= max {
                return Some(degree);
            }
        }
    }
    None
}

/// The standard security level targeted by every context in this crate.
pub const SECURITY_BITS: u32 = 128;

/// Maximum bit size of any single prime (SEAL's limit; the paper's `log2 s_f`).
pub const MAX_PRIME_BITS: u32 = 60;

/// CKKS encryption parameters: a ring degree, a chain of data primes and one
/// special key-switching prime.
///
/// The data primes are ordered such that RESCALE consumes them **from the
/// back** (the last data prime is divided away first), which matches the
/// "rescale chain" orientation the EVA compiler reasons about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkksParameters {
    degree: usize,
    data_primes: Vec<u64>,
    special_prime: u64,
    data_prime_bits: Vec<u32>,
    special_prime_bits: u32,
}

/// Errors from building or validating [`CkksParameters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParameterError {
    /// The ring degree is not one of the supported powers of two.
    UnsupportedDegree(usize),
    /// A prime bit size exceeds [`MAX_PRIME_BITS`] or is smaller than 2.
    InvalidPrimeBits(u32),
    /// The total modulus is too large for the degree at 128-bit security.
    InsecureModulus {
        /// Ring degree requested.
        degree: usize,
        /// Total modulus bits requested (including the special prime).
        requested_bits: u32,
        /// Maximum bits allowed at 128-bit security.
        allowed_bits: u32,
    },
    /// At least one data prime is required.
    EmptyChain,
    /// Prime generation failed.
    PrimeGeneration(String),
}

impl std::fmt::Display for ParameterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParameterError::UnsupportedDegree(n) => write!(f, "unsupported ring degree {n}"),
            ParameterError::InvalidPrimeBits(b) => write!(f, "invalid prime bit size {b}"),
            ParameterError::InsecureModulus {
                degree,
                requested_bits,
                allowed_bits,
            } => write!(
                f,
                "coefficient modulus of {requested_bits} bits exceeds the {allowed_bits}-bit \
                 budget of degree {degree} at 128-bit security"
            ),
            ParameterError::EmptyChain => write!(f, "at least one data prime is required"),
            ParameterError::PrimeGeneration(msg) => write!(f, "prime generation failed: {msg}"),
        }
    }
}

impl std::error::Error for ParameterError {}

impl From<PrimeGenError> for ParameterError {
    fn from(err: PrimeGenError) -> Self {
        ParameterError::PrimeGeneration(err.to_string())
    }
}

impl CkksParameters {
    /// Builds parameters from a ring degree and the bit sizes of the data
    /// primes (rescale order: the **last** entry is consumed by the first
    /// RESCALE). A 60-bit special prime is appended automatically.
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError`] if the degree is unsupported, a bit size is
    /// out of range, or the resulting modulus violates 128-bit security.
    pub fn new(degree: usize, data_prime_bits: &[u32]) -> Result<Self, ParameterError> {
        Self::with_special_prime_bits(degree, data_prime_bits, MAX_PRIME_BITS)
    }

    /// Like [`CkksParameters::new`] but with an explicit special-prime size.
    ///
    /// # Errors
    ///
    /// See [`CkksParameters::new`].
    pub fn with_special_prime_bits(
        degree: usize,
        data_prime_bits: &[u32],
        special_prime_bits: u32,
    ) -> Result<Self, ParameterError> {
        let allowed =
            max_coeff_modulus_bits(degree).ok_or(ParameterError::UnsupportedDegree(degree))?;
        let requested: u32 = data_prime_bits.iter().sum::<u32>() + special_prime_bits;
        if requested > allowed {
            return Err(ParameterError::InsecureModulus {
                degree,
                requested_bits: requested,
                allowed_bits: allowed,
            });
        }
        let params = Self::build(degree, data_prime_bits, special_prime_bits)?;
        // The closest-prime search may land primes slightly above 2^s, so the
        // nominal sum can under-count the real modulus; enforce the standard's
        // bound on the exact log2 Q too.
        let exact = params.total_modulus_bits();
        if exact > f64::from(allowed) {
            return Err(ParameterError::InsecureModulus {
                degree,
                requested_bits: exact.ceil() as u32,
                allowed_bits: allowed,
            });
        }
        Ok(params)
    }

    /// Builds parameters directly from **actual prime values** — the chain
    /// the EVA compiler's parameter selection resolved and annotated exact
    /// scales against. Using the very same primes on the backend is what
    /// keeps the compiler's scale predictions bit-identical to the scales
    /// the evaluator observes.
    ///
    /// When `enforce_security` is set, the 128-bit bound on `log2 Q` is
    /// validated exactly as in [`CkksParameters::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError`] if the degree is unsupported, a prime is
    /// out of the supported bit range, not NTT-friendly for the degree
    /// (`q ≢ 1 mod 2N`), duplicated, or the modulus violates the requested
    /// security bound.
    pub fn from_primes(
        degree: usize,
        data_primes: &[u64],
        special_prime: u64,
        enforce_security: bool,
    ) -> Result<Self, ParameterError> {
        if degree < 8 || !degree.is_power_of_two() {
            return Err(ParameterError::UnsupportedDegree(degree));
        }
        if data_primes.is_empty() {
            return Err(ParameterError::EmptyChain);
        }
        // Primes are sized by their *nominal* bit count (the s minimizing
        // |log2 q − s|): the closest-prime search may pick a prime slightly
        // above 2^s, whose raw bit count is s + 1.
        let bits_of = eva_math::nominal_prime_bits;
        let mut chain: Vec<u64> = data_primes.to_vec();
        chain.push(special_prime);
        for &q in &chain {
            if q < 2 {
                return Err(ParameterError::InvalidPrimeBits(0));
            }
            let bits = bits_of(q);
            if !(2..=MAX_PRIME_BITS).contains(&bits) {
                return Err(ParameterError::InvalidPrimeBits(bits));
            }
            if q % (2 * degree as u64) != 1 {
                return Err(ParameterError::PrimeGeneration(format!(
                    "prime {q} is not NTT-friendly for degree {degree}"
                )));
            }
        }
        let mut sorted = chain.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != chain.len() {
            return Err(ParameterError::PrimeGeneration(
                "duplicate primes in the modulus chain".into(),
            ));
        }
        let data_prime_bits: Vec<u32> = data_primes.iter().map(|&q| bits_of(q)).collect();
        let special_prime_bits = bits_of(special_prime);
        if enforce_security {
            let allowed =
                max_coeff_modulus_bits(degree).ok_or(ParameterError::UnsupportedDegree(degree))?;
            // Check the standard's bound against the *exact* log2 Q, not the
            // nominal bit sum: primes just above 2^s would otherwise let a
            // chain slip past the table by a fraction of a bit per prime.
            let exact: f64 = chain.iter().map(|&q| (q as f64).log2()).sum();
            if exact > f64::from(allowed) {
                return Err(ParameterError::InsecureModulus {
                    degree,
                    requested_bits: exact.ceil() as u32,
                    allowed_bits: allowed,
                });
            }
        }
        Ok(Self {
            degree,
            data_primes: data_primes.to_vec(),
            special_prime,
            data_prime_bits,
            special_prime_bits,
        })
    }

    /// Builds parameters **without** enforcing the 128-bit-security bound on
    /// `log2 Q`. Intended for unit tests and micro-benchmarks that use small
    /// ring degrees; production callers should use [`CkksParameters::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ParameterError`] if the degree is not a power of two of at
    /// least 8, a bit size is out of range, or prime generation fails.
    pub fn new_insecure(
        degree: usize,
        data_prime_bits: &[u32],
        special_prime_bits: u32,
    ) -> Result<Self, ParameterError> {
        if degree < 8 || !degree.is_power_of_two() {
            return Err(ParameterError::UnsupportedDegree(degree));
        }
        Self::build(degree, data_prime_bits, special_prime_bits)
    }

    fn build(
        degree: usize,
        data_prime_bits: &[u32],
        special_prime_bits: u32,
    ) -> Result<Self, ParameterError> {
        if data_prime_bits.is_empty() {
            return Err(ParameterError::EmptyChain);
        }
        for &bits in data_prime_bits
            .iter()
            .chain(std::iter::once(&special_prime_bits))
        {
            if !(2..=MAX_PRIME_BITS).contains(&bits) {
                return Err(ParameterError::InvalidPrimeBits(bits));
            }
        }
        let mut all_bits: Vec<u32> = data_prime_bits.to_vec();
        all_bits.push(special_prime_bits);
        let primes = generate_ntt_primes(degree, &all_bits)?;
        let special_prime = *primes.last().expect("chain is non-empty");
        let data_primes = primes[..primes.len() - 1].to_vec();
        Ok(Self {
            degree,
            data_primes,
            special_prime,
            data_prime_bits: data_prime_bits.to_vec(),
            special_prime_bits,
        })
    }

    /// The ring degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of slots in a ciphertext (`N / 2`).
    pub fn slot_count(&self) -> usize {
        self.degree / 2
    }

    /// The data primes, in chain order (rescale consumes from the back).
    pub fn data_primes(&self) -> &[u64] {
        &self.data_primes
    }

    /// The special key-switching prime.
    pub fn special_prime(&self) -> u64 {
        self.special_prime
    }

    /// Bit sizes of the data primes as requested.
    pub fn data_prime_bits(&self) -> &[u32] {
        &self.data_prime_bits
    }

    /// Bit size of the special prime as requested.
    pub fn special_prime_bits(&self) -> u32 {
        self.special_prime_bits
    }

    /// Number of data primes (the paper's modulus-chain length `r` counts these
    /// plus the special prime; see [`CkksParameters::chain_length`]).
    pub fn level_count(&self) -> usize {
        self.data_primes.len()
    }

    /// Total chain length `r` including the special prime, as reported in the
    /// paper's Table 6.
    pub fn chain_length(&self) -> usize {
        self.data_primes.len() + 1
    }

    /// Exact total `log2 Q` of the full modulus (data primes + special prime).
    pub fn total_modulus_bits(&self) -> f64 {
        self.data_primes
            .iter()
            .chain(std::iter::once(&self.special_prime))
            .map(|&q| (q as f64).log2())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_table_matches_standard() {
        assert_eq!(max_coeff_modulus_bits(4096), Some(109));
        assert_eq!(max_coeff_modulus_bits(32768), Some(881));
        assert_eq!(max_coeff_modulus_bits(1000), None);
        assert_eq!(minimal_degree_for_bits(100), Some(4096));
        assert_eq!(minimal_degree_for_bits(360), Some(16384));
        assert_eq!(minimal_degree_for_bits(5000), None);
    }

    #[test]
    fn parameters_build_and_report_sizes() {
        let params = CkksParameters::new(8192, &[40, 30, 30]).unwrap();
        assert_eq!(params.degree(), 8192);
        assert_eq!(params.level_count(), 3);
        assert_eq!(params.chain_length(), 4);
        assert_eq!(params.data_primes().len(), 3);
        assert!((params.total_modulus_bits() - 160.0).abs() < 1.0);
        for (&p, &bits) in params.data_primes().iter().zip(params.data_prime_bits()) {
            assert_eq!(eva_math::nominal_prime_bits(p), bits);
            assert_eq!(p % (2 * 8192), 1);
        }
    }

    #[test]
    fn oversized_modulus_is_rejected() {
        let err = CkksParameters::new(4096, &[60, 60]).unwrap_err();
        assert!(matches!(err, ParameterError::InsecureModulus { .. }));
        // 60 + 60 data bits + 60 special = 180 > 109.
    }

    #[test]
    fn degenerate_requests_are_rejected() {
        assert!(matches!(
            CkksParameters::new(1234, &[30]),
            Err(ParameterError::UnsupportedDegree(1234))
        ));
        assert!(matches!(
            CkksParameters::new(8192, &[]),
            Err(ParameterError::EmptyChain)
        ));
        assert!(matches!(
            CkksParameters::new(8192, &[61]),
            Err(ParameterError::InvalidPrimeBits(61))
        ));
    }
}
