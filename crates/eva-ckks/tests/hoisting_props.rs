//! Differential key-switch test harness for hoisted rotations.
//!
//! Two contracts are pinned here, over random rotation sets, levels and ring
//! degrees:
//!
//! 1. **Bit identity**: `Evaluator::rotate_hoisted` (decompose once, apply
//!    every Galois key to the shared digits) produces ciphertexts that are
//!    bit-identical to sequential `Evaluator::rotate` calls.
//! 2. **Lazy-form invariant**: the split key-switch primitives keep every
//!    accumulator limb strictly below `2q` across the fused apply loop, and
//!    one canonicalization pass lands exactly on the value a fully canonical
//!    (`add`/`mul` per step) accumulation computes.

use eva_ckks::{
    Ciphertext, CkksContext, CkksEncoder, CkksParameters, Decryptor, Encryptor, Evaluator,
    KeyGenerator, KeySwitchDecomposition, KeySwitchKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Harness {
    context: CkksContext,
    evaluator: Evaluator,
    decryptor: Decryptor,
    keygen: KeyGenerator,
    ct: Ciphertext,
    values: Vec<f64>,
}

fn build(degree: usize, levels: usize, level: usize, seed: u64) -> Harness {
    let bits = vec![40u32; levels];
    let params = CkksParameters::new_insecure(degree, &bits, 45).unwrap();
    let context = CkksContext::new(params).unwrap();
    let mut keygen = KeyGenerator::from_seed(context.clone(), seed ^ 0xA5A5);
    let pk = keygen.create_public_key();
    let mut encryptor = Encryptor::from_seed(context.clone(), pk, seed ^ 0x5A5A);
    let encoder = CkksEncoder::new(context.clone());
    let decryptor = Decryptor::new(context.clone(), keygen.secret_key().clone());

    let slots = context.slot_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ct = encryptor.encrypt(&encoder.encode(&values, 40.0, level));
    Harness {
        evaluator: Evaluator::new(context.clone()),
        context,
        decryptor,
        keygen,
        ct,
        values,
    }
}

/// The modulus backing accumulator row `pos` of a level-`level` key switch
/// (rows `0..level` are the data primes, row `level` is the special prime).
fn row_modulus(context: &CkksContext, level: usize, pos: usize) -> eva_math::Modulus {
    let idx = if pos == level {
        context.special_index()
    } else {
        pos
    };
    context.key_basis().moduli()[idx]
}

/// Strict reference accumulation: the same digit × key sums as
/// `apply_key_switch_lazy`, but canonicalizing after every single
/// multiply-accumulate step.
fn canonical_accumulate(
    context: &CkksContext,
    decomp: &KeySwitchDecomposition,
    key: &KeySwitchKey,
    table: Option<&[u32]>,
) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let n = context.degree();
    let level = decomp.level();
    let ext = level + 1;
    let mut acc0 = vec![vec![0u64; n]; ext];
    let mut acc1 = vec![vec![0u64; n]; ext];
    for (digit, (k0, k1)) in decomp.digits().iter().zip(key.digits()) {
        for pos in 0..ext {
            let m_idx = if pos == level {
                context.special_index()
            } else {
                pos
            };
            let q = &context.key_basis().moduli()[m_idx];
            let digit_row = digit.residue(pos);
            let k0_row = k0.residue(m_idx);
            let k1_row = k1.residue(m_idx);
            for i in 0..n {
                let t = match table {
                    Some(tb) => digit_row[tb[i] as usize],
                    None => digit_row[i],
                };
                acc0[pos][i] = q.add(acc0[pos][i], q.mul(t, k0_row[i]));
                acc1[pos][i] = q.add(acc1[pos][i], q.mul(t, k1_row[i]));
            }
        }
    }
    (acc0, acc1)
}

/// Maps raw random draws onto a valid rotation-step set for `slots` slots
/// (steps in `[-(slots-1), slots-1]`, including 0 and duplicates).
fn shape_steps(raw: &[i64], count: usize, slots: i64) -> Vec<i64> {
    raw[..count]
        .iter()
        .map(|s| s.rem_euclid(2 * slots - 1) - (slots - 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Hoisted rotation fan-outs are bit-identical to sequential rotations,
    // across random degrees, chain lengths, operating levels and step sets
    // (including step 0 and duplicate steps).
    #[test]
    fn hoisted_rotations_match_sequential_bit_exactly(
        degree in prop::sample::select(vec![64usize, 128, 256]),
        levels in 2usize..=4,
        level_pick in any::<u64>(),
        seed in any::<u64>(),
        raw_steps in prop::collection::vec(any::<i64>(), 6),
        step_count in 1usize..=6,
    ) {
        let level = 1 + (level_pick as usize) % levels;
        let steps = shape_steps(&raw_steps, step_count, (degree / 2) as i64);
        let mut h = build(degree, levels, level, seed);
        let gk = h.keygen.create_galois_keys(&steps);

        let hoisted = h.evaluator.rotate_hoisted(&h.ct, &steps, &gk).unwrap();
        prop_assert_eq!(hoisted.len(), steps.len());
        let slots = h.context.slot_count();
        for (rotated, &step) in hoisted.iter().zip(&steps) {
            let sequential = h.evaluator.rotate(&h.ct, step, &gk).unwrap();
            prop_assert_eq!(rotated.polys(), sequential.polys());
            prop_assert_eq!(rotated.scale_log2(), sequential.scale_log2());
            prop_assert_eq!(rotated.level(), level);

            // And both actually rotate: decrypt and compare slot-wise.
            let decrypted = h.decryptor.decrypt_to_values(rotated, slots);
            for i in 0..slots {
                let src = (i as i64 + step).rem_euclid(slots as i64) as usize;
                prop_assert!((decrypted[i] - h.values[src]).abs() < 1e-2,
                    "step {}, slot {}: {} vs {}", step, i, decrypted[i], h.values[src]);
            }
        }
    }

    // Every accumulator limb stays in lazy [0, 2q) form across the fused
    // apply loop, and a single canonicalization pass agrees exactly with a
    // per-step canonical accumulation — with and without a fused
    // automorphism permutation.
    #[test]
    fn lazy_limbs_below_two_q_and_canonicalize_exactly(
        degree in prop::sample::select(vec![64usize, 128, 256]),
        levels in 2usize..=4,
        level_pick in any::<u64>(),
        seed in any::<u64>(),
        raw_step in any::<i64>(),
    ) {
        let level = 1 + (level_pick as usize) % levels;
        let slots = (degree / 2) as i64;
        // A non-zero step (zero performs no key switch at all).
        let step = 1 + raw_step.rem_euclid(slots - 1);
        let mut h = build(degree, levels, level, seed);
        let gk = h.keygen.create_galois_keys(&[step]);
        let elt = h.context.galois().galois_elt_from_step(step);
        let (_, key) = gk
            .element_keys()
            .into_iter()
            .find(|&(e, _)| e == elt)
            .expect("key for the requested step");

        let decomp = h
            .evaluator
            .decompose_for_key_switch(&h.ct.polys()[1], level);
        let table = h.context.galois().ntt_permutation(elt);
        for table in [None, Some(table.as_slice())] {
            let lazy = h.evaluator.apply_key_switch_lazy(&decomp, key, table);
            let (exp0, exp1) = canonical_accumulate(&h.context, &decomp, key, table);
            for (acc, expected) in [
                (lazy.rows0().collect::<Vec<_>>(), &exp0),
                (lazy.rows1().collect::<Vec<_>>(), &exp1),
            ] {
                for (pos, row) in acc.iter().enumerate() {
                    let q = row_modulus(&h.context, level, pos);
                    let two_q = 2 * q.value();
                    for (i, &limb) in row.iter().enumerate() {
                        prop_assert!(limb < two_q,
                            "row {}, limb {}: {} >= 2q = {}", pos, i, limb, two_q);
                        prop_assert_eq!(q.reduce_once(limb), expected[pos][i]);
                    }
                }
            }
        }
    }
}
