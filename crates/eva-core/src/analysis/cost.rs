//! Static cost model: predicts where a compiled program spends its time
//! before a single ciphertext exists.
//!
//! After the lazy-NTT work, key-switching dominates every real circuit
//! (BENCH_primitives.json at `N = 8192`, level 3: relinearize ≈ 4709 µs vs
//! cipher multiply ≈ 323 µs), so the model counts the *key switches* a
//! program performs — relinearizations plus non-identity rotations — along
//! with multiplies, rescales and the NTTs underneath them, each weighted by
//! the ciphertext level it executes at.
//!
//! # Level scaling
//!
//! All costs are calibrated at reference level 3 and scaled by the NTT count
//! of the primitive at the node's actual level `ℓ` (the number of data
//! primes still alive there):
//!
//! * a key switch (relinearize, rotate) performs `2ℓ(ℓ + 1) + 4` NTTs —
//!   28 at `ℓ = 3`, matching the measured `4709 / 168 ≈ 28` ratio of
//!   relinearize to a single forward NTT;
//! * a rescale performs `2(ℓ + 1)` NTTs — 8 at `ℓ = 3`, matching the
//!   measured `1297 / 168 ≈ 7.7`;
//! * dyadic work (multiply, add) is linear in `ℓ`.
//!
//! Only **live** cipher nodes are costed: executors skip dead branches, and
//! after this PR `compile()` removes them outright.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::scale::{analyze_levels, chain_lengths};
use crate::compiler::CompiledProgram;
use crate::error::EvaError;
use crate::passes::group_rotation_fanouts;
use crate::program::NodeKind;
use crate::types::Opcode;

use super::dataflow::Dataflow;

/// Latency weights in microseconds at the reference level, calibrated from
/// BENCH_primitives.json (`N = 8192`, level 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Reference level the weights were measured at.
    pub reference_level: usize,
    /// One key switch (relinearize / rotate) at the reference level, µs.
    pub key_switch_us: f64,
    /// One rescale at the reference level, µs.
    pub rescale_us: f64,
    /// One cipher–cipher multiply (dyadic part) at the reference level, µs.
    pub multiply_us: f64,
    /// One cipher–plain multiply or encode-heavy op at the reference level, µs.
    pub multiply_plain_us: f64,
    /// One add/sub/negate at the reference level, µs.
    pub add_us: f64,
    /// One forward NTT of a single polynomial at the reference size, µs.
    pub ntt_us: f64,
    /// One hoisted follower rotation (per-key apply + mod-down against a
    /// fan-out group's shared decomposition) at the reference level, µs.
    pub hoisted_apply_us: f64,
}

impl Default for CostModel {
    /// Weights measured on this repository's own benchmark harness
    /// (`report --primitives`, checked in as BENCH_primitives.json).
    fn default() -> Self {
        Self {
            reference_level: 3,
            key_switch_us: 4709.3,   // ckks_relinearize_n8192_l3
            rescale_us: 1297.3,      // ckks_rescale_n8192_l3
            multiply_us: 322.7,      // ckks_multiply_n8192_l3
            multiply_plain_us: 70.5, // dyadic_mul_n8192_l3
            add_us: 24.4,            // dyadic_add_n8192_l3
            ntt_us: 167.7,           // ntt_forward_n8192
            // (ckks_rotate_hoisted_x8_n8192_l3 − ckks_rotate_n8192_l3) / 7
            hoisted_apply_us: 1650.0,
        }
    }
}

/// Number of NTTs one key switch performs at level `l`.
pub fn key_switch_ntts(l: usize) -> usize {
    2 * l * (l + 1) + 4
}

/// Number of NTTs one rescale performs at level `l`.
pub fn rescale_ntts(l: usize) -> usize {
    2 * (l + 1)
}

/// Effective NTTs one hoisted follower rotation performs at level `l`: the
/// `2(l + 1)` literal NTTs of canonicalize + mod-down, plus ~2 NTTs' worth
/// of fused permute/multiply-accumulate work against the shared digits
/// (matching the measured `hoisted_apply_us / ntt_us ≈ 10` ratio at the
/// reference level).
pub fn hoisted_apply_ntts(l: usize) -> usize {
    2 * (l + 1) + 2
}

/// What the static cost model predicts for one compiled program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostReport {
    /// Total node count of the program (live and dead).
    pub nodes: usize,
    /// Live cipher–cipher multiplies.
    pub multiplies: usize,
    /// Live cipher–plain multiplies.
    pub multiplies_plain: usize,
    /// Live adds/subs/negates touching ciphertext.
    pub adds: usize,
    /// Live non-identity cipher rotations (each is one key switch).
    pub rotations: usize,
    /// Live relinearizations (each is one key switch).
    pub relinearizations: usize,
    /// Live rescales.
    pub rescales: usize,
    /// Live mod-switches (prime drop, no key switch).
    pub mod_switches: usize,
    /// Total key switches: `rotations + relinearizations`.
    pub key_switches: usize,
    /// Number of distinct rotation steps (= Galois keys to generate/ship).
    pub distinct_rotation_steps: usize,
    /// Rotation fan-out groups executed hoisted (shared decomposition).
    pub hoisted_groups: usize,
    /// Rotations priced as hoisted followers (group members beyond the
    /// first, which pay only the per-key apply).
    pub hoisted_rotations: usize,
    /// Total NTT count across all key switches and rescales.
    pub ntts: usize,
    /// Key switches per ciphertext level (level → count).
    pub key_switches_per_level: BTreeMap<usize, usize>,
    /// Predicted serial execution latency in microseconds.
    pub predicted_us: f64,
}

/// Runs the static cost model over a compiled program.
///
/// # Errors
///
/// Returns [`EvaError`] if the program graph is cyclic or its level analysis
/// fails (both impossible for programs produced by `compile()`, which
/// verifies them first).
pub fn estimate_cost(
    compiled: &CompiledProgram,
    model: &CostModel,
) -> Result<CostReport, EvaError> {
    let program = &compiled.program;
    let df = Dataflow::try_new(program)?;
    let max_level = compiled.parameters.data_primes.len();
    let levels: Vec<usize> = chain_lengths(&analyze_levels(program)?)
        .iter()
        .map(|&consumed| max_level.saturating_sub(consumed))
        .collect();

    let ref_ks_ntts = key_switch_ntts(model.reference_level) as f64;
    let ref_rs_ntts = rescale_ntts(model.reference_level) as f64;
    let ref_ha_ntts = hoisted_apply_ntts(model.reference_level) as f64;
    let ref_level = model.reference_level as f64;

    // The executors run rotation fan-outs hoisted: the group's first member
    // pays a full key switch (it funds the shared decomposition), every
    // other member only the per-key apply.
    let fanouts = group_rotation_fanouts(program);
    let followers: BTreeSet<usize> = fanouts
        .iter()
        .flat_map(|f| f.members.iter().skip(1).map(|&(id, _)| id))
        .collect();

    let mut report = CostReport {
        nodes: program.len(),
        distinct_rotation_steps: compiled.rotation_steps.len(),
        hoisted_groups: fanouts.len(),
        ..CostReport::default()
    };

    for &id in df.order() {
        if !df.live()[id] {
            continue;
        }
        let node = program.node(id);
        if !node.ty.is_cipher() {
            continue;
        }
        let NodeKind::Instruction { op, args } = &node.kind else {
            continue;
        };
        // The level the instruction's *inputs* are at (what key-switch and
        // dyadic work operate on): maintenance ops record their own chain,
        // so use the argument's level where one exists.
        let level = args
            .iter()
            .filter(|&&a| program.node(a).ty.is_cipher())
            .map(|&a| levels[a])
            .max()
            .unwrap_or(levels[id]);
        let scale = |ref_us: f64, weight: f64| ref_us * weight;
        match op {
            Opcode::Multiply => {
                let both_cipher = args.iter().all(|&a| program.node(a).ty.is_cipher());
                if both_cipher {
                    report.multiplies += 1;
                    report.predicted_us += scale(model.multiply_us, level as f64 / ref_level);
                } else {
                    report.multiplies_plain += 1;
                    report.predicted_us += scale(model.multiply_plain_us, level as f64 / ref_level);
                }
            }
            Opcode::Add | Opcode::Sub | Opcode::Negate => {
                report.adds += 1;
                report.predicted_us += scale(model.add_us, level as f64 / ref_level);
            }
            Opcode::RotateLeft(s) | Opcode::RotateRight(s) if *s != 0 => {
                report.rotations += 1;
                *report.key_switches_per_level.entry(level).or_insert(0) += 1;
                if followers.contains(&id) {
                    report.hoisted_rotations += 1;
                    let ntts = hoisted_apply_ntts(level);
                    report.ntts += ntts;
                    report.predicted_us += scale(model.hoisted_apply_us, ntts as f64 / ref_ha_ntts);
                } else {
                    let ntts = key_switch_ntts(level);
                    report.ntts += ntts;
                    report.predicted_us += scale(model.key_switch_us, ntts as f64 / ref_ks_ntts);
                }
            }
            // Identity rotations are cloned by the evaluator: no key switch.
            Opcode::RotateLeft(_) | Opcode::RotateRight(_) => {}
            Opcode::Relinearize => {
                report.relinearizations += 1;
                let ntts = key_switch_ntts(level);
                report.ntts += ntts;
                *report.key_switches_per_level.entry(level).or_insert(0) += 1;
                report.predicted_us += scale(model.key_switch_us, ntts as f64 / ref_ks_ntts);
            }
            Opcode::Rescale(_) => {
                report.rescales += 1;
                let ntts = rescale_ntts(level);
                report.ntts += ntts;
                report.predicted_us += scale(model.rescale_us, ntts as f64 / ref_rs_ntts);
            }
            Opcode::ModSwitch => {
                // Dropping the top prime copies the surviving residues;
                // negligible next to any key switch, costed as one add.
                report.mod_switches += 1;
                report.predicted_us += scale(model.add_us, level as f64 / ref_level);
            }
        }
    }
    report.key_switches = report.rotations + report.relinearizations;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompilerOptions};
    use crate::program::Program;
    use crate::types::Opcode;

    fn rotated_product() -> CompiledProgram {
        let mut p = Program::new("rotprod", 16);
        let x = p.input_cipher("x", 30);
        let r = p.instruction(Opcode::RotateLeft(1), &[x]);
        let m = p.instruction(Opcode::Multiply, &[x, r]);
        p.output("out", m, 30);
        compile(&p, &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn counts_key_switches_and_rotations() {
        let compiled = rotated_product();
        let report = estimate_cost(&compiled, &CostModel::default()).unwrap();
        assert_eq!(report.rotations, 1);
        assert_eq!(report.relinearizations, 1, "multiply gets relinearized");
        assert_eq!(report.key_switches, 2);
        assert_eq!(report.multiplies, 1);
        assert_eq!(report.distinct_rotation_steps, 1);
        assert!(report.predicted_us > 0.0);
        assert_eq!(
            report.key_switches_per_level.values().sum::<usize>(),
            report.key_switches
        );
    }

    #[test]
    fn dead_nodes_cost_nothing() {
        let mut p = Program::new("deadcost", 16);
        let x = p.input_cipher("x", 30);
        let live = p.instruction(Opcode::Add, &[x, x]);
        p.output("out", live, 30);
        let mut with_dead = p.clone();
        let d = with_dead.instruction(Opcode::RotateLeft(2), &[x]);
        let _dead = with_dead.instruction(Opcode::Multiply, &[d, d]);
        // Compare compiled costs — the dead rotation must not be charged.
        // (Compiled through the unoptimized pipeline so the dead branch is
        // actually still present; compile() now strips it.)
        let a = compile(&p, &CompilerOptions::default()).unwrap();
        let report_a = estimate_cost(&a, &CostModel::default()).unwrap();
        let b = compile(&with_dead, &CompilerOptions::default()).unwrap();
        let report_b = estimate_cost(&b, &CostModel::default()).unwrap();
        assert_eq!(report_a.key_switches, report_b.key_switches);
        assert_eq!(report_a.rotations, report_b.rotations);
    }

    #[test]
    fn ntt_formulas_match_calibration_ratios() {
        // At the reference level the formulas must reproduce the measured
        // primitive ratios within ~5%: relinearize/NTT ≈ 28, rescale/NTT ≈ 8,
        // hoisted follower apply/NTT ≈ 10.
        let m = CostModel::default();
        assert_eq!(key_switch_ntts(3), 28);
        assert_eq!(rescale_ntts(3), 8);
        assert_eq!(hoisted_apply_ntts(3), 10);
        let measured_ks = m.key_switch_us / m.ntt_us;
        assert!((measured_ks - 28.0).abs() / 28.0 < 0.05, "{measured_ks}");
        let measured_rs = m.rescale_us / m.ntt_us;
        assert!((measured_rs - 8.0).abs() / 8.0 < 0.05, "{measured_rs}");
        let measured_ha = m.hoisted_apply_us / m.ntt_us;
        assert!((measured_ha - 10.0).abs() / 10.0 < 0.05, "{measured_ha}");
    }

    #[test]
    fn fanout_followers_are_priced_as_hoisted_applies() {
        // An 8-way rotation fan-out: the first member funds the shared
        // decomposition (full key switch), the other seven pay only the
        // per-key apply — so the predicted rotation time must come in well
        // under eight sequential key switches.
        let mut p = Program::new("fanout", 256);
        let x = p.input_cipher("x", 30);
        let mut acc = None;
        for step in [1, 2, 16, 17, 18, 32, 33, 34] {
            let r = p.instruction(Opcode::RotateLeft(step), &[x]);
            acc = Some(match acc {
                None => r,
                Some(prev) => p.instruction(Opcode::Add, &[prev, r]),
            });
        }
        p.output("out", acc.unwrap(), 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        let m = CostModel::default();
        let report = estimate_cost(&compiled, &m).unwrap();
        assert_eq!(report.rotations, 8);
        assert_eq!(report.hoisted_groups, 1);
        assert_eq!(report.hoisted_rotations, 7);
        // Rotation cost alone: 1 full switch + 7 applies vs 8 full switches.
        let hoisted = m.key_switch_us + 7.0 * m.hoisted_apply_us;
        let sequential = 8.0 * m.key_switch_us;
        assert!(sequential / hoisted >= 2.0, "{}", sequential / hoisted);
        assert!(report.predicted_us < sequential);
    }
}
