//! A reusable forward/backward dataflow framework over [`Program`] graphs.
//!
//! Every analysis in this module family — cost ([`super::cost`]), liveness
//! ([`super::liveness`]), the value-numbering equivalence relation driving
//! CSE ([`value_numbers`]) — and every optimization pass in
//! [`crate::passes`] needs the same three ingredients:
//!
//! * a **topological iteration order** proved safe on possibly-hostile
//!   graphs ([`kahn_order`] — the exact Kahn's-algorithm ordering the
//!   verifier's structural pass uses, shared here so the verifier and the
//!   optimizer cannot drift);
//! * **def-use chains** (who consumes each node's value);
//! * the **live set** (which nodes reach an output).
//!
//! [`Dataflow`] bundles them, computed once, plus generic [`forward`]
//! and [`backward`] propagation drivers and [`dominators`] on the DAG.
//!
//! [`forward`]: Dataflow::forward
//! [`backward`]: Dataflow::backward
//! [`dominators`]: Dataflow::dominators

use std::collections::{HashMap, VecDeque};

use crate::error::EvaError;
use crate::program::{NodeId, NodeKind, Program};
use crate::types::Opcode;

/// Computes a topological order of `program` with Kahn's algorithm, without
/// assuming acyclicity (unlike [`Program::topological_order`], which
/// debug-asserts it — precisely what an untrusted decoded program may
/// violate).
///
/// Returns `Err` with the ids of the nodes stuck on a cycle when the graph
/// is not a DAG. This is the ordering the IR verifier's structural pass is
/// built on; analyses and passes share it through [`Dataflow`].
pub fn kahn_order(program: &Program) -> Result<Vec<NodeId>, Vec<NodeId>> {
    let node_count = program.len();
    let mut in_degree = vec![0usize; node_count];
    for (id, node) in program.nodes().iter().enumerate() {
        if let NodeKind::Instruction { args, .. } = &node.kind {
            // Count distinct parents so it matches the deduplicated use lists.
            let mut distinct: Vec<NodeId> = args.clone();
            distinct.sort_unstable();
            distinct.dedup();
            in_degree[id] = distinct.len();
        }
    }
    let uses = program.uses();
    let mut queue: VecDeque<NodeId> = (0..node_count).filter(|&id| in_degree[id] == 0).collect();
    let mut order = Vec::with_capacity(node_count);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &user in &uses[id] {
            in_degree[user] -= 1;
            if in_degree[user] == 0 {
                queue.push_back(user);
            }
        }
    }
    if order.len() < node_count {
        let mut seen = vec![false; node_count];
        for &id in &order {
            seen[id] = true;
        }
        return Err((0..node_count).filter(|&id| !seen[id]).collect());
    }
    Ok(order)
}

/// The shared substrate of every dataflow analysis: one program, its proven
/// topological order, def-use chains and live set.
#[derive(Debug)]
pub struct Dataflow<'p> {
    program: &'p Program,
    order: Vec<NodeId>,
    uses: Vec<Vec<NodeId>>,
    live: Vec<bool>,
}

impl<'p> Dataflow<'p> {
    /// Builds the framework over `program`.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::InvalidProgram`] if the graph has a cycle (the
    /// same refusal the verifier's `acyclic` check produces).
    pub fn try_new(program: &'p Program) -> Result<Self, EvaError> {
        let order = kahn_order(program).map_err(|cyclic| {
            EvaError::InvalidProgram(format!(
                "program graph has a cycle through {} node(s)",
                cyclic.len()
            ))
        })?;
        Ok(Self {
            program,
            uses: program.uses(),
            live: program.live_mask(),
            order,
        })
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The topological order (parents before children).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Def-use chains: for every node, the nodes consuming its value
    /// (each user listed once, as in [`Program::uses`]).
    pub fn uses(&self) -> &[Vec<NodeId>] {
        &self.uses
    }

    /// Which nodes reach a program output.
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Forward dataflow: computes one fact per node in topological order.
    ///
    /// `transfer(id, facts)` runs with `facts[arg]` final for every argument
    /// of `id` (parents precede children in the iteration); entries of nodes
    /// not yet visited hold `T::default()`.
    pub fn forward<T: Default>(&self, mut transfer: impl FnMut(NodeId, &[T]) -> T) -> Vec<T> {
        let mut facts: Vec<T> = (0..self.program.len()).map(|_| T::default()).collect();
        for &id in &self.order {
            facts[id] = transfer(id, &facts);
        }
        facts
    }

    /// Backward dataflow: computes one fact per node in reverse topological
    /// order, with `facts[user]` final for every user of `id`.
    pub fn backward<T: Default>(&self, mut transfer: impl FnMut(NodeId, &[T]) -> T) -> Vec<T> {
        let mut facts: Vec<T> = (0..self.program.len()).map(|_| T::default()).collect();
        for &id in self.order.iter().rev() {
            facts[id] = transfer(id, &facts);
        }
        facts
    }

    /// Immediate dominators on the data-flow DAG (Cooper–Harvey–Kennedy over
    /// the topological order): `idom[id]` is the unique node every path from
    /// a root (input/constant) to `id` passes through, or `None` when the
    /// only common dominator is the virtual root above all graph roots.
    ///
    /// A rotation/key-switch hoisting pass wants exactly this fact: work
    /// common to all paths into a node can be performed once at its
    /// dominator.
    pub fn dominators(&self) -> Vec<Option<NodeId>> {
        let mut position = vec![0usize; self.program.len()];
        for (idx, &id) in self.order.iter().enumerate() {
            position[id] = idx;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; self.program.len()];
        // Walk both idom chains up to their common ancestor; `None` is the
        // virtual root and absorbs everything.
        let intersect = |idom: &[Option<NodeId>], a: NodeId, b: NodeId| -> Option<NodeId> {
            let (mut a, mut b) = (Some(a), Some(b));
            while a != b {
                let (pa, pb) = match (a, b) {
                    (Some(na), Some(nb)) => (position[na], position[nb]),
                    _ => return None,
                };
                if pa > pb {
                    a = idom[a.expect("checked above")];
                } else {
                    b = idom[b.expect("checked above")];
                }
            }
            a
        };
        for &id in &self.order {
            let mut distinct: Vec<NodeId> = self.program.args(id).to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            let mut dom: Option<NodeId> = None;
            for (i, &arg) in distinct.iter().enumerate() {
                dom = if i == 0 {
                    Some(arg)
                } else {
                    match dom {
                        Some(d) => intersect(&idom, d, arg),
                        None => None,
                    }
                };
                if i > 0 && dom.is_none() {
                    break;
                }
            }
            idom[id] = dom;
        }
        idom
    }
}

/// The hashable identity of a node for value numbering: two nodes with equal
/// keys compute bit-identical values on every execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum VnKey {
    /// Inputs are opaque runtime values: never merged, not even with
    /// themselves under a different id.
    Unique(NodeId),
    /// Constants compare by exact bit pattern of payload *and* scale — CKKS
    /// encodes a constant at its annotated scale, so `2.0 @ 2^20` and
    /// `2.0 @ 2^30` are different plaintexts.
    Constant {
        /// Discriminant + payload bits of the [`crate::ConstantValue`].
        payload: (u8, Vec<u64>),
        /// `scale_log2` bit pattern.
        scale: u64,
    },
    /// Instructions compare by opcode, argument equivalence classes
    /// (operand order canonicalized for commutative ops) and stamped scale.
    Instruction {
        /// The operation.
        op: Opcode,
        /// Value numbers of the arguments.
        args: Vec<usize>,
        /// `scale_log2` bit pattern (0.0 for untransformed input programs;
        /// including it keeps the relation sound on annotated programs too).
        scale: u64,
    },
}

/// Value-numbering equivalence analysis: assigns every node a class id such
/// that two nodes share a class **iff** they provably compute bit-identical
/// values — same opcode, equivalent operands (modulo commutativity of ADD
/// and MULTIPLY), bit-identical constants.
///
/// FHE evaluation is deterministic given the operand ciphertexts, so merging
/// a class onto one representative (what [`crate::passes::cse`] does)
/// preserves outputs bit-for-bit.
///
/// Returns `(class_of, representative)`: `class_of[id]` is the node's class
/// and `representative[class]` the topologically-first member of the class.
pub fn value_numbers(df: &Dataflow<'_>) -> (Vec<usize>, Vec<NodeId>) {
    let program = df.program();
    let mut class_of = vec![usize::MAX; program.len()];
    let mut representative: Vec<NodeId> = Vec::new();
    let mut table: HashMap<VnKey, usize> = HashMap::new();
    for &id in df.order() {
        let node = program.node(id);
        let key = match &node.kind {
            NodeKind::Input { .. } => VnKey::Unique(id),
            NodeKind::Constant { value } => VnKey::Constant {
                payload: constant_bits(value),
                scale: node.scale_log2.to_bits(),
            },
            NodeKind::Instruction { op, args } => {
                let mut arg_classes: Vec<usize> = args.iter().map(|&a| class_of[a]).collect();
                if matches!(op, Opcode::Add | Opcode::Multiply) {
                    arg_classes.sort_unstable();
                }
                VnKey::Instruction {
                    op: *op,
                    args: arg_classes,
                    scale: node.scale_log2.to_bits(),
                }
            }
        };
        let next = representative.len();
        let class = *table.entry(key).or_insert(next);
        if class == next {
            representative.push(id);
        }
        class_of[id] = class;
    }
    (class_of, representative)
}

/// Exact bit representation of a constant payload (discriminant + bits), so
/// `0.0` and `-0.0` — different CKKS plaintexts — stay distinct.
fn constant_bits(value: &crate::types::ConstantValue) -> (u8, Vec<u64>) {
    use crate::types::ConstantValue;
    match value {
        ConstantValue::Scalar(v) => (0, vec![v.to_bits()]),
        ConstantValue::Integer(v) => (1, vec![*v as u64]),
        ConstantValue::Vector(v) => (2, v.iter().map(|x| x.to_bits()).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ConstantValue, ValueType};

    fn diamond() -> Program {
        // x -> a, b -> c (a diamond: c is dominated by x).
        let mut p = Program::new("diamond", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::Negate, &[x]);
        let b = p.instruction(Opcode::Multiply, &[x, x]);
        let c = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", c, 30);
        p
    }

    #[test]
    fn kahn_matches_program_topological_order_on_dags() {
        let p = diamond();
        assert_eq!(kahn_order(&p).unwrap(), p.topological_order());
    }

    #[test]
    fn kahn_reports_cyclic_nodes() {
        let mut p = diamond();
        // Create a cycle: a's argument becomes c (node 3).
        p.replace_arg(1, 0, 3);
        let cyclic = kahn_order(&p).unwrap_err();
        assert!(cyclic.contains(&1) && cyclic.contains(&3), "{cyclic:?}");
        assert!(Dataflow::try_new(&p).is_err());
    }

    #[test]
    fn forward_computes_depth_backward_computes_height() {
        let p = diamond();
        let df = Dataflow::try_new(&p).unwrap();
        let depth = df.forward(|id, facts: &[usize]| {
            p.args(id).iter().map(|&a| facts[a] + 1).max().unwrap_or(0)
        });
        assert_eq!(depth, vec![0, 1, 1, 2]);
        let height = df.backward(|id, facts: &[usize]| {
            df.uses()[id]
                .iter()
                .map(|&u| facts[u] + 1)
                .max()
                .unwrap_or(0)
        });
        assert_eq!(height, vec![2, 1, 1, 0]);
    }

    #[test]
    fn dominators_on_a_diamond() {
        let p = diamond();
        let df = Dataflow::try_new(&p).unwrap();
        let idom = df.dominators();
        assert_eq!(idom[0], None, "roots answer to the virtual root");
        assert_eq!(idom[1], Some(0));
        assert_eq!(idom[2], Some(0));
        // Both paths into c pass through x.
        assert_eq!(idom[3], Some(0));
    }

    #[test]
    fn dominators_with_two_roots_meet_at_the_virtual_root() {
        let mut p = Program::new("two_roots", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let s = p.instruction(Opcode::Add, &[x, y]);
        p.output("out", s, 30);
        let df = Dataflow::try_new(&p).unwrap();
        assert_eq!(df.dominators()[s], None);
    }

    #[test]
    fn value_numbering_merges_structural_duplicates() {
        let mut p = Program::new("dups", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::Multiply, &[x, x]);
        let b = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", sum, 30);
        let df = Dataflow::try_new(&p).unwrap();
        let (classes, reps) = value_numbers(&df);
        assert_eq!(classes[a], classes[b]);
        assert_eq!(reps[classes[a]], a, "representative is topologically first");
        assert_ne!(classes[x], classes[a]);
    }

    #[test]
    fn value_numbering_canonicalizes_commutative_operands_only() {
        let mut p = Program::new("comm", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let axy = p.instruction(Opcode::Add, &[x, y]);
        let ayx = p.instruction(Opcode::Add, &[y, x]);
        let sxy = p.instruction(Opcode::Sub, &[x, y]);
        let syx = p.instruction(Opcode::Sub, &[y, x]);
        let m = p.instruction(Opcode::Multiply, &[axy, ayx]);
        let n = p.instruction(Opcode::Multiply, &[sxy, syx]);
        let out = p.instruction(Opcode::Add, &[m, n]);
        p.output("out", out, 30);
        let df = Dataflow::try_new(&p).unwrap();
        let (classes, _) = value_numbers(&df);
        assert_eq!(classes[axy], classes[ayx], "ADD is commutative");
        assert_ne!(classes[sxy], classes[syx], "SUB is not");
    }

    #[test]
    fn value_numbering_never_merges_inputs_and_respects_constant_bits() {
        let mut p = Program::new("consts", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let c1 = p.constant(ConstantValue::Scalar(2.0), 20);
        let c2 = p.constant(ConstantValue::Scalar(2.0), 20);
        let c3 = p.constant(ConstantValue::Scalar(2.0), 30);
        let m1 = p.instruction(Opcode::Multiply, &[x, c1]);
        let m2 = p.instruction(Opcode::Multiply, &[y, c2]);
        let m3 = p.instruction(Opcode::Multiply, &[x, c3]);
        let s = p.instruction(Opcode::Add, &[m1, m2]);
        let t = p.instruction(Opcode::Add, &[s, m3]);
        p.output("out", t, 30);
        let df = Dataflow::try_new(&p).unwrap();
        let (classes, _) = value_numbers(&df);
        assert_ne!(classes[x], classes[y], "inputs are opaque");
        assert_eq!(classes[c1], classes[c2], "bit-identical constants merge");
        assert_ne!(classes[c1], classes[c3], "different scales do not");
        assert_ne!(classes[m1], classes[m2]);
        assert_ne!(classes[m1], classes[m3]);
    }

    #[test]
    fn value_numbering_is_transitive_through_operands() {
        let mut p = Program::new("transitive", 8);
        let x = p.input_cipher("x", 30);
        let a1 = p.instruction(Opcode::Negate, &[x]);
        let a2 = p.instruction(Opcode::Negate, &[x]);
        // b1/b2 use *different* node ids with the same class.
        let b1 = p.instruction(Opcode::Multiply, &[a1, a1]);
        let b2 = p.instruction(Opcode::Multiply, &[a2, a2]);
        let s = p.instruction(Opcode::Add, &[b1, b2]);
        p.output("out", s, 30);
        let df = Dataflow::try_new(&p).unwrap();
        let (classes, _) = value_numbers(&df);
        assert_eq!(classes[b1], classes[b2]);
        let _ = (ValueType::Cipher, s);
    }
}
