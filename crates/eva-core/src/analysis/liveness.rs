//! Liveness and peak-memory analysis: predicts, before execution, the
//! maximum number of simultaneously-live ciphertexts — and bytes — the
//! serial executor will hold.
//!
//! The executor releases a value as soon as its last live consumer has run
//! (the memory-reuse rule of paper Section 6.1). This analysis replays that
//! exact discipline symbolically over the [`Dataflow`] def-use chains:
//!
//! * bindings start with every **live input** (dead inputs are never bound);
//! * constants materialize as plaintext vectors when first visited;
//! * an instruction's result coexists with all of its parents for one
//!   instant — the peak is sampled there, *before* the parents are
//!   released — then each distinct parent's remaining-use count drops;
//! * output values survive to the end (decryption reads them).
//!
//! Byte sizes replay the backend's accounting exactly: a ciphertext at
//! level `ℓ` with `p` polynomials holds `p · ℓ · degree` 8-byte residues
//! (`Ciphertext::memory_bytes`), a plaintext vector `vec_size` 8-byte
//! floats. Levels come from the same chain analysis the verifier uses and
//! polynomial counts from [`analyze_num_polys`], so the prediction is an
//! upper bound that the allocation-counting executor audit
//! (`eva-backend`'s `execute_serial_audited`) can meet but not exceed.
//!
//! The service layer uses [`predict_peak_memory`] for admission control:
//! a program whose predicted footprint exceeds the configured budget is
//! refused at load time with a named `peak-memory` finding.

use std::collections::HashMap;

use crate::analysis::scale::{analyze_levels, analyze_num_polys, chain_lengths};
use crate::compiler::CompiledProgram;
use crate::error::EvaError;
use crate::passes::group_rotation_fanouts;
use crate::program::NodeKind;

use super::dataflow::Dataflow;

/// The predicted peak memory state of one serial execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryForecast {
    /// Maximum number of simultaneously-live values (ciphertext or plain).
    pub peak_live_values: usize,
    /// Maximum number of simultaneously-live **ciphertexts**.
    pub peak_live_ciphertexts: usize,
    /// Maximum simultaneous bytes across all live values.
    pub peak_bytes: usize,
    /// The node being computed when the byte peak occurs (`None` when the
    /// peak is the initial binding set of a program with no instructions).
    pub at_node: Option<usize>,
}

/// Predicts the serial executor's peak memory for a compiled program.
///
/// # Errors
///
/// Returns [`EvaError`] if the program graph is cyclic or level analysis
/// fails (impossible for programs `compile()` has verified).
pub fn predict_peak_memory(compiled: &CompiledProgram) -> Result<MemoryForecast, EvaError> {
    let program = &compiled.program;
    let df = Dataflow::try_new(program)?;
    let live = df.live();
    let degree = compiled.parameters.degree;
    let max_level = compiled.parameters.data_primes.len();
    let levels: Vec<usize> = chain_lengths(&analyze_levels(program)?)
        .iter()
        .map(|&consumed| max_level.saturating_sub(consumed))
        .collect();
    let polys = analyze_num_polys(program);
    let plain_bytes = program.vec_size() * std::mem::size_of::<f64>();

    // Bytes each node's value occupies while live, mirroring
    // `NodeValue::memory_bytes` on the backend.
    let bytes_of = |id: usize| -> usize {
        if program.node(id).ty.is_cipher() {
            polys[id] * levels[id] * degree * std::mem::size_of::<u64>()
        } else {
            plain_bytes
        }
    };

    // Remaining live consumers per node, plus one per output reference —
    // the executor's release discipline verbatim.
    let mut remaining_uses: Vec<usize> = df
        .uses()
        .iter()
        .map(|u| u.iter().filter(|&&c| live[c]).count())
        .collect();
    for output in program.outputs() {
        remaining_uses[output.node] += 1;
    }

    // Rotation fan-outs execute hoisted: the serial executor materializes
    // every member of a group when it reaches the group's first member in
    // topological order, so the forecast must charge them all at once there.
    let fanouts = group_rotation_fanouts(program);
    let mut member_group: HashMap<usize, usize> = HashMap::new();
    for (g, fanout) in fanouts.iter().enumerate() {
        for &(id, _) in &fanout.members {
            member_group.insert(id, g);
        }
    }

    let mut is_live_value = vec![false; program.len()];
    let mut forecast = MemoryForecast::default();
    let mut current_bytes = 0usize;
    let mut current_values = 0usize;
    let mut current_ciphers = 0usize;

    // Initial bindings: every live input (encrypt_inputs skips dead ones).
    for (id, node) in program.nodes().iter().enumerate() {
        if live[id] && matches!(node.kind, NodeKind::Input { .. }) {
            is_live_value[id] = true;
            current_values += 1;
            current_ciphers += usize::from(node.ty.is_cipher());
            current_bytes += bytes_of(id);
        }
    }
    forecast.peak_live_values = current_values;
    forecast.peak_live_ciphertexts = current_ciphers;
    forecast.peak_bytes = current_bytes;

    for &id in df.order() {
        if !live[id] {
            continue;
        }
        let node = program.node(id);
        match &node.kind {
            NodeKind::Input { .. } => {}
            NodeKind::Constant { .. } => {
                is_live_value[id] = true;
                current_values += 1;
                current_bytes += bytes_of(id);
                if current_bytes > forecast.peak_bytes {
                    forecast.peak_bytes = current_bytes;
                    forecast.at_node = Some(id);
                }
                forecast.peak_live_values = forecast.peak_live_values.max(current_values);
            }
            NodeKind::Instruction { args, .. } => {
                // The result exists alongside every parent for one instant.
                // A fan-out member reached first materializes its *whole*
                // group (the hoisted executor pre-stores every member);
                // members reached later were already charged.
                let materialized: Vec<usize> = match member_group.get(&id) {
                    Some(&g) if !is_live_value[id] => fanouts[g]
                        .members
                        .iter()
                        .map(|&(m, _)| m)
                        .filter(|&m| !is_live_value[m])
                        .collect(),
                    Some(_) => Vec::new(),
                    None => vec![id],
                };
                for m in materialized {
                    current_values += 1;
                    current_ciphers += usize::from(program.node(m).ty.is_cipher());
                    current_bytes += bytes_of(m);
                    is_live_value[m] = true;
                }
                if current_bytes > forecast.peak_bytes {
                    forecast.peak_bytes = current_bytes;
                    forecast.at_node = Some(id);
                }
                forecast.peak_live_values = forecast.peak_live_values.max(current_values);
                forecast.peak_live_ciphertexts =
                    forecast.peak_live_ciphertexts.max(current_ciphers);
                // Release parents whose last live consumer just ran.
                let mut distinct = args.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for a in distinct {
                    remaining_uses[a] = remaining_uses[a].saturating_sub(1);
                    if remaining_uses[a] == 0 && is_live_value[a] {
                        is_live_value[a] = false;
                        current_values -= 1;
                        current_ciphers -= usize::from(program.node(a).ty.is_cipher());
                        current_bytes -= bytes_of(a);
                    }
                }
            }
        }
    }
    Ok(forecast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompilerOptions};
    use crate::program::Program;
    use crate::types::Opcode;

    fn chain(depth: usize) -> CompiledProgram {
        let mut p = Program::new("chain", 16);
        let x = p.input_cipher("x", 30);
        let mut acc = x;
        for _ in 0..depth {
            acc = p.instruction(Opcode::Add, &[acc, acc]);
        }
        p.output("out", acc, 30);
        compile(&p, &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn a_linear_chain_keeps_two_ciphertexts_live() {
        let compiled = chain(5);
        let f = predict_peak_memory(&compiled).unwrap();
        // At each step the new value coexists with its (about-to-be-released)
        // parent: never more than two ciphertexts at once.
        assert_eq!(f.peak_live_ciphertexts, 2);
        assert!(f.peak_bytes > 0);
        assert!(f.at_node.is_some());
    }

    #[test]
    fn wide_fanout_holds_every_branch_live() {
        let mut p = Program::new("fan", 16);
        let x = p.input_cipher("x", 30);
        let branches: Vec<_> = (1..=4)
            .map(|s| p.instruction(Opcode::RotateLeft(s), &[x]))
            .collect();
        let mut acc = branches[0];
        for &b in &branches[1..] {
            acc = p.instruction(Opcode::Add, &[acc, b]);
        }
        p.output("out", acc, 30);
        // Compile unoptimized: rotation chaining would serialize the fan-out
        // (that reduction is exactly what the optimizer is for).
        let compiled = compile(&p, &CompilerOptions::unoptimized()).unwrap();
        let f = predict_peak_memory(&compiled).unwrap();
        // x + all four rotations live at once (x is consumed by every branch).
        assert!(f.peak_live_ciphertexts >= 5, "{f:?}");
        // The optimized twin predicts no more live ciphertexts than this.
        let optimized = compile(&p, &CompilerOptions::default()).unwrap();
        let g = predict_peak_memory(&optimized).unwrap();
        assert!(g.peak_live_ciphertexts <= f.peak_live_ciphertexts, "{g:?}");
    }

    #[test]
    fn deeper_programs_do_not_shrink_the_forecast_bytes_per_ct() {
        // A fresh ciphertext at max level must dominate the byte count of a
        // rescaled one: sanity-check the level-aware byte model.
        let shallow = predict_peak_memory(&chain(1)).unwrap();
        assert!(shallow.peak_bytes >= 2 * 2 * shallow_level_bytes(&chain(1)));
    }

    fn shallow_level_bytes(c: &CompiledProgram) -> usize {
        // One polynomial's bytes at the top level.
        c.parameters.data_primes.len() * c.parameters.degree * 8
    }
}
