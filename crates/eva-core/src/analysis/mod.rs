//! Analysis passes: graph traversals that compute per-node facts without
//! modifying the graph (paper Section 6).

// The analysis API is a documented contract (docs/ANALYSIS.md): the service
// layer gates untrusted program load on it, so missing docs here are errors
// even though the rest of the crate only warns.
#![deny(missing_docs)]

pub mod cost;
pub mod dataflow;
pub mod liveness;
pub mod noise;
pub mod parameters;
pub mod rotations;
pub mod scale;
pub mod validation;
pub mod verifier;

pub use cost::{estimate_cost, CostModel, CostReport};
pub use dataflow::{kahn_order, value_numbers, Dataflow};
pub use liveness::{predict_peak_memory, MemoryForecast};
pub use noise::{
    check_noise, estimate_noise, NoiseModel, NoiseReport, OutputBudget, DEFAULT_SAFETY_MARGIN_BITS,
};
pub use parameters::{select_parameters, ParameterSpec};
pub use rotations::{canonical_left_step, select_rotation_steps};
pub use scale::{
    analyze_exact_scales, analyze_levels, analyze_num_polys, analyze_scales, match_scale_delta,
    prime_log2s, ChainEntry,
};
pub use validation::{validate_exact_scales, validate_transformed};
pub use verifier::{verify_compiled, verify_program, Check, Diagnostic, Severity, VerifierReport};
