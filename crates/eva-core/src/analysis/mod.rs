//! Analysis passes: graph traversals that compute per-node facts without
//! modifying the graph (paper Section 6).

pub mod parameters;
pub mod rotations;
pub mod scale;
pub mod validation;

pub use parameters::{select_parameters, ParameterSpec};
pub use rotations::select_rotation_steps;
pub use scale::{
    analyze_exact_scales, analyze_levels, analyze_num_polys, analyze_scales, match_scale_delta,
    prime_log2s, ChainEntry,
};
pub use validation::{validate_exact_scales, validate_transformed};
