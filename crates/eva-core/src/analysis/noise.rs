//! Worst-case CKKS noise-budget estimation.
//!
//! A program can satisfy the paper's Constraints 1–4 and still decrypt to
//! garbage: nothing in scale or level analysis bounds how much *noise* the
//! homomorphic operations accumulate relative to the remaining coefficient
//! modulus. This module propagates conservative per-node noise bounds in the
//! `log2` domain and computes a **noise budget** for every node — how many
//! bits of modulus head-room remain above the accumulated error — so the
//! compiler (and any `.evaprog` consumer) can reject programs whose outputs
//! would drown in noise before ever touching a secret key.
//!
//! # The model
//!
//! Every cipher node carries a pair `(mag, err)` of base-2 logarithms:
//!
//! * `mag` — the unconditional worst-case magnitude of the *scaled message*
//!   (`|m| · scale`, in coefficient units), seeded from `scale · max|c|`
//!   for constants (known exactly) and from the scale for inputs (`|m| ≤ 1`
//!   at the boundary). It grows through convolutions and squarings far
//!   beyond what tame inputs produce and is reported for visibility — the
//!   DOT dump and `report --analysis` show where a program's range blows
//!   up — but it does not gate compilation.
//! * `err` — an upper bound on the *error* term added by encoding,
//!   encryption and every homomorphic operation, propagated **conditional
//!   on the paper's range contract**: the programmer keeps every
//!   intermediate message bounded by 1 in absolute value, so a cipher
//!   operand's magnitude is its scale. (Unconditional error bounds are
//!   useless on real circuits — a LeNet with squaring activations has a
//!   worst-case `mag` of `2^hundreds` while its actual activations stay
//!   `O(1)`.) Constants are not subject to the contract; their exact
//!   magnitude multiplies the partner's error.
//!
//! Transfer rules (`⊕` on *error* terms is [`log2_add_rms`] — independent
//! error polynomials accumulate in quadrature, as in SEAL's noise
//! simulator; `⊕` on *magnitudes* is plain [`log2_add`], because messages
//! can align exactly; `s` is a node's *contract magnitude*: its scale for
//! cipher operands, `scale · max|c|` for plaintext operands):
//!
//! | operation | `mag` | `err` |
//! |---|---|---|
//! | fresh encryption | `scale` | `√N·2^6.5 ⊕ enc ⊕ mag·2⁻⁴⁵` |
//! | plaintext input | `scale` | `enc ⊕ mag·2⁻⁴⁵` |
//! | scalar constant `c` | `scale·abs(c)` | exact residue `abs(c·2ˢ − round(c·2ˢ))` ⊕ `mag·2⁻⁴⁵` |
//! | vector constant | `scale·max abs(cᵢ)` | `enc ⊕ mag·2⁻⁴⁵` |
//! | ADD / SUB / NEGATE | `mag₁ ⊕ mag₂` | `err₁ ⊕ err₂` |
//! | MULTIPLY | `mag₁ + mag₂` | `s₁·err₂ ⊕ s₂·err₁ ⊕ err₁·err₂` |
//! | RELINEARIZE / ROTATE | unchanged | `err ⊕ ks` (key-switch term) |
//! | RESCALE by `q` | `mag − log2 q` | `(err − log2 q) ⊕ rr` (rounding) |
//! | MODSWITCH | unchanged | `err ⊕ rr` |
//!
//! with `N` the ring degree, encoding rounding `enc = √N·2^3`, division
//! rounding `rr = N·2^3`, and the hybrid key-switch term — **per level** —
//! `ks(ℓ) = N^1.5·2^(b_max(ℓ) − special prime bits)·2^2 ⊕ rr`, where
//! `b_max(ℓ)` is the widest data prime still live at the node's level: the
//! special prime divides each raised digit product back down by however
//! much it exceeds that digit's own prime, so rotations low in the chain
//! (where only narrow primes survive) are almost noiseless, while
//! rotations at the top of a chain whose primes match the special prime
//! pay the full `N^1.5` term.
//!
//! The additive terms are **high-probability canonical-embedding bounds**
//! (the standard CKKS heuristics: a polynomial with iid small coefficients
//! lands within `6σ·√N` in slot domain, not its ℓ1 worst case `N·B`), each
//! with a ≥ 1-bit cushion over noise measured operation by operation against
//! this repository's backend — see the `*_HP_BITS` constants. In the same
//! spirit, sums of error bounds accumulate in quadrature: the error
//! polynomials entering an ADD (or the cross terms of a MULTIPLY) come from
//! distinct encodings, encryptions and key switches, so their amplitudes
//! add as `√(a² + b²)`, not `a + b`. Strict ℓ1 accounting would be vacuous
//! twice over at the paper's scales (down to `2²⁵`): the per-op worst cases
//! sit 8+ bits above measured noise, and a LeNet-style 36-term convolution
//! would be charged `log2 36 ≈ 5` bits per layer for alignments that occur
//! with probability `≈ 0`, compounding through squaring activations into a
//! bound hundreds of bits past reality. The MULTIPLY cross terms themselves
//! need no cushion — they are exact given the operand bounds (verified to
//! within half a bit against the backend).
//!
//! A scalar (splat) constant encodes as a *constant polynomial*, so its
//! only encoding error is the rounding of that single coefficient — a
//! residue the analysis computes exactly, plus a `2⁻⁴⁵` relative cushion
//! for the `f64` embedding arithmetic (the real FFT error is below
//! `2⁻⁴⁹`). This matters: the MATCH-SCALE pass multiplies by `1.0` encoded
//! at scale `≈ 2⁰`, where the generic `N/2` bound would charge `2¹³`
//! *relative* error for an operation that is exact to 13 decimal digits.
//!
//! The **budget** of a node at level `ℓ` with primes `q₀ … q_{ℓ−1}` left is
//!
//! ```text
//! budget = Σ log2 qᵢ − 1 − err
//! ```
//!
//! — the bits of head-room between the accumulated error bound and `Q/2`.
//! A program is rejected when any output's budget falls below
//! [`NoiseModel::safety_margin_bits`]. The scaled message itself is *not*
//! charged against the budget: whether the message magnitude stays inside
//! the modulus is the programmer's range contract (the paper's position).
//! The estimate is therefore a high-probability bound for range-correct
//! executions — per-op cushions carry the tail risk that quadrature
//! accumulation gives up — and the soundness tests pin
//! `estimated ≥ measured` on the Sobel and LeNet circuits, where the
//! estimate sits 25+ bits above the observed decryption error.
//!
//! # Example
//!
//! ```
//! use eva_core::analysis::noise::{estimate_noise, NoiseModel};
//! use eva_core::{compile, CompilerOptions, Opcode, Program};
//!
//! let mut p = Program::new("square", 8);
//! let x = p.input_cipher("x", 30);
//! let sq = p.instruction(Opcode::Multiply, &[x, x]);
//! p.output("out", sq, 30);
//! let compiled = compile(&p, &CompilerOptions::default()).unwrap();
//!
//! let report = estimate_noise(&compiled, &NoiseModel::default());
//! let budget = report.output_budgets(&compiled.program);
//! assert!(budget[0].budget_bits > NoiseModel::default().safety_margin_bits);
//! ```

use crate::analysis::scale::{analyze_levels, chain_lengths, prime_log2s};
use crate::compiler::CompiledProgram;
use crate::error::EvaError;
use crate::program::{NodeId, NodeKind, Program};
use crate::types::{ConstantValue, Opcode};

/// Relative error cushion (in bits) for the `f64` canonical-embedding
/// arithmetic inside the encoder. The actual forward/inverse FFT error is
/// below `2⁻⁴⁹` relative; `2⁻⁴⁵` leaves four bits of slack.
const EMBED_FP_BITS: f64 = 45.0;

/// High-probability constants, in bits over the structural `√N` / `N`
/// factors. Each is a ≥ 1-bit cushion over the noise measured operation by
/// operation against this repository's own backend (`eva-ckks`, CBD error
/// with `eva_math::sampling::CBD_PAIRS` pairs, σ ≈ 3.24); the end-to-end
/// soundness tests keep them honest.
///
/// Fresh symmetric encryption error ≤ `√N · 2^FRESH_HP_BITS`
/// (measured ≈ `√N · 2^3.2`; `6σ√N` alone is `√N · 2^4.3`).
const FRESH_HP_BITS: f64 = 6.5;
/// Encoding rounding ≤ `√N · 2^ENCODE_HP_BITS` (concentration of a
/// uniform-[−1/2,1/2] rounding polynomial is `√(N/12) ≈ √N · 2^−1.8`).
const ENCODE_HP_BITS: f64 = 3.0;
/// Key-switch digit products ≤ `N^1.5 · 2^(widest live data prime − special)
/// · 2^KS_HP_BITS`. Measured `N^1.5 · 2^(b_max − special) · 2^c` with
/// `c ∈ [0.4, 1.2]` across chains mixing 25/40/50/55/60-bit primes at
/// degrees 2^14 and 2^15; the digit count leaves no visible trace because
/// narrower digits are suppressed by `2^(bⱼ − b_max)`.
const KS_HP_BITS: f64 = 2.0;
/// Rescale/mod-switch division rounding ≤ `N · 2^RESCALE_HP_BITS`
/// (measured ≈ `N · 2^0.3`).
const RESCALE_HP_BITS: f64 = 3.0;

/// `log2(a + b)` computed from `log2 a` and `log2 b` without overflow.
/// `f64::NEG_INFINITY` represents an exact zero bound.
pub fn log2_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

/// `log2 √(a² + b²)` — accumulation *in quadrature* for independent error
/// terms. Error polynomials from distinct encodings, encryptions and key
/// switches are independent (rotations of one polynomial are slot-wise
/// decorrelated by the Galois action), so their high-probability bounds add
/// as variances, not amplitudes; message magnitudes, which can align
/// exactly, always use [`log2_add`] instead.
pub fn log2_add_rms(a: f64, b: f64) -> f64 {
    0.5 * log2_add(2.0 * a, 2.0 * b)
}

/// Tunable constants of the worst-case noise model.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Minimum acceptable noise budget (bits) at every program output. The
    /// default leaves one decimal digit of precision between the worst-case
    /// error and the modulus wrap-around.
    pub safety_margin_bits: f64,
}

/// Default minimum output budget, in bits. The high-probability bounds
/// already over-approximate measured noise by a comfortable factor, so a
/// small positive margin suffices to keep every accepted program
/// decryptable.
pub const DEFAULT_SAFETY_MARGIN_BITS: f64 = 8.0;

impl Default for NoiseModel {
    fn default() -> Self {
        Self {
            safety_margin_bits: DEFAULT_SAFETY_MARGIN_BITS,
        }
    }
}

/// Per-node noise state: `log2` bounds on scaled-message magnitude and
/// accumulated error, plus the budget derived from the node's level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeNoise {
    /// `log2` upper bound on `|message| · scale` in coefficient units.
    pub mag_log2: f64,
    /// `log2` upper bound on the accumulated error term. For plaintext
    /// nodes this is the encoding-error bound charged when a cipher
    /// operation consumes them.
    pub err_log2: f64,
    /// Bits of head-room between the worst-case error and `Q/2` at this
    /// node's level; negative means the error alone may wrap the modulus.
    /// The scaled message is not charged here — staying in range is the
    /// programmer's contract (see the module docs).
    pub budget_bits: f64,
}

/// A named output's noise estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputBudget {
    /// The output's name.
    pub name: String,
    /// The output's node id.
    pub node: NodeId,
    /// Bits of modulus head-room at the output.
    pub budget_bits: f64,
    /// `log2` of the worst-case error *in message units* (error divided by
    /// the output's scale) — directly comparable to measured decryption
    /// error.
    pub message_error_log2: f64,
}

/// The estimator's result: per-node noise state over a compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseReport {
    /// Noise state per node, indexed by node id. Plaintext nodes carry the
    /// encoding bound and an infinite budget.
    pub nodes: Vec<NodeNoise>,
}

impl NoiseReport {
    /// The per-output budgets of `program` under this report.
    pub fn output_budgets(&self, program: &Program) -> Vec<OutputBudget> {
        program
            .outputs()
            .iter()
            .map(|output| {
                let state = self.nodes[output.node];
                OutputBudget {
                    name: output.name.clone(),
                    node: output.node,
                    budget_bits: state.budget_bits,
                    message_error_log2: state.err_log2 - program.node(output.node).scale_log2,
                }
            })
            .collect()
    }

    /// The smallest output budget, or `None` for a program with no outputs.
    pub fn min_output_budget(&self, program: &Program) -> Option<f64> {
        self.output_budgets(program)
            .iter()
            .map(|o| o.budget_bits)
            .min_by(|a, b| a.total_cmp(b))
    }
}

/// Runs the worst-case estimator over a compiled program.
///
/// The program is assumed verified (see
/// [`crate::analysis::verifier::verify_compiled`]): chains conform and never
/// underflow the prime chain. Out-of-budget levels saturate rather than
/// panic, so running the estimator on an unverified program is safe but its
/// numbers are only meaningful after verification.
pub fn estimate_noise(compiled: &CompiledProgram, _model: &NoiseModel) -> NoiseReport {
    let program = &compiled.program;
    let spec = &compiled.parameters;
    let log_primes = prime_log2s(&spec.data_primes);
    let max_level = log_primes.len();
    let degree = spec.degree as f64;
    let log_n = degree.log2();
    // Encoding rounds each coefficient into [−1/2, 1/2]; the slot-domain
    // (canonical embedding) image of that rounding polynomial concentrates
    // around √(N/12), so the high-probability bound is √N · 2^ENCODE_HP.
    let encode_err = 0.5 * log_n + ENCODE_HP_BITS;
    // Symmetric (seeded) encryption — the transport the deployment pipeline
    // uses — adds a single CBD error polynomial: √N·σ slot-domain spread.
    // (Public-key encryption would add the u·e products, ≈ √N·σ larger.)
    let fresh_err = log2_add_rms(0.5 * log_n + FRESH_HP_BITS, encode_err);
    let special_bits = f64::from(spec.special_prime_bits);
    // Division rounding: ⌊·⌉ leaves r + r'·s with dense-CBD s — slot spread
    // ≈ N·σ/√12, bounded high-probability by N · 2^RESCALE_HP.
    let rescale_round = log_n + RESCALE_HP_BITS;
    // Hybrid key switching decomposes the target into one digit per *live*
    // data prime, so its noise depends on the node's level: each digit
    // product is a uniform-mod-`qⱼ` polynomial times a CBD key error,
    // divided by the special prime. Measured across prime chains, the noise
    // tracks the *widest live digit* — `N^1.5 · 2^(b_max − special)` — with
    // no visible dependence on the digit count (narrower digits are
    // exponentially suppressed by their own width). Rescale consumes primes
    // from the back of `data_prime_bits`, so the live primes at level `l`
    // are the first `l` entries.
    let ks_err_at: Vec<f64> = (0..=max_level)
        .map(|l| {
            let b_max = log_primes[..l]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let base = 1.5 * log_n + (b_max - special_bits) + KS_HP_BITS;
            log2_add_rms(base, rescale_round)
        })
        .collect();

    // Cumulative log2 Q per level: log_q[l] = Σ_{i<l} log2 q_i.
    let mut log_q = vec![0.0f64; max_level + 1];
    for (i, &lp) in log_primes.iter().enumerate() {
        log_q[i + 1] = log_q[i] + lp;
    }

    // A verified program always has conforming chains; if not, levels are
    // meaningless anyway, so treat every node as full-modulus.
    let chains = match analyze_levels(program) {
        Ok(chains) => chain_lengths(&chains),
        Err(_) => vec![0usize; program.len()],
    };
    let level_of = |id: NodeId| max_level.saturating_sub(chains[id].min(max_level));

    let mut nodes = vec![
        NodeNoise {
            mag_log2: f64::NEG_INFINITY,
            err_log2: f64::NEG_INFINITY,
            budget_bits: f64::INFINITY,
        };
        program.len()
    ];

    for id in program.topological_order() {
        let node = program.node(id);
        let state = match &node.kind {
            NodeKind::Input { .. } => {
                if node.ty.is_cipher() {
                    NodeNoise {
                        mag_log2: node.scale_log2,
                        err_log2: log2_add_rms(fresh_err, node.scale_log2 - EMBED_FP_BITS),
                        budget_bits: 0.0, // filled below
                    }
                } else {
                    // Runtime plaintext vector, |v| ≤ 1 by contract: generic
                    // coefficient-rounding bound plus the fp embedding term.
                    NodeNoise {
                        mag_log2: node.scale_log2,
                        err_log2: log2_add_rms(encode_err, node.scale_log2 - EMBED_FP_BITS),
                        budget_bits: f64::INFINITY,
                    }
                }
            }
            NodeKind::Constant { value } => {
                let (mag, err) = constant_bounds(value, node.scale_log2, encode_err);
                NodeNoise {
                    mag_log2: mag,
                    err_log2: err,
                    budget_bits: f64::INFINITY,
                }
            }
            NodeKind::Instruction { op, args } => {
                if !node.ty.is_cipher() {
                    // Plaintext subgraph (scalar/integer arithmetic on
                    // constants): bound the magnitude by the largest operand
                    // and charge the generic encoding bound on use.
                    let mag = args
                        .iter()
                        .map(|&a| nodes[a].mag_log2)
                        .fold(f64::NEG_INFINITY, f64::max);
                    NodeNoise {
                        mag_log2: mag,
                        err_log2: log2_add_rms(encode_err, mag - EMBED_FP_BITS),
                        budget_bits: f64::INFINITY,
                    }
                } else {
                    // Plaintext operands carry their encoding-error bound in
                    // `err_log2`, so every operand reads uniformly.
                    let operand = |a: NodeId| -> (f64, f64) {
                        let s = nodes[a];
                        (s.mag_log2, s.err_log2)
                    };
                    // Contract magnitude: the scale for cipher operands
                    // (`|m| ≤ 1` at every node, the paper's range contract),
                    // the exact magnitude for plaintext operands.
                    let contract_mag = |a: NodeId| -> f64 {
                        if program.node(a).ty.is_cipher() {
                            program.node(a).scale_log2
                        } else {
                            nodes[a].mag_log2
                        }
                    };
                    match op {
                        Opcode::Negate => {
                            let (mag, err) = operand(args[0]);
                            NodeNoise {
                                mag_log2: mag,
                                err_log2: err,
                                budget_bits: 0.0,
                            }
                        }
                        Opcode::Add | Opcode::Sub => {
                            let (mag_a, err_a) = operand(args[0]);
                            let (mag_b, err_b) = operand(args[1]);
                            NodeNoise {
                                mag_log2: log2_add(mag_a, mag_b),
                                err_log2: log2_add_rms(err_a, err_b),
                                budget_bits: 0.0,
                            }
                        }
                        Opcode::Multiply => {
                            let (mag_a, err_a) = operand(args[0]);
                            let (mag_b, err_b) = operand(args[1]);
                            let err = log2_add_rms(
                                log2_add_rms(
                                    contract_mag(args[0]) + err_b,
                                    contract_mag(args[1]) + err_a,
                                ),
                                err_a + err_b,
                            );
                            NodeNoise {
                                mag_log2: mag_a + mag_b,
                                err_log2: err,
                                budget_bits: 0.0,
                            }
                        }
                        Opcode::Relinearize | Opcode::RotateLeft(_) | Opcode::RotateRight(_) => {
                            let (mag, err) = operand(args[0]);
                            NodeNoise {
                                mag_log2: mag,
                                err_log2: log2_add_rms(err, ks_err_at[level_of(id)]),
                                budget_bits: 0.0,
                            }
                        }
                        Opcode::Rescale(_) => {
                            let (mag, err) = operand(args[0]);
                            // chains[id] counts this node's own consumption,
                            // so the prime divided out sits just above the
                            // node's level.
                            let consumed = chains[id].min(max_level);
                            let divisor = if consumed == 0 {
                                0.0
                            } else {
                                log_primes[max_level - consumed]
                            };
                            NodeNoise {
                                mag_log2: mag - divisor,
                                err_log2: log2_add_rms(err - divisor, rescale_round),
                                budget_bits: 0.0,
                            }
                        }
                        Opcode::ModSwitch => {
                            let (mag, err) = operand(args[0]);
                            NodeNoise {
                                mag_log2: mag,
                                err_log2: log2_add_rms(err, rescale_round),
                                budget_bits: 0.0,
                            }
                        }
                    }
                }
            }
        };
        let mut state = state;
        if node.ty.is_cipher() {
            let level = level_of(id);
            state.budget_bits = log_q[level] - 1.0 - state.err_log2;
        }
        nodes[id] = state;
    }

    NoiseReport { nodes }
}

/// Worst-case `(mag, err)` bounds for an encoded constant. The magnitude is
/// known exactly; a scalar's encoding error is the rounding residue of the
/// single coefficient of its constant polynomial, also known exactly, plus
/// the fp embedding cushion.
fn constant_bounds(value: &ConstantValue, scale_log2: f64, encode_err: f64) -> (f64, f64) {
    let scalar = |c: f64| -> (f64, f64) {
        let scaled = c.abs() * scale_log2.exp2();
        let mag = if scaled == 0.0 {
            f64::NEG_INFINITY
        } else {
            scaled.log2()
        };
        let residue = (scaled - scaled.round()).abs();
        let round_err = if residue == 0.0 {
            f64::NEG_INFINITY
        } else {
            residue.log2()
        };
        (mag, log2_add_rms(round_err, mag - EMBED_FP_BITS))
    };
    match value {
        ConstantValue::Scalar(c) => scalar(*c),
        ConstantValue::Integer(i) => scalar(f64::from(*i)),
        ConstantValue::Vector(values) => {
            let max = values.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
            let mag = if max == 0.0 {
                f64::NEG_INFINITY
            } else {
                scale_log2 + max.log2()
            };
            (mag, log2_add_rms(encode_err, mag - EMBED_FP_BITS))
        }
    }
}

/// Gate used by the compiler and by `.evaprog` consumers: estimates noise
/// and rejects the program if any output's worst-case budget is below the
/// model's safety margin.
///
/// # Errors
///
/// Returns [`EvaError::NoiseBudget`] naming every under-budget output.
pub fn check_noise(
    compiled: &CompiledProgram,
    model: &NoiseModel,
) -> Result<NoiseReport, EvaError> {
    let report = estimate_noise(compiled, model);
    let failing: Vec<String> = report
        .output_budgets(&compiled.program)
        .iter()
        .filter(|o| o.budget_bits < model.safety_margin_bits)
        .map(|o| {
            format!(
                "output {:?} (node {}) has a worst-case noise budget of {:.1} bits, below \
                 the {:.1}-bit safety margin",
                o.name, o.node, o.budget_bits, model.safety_margin_bits
            )
        })
        .collect();
    if failing.is_empty() {
        Ok(report)
    } else {
        Err(EvaError::NoiseBudget(failing.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompilerOptions};
    use crate::types::Opcode;

    #[test]
    fn log2_add_basics() {
        assert_eq!(log2_add(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log2_add(3.0, f64::NEG_INFINITY), 3.0);
        // log2(2^3 + 2^3) = 4.
        assert!((log2_add(3.0, 3.0) - 4.0).abs() < 1e-12);
        // Dominated by the larger term.
        assert!((log2_add(50.0, 0.0) - 50.0).abs() < 1e-3);
    }

    fn compiled(depth: usize) -> CompiledProgram {
        let mut p = Program::new(format!("chain{depth}"), 16);
        let x = p.input_cipher("x", 30);
        let mut acc = x;
        for _ in 0..depth {
            let sq = p.instruction(Opcode::Multiply, &[acc, x]);
            acc = sq;
        }
        p.output("out", acc, 30);
        compile(&p, &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn budgets_shrink_with_depth() {
        let shallow = compiled(1);
        let deep = compiled(4);
        let model = NoiseModel::default();
        let b_shallow = estimate_noise(&shallow, &model)
            .min_output_budget(&shallow.program)
            .unwrap();
        let b_deep = estimate_noise(&deep, &model)
            .min_output_budget(&deep.program)
            .unwrap();
        assert!(
            b_shallow.is_finite() && b_deep.is_finite(),
            "budgets must be finite: {b_shallow} vs {b_deep}"
        );
    }

    #[test]
    fn realistic_programs_pass_the_gate() {
        for depth in 1..=4 {
            let c = compiled(depth);
            check_noise(&c, &NoiseModel::default())
                .unwrap_or_else(|e| panic!("depth {depth} rejected: {e}"));
        }
    }

    #[test]
    fn zero_margin_model_accepts_more_than_a_huge_one() {
        let c = compiled(2);
        assert!(check_noise(
            &c,
            &NoiseModel {
                safety_margin_bits: 0.0
            }
        )
        .is_ok());
        let err = check_noise(
            &c,
            &NoiseModel {
                safety_margin_bits: 1_000_000.0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, EvaError::NoiseBudget(_)), "{err}");
        assert!(err.to_string().contains("safety margin"), "{err}");
    }

    #[test]
    fn plaintext_nodes_have_infinite_budget() {
        let mut p = Program::new("plain", 8);
        let x = p.input_cipher("x", 30);
        let v = p.input_vector("v", 15);
        let prod = p.instruction(Opcode::Multiply, &[x, v]);
        p.output("out", prod, 30);
        let c = compile(&p, &CompilerOptions::default()).unwrap();
        let report = estimate_noise(&c, &NoiseModel::default());
        for (id, node) in c.program.nodes().iter().enumerate() {
            if !node.ty.is_cipher() {
                assert_eq!(report.nodes[id].budget_bits, f64::INFINITY);
            }
        }
    }
}
