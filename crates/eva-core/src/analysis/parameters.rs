//! Encryption parameter selection (paper Section 6.2).
//!
//! Given a validated program, this pass computes the vector of prime bit sizes
//! for the coefficient modulus: the special prime, one prime per entry of the
//! longest output rescale chain, and enough primes to hold the output's scale
//! times the desired output scale. It then chooses the smallest ring degree
//! that fits the total at 128-bit security and is large enough to pack the
//! program's vector size.

use crate::analysis::scale::{analyze_levels, analyze_scales, ChainEntry};
use crate::error::EvaError;
use crate::program::Program;
use eva_math::primes::generate_ntt_primes;

/// The encryption parameters the compiler hands to the backend.
///
/// Besides the requested prime *bit sizes*, the spec carries the **actual**
/// NTT-friendly primes the compiler resolved them to: the exact-scale pass
/// re-annotates the program against these values, so the backend must build
/// its context from the very same primes (not regenerate its own) for the
/// compiler's scale predictions to hold bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParameterSpec {
    /// Ring degree `N`.
    pub degree: usize,
    /// Data prime bit sizes, ordered bottom-of-the-chain first: RESCALE and
    /// MODSWITCH consume primes from the **back** of this list.
    pub data_prime_bits: Vec<u32>,
    /// Bit size of the special key-switching prime.
    pub special_prime_bits: u32,
    /// The actual data primes (same order as `data_prime_bits`).
    pub data_primes: Vec<u64>,
    /// The actual special key-switching prime.
    pub special_prime: u64,
    /// Whether the chosen degree satisfies the 128-bit security bound for the
    /// total modulus (always true for specs produced by [`select_parameters`]).
    pub secure: bool,
}

impl ParameterSpec {
    /// The paper's bit-size vector in application order: special prime first,
    /// then the rescale chain of the critical output, then the leftover primes
    /// covering the output scale (Table 6's `r` is this vector's length).
    pub fn bit_vector_paper_order(&self) -> Vec<u32> {
        let mut bits = vec![self.special_prime_bits];
        bits.extend(self.data_prime_bits.iter().rev());
        bits
    }

    /// The modulus chain length `r` reported in the paper's Table 6 (data
    /// primes plus the special prime).
    pub fn chain_length(&self) -> usize {
        self.data_prime_bits.len() + 1
    }

    /// Total `log2 Q` (sum of all prime bit sizes, including the special one).
    pub fn total_bits(&self) -> u32 {
        self.data_prime_bits.iter().sum::<u32>() + self.special_prime_bits
    }
}

/// Splits `total_bits` into as few factors as possible, each at most
/// `max_bits`, distributing the remainder evenly so no factor is degenerate.
fn split_scale_bits(total_bits: u32, max_bits: u32) -> Vec<u32> {
    if total_bits == 0 {
        return Vec::new();
    }
    let count = total_bits.div_ceil(max_bits).max(1);
    let base = total_bits / count;
    let remainder = total_bits % count;
    (0..count)
        .map(|i| if i < remainder { base + 1 } else { base })
        .map(|bits| bits.max(2))
        .collect()
}

/// Security table lookup shared with `eva-ckks`: the maximum total modulus
/// bits admissible at 128-bit security for each supported degree.
pub(crate) fn max_bits_for_degree(degree: usize) -> Option<u32> {
    match degree {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        65536 => Some(1762),
        _ => None,
    }
}

/// Selects encryption parameters for a validated, transformed program.
///
/// # Errors
///
/// Returns [`EvaError::ParameterSelection`] if the program has no cipher
/// output or needs more modulus bits than any supported ring degree provides
/// at 128-bit security.
pub fn select_parameters(
    program: &mut Program,
    max_rescale_bits: u32,
) -> Result<ParameterSpec, EvaError> {
    let scales = analyze_scales(program)?;
    let chains = analyze_levels(program)?;

    // For every output, gather its rescale chain (without MODSWITCH entries)
    // and the primes needed to hold output_scale * desired_scale.
    let mut best: Option<(usize, Vec<u32>, Vec<u32>)> = None;
    for output in program.outputs() {
        let node = output.node;
        if !program.node(node).ty.is_cipher() {
            continue;
        }
        // Every chain entry consumes a prime at execution time. Positions where
        // only MODSWITCH nodes appear on the paths to this output still need a
        // prime; size it like a full rescale prime so the chain can never run
        // dry (a slight over-approximation relative to the paper's formula,
        // which drops the `∞` entries).
        let rescale_bits: Vec<u32> = chains[node]
            .iter()
            .map(|entry| match entry {
                ChainEntry::Rescale(bits) => *bits,
                ChainEntry::ModSwitch => max_rescale_bits,
            })
            .collect();
        // Nominal scales are integral f64s at this point; ceil makes the cast
        // safe even for exact (re-compiled) annotations.
        let needed_bits = (scales[node] + output.scale_log2).ceil() as u32;
        let tail_bits = split_scale_bits(needed_bits, max_rescale_bits);
        let length = rescale_bits.len() + tail_bits.len();
        let is_better = match &best {
            None => true,
            Some((best_len, _, _)) => length > *best_len,
        };
        if is_better {
            best = Some((length, rescale_bits, tail_bits));
        }
    }
    let (_, rescale_bits, tail_bits) = best
        .ok_or_else(|| EvaError::ParameterSelection("program has no Cipher-typed output".into()))?;

    // Bottom of the chain first: the leftover primes, then the rescale chain in
    // reverse application order (the first rescale consumes the last prime).
    let mut data_prime_bits = tail_bits;
    data_prime_bits.extend(rescale_bits.iter().rev());

    let special_prime_bits = max_rescale_bits;
    let total: u32 = data_prime_bits.iter().sum::<u32>() + special_prime_bits;

    // Smallest degree that is secure for `total` bits and can pack the
    // vector. Primes are resolved per candidate degree (NTT-friendliness
    // depends on it), and the security bound is re-checked against the
    // *exact* log2 Q of the resolved chain: the closest-prime search may
    // land primes a hair above 2^s, and a chain that fills the nominal
    // budget exactly could otherwise overshoot the standard's table by a
    // fraction of a bit.
    let min_degree_for_slots = (2 * program.vec_size()).max(1024);
    let mut all_bits = data_prime_bits.clone();
    all_bits.push(special_prime_bits);
    let mut selected = None;
    for candidate in [1024usize, 2048, 4096, 8192, 16384, 32768, 65536] {
        if candidate < min_degree_for_slots {
            continue;
        }
        let Some(max) = max_bits_for_degree(candidate) else {
            continue;
        };
        if total > max {
            continue;
        }
        // Resolve the bit sizes to the actual NTT-friendly primes now, so the
        // exact-scale pass and the backend agree on the chain down to the bit.
        let primes = generate_ntt_primes(candidate, &all_bits).map_err(|e| {
            EvaError::ParameterSelection(format!(
                "prime generation failed for degree {candidate}: {e}"
            ))
        })?;
        let exact_bits: f64 = primes.iter().map(|&q| (q as f64).log2()).sum();
        if exact_bits > f64::from(max) {
            continue;
        }
        selected = Some((candidate, primes));
        break;
    }
    let (degree, primes) = selected.ok_or_else(|| {
        EvaError::ParameterSelection(format!(
            "program needs {total} modulus bits and {} slots, which no supported \
             ring degree provides at 128-bit security",
            program.vec_size()
        ))
    })?;
    let special_prime = *primes.last().expect("chain is non-empty");
    let data_primes = primes[..primes.len() - 1].to_vec();

    Ok(ParameterSpec {
        degree,
        data_prime_bits,
        special_prime_bits,
        data_primes,
        special_prime,
        secure: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{Opcode, ValueType};

    #[test]
    fn split_scale_bits_respects_maximum() {
        assert_eq!(split_scale_bits(0, 60), Vec::<u32>::new());
        assert_eq!(split_scale_bits(60, 60), vec![60]);
        assert_eq!(split_scale_bits(61, 60), vec![31, 30]);
        assert_eq!(split_scale_bits(150, 60), vec![50, 50, 50]);
        let chunks = split_scale_bits(179, 60);
        assert_eq!(chunks.iter().sum::<u32>(), 179);
        assert!(chunks.iter().all(|&c| c <= 60));
    }

    #[test]
    fn parameters_for_single_rescale_program() {
        // x (30) squared -> 60, rescaled by 60 -> 0... use 25-bit inputs like the
        // paper's examples: x^2 at 50 bits, rescale by 50 (waterline would not allow
        // 60 here, but parameter selection only reads what is in the graph).
        let mut p = Program::new("square", 8);
        let x = p.input_cipher("x", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let relin = p.push_instruction(Opcode::Relinearize, vec![prod], ValueType::Cipher);
        let rescaled = p.push_instruction(Opcode::Rescale(60), vec![relin], ValueType::Cipher);
        p.output("out", rescaled, 30);
        // Output scale after rescale: 0 bits; desired 30 -> one 30-bit tail prime.
        let spec = select_parameters(&mut p, 60).unwrap();
        assert_eq!(spec.data_prime_bits, vec![30, 60]);
        assert_eq!(spec.special_prime_bits, 60);
        assert_eq!(spec.chain_length(), 3);
        assert_eq!(spec.total_bits(), 150);
        assert_eq!(spec.degree, 8192, "150 bits fit degree 8192 but not 4096");
        assert_eq!(spec.bit_vector_paper_order(), vec![60, 60, 30]);
        // The actual primes are resolved alongside the bit sizes (nominal
        // sizes: the closest-prime search may land just above 2^s).
        assert_eq!(spec.data_primes.len(), 2);
        for (&q, &bits) in spec.data_primes.iter().zip(&spec.data_prime_bits) {
            assert_eq!(eva_math::nominal_prime_bits(q), bits);
            assert_eq!(q % (2 * 8192), 1, "prime must be NTT-friendly");
        }
        assert_eq!(eva_math::nominal_prime_bits(spec.special_prime), 60);
    }

    #[test]
    fn degree_grows_with_vector_size() {
        let mut p = Program::new("wide", 16384);
        let x = p.input_cipher("x", 30);
        let y = p.instruction(Opcode::Negate, &[x]);
        p.output("out", y, 30);
        let spec = select_parameters(&mut p, 60).unwrap();
        assert!(spec.degree >= 32768, "need at least 2 * 16384 slots");
    }

    #[test]
    fn oversized_programs_are_rejected() {
        // Repeated squaring with 40 rescales needs ~2400 bits of modulus, far
        // beyond what degree 65536 offers at 128-bit security.
        let mut p = Program::new("deep", 8);
        let x = p.input_cipher("x", 60);
        let mut acc = x;
        for _ in 0..40 {
            let prod = p.instruction(Opcode::Multiply, &[acc, acc]);
            let relin = p.push_instruction(Opcode::Relinearize, vec![prod], ValueType::Cipher);
            acc = p.push_instruction(Opcode::Rescale(60), vec![relin], ValueType::Cipher);
        }
        p.output("out", acc, 30);
        let err = select_parameters(&mut p, 60).unwrap_err();
        assert!(matches!(err, EvaError::ParameterSelection(_)));
    }

    #[test]
    fn plain_only_output_is_rejected() {
        let mut p = Program::new("plain", 8);
        let v = p.input_vector("v", 30);
        let w = p.instruction(Opcode::Add, &[v, v]);
        p.output("out", w, 30);
        assert!(select_parameters(&mut p, 60).is_err());
    }
}
