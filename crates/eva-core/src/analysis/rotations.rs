//! Rotation-key selection (paper Section 6.2): collect the set of distinct
//! rotation step counts used by the program, because each step count needs its
//! own Galois key.

use std::collections::BTreeSet;

use crate::program::{NodeKind, Program};
use crate::types::Opcode;

/// Returns the sorted set of signed rotation steps used by the program.
/// Positive values are left rotations, negative values right rotations, and
/// zero-step rotations are omitted (they are the identity and need no key).
pub fn select_rotation_steps(program: &Program) -> Vec<i64> {
    let mut steps = BTreeSet::new();
    for node in program.nodes() {
        if let NodeKind::Instruction { op, .. } = &node.kind {
            match op {
                Opcode::RotateLeft(s) if *s != 0 => {
                    steps.insert(*s as i64);
                }
                Opcode::RotateRight(s) if *s != 0 => {
                    steps.insert(-(*s as i64));
                }
                _ => {}
            }
        }
    }
    steps.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::Opcode;

    #[test]
    fn collects_unique_signed_steps() {
        let mut p = Program::new("rot", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(3), &[x]);
        let b = p.instruction(Opcode::RotateRight(2), &[a]);
        let c = p.instruction(Opcode::RotateLeft(3), &[b]);
        let d = p.instruction(Opcode::RotateLeft(0), &[c]);
        p.output("out", d, 30);
        assert_eq!(select_rotation_steps(&p), vec![-2, 3]);
    }

    #[test]
    fn empty_for_programs_without_rotations() {
        let mut p = Program::new("none", 16);
        let x = p.input_cipher("x", 30);
        let y = p.instruction(Opcode::Add, &[x, x]);
        p.output("out", y, 30);
        assert!(select_rotation_steps(&p).is_empty());
    }
}
