//! Rotation-key selection (paper Section 6.2): collect the set of distinct
//! rotation step counts used by the program, because each step count needs its
//! own Galois key.
//!
//! # Canonicalization contract
//!
//! EVA programs rotate *logical* vectors of `vec_size` elements. The sparse
//! CKKS packing replicates the logical vector periodically across the `nh`
//! ciphertext slots (`gap = nh / vec_size`), so a ciphertext rotation by `k`
//! slots realizes a logical rotation by `k mod vec_size`. Two consequences,
//! which the rotation-set minimization pass and Galois-key derivation both
//! rely on and must never disagree about:
//!
//! 1. **Left-rotation normal form.** For any step `s`,
//!    `RotateRight(s) ≡ RotateLeft((vec_size − s).rem_euclid(vec_size))`
//!    *value-preserving* on every decoded vector. [`canonical_left_step`] is
//!    the single implementation of this mapping.
//! 2. **Automorphism identity.** On the slot count `nh`, the Galois element
//!    of a signed step is `5^(step mod nh) mod 2N`, so
//!    `galois_elt(−s) = galois_elt(nh − s)` **exactly** — a right rotation
//!    and its canonical left form use the *same* automorphism whenever
//!    `vec_size` equals the slot count, and congruent automorphisms (equal
//!    ciphertext bits) otherwise. The cross-crate test
//!    `galois_element_of_negative_step_matches_canonical_left_form` in
//!    `eva-ckks` pins this against the real key derivation.
//!
//! [`select_rotation_steps`] itself reports steps *signed*, exactly as the
//! instructions spell them (`RotateRight(s)` as `−s`): key derivation
//! understands signed steps, and preserving the spelling keeps the step list
//! bit-stable for programs the optimizer has not touched.

use std::collections::BTreeSet;

use crate::program::{NodeKind, Program};
use crate::types::Opcode;

/// Maps a signed rotation step (positive = left, negative = right) to its
/// canonical left step in `[0, vec_size)`.
///
/// This is the normal form the rotation-set minimization pass rewrites every
/// rotation into; Galois-key derivation resolves the same congruence class,
/// so canonicalizing can only shrink (never change) the set of keys needed.
///
/// # Panics
///
/// Panics if `vec_size` is not a power of two (the [`Program`] constructor
/// enforces the same requirement).
pub fn canonical_left_step(step: i64, vec_size: usize) -> i64 {
    assert!(
        vec_size >= 1 && vec_size.is_power_of_two(),
        "vector size {vec_size} must be a power of two"
    );
    step.rem_euclid(vec_size as i64)
}

/// Returns the sorted set of signed rotation steps used by the program.
/// Positive values are left rotations, negative values right rotations, and
/// zero-step rotations are omitted (they are the identity and need no key).
pub fn select_rotation_steps(program: &Program) -> Vec<i64> {
    let mut steps = BTreeSet::new();
    for node in program.nodes() {
        if let NodeKind::Instruction { op, .. } = &node.kind {
            match op {
                Opcode::RotateLeft(s) if *s != 0 => {
                    steps.insert(*s as i64);
                }
                Opcode::RotateRight(s) if *s != 0 => {
                    steps.insert(-(*s as i64));
                }
                _ => {}
            }
        }
    }
    steps.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::Opcode;

    #[test]
    fn collects_unique_signed_steps() {
        let mut p = Program::new("rot", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(3), &[x]);
        let b = p.instruction(Opcode::RotateRight(2), &[a]);
        let c = p.instruction(Opcode::RotateLeft(3), &[b]);
        let d = p.instruction(Opcode::RotateLeft(0), &[c]);
        p.output("out", d, 30);
        assert_eq!(select_rotation_steps(&p), vec![-2, 3]);
    }

    #[test]
    fn empty_for_programs_without_rotations() {
        let mut p = Program::new("none", 16);
        let x = p.input_cipher("x", 30);
        let y = p.instruction(Opcode::Add, &[x, x]);
        p.output("out", y, 30);
        assert!(select_rotation_steps(&p).is_empty());
    }

    /// Reference semantics of a logical left rotation by a signed step.
    fn rotate_ref(v: &[f64], step: i64) -> Vec<f64> {
        let n = v.len() as i64;
        (0..v.len())
            .map(|i| v[(i as i64 + step).rem_euclid(n) as usize])
            .collect()
    }

    #[test]
    fn canonical_left_step_lands_in_range_and_preserves_values() {
        let vec_size = 16usize;
        let v: Vec<f64> = (0..vec_size).map(|i| i as f64).collect();
        for s in -40i64..=40 {
            let c = canonical_left_step(s, vec_size);
            assert!((0..vec_size as i64).contains(&c), "step {s} -> {c}");
            assert_eq!(
                rotate_ref(&v, s),
                rotate_ref(&v, c),
                "RotateLeft({s}) must decode identically to RotateLeft({c})"
            );
        }
    }

    #[test]
    fn right_rotation_maps_to_size_minus_s() {
        // The contract as stated: RotateRight(s) ≡ RotateLeft(vec_size − s)
        // for 0 < s < vec_size.
        for s in 1i64..16 {
            assert_eq!(canonical_left_step(-s, 16), 16 - s);
        }
        assert_eq!(canonical_left_step(0, 16), 0);
        assert_eq!(canonical_left_step(16, 16), 0);
        assert_eq!(canonical_left_step(-16, 16), 0);
        assert_eq!(canonical_left_step(35, 16), 3);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        for s in -64i64..=64 {
            let once = canonical_left_step(s, 32);
            assert_eq!(canonical_left_step(once, 32), once);
        }
    }
}
