//! Forward data-flow analyses: fixed-point scales, rescale chains (levels) and
//! polynomial counts.

use crate::error::EvaError;
use crate::program::{NodeId, NodeKind, Program};
use crate::types::Opcode;

/// One entry of a node's rescale chain (paper Definition 3): either a RESCALE
/// by a known number of bits, or a MODSWITCH (the paper's `∞`, which matches
/// any rescale value when chains are compared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainEntry {
    /// RESCALE by `2^bits`.
    Rescale(u32),
    /// MODSWITCH (matches any value during conformity comparison).
    ModSwitch,
}

impl ChainEntry {
    fn merge(a: ChainEntry, b: ChainEntry) -> Option<ChainEntry> {
        match (a, b) {
            (ChainEntry::ModSwitch, other) | (other, ChainEntry::ModSwitch) => Some(other),
            (ChainEntry::Rescale(x), ChainEntry::Rescale(y)) if x == y => Some(a),
            _ => None,
        }
    }
}

/// Computes the fixed-point scale (in bits) of every node and stores it on the
/// program. Returns the vector of scales indexed by node id.
///
/// Scales combine exactly as the paper describes: inputs and constants carry
/// their annotations, MULTIPLY adds scales, RESCALE subtracts its divisor, and
/// every other instruction preserves its (first cipher) parent's scale.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] if a RESCALE divides by more bits than its
/// operand's scale has.
pub fn analyze_scales(program: &mut Program) -> Result<Vec<u32>, EvaError> {
    let order = program.topological_order();
    let mut scales = vec![0u32; program.len()];
    for id in order {
        let scale = match &program.node(id).kind {
            NodeKind::Input { .. } | NodeKind::Constant { .. } => program.node(id).scale_bits,
            NodeKind::Instruction { op, args } => {
                let arg_scales: Vec<u32> = args.iter().map(|&a| scales[a]).collect();
                match op {
                    Opcode::Multiply => arg_scales.iter().sum(),
                    Opcode::Add | Opcode::Sub => *arg_scales.iter().max().unwrap_or(&0),
                    Opcode::Rescale(bits) => {
                        let input = arg_scales[0];
                        if input < *bits {
                            return Err(EvaError::Validation(format!(
                                "node {id}: rescale by 2^{bits} underflows operand scale 2^{input}"
                            )));
                        }
                        input - bits
                    }
                    Opcode::Negate
                    | Opcode::RotateLeft(_)
                    | Opcode::RotateRight(_)
                    | Opcode::Relinearize
                    | Opcode::ModSwitch => arg_scales[0],
                }
            }
        };
        scales[id] = scale;
        program.set_scale_bits(id, scale);
    }
    Ok(scales)
}

/// Computes the conforming rescale chain of every *cipher* node.
///
/// Non-cipher nodes get an empty chain. The chain of a cipher node is the
/// sequence of RESCALE/MODSWITCH operations on any root-to-node path; the
/// analysis fails if two paths disagree (the chains are not conforming), which
/// is exactly the paper's Constraint 1 precondition.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] if any node has non-conforming chains.
pub fn analyze_levels(program: &Program) -> Result<Vec<Vec<ChainEntry>>, EvaError> {
    let order = program.topological_order();
    let mut chains: Vec<Vec<ChainEntry>> = vec![Vec::new(); program.len()];
    for id in order {
        let node = program.node(id);
        if !node.ty.is_cipher() {
            continue;
        }
        let chain = match &node.kind {
            NodeKind::Input { .. } => Vec::new(),
            NodeKind::Constant { .. } => Vec::new(),
            NodeKind::Instruction { op, args } => {
                // Merge the chains of all cipher parents.
                let cipher_args: Vec<NodeId> = args
                    .iter()
                    .copied()
                    .filter(|&a| program.node(a).ty.is_cipher())
                    .collect();
                let mut merged: Option<Vec<ChainEntry>> = None;
                for &arg in &cipher_args {
                    let arg_chain = &chains[arg];
                    merged = Some(match merged {
                        None => arg_chain.clone(),
                        Some(current) => {
                            if current.len() != arg_chain.len() {
                                return Err(EvaError::Validation(format!(
                                    "node {id}: operands have rescale chains of different \
                                     length ({} vs {})",
                                    current.len(),
                                    arg_chain.len()
                                )));
                            }
                            let mut out = Vec::with_capacity(current.len());
                            for (&a, &b) in current.iter().zip(arg_chain) {
                                match ChainEntry::merge(a, b) {
                                    Some(entry) => out.push(entry),
                                    None => {
                                        return Err(EvaError::Validation(format!(
                                            "node {id}: operands have non-conforming rescale \
                                             chains ({a:?} vs {b:?})"
                                        )))
                                    }
                                }
                            }
                            out
                        }
                    });
                }
                let mut chain = merged.unwrap_or_default();
                match op {
                    Opcode::Rescale(bits) => chain.push(ChainEntry::Rescale(*bits)),
                    Opcode::ModSwitch => chain.push(ChainEntry::ModSwitch),
                    _ => {}
                }
                chain
            }
        };
        chains[id] = chain;
    }
    Ok(chains)
}

/// Computes the number of polynomials of every cipher node's ciphertext
/// (paper Constraint 3): fresh ciphertexts have 2, a cipher-cipher MULTIPLY
/// produces 3, RELINEARIZE brings it back to 2.
pub fn analyze_num_polys(program: &Program) -> Vec<usize> {
    let order = program.topological_order();
    let mut polys = vec![2usize; program.len()];
    for id in order {
        let node = program.node(id);
        if !node.ty.is_cipher() {
            continue;
        }
        if let NodeKind::Instruction { op, args } = &node.kind {
            let cipher_args: Vec<NodeId> = args
                .iter()
                .copied()
                .filter(|&a| program.node(a).ty.is_cipher())
                .collect();
            polys[id] = match op {
                Opcode::Multiply if cipher_args.len() == 2 => {
                    polys[cipher_args[0]] + polys[cipher_args[1]] - 1
                }
                Opcode::Relinearize => 2,
                _ => cipher_args.iter().map(|&a| polys[a]).max().unwrap_or(2),
            };
        }
    }
    polys
}

/// Convenience: the length of each node's rescale chain (the paper's `level`).
pub fn chain_lengths(chains: &[Vec<ChainEntry>]) -> Vec<usize> {
    chains.iter().map(|c| c.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{Opcode, ValueType};

    #[test]
    fn scales_follow_multiply_and_rescale() {
        let mut p = Program::new("scales", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 25);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let rescaled = p.push_instruction(Opcode::Rescale(40), vec![prod], ValueType::Cipher);
        p.output("out", rescaled, 25);
        let scales = analyze_scales(&mut p).unwrap();
        assert_eq!(scales[prod], 55);
        assert_eq!(scales[rescaled], 15);
        assert_eq!(p.node(rescaled).scale_bits, 15);
    }

    #[test]
    fn rescale_underflow_is_rejected() {
        let mut p = Program::new("underflow", 8);
        let x = p.input_cipher("x", 30);
        let r = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        p.output("out", r, 30);
        assert!(analyze_scales(&mut p).is_err());
    }

    #[test]
    fn chains_merge_modswitch_with_rescale() {
        // x --rescale(60)--> a --+
        //                        +--> add
        // x --modswitch-------> b --+
        let mut p = Program::new("chains", 8);
        let x = p.input_cipher("x", 30);
        let a = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        let b = p.push_instruction(Opcode::ModSwitch, vec![x], ValueType::Cipher);
        let add = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", add, 30);
        let chains = analyze_levels(&p).unwrap();
        assert_eq!(chains[add], vec![ChainEntry::Rescale(60)]);
    }

    #[test]
    fn non_conforming_chains_are_detected() {
        // One operand rescaled, the other not: lengths differ.
        let mut p = Program::new("bad_chains", 8);
        let x = p.input_cipher("x", 30);
        let a = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        let add = p.instruction(Opcode::Add, &[a, x]);
        p.output("out", add, 30);
        assert!(analyze_levels(&p).is_err());
    }

    #[test]
    fn num_polys_tracks_multiplication_and_relinearization() {
        let mut p = Program::new("polys", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let relin = p.push_instruction(Opcode::Relinearize, vec![prod], ValueType::Cipher);
        let plain = p.input_vector("v", 20);
        let mixed = p.instruction(Opcode::Multiply, &[relin, plain]);
        p.output("out", mixed, 30);
        let polys = analyze_num_polys(&p);
        assert_eq!(polys[x], 2);
        assert_eq!(polys[prod], 3);
        assert_eq!(polys[relin], 2);
        assert_eq!(polys[mixed], 2);
    }
}
