//! Forward data-flow analyses: fixed-point scales, rescale chains (levels) and
//! polynomial counts.
//!
//! # The two-phase exact-scale pipeline
//!
//! Scales are tracked in the `log2` domain as `f64` throughout the compiler,
//! in two phases:
//!
//! 1. **Nominal phase** (before parameter selection): [`analyze_scales`]
//!    propagates the programmer's integral bit annotations under
//!    power-of-two semantics — MULTIPLY adds `log2` scales, `RESCALE(s)`
//!    subtracts exactly `s` bits. All values are integral `f64`s, so the
//!    rewrite passes (waterline rescale, match-scale, modswitch) make the
//!    same decisions the paper's integer formulation makes, and parameter
//!    selection can size the prime chain from them.
//! 2. **Exact phase** (after parameter selection): once the actual
//!    NTT-friendly primes are fixed, [`analyze_exact_scales`] re-propagates
//!    scales against the real chain — a RESCALE at level `l` subtracts
//!    `log2(q_{l-1})` of the *actual* prime, which is close to but never
//!    exactly its nominal bit size. The propagation mirrors, operation for
//!    operation, the `f64` arithmetic the runtime evaluator performs
//!    (addition of `log2` scales on multiply, subtraction of a cached
//!    `log2 q` on rescale), so the compiler's predicted scales are
//!    **bit-identical** to the scales the executor observes.
//!
//! ADD/SUB requires exactly equal operand scales at runtime. Where two
//! operands reach the same level through different RESCALE/MODSWITCH
//! structures their exact scales differ by a tiny drift (≈ `2^-15` relative
//! per rescale, the gap between a prime and its power-of-two nominal); the
//! exact match-scale pass
//! ([`crate::passes::apply_exact_scales`]) closes that gap by multiplying the
//! lower-scale operand with the constant `1` encoded at the scale ratio,
//! using [`match_scale_delta`] to pick a `log2` delta whose rounded sum lands
//! bit-exactly on the target. The executor therefore needs **no scale
//! tolerance at all** — its scale comparison is exact `f64` equality, and any
//! mismatch is a genuine compiler bug rather than inherent prime drift.

use crate::error::EvaError;
use crate::program::{NodeId, NodeKind, Program};
use crate::types::Opcode;

/// One entry of a node's rescale chain (paper Definition 3): either a RESCALE
/// by a known number of bits, or a MODSWITCH (the paper's `∞`, which matches
/// any rescale value when chains are compared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainEntry {
    /// RESCALE by `2^bits`.
    Rescale(u32),
    /// MODSWITCH (matches any value during conformity comparison).
    ModSwitch,
}

impl ChainEntry {
    pub(crate) fn merge(a: ChainEntry, b: ChainEntry) -> Option<ChainEntry> {
        match (a, b) {
            (ChainEntry::ModSwitch, other) | (other, ChainEntry::ModSwitch) => Some(other),
            (ChainEntry::Rescale(x), ChainEntry::Rescale(y)) if x == y => Some(a),
            _ => None,
        }
    }
}

/// Computes the nominal `log2` scale of every node and stores it on the
/// program. Returns the vector of scales indexed by node id.
///
/// Scales combine exactly as the paper describes: inputs and constants carry
/// their annotations, MULTIPLY adds `log2` scales, RESCALE subtracts its
/// nominal divisor, and every other instruction preserves its (first cipher)
/// parent's scale. This is the *nominal* (power-of-two) phase of the pipeline
/// described in the module docs; after parameter selection
/// [`analyze_exact_scales`] replaces these annotations with the exact values.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] if a RESCALE divides by more bits than its
/// operand's scale has.
pub fn analyze_scales(program: &mut Program) -> Result<Vec<f64>, EvaError> {
    let order = program.topological_order();
    let mut scales = vec![0.0f64; program.len()];
    for id in order {
        let scale = match &program.node(id).kind {
            NodeKind::Input { .. } | NodeKind::Constant { .. } => program.node(id).scale_log2,
            NodeKind::Instruction { op, args } => {
                let arg_scales: Vec<f64> = args.iter().map(|&a| scales[a]).collect();
                match op {
                    Opcode::Multiply => arg_scales.iter().sum(),
                    Opcode::Add | Opcode::Sub => arg_scales.iter().copied().fold(0.0f64, f64::max),
                    Opcode::Rescale(bits) => {
                        let input = arg_scales[0];
                        if input < f64::from(*bits) {
                            return Err(EvaError::Validation(format!(
                                "node {id}: rescale by 2^{bits} underflows operand scale 2^{input}"
                            )));
                        }
                        input - f64::from(*bits)
                    }
                    Opcode::Negate
                    | Opcode::RotateLeft(_)
                    | Opcode::RotateRight(_)
                    | Opcode::Relinearize
                    | Opcode::ModSwitch => arg_scales[0],
                }
            }
        };
        scales[id] = scale;
        program.set_scale_log2(id, scale);
    }
    Ok(scales)
}

/// The nominal `log2` transfer function for one node given its operands'
/// scales: the same rules as [`analyze_scales`], but saturating on rescale
/// underflow instead of erroring. Shared by the rewrite passes (waterline /
/// always rescale, match-scale) so the rules live in exactly one place.
pub(crate) fn nominal_scale_of(node: &crate::program::Node, arg_scales: &[f64]) -> f64 {
    match &node.kind {
        NodeKind::Input { .. } | NodeKind::Constant { .. } => node.scale_log2,
        NodeKind::Instruction { op, .. } => match op {
            Opcode::Multiply => arg_scales.iter().sum(),
            Opcode::Add | Opcode::Sub => arg_scales.iter().copied().fold(0.0f64, f64::max),
            Opcode::Rescale(bits) => (arg_scales[0] - f64::from(*bits)).max(0.0),
            _ => arg_scales[0],
        },
    }
}

/// `log2` of each data prime, cached once per exact-scale pass. The values
/// are computed with the same `(q as f64).log2()` expression the runtime
/// context uses, which is what makes compiler predictions bit-identical to
/// executor observations.
pub fn prime_log2s(data_primes: &[u64]) -> Vec<f64> {
    data_primes.iter().map(|&q| (q as f64).log2()).collect()
}

/// Computes the **exact** `log2` scale of every node against the actual prime
/// chain chosen by parameter selection, without modifying the program.
///
/// The propagation replays the evaluator's own scale arithmetic: MULTIPLY
/// adds the operand `log2` scales (for a plaintext operand, the plaintext
/// node's annotation, at which the executor encodes it), RESCALE at level `l`
/// subtracts `log2(q_{l-1})` of the real prime, ADD/SUB with a plaintext
/// operand inherits the cipher operand's scale (the executor encodes the
/// plaintext at exactly that scale), and every other instruction preserves
/// its parent's scale. Non-cipher nodes keep their (integral) nominal scales.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] if a cipher-cipher ADD/SUB has operands
/// whose exact scales are not bit-identical (the exact match-scale pass
/// should have corrected them first), or if a node's rescale chain is longer
/// than the prime chain.
pub fn analyze_exact_scales(program: &Program, data_primes: &[u64]) -> Result<Vec<f64>, EvaError> {
    let chains = analyze_levels(program)?;
    let log_primes = prime_log2s(data_primes);
    let max_level = data_primes.len();
    let order = program.topological_order();
    let live = program.live_mask();
    let mut scales = vec![0.0f64; program.len()];
    for id in order {
        if !live[id] {
            // Dead nodes are never executed; they keep their nominal
            // annotation (their chains may exceed the prime budget).
            scales[id] = program.node(id).scale_log2;
            continue;
        }
        scales[id] = exact_scale_of(program, id, &scales, &chains, &log_primes, max_level)?;
    }
    Ok(scales)
}

/// The exact-scale transfer function for one node, shared by the pure
/// analysis above and the rewriting pass in `passes::match_scale`.
pub(crate) fn exact_scale_of(
    program: &Program,
    id: NodeId,
    scales: &[f64],
    chains: &[Vec<ChainEntry>],
    log_primes: &[f64],
    max_level: usize,
) -> Result<f64, EvaError> {
    let node = program.node(id);
    let scale = match &node.kind {
        NodeKind::Input { .. } | NodeKind::Constant { .. } => node.scale_log2,
        NodeKind::Instruction { op, args } => {
            if !node.ty.is_cipher() {
                // Plaintext subgraphs keep nominal (integral) semantics: the
                // executor computes them as raw vectors and re-encodes them at
                // their annotated scale when a cipher consumer needs them.
                let arg_scales: Vec<f64> = args.iter().map(|&a| scales[a]).collect();
                return Ok(match op {
                    Opcode::Multiply => arg_scales.iter().sum(),
                    Opcode::Add | Opcode::Sub => arg_scales.iter().copied().fold(0.0f64, f64::max),
                    Opcode::Rescale(bits) => arg_scales[0] - f64::from(*bits),
                    _ => arg_scales[0],
                });
            }
            let cipher_args: Vec<NodeId> = args
                .iter()
                .copied()
                .filter(|&a| program.node(a).ty.is_cipher())
                .collect();
            match op {
                Opcode::Multiply => scales[args[0]] + scales[args[1]],
                Opcode::Add | Opcode::Sub => {
                    if cipher_args.len() == 2 {
                        let (a, b) = (scales[cipher_args[0]], scales[cipher_args[1]]);
                        if a != b {
                            return Err(EvaError::Validation(format!(
                                "node {id} ({op}): operand exact scales differ \
                                 (2^{a:.10e} vs 2^{b:.10e})"
                            )));
                        }
                        a
                    } else {
                        // The executor encodes the plaintext operand at the
                        // cipher operand's exact scale.
                        scales[cipher_args[0]]
                    }
                }
                Opcode::Rescale(_) => {
                    // chains[id] includes this node's own entry, so the level
                    // *after* this rescale — which indexes the prime divided —
                    // is max_level - chains[id].len().
                    let consumed = chains[id].len();
                    if consumed > max_level {
                        return Err(EvaError::Validation(format!(
                            "node {id}: rescale chain of length {consumed} exceeds the \
                             {max_level}-prime chain"
                        )));
                    }
                    let level = max_level - consumed;
                    scales[args[0]] - log_primes[level]
                }
                Opcode::Negate
                | Opcode::RotateLeft(_)
                | Opcode::RotateRight(_)
                | Opcode::Relinearize
                | Opcode::ModSwitch => scales[args[0]],
            }
        }
    };
    Ok(scale)
}

/// Solves for a `log2`-domain correction `delta` such that
/// `source + delta == target` holds **bit-exactly** in `f64` arithmetic.
///
/// The naive `target - source` lands within an ulp of the target after the
/// rounded re-addition; because `|delta| ≪ |source|`, nudging `delta` in
/// ulp-of-target steps moves the rounded sum one representable value at a
/// time, so a few steps in either direction always reach the target exactly.
/// Returns `None` only if no representable delta works (not observed in
/// practice; callers surface it as a validation error).
pub fn match_scale_delta(source: f64, target: f64) -> Option<f64> {
    if source == target {
        return Some(0.0);
    }
    let base = target - source;
    if source + base == target {
        return Some(base);
    }
    // One ulp at the target's magnitude (scales are positive, tens of bits).
    let ulp = (target.next_up() - target).max(f64::MIN_POSITIVE);
    for k in 1..=8i32 {
        for sign in [1.0f64, -1.0] {
            let delta = base + sign * f64::from(k) * ulp;
            if source + delta == target {
                return Some(delta);
            }
        }
    }
    None
}

/// Computes the conforming rescale chain of every *cipher* node.
///
/// Non-cipher nodes get an empty chain. The chain of a cipher node is the
/// sequence of RESCALE/MODSWITCH operations on any root-to-node path; the
/// analysis fails if two paths disagree (the chains are not conforming), which
/// is exactly the paper's Constraint 1 precondition.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] if any node has non-conforming chains.
pub fn analyze_levels(program: &Program) -> Result<Vec<Vec<ChainEntry>>, EvaError> {
    let order = program.topological_order();
    let mut chains: Vec<Vec<ChainEntry>> = vec![Vec::new(); program.len()];
    for id in order {
        let node = program.node(id);
        if !node.ty.is_cipher() {
            continue;
        }
        let chain = match &node.kind {
            NodeKind::Input { .. } => Vec::new(),
            NodeKind::Constant { .. } => Vec::new(),
            NodeKind::Instruction { op, args } => {
                // Merge the chains of all cipher parents.
                let cipher_args: Vec<NodeId> = args
                    .iter()
                    .copied()
                    .filter(|&a| program.node(a).ty.is_cipher())
                    .collect();
                let mut merged: Option<Vec<ChainEntry>> = None;
                for &arg in &cipher_args {
                    let arg_chain = &chains[arg];
                    merged = Some(match merged {
                        None => arg_chain.clone(),
                        Some(current) => {
                            if current.len() != arg_chain.len() {
                                return Err(EvaError::Validation(format!(
                                    "node {id}: operands have rescale chains of different \
                                     length ({} vs {})",
                                    current.len(),
                                    arg_chain.len()
                                )));
                            }
                            let mut out = Vec::with_capacity(current.len());
                            for (&a, &b) in current.iter().zip(arg_chain) {
                                match ChainEntry::merge(a, b) {
                                    Some(entry) => out.push(entry),
                                    None => {
                                        return Err(EvaError::Validation(format!(
                                            "node {id}: operands have non-conforming rescale \
                                             chains ({a:?} vs {b:?})"
                                        )))
                                    }
                                }
                            }
                            out
                        }
                    });
                }
                let mut chain = merged.unwrap_or_default();
                match op {
                    Opcode::Rescale(bits) => chain.push(ChainEntry::Rescale(*bits)),
                    Opcode::ModSwitch => chain.push(ChainEntry::ModSwitch),
                    _ => {}
                }
                chain
            }
        };
        chains[id] = chain;
    }
    Ok(chains)
}

/// Computes the number of polynomials of every cipher node's ciphertext
/// (paper Constraint 3): fresh ciphertexts have 2, a cipher-cipher MULTIPLY
/// produces 3, RELINEARIZE brings it back to 2.
pub fn analyze_num_polys(program: &Program) -> Vec<usize> {
    let order = program.topological_order();
    let mut polys = vec![2usize; program.len()];
    for id in order {
        let node = program.node(id);
        if !node.ty.is_cipher() {
            continue;
        }
        if let NodeKind::Instruction { op, args } = &node.kind {
            let cipher_args: Vec<NodeId> = args
                .iter()
                .copied()
                .filter(|&a| program.node(a).ty.is_cipher())
                .collect();
            polys[id] = match op {
                Opcode::Multiply if cipher_args.len() == 2 => {
                    polys[cipher_args[0]] + polys[cipher_args[1]] - 1
                }
                Opcode::Relinearize => 2,
                _ => cipher_args.iter().map(|&a| polys[a]).max().unwrap_or(2),
            };
        }
    }
    polys
}

/// Convenience: the length of each node's rescale chain (the paper's `level`).
pub fn chain_lengths(chains: &[Vec<ChainEntry>]) -> Vec<usize> {
    chains.iter().map(|c| c.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{Opcode, ValueType};

    #[test]
    fn scales_follow_multiply_and_rescale() {
        let mut p = Program::new("scales", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 25);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let rescaled = p.push_instruction(Opcode::Rescale(40), vec![prod], ValueType::Cipher);
        p.output("out", rescaled, 25);
        let scales = analyze_scales(&mut p).unwrap();
        assert_eq!(scales[prod], 55.0);
        assert_eq!(scales[rescaled], 15.0);
        assert_eq!(p.node(rescaled).scale_log2, 15.0);
    }

    #[test]
    fn exact_scales_divide_by_actual_primes() {
        // x^2 rescaled once: the exact scale is 2*30 - log2(q_top), not 60-40.
        let mut p = Program::new("exact", 8);
        let x = p.input_cipher("x", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let rescaled = p.push_instruction(Opcode::Rescale(40), vec![prod], ValueType::Cipher);
        p.output("out", rescaled, 20);
        // Two data primes; the first rescale divides by the *last* one.
        let primes = [1099511590913u64, 1099511680897];
        let exact = analyze_exact_scales(&p, &primes).unwrap();
        assert_eq!(exact[x], 30.0);
        assert_eq!(exact[prod], 60.0);
        assert_eq!(
            exact[rescaled].to_bits(),
            (60.0 - (primes[1] as f64).log2()).to_bits()
        );
        assert!(exact[rescaled] != 20.0, "exact scale is never the nominal");
    }

    #[test]
    fn exact_scales_reject_drifted_add() {
        // x^2 rescaled vs x mod-switched: same level, different division
        // history, so the exact scales genuinely differ -> validation error.
        let mut p = Program::new("drift", 8);
        let x = p.input_cipher("x", 40);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let rescaled = p.push_instruction(Opcode::Rescale(40), vec![prod], ValueType::Cipher);
        let switched = p.push_instruction(Opcode::ModSwitch, vec![x], ValueType::Cipher);
        let sum = p.instruction(Opcode::Add, &[rescaled, switched]);
        p.output("out", sum, 40);
        let primes = [1099511590913u64, 1099511680897];
        let err = analyze_exact_scales(&p, &primes).unwrap_err();
        assert!(err.to_string().contains("exact scales differ"), "{err}");
    }

    #[test]
    fn match_scale_delta_lands_bit_exactly() {
        let qs = [1099511590913u64, 1099511680897, 2199023190017];
        let mut cases = Vec::new();
        for (i, &qa) in qs.iter().enumerate() {
            for &qb in &qs[i + 1..] {
                // The canonical drift pair: divided by qa vs divided by qb.
                cases.push((80.0 - (qa as f64).log2(), 80.0 - (qb as f64).log2()));
                cases.push((117.3 - (qa as f64).log2(), 117.3 - (qb as f64).log2()));
            }
        }
        cases.push((40.0, 40.0));
        for (source, target) in cases {
            let delta = match_scale_delta(source, target)
                .unwrap_or_else(|| panic!("no delta for {source} -> {target}"));
            assert_eq!(
                (source + delta).to_bits(),
                target.to_bits(),
                "source {source}, delta {delta}"
            );
        }
    }

    #[test]
    fn rescale_underflow_is_rejected() {
        let mut p = Program::new("underflow", 8);
        let x = p.input_cipher("x", 30);
        let r = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        p.output("out", r, 30);
        assert!(analyze_scales(&mut p).is_err());
    }

    #[test]
    fn chains_merge_modswitch_with_rescale() {
        // x --rescale(60)--> a --+
        //                        +--> add
        // x --modswitch-------> b --+
        let mut p = Program::new("chains", 8);
        let x = p.input_cipher("x", 30);
        let a = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        let b = p.push_instruction(Opcode::ModSwitch, vec![x], ValueType::Cipher);
        let add = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", add, 30);
        let chains = analyze_levels(&p).unwrap();
        assert_eq!(chains[add], vec![ChainEntry::Rescale(60)]);
    }

    #[test]
    fn non_conforming_chains_are_detected() {
        // One operand rescaled, the other not: lengths differ.
        let mut p = Program::new("bad_chains", 8);
        let x = p.input_cipher("x", 30);
        let a = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        let add = p.instruction(Opcode::Add, &[a, x]);
        p.output("out", add, 30);
        assert!(analyze_levels(&p).is_err());
    }

    #[test]
    fn num_polys_tracks_multiplication_and_relinearization() {
        let mut p = Program::new("polys", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let relin = p.push_instruction(Opcode::Relinearize, vec![prod], ValueType::Cipher);
        let plain = p.input_vector("v", 20);
        let mixed = p.instruction(Opcode::Multiply, &[relin, plain]);
        p.output("out", mixed, 30);
        let polys = analyze_num_polys(&p);
        assert_eq!(polys[x], 2);
        assert_eq!(polys[prod], 3);
        assert_eq!(polys[relin], 2);
        assert_eq!(polys[mixed], 2);
    }
}
