//! Validation passes: assert that a transformed program satisfies the
//! cryptographic constraints of Section 4.2, so that the generated code can
//! never trigger a runtime exception in the FHE library (paper Section 6.2,
//! "Validation Passes").

use crate::analysis::scale::{analyze_exact_scales, analyze_scales};
use crate::analysis::verifier::verify_program;
use crate::analysis::ParameterSpec;
use crate::error::EvaError;
use crate::program::Program;

/// Validates the transformed program against Constraints 1–4.
///
/// * **Constraint 1** — operands of ADD/SUB/MULTIPLY have equal coefficient
///   moduli, i.e. conforming and equal rescale chains.
/// * **Constraint 2** — operands of ADD/SUB have equal scales.
/// * **Constraint 3** — operands of MULTIPLY consist of exactly two
///   polynomials (relinearization was inserted where needed).
/// * **Constraint 4** — every RESCALE divides by at most `2^max_rescale_bits`.
///
/// The checks run through the multi-diagnostic
/// [verifier](crate::analysis::verifier), so the error describes **every**
/// violated constraint with node and opcode provenance, not just the first.
/// On success the program's nominal scale annotations are (re)stamped for the
/// phases that follow.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] listing all violated constraints.
pub fn validate_transformed(program: &mut Program, max_rescale_bits: u32) -> Result<(), EvaError> {
    if let Some(err) = verify_program(program, max_rescale_bits).into_error() {
        return Err(err);
    }
    // The verifier is read-only; stamp the nominal scales it validated so
    // parameter selection can read them off the nodes. A clean report
    // guarantees this cannot fail (no rescale underflow remains).
    analyze_scales(program)?;
    Ok(())
}

/// Validates the exact-scale phase: re-runs the exact propagation against the
/// actual prime chain (which errors on any cipher ADD/SUB whose operand
/// scales are not bit-identical) and checks that every node's stamped
/// annotation matches the recomputed value bit for bit. A compiled program
/// passing this check can never trigger the evaluator's exact-equality scale
/// error at run time.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] describing the first mismatch.
pub fn validate_exact_scales(program: &Program, spec: &ParameterSpec) -> Result<(), EvaError> {
    let exact = analyze_exact_scales(program, &spec.data_primes)?;
    for (id, node) in program.nodes().iter().enumerate() {
        if node.scale_log2.to_bits() != exact[id].to_bits() {
            return Err(EvaError::Validation(format!(
                "node {id}: stamped scale 2^{} is not bit-identical to the exact \
                 scale 2^{}",
                node.scale_log2, exact[id]
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{Opcode, ValueType};

    #[test]
    fn valid_program_passes() {
        // x^2 (relinearized) added to the raw product: equal scales and chains.
        let mut p = Program::new("valid", 8);
        let x = p.input_cipher("x", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let relin = p.push_instruction(Opcode::Relinearize, vec![prod], ValueType::Cipher);
        let sum = p.instruction(Opcode::Add, &[relin, prod]);
        p.output("out", sum, 30);
        assert!(validate_transformed(&mut p, 60).is_ok());
    }

    #[test]
    fn scale_mismatch_is_reported() {
        let mut p = Program::new("scale_mismatch", 8);
        let x = p.input_cipher("x", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x2, x]); // 60 vs 30 bits
        p.output("out", sum, 30);
        let err = validate_transformed(&mut p, 60).unwrap_err();
        assert!(err.to_string().contains("scales differ"));
    }

    #[test]
    fn modulus_mismatch_is_reported() {
        let mut p = Program::new("modulus_mismatch", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let rescaled = p.push_instruction(Opcode::Rescale(30), vec![x], ValueType::Cipher);
        let sum = p.instruction(Opcode::Add, &[rescaled, y]);
        p.output("out", sum, 30);
        let err = validate_transformed(&mut p, 60).unwrap_err();
        assert!(err.to_string().contains("chain"), "{err}");
    }

    #[test]
    fn missing_relinearization_is_reported() {
        let mut p = Program::new("missing_relin", 8);
        let x = p.input_cipher("x", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let deeper = p.instruction(Opcode::Multiply, &[prod, x]);
        p.output("out", deeper, 30);
        let err = validate_transformed(&mut p, 60).unwrap_err();
        assert!(err.to_string().contains("polynomials"));
    }

    #[test]
    fn oversized_rescale_is_reported() {
        let mut p = Program::new("big_rescale", 8);
        let x = p.input_cipher("x", 65);
        let r = p.push_instruction(Opcode::Rescale(65), vec![x], ValueType::Cipher);
        p.output("out", r, 30);
        let err = validate_transformed(&mut p, 60).unwrap_err();
        assert!(err.to_string().contains("exceeds the maximum"));
    }
}
