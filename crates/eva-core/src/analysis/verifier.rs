//! The full IR verifier: a standalone static checker for EVA programs.
//!
//! The compiler's validation passes (paper Section 6.2) only ever ran inside
//! [`crate::compile`], and they stopped at the first violated constraint.
//! This module turns them into a reusable verifier that works on **any**
//! [`Program`] — freshly compiled or decoded from an untrusted `.evaprog`
//! file — and reports *every* violation it finds, each with node provenance
//! (id and opcode), instead of first-error-only.
//!
//! Two entry points:
//!
//! * [`verify_program`] checks a transformed program in isolation:
//!   structural well-formedness (acyclic DAG, in-range argument indices and
//!   arities, no dangling or duplicate outputs, dead-node hygiene) plus the
//!   paper's Constraints 1–4 over nominal scales (conforming moduli chains,
//!   equal ADD/SUB scales, relinearization before any 3-polynomial
//!   multiplication, bounded rescale divisors).
//! * [`verify_compiled`] additionally checks a [`CompiledProgram`] against
//!   its shipped [`ParameterSpec`](crate::ParameterSpec): level underflow of
//!   rescale/modswitch chains vs. the actual prime chain, exact-scale
//!   annotations bit-identical to what the executor will observe, full
//!   rotation-step coverage by the requested Galois keys, and internal
//!   consistency of the parameter spec itself (including the 128-bit
//!   security bound).
//!
//! Each finding is a [`Diagnostic`] naming the [`Check`] that failed, so
//! callers (and tests) can match failures to checks by name. Dead nodes are
//! reported as warnings — compiled programs may legitimately contain them —
//! and warnings never make a report unclean.
//!
//! # Example
//!
//! ```
//! use eva_core::analysis::verifier::{verify_compiled, Check};
//! use eva_core::{compile, CompilerOptions, Opcode, Program};
//!
//! let mut p = Program::new("square", 8);
//! let x = p.input_cipher("x", 30);
//! let sq = p.instruction(Opcode::Multiply, &[x, x]);
//! p.output("out", sq, 30);
//!
//! // Everything the compiler produces verifies cleanly.
//! let compiled = compile(&p, &CompilerOptions::default()).unwrap();
//! assert!(verify_compiled(&compiled).is_clean());
//!
//! // Tampering with the shipped parameters is caught by a named check.
//! let mut tampered = compiled.clone();
//! tampered.parameters.data_primes.pop();
//! let report = verify_compiled(&tampered);
//! assert!(!report.is_clean());
//! assert!(report.has_error(Check::Parameters));
//! ```

use std::collections::HashSet;

use crate::analysis::parameters::max_bits_for_degree;
use crate::analysis::rotations::select_rotation_steps;
use crate::analysis::scale::{analyze_num_polys, prime_log2s, ChainEntry};
use crate::compiler::CompiledProgram;
use crate::error::EvaError;
use crate::program::{NodeId, NodeKind, Program};
use crate::types::{ConstantValue, Opcode};

/// The individual checks the verifier runs. Every [`Diagnostic`] names the
/// check that produced it, so a corrupted program can be matched to the
/// specific property it violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    /// The program graph is a DAG (no argument cycles).
    Acyclic,
    /// Argument lists match opcode arities and every index names an existing
    /// node.
    ArgIndices,
    /// Outputs exist, refer to existing nodes and have unique names.
    Outputs,
    /// Constants are plaintext-typed and fit the program vector size.
    Constants,
    /// Dead-node hygiene: instruction nodes that cannot reach any output.
    /// A warning for raw input programs; an **error** for compiled programs,
    /// which `compile()` always strips of dead code before shipping.
    DeadCode,
    /// Paper Constraint 1: operands of binary cipher ops have conforming,
    /// equal-length rescale/modswitch chains (equal coefficient moduli).
    ChainConformity,
    /// Paper Constraint 2: ADD/SUB operands have equal scales (exact `f64`
    /// equality when verifying against a parameter spec).
    ScaleMatch,
    /// Paper Constraint 3: MULTIPLY operands consist of exactly two
    /// polynomials — relinearization precedes any deeper product.
    Relinearized,
    /// Paper Constraint 4: every RESCALE divides by at most the maximum
    /// prime size and never below its operand's scale.
    RescaleBounds,
    /// Rescale/modswitch chains never consume more primes than the shipped
    /// parameter spec provides (level underflow).
    LevelBudget,
    /// Every rotation step in the program is covered by the Galois-key
    /// request of the compiled program.
    RotationKeys,
    /// Stamped exact-scale annotations are bit-identical to a replay of the
    /// evaluator's scale arithmetic against the shipped primes.
    ExactScales,
    /// The parameter spec is internally consistent and within the 128-bit
    /// security budget for its ring degree.
    Parameters,
}

impl Check {
    /// A stable kebab-case name for the check, used in diagnostics, wire
    /// payloads and tests.
    pub fn name(self) -> &'static str {
        match self {
            Check::Acyclic => "acyclic",
            Check::ArgIndices => "arg-indices",
            Check::Outputs => "outputs",
            Check::Constants => "constants",
            Check::DeadCode => "dead-code",
            Check::ChainConformity => "chain-conformity",
            Check::ScaleMatch => "scale-match",
            Check::Relinearized => "relinearized",
            Check::RescaleBounds => "rescale-bounds",
            Check::LevelBudget => "level-budget",
            Check::RotationKeys => "rotation-keys",
            Check::ExactScales => "exact-scales",
            Check::Parameters => "parameters",
        }
    }
}

impl std::fmt::Display for Check {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory only; does not make the report unclean.
    Warning,
    /// A genuine violation: the program must not be executed.
    Error,
}

/// One verifier finding: the check that fired, where, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The check that produced this finding.
    pub check: Check,
    /// Whether the finding is a hard error or advisory.
    pub severity: Severity,
    /// The node the finding is anchored to, if any.
    pub node: Option<NodeId>,
    /// Human-readable description, including node and opcode provenance.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let severity = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "[{}] {severity}: {}", self.check, self.message)
    }
}

/// The verifier's result: every diagnostic found, in program order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifierReport {
    /// All findings, errors and warnings alike.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifierReport {
    /// Whether the program passed: no error-severity diagnostics (warnings
    /// such as dead code are allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Iterator over the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether any **error** diagnostic came from the given check.
    pub fn has_error(&self, check: Check) -> bool {
        self.errors().any(|d| d.check == check)
    }

    /// Collapses the report into a single [`EvaError::Validation`] carrying
    /// every error message (with its check name), or `None` if clean.
    pub fn into_error(self) -> Option<EvaError> {
        if self.is_clean() {
            return None;
        }
        let joined: Vec<String> = self
            .errors()
            .map(|d| format!("[{}] {}", d.check, d.message))
            .collect();
        Some(EvaError::Validation(joined.join("; ")))
    }
}

impl std::fmt::Display for VerifierReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "verifier: clean");
        }
        for diagnostic in &self.diagnostics {
            writeln!(f, "{diagnostic}")?;
        }
        Ok(())
    }
}

/// Verifies a standalone (transformed) program: structural well-formedness
/// plus Constraints 1–4 over nominal scales. Reports every violation found.
///
/// `max_rescale_bits` bounds rescale divisors (Constraint 4, the paper's
/// `log2 s_f`; 60 in SEAL).
pub fn verify_program(program: &Program, max_rescale_bits: u32) -> VerifierReport {
    let mut verifier = Verifier::new(program, max_rescale_bits, None);
    verifier.run();
    verifier.report
}

/// Verifies a compiled program against its own parameter spec and rotation
/// keys: everything [`verify_program`] checks, plus level budget, exact-scale
/// bit-identity, rotation-key coverage and parameter-spec consistency.
///
/// This is the gate `eva-service` runs on every `.evaprog` load and the
/// compiler runs on its own output: a program passing it can never throw
/// inside the FHE runtime.
pub fn verify_compiled(compiled: &CompiledProgram) -> VerifierReport {
    let mut verifier = Verifier::new(
        &compiled.program,
        compiled.parameters.special_prime_bits,
        Some(compiled),
    );
    verifier.run();
    verifier.report
}

/// Internal driver holding the program under inspection and the report being
/// built.
struct Verifier<'a> {
    program: &'a Program,
    max_rescale_bits: u32,
    compiled: Option<&'a CompiledProgram>,
    report: VerifierReport,
    /// Topological order, available once the structural pass proved the
    /// graph acyclic.
    order: Vec<NodeId>,
    live: Vec<bool>,
}

impl<'a> Verifier<'a> {
    fn new(
        program: &'a Program,
        max_rescale_bits: u32,
        compiled: Option<&'a CompiledProgram>,
    ) -> Self {
        Self {
            program,
            max_rescale_bits,
            compiled,
            report: VerifierReport::default(),
            order: Vec::new(),
            live: Vec::new(),
        }
    }

    fn error(&mut self, check: Check, node: Option<NodeId>, message: String) {
        self.report.diagnostics.push(Diagnostic {
            check,
            severity: Severity::Error,
            node,
            message,
        });
    }

    fn warn(&mut self, check: Check, node: Option<NodeId>, message: String) {
        self.report.diagnostics.push(Diagnostic {
            check,
            severity: Severity::Warning,
            node,
            message,
        });
    }

    /// `%id (opcode)` / `%id (input "x")` provenance prefix for messages.
    fn describe(&self, id: NodeId) -> String {
        match &self.program.node(id).kind {
            NodeKind::Input { name } => format!("node {id} (input {name:?})"),
            NodeKind::Constant { .. } => format!("node {id} (constant)"),
            NodeKind::Instruction { op, .. } => format!("node {id} ({op})"),
        }
    }

    fn run(&mut self) {
        if !self.structural() {
            // The graph is not even navigable; semantic analyses would index
            // out of range or loop, so stop at the structural findings.
            return;
        }
        self.semantic();
        if let Some(compiled) = self.compiled {
            self.parameters(compiled);
            self.rotations(compiled);
        }
    }

    /// Structural pass. Returns whether the graph is safe to traverse
    /// (arguments in range, arities correct, acyclic).
    fn structural(&mut self) -> bool {
        let program = self.program;
        let node_count = program.len();

        if program.outputs().is_empty() {
            self.error(Check::Outputs, None, "program declares no outputs".into());
        }
        let mut seen_names: HashSet<&str> = HashSet::new();
        for output in program.outputs() {
            if !seen_names.insert(&output.name) {
                self.error(
                    Check::Outputs,
                    None,
                    format!("duplicate output name {:?}", output.name),
                );
            }
            if output.node >= node_count {
                self.error(
                    Check::Outputs,
                    None,
                    format!(
                        "output {:?} dangles: node {} does not exist ({} nodes)",
                        output.name, output.node, node_count
                    ),
                );
            }
        }

        let mut navigable = true;
        for (id, node) in program.nodes().iter().enumerate() {
            match &node.kind {
                NodeKind::Constant { value } => {
                    if node.ty.is_cipher() {
                        self.error(
                            Check::Constants,
                            Some(id),
                            format!("node {id} (constant) has Cipher type"),
                        );
                    }
                    if let ConstantValue::Vector(v) = value {
                        if v.len() > program.vec_size() {
                            self.error(
                                Check::Constants,
                                Some(id),
                                format!(
                                    "node {id} (constant) holds {} elements, program vector \
                                     size is {}",
                                    v.len(),
                                    program.vec_size()
                                ),
                            );
                        }
                    }
                }
                NodeKind::Instruction { op, args } => {
                    if args.len() != op.arity() {
                        self.error(
                            Check::ArgIndices,
                            Some(id),
                            format!(
                                "node {id} ({op}) has {} arguments, {op} expects {}",
                                args.len(),
                                op.arity()
                            ),
                        );
                        navigable = false;
                    }
                    for &arg in args {
                        if arg >= node_count {
                            self.error(
                                Check::ArgIndices,
                                Some(id),
                                format!(
                                    "node {id} ({op}) references missing node {arg} \
                                     ({node_count} nodes)"
                                ),
                            );
                            navigable = false;
                        }
                    }
                }
                NodeKind::Input { .. } => {}
            }
        }
        if !navigable {
            return false;
        }

        // Cycle check: the shared Kahn ordering from `analysis::dataflow`
        // (used here rather than `Program::topological_order`, which assumes
        // — and debug-asserts — acyclicity, precisely what an untrusted
        // decoded program may violate). Sharing the implementation keeps the
        // verifier and every dataflow-driven optimizer pass iterating in the
        // same proven order.
        match crate::analysis::dataflow::kahn_order(program) {
            Ok(order) => self.order = order,
            Err(mut cyclic) => {
                let stuck = cyclic.len();
                cyclic.truncate(8);
                self.error(
                    Check::Acyclic,
                    cyclic.first().copied(),
                    format!(
                        "program graph has a cycle through {stuck} node(s), including {}",
                        cyclic
                            .iter()
                            .map(|&id| format!("%{id}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                );
                return false;
            }
        }

        // Dead-node hygiene: instruction nodes that cannot reach any output.
        // For a *compiled* program this is an error: `compile()` always runs
        // a final dead-code sweep, so dead nodes in a compiled artifact mean
        // it was tampered with (or produced by something else) — and dead
        // branches are exactly where prime-budget and exact-scale guarantees
        // do not hold. For raw input programs it stays a warning.
        self.live = program.live_mask();
        let dead: Vec<NodeId> = (0..node_count)
            .filter(|&id| !self.live[id] && program.opcode(id).is_some())
            .collect();
        if !dead.is_empty() {
            let shown: Vec<String> = dead.iter().take(8).map(|&id| format!("%{id}")).collect();
            let suffix = if dead.len() > shown.len() {
                ", …"
            } else {
                ""
            };
            let message = format!(
                "{} instruction node(s) never reach an output: {}{suffix}",
                dead.len(),
                shown.join(", ")
            );
            if self.compiled.is_some() {
                self.error(Check::DeadCode, dead.first().copied(), message);
            } else {
                self.warn(Check::DeadCode, dead.first().copied(), message);
            }
        }
        true
    }

    /// Multi-diagnostic rescale-chain propagation (paper Definition 3 and
    /// Constraint 1). On a conformity conflict the longer chain is kept so
    /// one root cause does not cascade into a diagnostic per descendant.
    fn analyze_chains(&mut self) -> Vec<Vec<ChainEntry>> {
        let program = self.program;
        let mut chains: Vec<Vec<ChainEntry>> = vec![Vec::new(); program.len()];
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let node = program.node(id);
            if !node.ty.is_cipher() {
                continue;
            }
            let NodeKind::Instruction { op, args } = &node.kind else {
                continue;
            };
            let cipher_args: Vec<NodeId> = args
                .iter()
                .copied()
                .filter(|&a| program.node(a).ty.is_cipher())
                .collect();
            let mut merged: Option<Vec<ChainEntry>> = None;
            let mut reported = false;
            for &arg in &cipher_args {
                let arg_chain = chains[arg].clone();
                merged = Some(match merged {
                    None => arg_chain,
                    Some(current) => {
                        if current.len() != arg_chain.len() {
                            if !reported {
                                let message = format!(
                                    "{}: operand rescale chains have different lengths \
                                     ({} vs {})",
                                    self.describe(id),
                                    current.len(),
                                    arg_chain.len()
                                );
                                self.error(Check::ChainConformity, Some(id), message);
                                reported = true;
                            }
                            // Keep the longer chain to bound the cascade.
                            if arg_chain.len() > current.len() {
                                arg_chain
                            } else {
                                current
                            }
                        } else {
                            let mut out = Vec::with_capacity(current.len());
                            for (&a, &b) in current.iter().zip(&arg_chain) {
                                match ChainEntry::merge(a, b) {
                                    Some(entry) => out.push(entry),
                                    None => {
                                        if !reported {
                                            let message = format!(
                                                "{}: operands have non-conforming rescale \
                                                 chains ({a:?} vs {b:?})",
                                                self.describe(id)
                                            );
                                            self.error(Check::ChainConformity, Some(id), message);
                                            reported = true;
                                        }
                                        out.push(a);
                                    }
                                }
                            }
                            out
                        }
                    }
                });
            }
            let mut chain = merged.unwrap_or_default();
            match op {
                Opcode::Rescale(bits) => chain.push(ChainEntry::Rescale(*bits)),
                Opcode::ModSwitch => chain.push(ChainEntry::ModSwitch),
                _ => {}
            }
            chains[id] = chain;
        }
        chains
    }

    /// Scale propagation, nominal or exact depending on whether a parameter
    /// spec is in hand, collecting `scale-match` / `rescale-bounds` /
    /// `exact-scales` diagnostics along the way.
    fn analyze_scales(&mut self, chains: &[Vec<ChainEntry>]) -> Vec<f64> {
        let program = self.program;
        let exact = self
            .compiled
            .map(|c| (prime_log2s(&c.parameters.data_primes), c));
        let max_level = exact
            .as_ref()
            .map(|(logs, _)| logs.len())
            .unwrap_or(usize::MAX);
        let mut scales = vec![0.0f64; program.len()];
        for idx in 0..self.order.len() {
            let id = self.order[idx];
            let node = program.node(id);
            if exact.is_some() && !self.live[id] {
                // Dead nodes are never executed; like the exact-scale pass,
                // trust their stamped annotation and move on.
                scales[id] = node.scale_log2;
                continue;
            }
            let scale = match &node.kind {
                NodeKind::Input { .. } | NodeKind::Constant { .. } => node.scale_log2,
                NodeKind::Instruction { op, args } => {
                    let arg_scales: Vec<f64> = args.iter().map(|&a| scales[a]).collect();
                    let cipher_args: Vec<NodeId> = args
                        .iter()
                        .copied()
                        .filter(|&a| program.node(a).ty.is_cipher())
                        .collect();
                    let exact_cipher = exact.is_some() && node.ty.is_cipher();
                    match op {
                        Opcode::Multiply => arg_scales.iter().sum(),
                        Opcode::Add | Opcode::Sub => {
                            if exact_cipher {
                                // Exact mode mirrors the executor: a plain
                                // operand is encoded at the cipher operand's
                                // exact scale, so only cipher-cipher pairs
                                // can mismatch.
                                if cipher_args.len() == 2 {
                                    let (a, b) = (scales[cipher_args[0]], scales[cipher_args[1]]);
                                    if a != b {
                                        let message = format!(
                                            "{}: operand scales differ (2^{a} vs 2^{b})",
                                            self.describe(id)
                                        );
                                        self.error(Check::ScaleMatch, Some(id), message);
                                    }
                                    a.max(b)
                                } else {
                                    scales[cipher_args[0]]
                                }
                            } else {
                                // Nominal mode follows the paper: both
                                // operands (plain included) must agree.
                                let (a, b) = (arg_scales[0], arg_scales[1]);
                                if a != b {
                                    let message = format!(
                                        "{}: operand scales differ (2^{a} vs 2^{b})",
                                        self.describe(id)
                                    );
                                    self.error(Check::ScaleMatch, Some(id), message);
                                }
                                a.max(b)
                            }
                        }
                        Opcode::Rescale(bits) => {
                            if *bits > self.max_rescale_bits {
                                let message = format!(
                                    "{}: rescale by 2^{bits} exceeds the maximum of 2^{}",
                                    self.describe(id),
                                    self.max_rescale_bits
                                );
                                self.error(Check::RescaleBounds, Some(id), message);
                            }
                            if exact_cipher {
                                // chains[id] includes this node's own entry,
                                // so the prime divided sits at
                                // max_level - chains[id].len().
                                let consumed = chains[id].len();
                                if consumed > max_level {
                                    // Level underflow is reported by the
                                    // dedicated check below; fall back to the
                                    // nominal divisor to keep propagating.
                                    arg_scales[0] - f64::from(*bits)
                                } else {
                                    let (logs, _) = exact.as_ref().expect("exact mode");
                                    arg_scales[0] - logs[max_level - consumed]
                                }
                            } else {
                                if arg_scales[0] < f64::from(*bits) {
                                    let message = format!(
                                        "{}: rescale by 2^{bits} underflows operand scale 2^{}",
                                        self.describe(id),
                                        arg_scales[0]
                                    );
                                    self.error(Check::RescaleBounds, Some(id), message);
                                }
                                (arg_scales[0] - f64::from(*bits)).max(0.0)
                            }
                        }
                        Opcode::Negate
                        | Opcode::RotateLeft(_)
                        | Opcode::RotateRight(_)
                        | Opcode::Relinearize
                        | Opcode::ModSwitch => arg_scales[0],
                    }
                }
            };
            scales[id] = scale;
            // Exact mode: the stamped annotation must be bit-identical to the
            // replayed value, or the evaluator's exact-equality check fires
            // at run time.
            if exact.is_some() && node.scale_log2.to_bits() != scale.to_bits() {
                let message = format!(
                    "{}: stamped scale 2^{} is not bit-identical to the replayed exact \
                     scale 2^{}",
                    self.describe(id),
                    node.scale_log2,
                    scale
                );
                self.error(Check::ExactScales, Some(id), message);
            }
        }
        scales
    }

    /// The semantic pass: chains, scales, polynomial counts, level budget.
    fn semantic(&mut self) {
        let program = self.program;
        let chains = self.analyze_chains();
        let polys = analyze_num_polys(program);
        self.analyze_scales(&chains);

        let max_level = self
            .compiled
            .map(|c| c.parameters.data_primes.len())
            .unwrap_or(usize::MAX);
        for id in 0..program.len() {
            let Some(op) = program.opcode(id) else {
                continue;
            };
            let cipher_args: Vec<NodeId> = program
                .args(id)
                .iter()
                .copied()
                .filter(|&a| program.node(a).ty.is_cipher())
                .collect();
            // The runtime's multiply and rotate both require canonical
            // 2-polynomial operands (`CkksError::TooManyPolynomials` /
            // `InvalidCiphertextSize`), so a missing relinearization anywhere
            // upstream of either is a load-time refusal, not a session crash.
            if matches!(
                op,
                Opcode::Multiply | Opcode::RotateLeft(_) | Opcode::RotateRight(_)
            ) {
                for &a in &cipher_args {
                    if polys[a] != 2 {
                        let message = format!(
                            "{}: operand %{a} has {} polynomials; relinearization missing",
                            self.describe(id),
                            polys[a]
                        );
                        self.error(Check::Relinearized, Some(id), message);
                    }
                }
            }
            // Level underflow: a consuming node whose chain is longer than
            // the shipped prime chain would run the modulus dry at run time.
            // Reported at consuming nodes only, so one deep chain yields one
            // diagnostic rather than one per descendant.
            if op.consumes_modulus()
                && self.live[id]
                && program.node(id).ty.is_cipher()
                && chains[id].len() > max_level
            {
                let message = format!(
                    "{}: rescale chain of length {} exceeds the {max_level}-prime chain",
                    self.describe(id),
                    chains[id].len()
                );
                self.error(Check::LevelBudget, Some(id), message);
            }
        }

        // Deployment gate only: outputs leave a *compiled* program in
        // canonical 2-polynomial form — the wire ciphertext contract (and the
        // noise model) assume the final relinearization happened. Standalone
        // verification stays at the paper's Constraint 3 (the runtime's add
        // and decrypt both accept wider ciphertexts).
        if self.compiled.is_none() {
            return;
        }
        for output in program.outputs() {
            let node = output.node;
            if program.node(node).ty.is_cipher() && polys[node] != 2 {
                let message = format!(
                    "output {:?} ({}) has {} polynomials; relinearization missing",
                    output.name,
                    self.describe(node),
                    polys[node]
                );
                self.error(Check::Relinearized, Some(node), message);
            }
        }
    }

    /// Parameter-spec consistency (compiled programs only).
    fn parameters(&mut self, compiled: &CompiledProgram) {
        let spec = &compiled.parameters;
        if spec.data_primes.len() != spec.data_prime_bits.len() {
            self.error(
                Check::Parameters,
                None,
                format!(
                    "parameter spec carries {} data primes but {} bit sizes",
                    spec.data_primes.len(),
                    spec.data_prime_bits.len()
                ),
            );
        }
        if spec.data_primes.is_empty() {
            self.error(
                Check::Parameters,
                None,
                "parameter spec has an empty data prime chain".into(),
            );
        }
        if spec.data_primes.iter().any(|&q| q < 2) || spec.special_prime < 2 {
            self.error(
                Check::Parameters,
                None,
                "parameter spec contains a prime smaller than 2".into(),
            );
            return;
        }
        let Some(max_bits) = max_bits_for_degree(spec.degree) else {
            self.error(
                Check::Parameters,
                None,
                format!("ring degree {} is not supported", spec.degree),
            );
            return;
        };
        if spec.degree < 2 * self.program.vec_size() {
            self.error(
                Check::Parameters,
                None,
                format!(
                    "ring degree {} cannot pack {} slots (needs at least {})",
                    spec.degree,
                    self.program.vec_size(),
                    2 * self.program.vec_size()
                ),
            );
        }
        let exact_bits: f64 = spec
            .data_primes
            .iter()
            .chain(std::iter::once(&spec.special_prime))
            .map(|&q| (q as f64).log2())
            .sum();
        if exact_bits > f64::from(max_bits) {
            self.error(
                Check::Parameters,
                None,
                format!(
                    "coefficient modulus has {exact_bits:.2} bits, above the {max_bits}-bit \
                     128-bit-security budget for degree {}",
                    spec.degree
                ),
            );
        }
    }

    /// Rotation-step coverage (compiled programs only).
    fn rotations(&mut self, compiled: &CompiledProgram) {
        let required = select_rotation_steps(self.program);
        let provided: HashSet<i64> = compiled.rotation_steps.iter().copied().collect();
        for step in required {
            if !provided.contains(&step) {
                self.error(
                    Check::RotationKeys,
                    None,
                    format!(
                        "rotation step {step} is used by the program but missing from the \
                         Galois-key request {:?}",
                        compiled.rotation_steps
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompilerOptions};
    use crate::program::Program;
    use crate::types::ValueType;

    fn sum_of_rotations() -> Program {
        // A program exercising rotations, multiplication and addition.
        let mut p = Program::new("rotsum", 16);
        let x = p.input_cipher("x", 30);
        let r1 = p.instruction(Opcode::RotateLeft(1), &[x]);
        let r2 = p.instruction(Opcode::RotateRight(2), &[x]);
        let prod = p.instruction(Opcode::Multiply, &[r1, r2]);
        let sum = p.instruction(Opcode::Add, &[prod, prod]);
        p.output("out", sum, 30);
        p
    }

    fn compiled_rotsum() -> CompiledProgram {
        compile(&sum_of_rotations(), &CompilerOptions::default()).unwrap()
    }

    #[test]
    fn compiled_programs_verify_cleanly() {
        let compiled = compiled_rotsum();
        let report = verify_compiled(&compiled);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn swapped_arg_is_caught() {
        // Mutation: retarget one argument of a cipher ADD to a node at a
        // different scale/level — the scale-match (and possibly chain) check
        // must fire.
        let mut compiled = compiled_rotsum();
        let program = &mut compiled.program;
        let add = (0..program.len())
            .find(|&id| {
                program.opcode(id) == Some(Opcode::Add)
                    && program
                        .args(id)
                        .iter()
                        .all(|&a| program.node(a).ty.is_cipher())
            })
            .expect("cipher add");
        // Point the second operand back at the raw input (different scale
        // and chain than the transformed operand).
        program.replace_arg_at(add, 1, 0);
        let report = verify_compiled(&compiled);
        assert!(!report.is_clean());
        assert!(
            report.has_error(Check::ScaleMatch) || report.has_error(Check::ChainConformity),
            "{report}"
        );
    }

    #[test]
    fn dropped_relinearize_is_caught() {
        // Mutation: bypass a RELINEARIZE node, re-exposing a 3-polynomial
        // ciphertext to a downstream multiply.
        let mut p = Program::new("needs_relin", 8);
        let x = p.input_cipher("x", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let deeper = p.instruction(Opcode::Multiply, &[prod, x]);
        p.output("out", deeper, 30);
        let report = verify_program(&p, 60);
        assert!(report.has_error(Check::Relinearized), "{report}");
    }

    #[test]
    fn deepened_rescale_chain_is_caught() {
        // Mutation: append an extra RESCALE past the shipped prime chain.
        let mut compiled = compiled_rotsum();
        let out_node = compiled.program.outputs()[0].node;
        let extra = compiled.program.push_instruction(
            Opcode::Rescale(30),
            vec![out_node],
            ValueType::Cipher,
        );
        compiled.program.redirect_outputs(out_node, extra);
        // One rescale per remaining prime exhausts the chain.
        for _ in 0..compiled.parameters.data_primes.len() {
            let out_node = compiled.program.outputs()[0].node;
            let extra = compiled.program.push_instruction(
                Opcode::Rescale(30),
                vec![out_node],
                ValueType::Cipher,
            );
            compiled.program.redirect_outputs(out_node, extra);
        }
        let report = verify_compiled(&compiled);
        assert!(report.has_error(Check::LevelBudget), "{report}");
    }

    #[test]
    fn removed_rotation_step_is_caught() {
        let mut compiled = compiled_rotsum();
        assert!(!compiled.rotation_steps.is_empty());
        compiled.rotation_steps.remove(0);
        let report = verify_compiled(&compiled);
        assert!(report.has_error(Check::RotationKeys), "{report}");
    }

    #[test]
    fn tampered_exact_scale_is_caught() {
        let mut compiled = compiled_rotsum();
        let out_node = compiled.program.outputs()[0].node;
        let stamped = compiled.program.node(out_node).scale_log2;
        compiled.program.set_scale_log2(out_node, stamped + 1.0);
        let report = verify_compiled(&compiled);
        assert!(report.has_error(Check::ExactScales), "{report}");
    }

    #[test]
    fn cycle_is_caught_without_panicking() {
        // Build a cycle through the pub(crate) mutator: %1 -> %2 -> %1.
        let mut p = Program::new("cyclic", 8);
        let x = p.input_cipher("x", 30);
        let a = p.push_instruction(Opcode::Negate, vec![x], ValueType::Cipher);
        let b = p.push_instruction(Opcode::Negate, vec![a], ValueType::Cipher);
        p.replace_arg_at(a, 0, b);
        p.output("out", b, 30);
        let report = verify_program(&p, 60);
        assert!(report.has_error(Check::Acyclic), "{report}");
    }

    #[test]
    fn duplicate_and_missing_outputs_are_caught() {
        let mut p = Program::new("bad_outputs", 8);
        let x = p.input_cipher("x", 30);
        p.output("out", x, 30);
        p.output("out", x, 30); // duplicate name
        let report = verify_program(&p, 60);
        assert!(report.has_error(Check::Outputs), "{report}");

        let empty = Program::new("no_outputs", 8);
        let report = verify_program(&empty, 60);
        assert!(report.has_error(Check::Outputs), "{report}");
    }

    #[test]
    fn oversized_rescale_and_underflow_are_caught() {
        let mut p = Program::new("bad_rescale", 8);
        let x = p.input_cipher("x", 30);
        let r = p.push_instruction(Opcode::Rescale(65), vec![x], ValueType::Cipher);
        p.output("out", r, 30);
        let report = verify_program(&p, 60);
        assert!(report.has_error(Check::RescaleBounds), "{report}");
        // Both findings (over the max AND underflowing the operand) surface.
        assert!(report.error_count() >= 2, "{report}");
    }

    #[test]
    fn dead_nodes_are_warnings_not_errors() {
        let mut p = Program::new("dead", 8);
        let x = p.input_cipher("x", 30);
        let _dead = p.instruction(Opcode::Negate, &[x]);
        let live = p.instruction(Opcode::Add, &[x, x]);
        p.output("out", live, 30);
        let report = verify_program(&p, 60);
        assert!(report.is_clean(), "{report}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.check == Check::DeadCode && d.severity == Severity::Warning));
    }

    #[test]
    fn dead_nodes_are_errors_in_compiled_programs() {
        // `compile()` guarantees dead-free output, so a dead instruction in a
        // compiled artifact means tampering — an error, not a warning.
        let mut compiled = compiled_rotsum();
        let x = 0; // the input node
        let dead = compiled
            .program
            .push_instruction(Opcode::Negate, vec![x], ValueType::Cipher);
        let _ = dead;
        let report = verify_compiled(&compiled);
        assert!(report.has_error(Check::DeadCode), "{report}");
        assert!(report
            .errors()
            .any(|d| d.check == Check::DeadCode && d.node == Some(dead)));
    }

    #[test]
    fn compiled_programs_verify_dead_free() {
        let compiled = compiled_rotsum();
        let report = verify_compiled(&compiled);
        assert!(report.is_clean(), "{report}");
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.check == Check::DeadCode));
    }

    #[test]
    fn tampered_parameters_are_caught() {
        let mut compiled = compiled_rotsum();
        compiled.parameters.degree = 512;
        let report = verify_compiled(&compiled);
        assert!(report.has_error(Check::Parameters), "{report}");
    }

    #[test]
    fn all_violations_are_reported_not_just_the_first() {
        // Two independent defects in one program: both must appear.
        let mut p = Program::new("multi", 8);
        let x = p.input_cipher("x", 30);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let deeper = p.instruction(Opcode::Multiply, &[prod, x]); // missing relin
        let sum = p.instruction(Opcode::Add, &[deeper, x]); // scale mismatch
        p.output("out", sum, 30);
        let report = verify_program(&p, 60);
        assert!(report.has_error(Check::Relinearized), "{report}");
        assert!(report.has_error(Check::ScaleMatch), "{report}");
    }
}
