//! The compiler driver (paper Algorithm 1): transform, validate, select
//! encryption parameters, select rotation keys.

use crate::analysis::noise::{check_noise, estimate_noise, NoiseModel};
use crate::analysis::scale::{analyze_levels, chain_lengths};
use crate::analysis::verifier::verify_compiled;
use crate::analysis::{
    select_parameters, select_rotation_steps, validate_transformed, ParameterSpec,
};
use crate::error::EvaError;
use crate::passes::{
    apply_exact_scales, insert_always_rescale, insert_eager_modswitch, insert_lazy_modswitch,
    insert_match_scale, insert_relinearize, insert_waterline_rescale,
};
use crate::program::Program;

/// Which RESCALE insertion strategy to use (paper Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RescaleStrategy {
    /// EVA's waterline strategy: rescale by the maximum prime size only while
    /// the scale stays above the waterline (default, optimal chain length).
    #[default]
    Waterline,
    /// The naive baseline: rescale after every ciphertext multiplication.
    Always,
}

/// Which MODSWITCH insertion strategy to use (paper Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModSwitchStrategy {
    /// Insert MODSWITCH at the earliest feasible edge, shared among consumers
    /// (default; Figure 5(c)).
    #[default]
    Eager,
    /// Insert MODSWITCH immediately below the mismatching instruction
    /// (Figure 5(b)).
    Lazy,
}

/// Options controlling compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    /// RESCALE insertion strategy.
    pub rescale: RescaleStrategy,
    /// MODSWITCH insertion strategy.
    pub mod_switch: ModSwitchStrategy,
    /// Maximum rescale value / prime size in bits (the paper's `log2 s_f`,
    /// 60 in SEAL).
    pub max_rescale_bits: u32,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self {
            rescale: RescaleStrategy::Waterline,
            mod_switch: ModSwitchStrategy::Eager,
            max_rescale_bits: 60,
        }
    }
}

/// Statistics about what the compiler did, useful for reports and ablations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompilationStats {
    /// Number of RESCALE instructions inserted.
    pub rescales_inserted: usize,
    /// Number of MODSWITCH instructions inserted.
    pub mod_switches_inserted: usize,
    /// Number of MATCH-SCALE fixes (constant multiplications) inserted.
    pub scale_fixes_inserted: usize,
    /// Number of RELINEARIZE instructions inserted.
    pub relinearizations_inserted: usize,
    /// Number of *exact* match-scale corrections inserted by the second
    /// (exact-scale) phase, closing sub-bit rescale drift between operands.
    pub exact_scale_fixes_inserted: usize,
    /// Total node count of the transformed program.
    pub node_count: usize,
}

/// The result of compilation: the transformed executable program plus the
/// encryption parameters and rotation steps needed to run it (the three
/// outputs of the paper's Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The transformed program (contains RESCALE/MODSWITCH/RELINEARIZE).
    pub program: Program,
    /// Prime bit sizes and ring degree for key generation.
    pub parameters: ParameterSpec,
    /// Rotation steps that need Galois keys.
    pub rotation_steps: Vec<i64>,
    /// Transformation statistics.
    pub stats: CompilationStats,
}

impl CompiledProgram {
    /// The vector size of the program.
    pub fn vec_size(&self) -> usize {
        self.program.vec_size()
    }

    /// The program name.
    pub fn name(&self) -> &str {
        self.program.name()
    }

    /// Renders the compiled graph in Graphviz DOT syntax, annotated with the
    /// facts the static analyses computed: each node label carries its
    /// opcode, level (remaining primes), exact `log2` scale and worst-case
    /// noise budget in bits. The plain structural dump without annotations is
    /// [`Program::to_dot`].
    ///
    /// ```
    /// use eva_core::{compile, CompilerOptions, Opcode, Program};
    ///
    /// let mut p = Program::new("square", 8);
    /// let x = p.input_cipher("x", 30);
    /// let sq = p.instruction(Opcode::Multiply, &[x, x]);
    /// p.output("out", sq, 30);
    /// let compiled = compile(&p, &CompilerOptions::default()).unwrap();
    /// let dot = compiled.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("budget"));
    /// ```
    pub fn to_dot(&self) -> String {
        let program = &self.program;
        let noise = estimate_noise(self, &NoiseModel::default());
        let max_level = self.parameters.data_primes.len();
        let levels: Vec<usize> = match analyze_levels(program) {
            Ok(chains) => chain_lengths(&chains)
                .iter()
                .map(|&consumed| max_level.saturating_sub(consumed))
                .collect(),
            Err(_) => vec![max_level; program.len()],
        };
        program.to_dot_with(|id| {
            let node = program.node(id);
            if !node.ty.is_cipher() {
                return String::new();
            }
            let budget = noise.nodes[id].budget_bits;
            format!("\\nL={} budget={budget:.1}b", levels[id])
        })
    }
}

/// Compiles an input EVA program (paper Algorithm 1).
///
/// The transformation step applies, in order: RESCALE insertion, MODSWITCH
/// insertion, MATCH-SCALE and RELINEARIZE. The transformed program is then
/// validated against Constraints 1–4 — if validation fails the compiler
/// returns an error instead of producing a program that would throw inside
/// the FHE library — and encryption parameters (including the actual primes)
/// are selected. A second, exact scale phase then re-annotates the program
/// against the chosen primes, inserting exact match-scale corrections where
/// rescale drift would otherwise break the evaluator's exact scale-equality
/// check, and validates that every annotation is bit-identical to what the
/// executor will observe (see [`crate::analysis::scale`]). Finally rotation
/// steps are selected.
///
/// # Errors
///
/// Returns [`EvaError`] if the input program is malformed, a constraint is
/// violated after transformation, or no supported ring degree can hold the
/// required coefficient modulus.
pub fn compile(input: &Program, options: &CompilerOptions) -> Result<CompiledProgram, EvaError> {
    input.validate_as_input()?;
    let mut program = input.clone();

    let rescales_inserted = match options.rescale {
        RescaleStrategy::Waterline => {
            insert_waterline_rescale(&mut program, options.max_rescale_bits)
        }
        RescaleStrategy::Always => insert_always_rescale(&mut program),
    };
    let mod_switches_inserted = match options.mod_switch {
        ModSwitchStrategy::Eager => insert_eager_modswitch(&mut program),
        ModSwitchStrategy::Lazy => insert_lazy_modswitch(&mut program),
    };
    let scale_fixes_inserted = insert_match_scale(&mut program);
    let relinearizations_inserted = insert_relinearize(&mut program);

    validate_transformed(&mut program, options.max_rescale_bits)?;
    let parameters = select_parameters(&mut program, options.max_rescale_bits)?;

    // Phase two: the prime chain is fixed, so re-annotate with exact scales
    // and correct the sub-bit drift the nominal phase cannot see.
    let exact_scale_fixes_inserted = apply_exact_scales(&mut program, &parameters)?;

    let rotation_steps = select_rotation_steps(&program);

    let stats = CompilationStats {
        rescales_inserted,
        mod_switches_inserted,
        scale_fixes_inserted,
        relinearizations_inserted,
        exact_scale_fixes_inserted,
        node_count: program.len(),
    };
    let compiled = CompiledProgram {
        program,
        parameters,
        rotation_steps,
        stats,
    };

    // The full verifier re-checks its own output against the shipped spec —
    // structure, constraints, level budget, rotation coverage and
    // bit-identical exact scales (subsuming the old exact-scale validation).
    if let Some(err) = verify_compiled(&compiled).into_error() {
        return Err(err);
    }
    // Finally the worst-case noise gate: a program whose outputs could drown
    // in noise is rejected at compile time rather than decrypting to garbage.
    check_noise(&compiled, &NoiseModel::default())?;
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::Opcode;

    /// The paper's Figure 2 running example.
    fn x2y3() -> Program {
        let mut p = Program::new("x2y3", 8);
        let x = p.input_cipher("x", 60);
        let y = p.input_cipher("y", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let y2 = p.instruction(Opcode::Multiply, &[y, y]);
        let y3 = p.instruction(Opcode::Multiply, &[y2, y]);
        let out = p.instruction(Opcode::Multiply, &[x2, y3]);
        p.output("out", out, 30);
        p
    }

    #[test]
    fn compile_x2y3_with_default_options() {
        let compiled = compile(&x2y3(), &CompilerOptions::default()).unwrap();
        // Figure 2(d)/(e): two rescales, four relinearizations, no scale fixes.
        assert_eq!(compiled.stats.rescales_inserted, 2);
        assert_eq!(compiled.stats.relinearizations_inserted, 4);
        assert_eq!(compiled.stats.scale_fixes_inserted, 0);
        assert!(compiled.rotation_steps.is_empty());
        // Chain: 2 rescale primes + 2 tail primes covering the output scale
        // (2^90) times the desired scale (2^30) + the special prime.
        assert_eq!(compiled.parameters.chain_length(), 5);
        assert_eq!(compiled.parameters.total_bits(), 300);
    }

    #[test]
    fn compile_rejects_invalid_input() {
        let mut p = Program::new("empty", 8);
        p.input_cipher("x", 30);
        assert!(matches!(
            compile(&p, &CompilerOptions::default()),
            Err(EvaError::InvalidProgram(_))
        ));
    }

    #[test]
    fn compiled_program_never_fails_validation_for_random_options() {
        let program = x2y3();
        for rescale in [RescaleStrategy::Waterline] {
            for mod_switch in [ModSwitchStrategy::Eager, ModSwitchStrategy::Lazy] {
                let options = CompilerOptions {
                    rescale,
                    mod_switch,
                    max_rescale_bits: 60,
                };
                let compiled = compile(&program, &options).unwrap();
                assert!(compiled.parameters.total_bits() > 0);
            }
        }
    }

    #[test]
    fn rotation_steps_are_collected() {
        let mut p = Program::new("rot", 64);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateRight(4), &[x]);
        let sum = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", sum, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        assert_eq!(compiled.rotation_steps, vec![-4, 1]);
        assert_eq!(compiled.vec_size(), 64);
        assert_eq!(compiled.name(), "rot");
    }

    #[test]
    fn eager_produces_no_longer_chain_than_lazy() {
        // The paper argues eager insertion is at least as efficient as lazy.
        let program = x2y3();
        let eager = compile(
            &program,
            &CompilerOptions {
                mod_switch: ModSwitchStrategy::Eager,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let lazy = compile(
            &program,
            &CompilerOptions {
                mod_switch: ModSwitchStrategy::Lazy,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        assert!(eager.parameters.chain_length() <= lazy.parameters.chain_length());
    }
}
