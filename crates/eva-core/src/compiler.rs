//! The compiler driver (paper Algorithm 1): transform, validate, select
//! encryption parameters, select rotation keys.

use std::collections::HashSet;

use crate::analysis::noise::{check_noise, estimate_noise, NoiseModel};
use crate::analysis::scale::{analyze_levels, chain_lengths};
use crate::analysis::verifier::{verify_compiled, verify_program, Check};
use crate::analysis::{
    select_parameters, select_rotation_steps, validate_transformed, ParameterSpec,
};
use crate::error::EvaError;
use crate::passes::{
    apply_exact_scales, canonicalize_rotations, chain_rotations_if_profitable,
    eliminate_common_subexpressions, eliminate_dead_code, factor_rotation_sums,
    insert_always_rescale, insert_eager_modswitch, insert_lazy_modswitch, insert_match_scale,
    insert_relinearize, insert_waterline_rescale,
};
use crate::program::Program;

/// Which RESCALE insertion strategy to use (paper Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RescaleStrategy {
    /// EVA's waterline strategy: rescale by the maximum prime size only while
    /// the scale stays above the waterline (default, optimal chain length).
    #[default]
    Waterline,
    /// The naive baseline: rescale after every ciphertext multiplication.
    Always,
}

/// Which MODSWITCH insertion strategy to use (paper Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModSwitchStrategy {
    /// Insert MODSWITCH at the earliest feasible edge, shared among consumers
    /// (default; Figure 5(c)).
    #[default]
    Eager,
    /// Insert MODSWITCH immediately below the mismatching instruction
    /// (Figure 5(b)).
    Lazy,
}

/// Which analysis-driven optimization passes run before the maintenance
/// pipeline (all on by default — each is individually re-verified by the
/// IR verifier after it runs, so disabling them is only useful for
/// ablations and for producing bit-stable unoptimized twins in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Global common-subexpression elimination via value numbering
    /// (bit-preserving).
    pub cse: bool,
    /// Dead-code elimination before the maintenance pipeline
    /// (bit-preserving; a final sweep after exact-scale annotation always
    /// runs regardless, so compiled programs are dead-free either way).
    pub dce: bool,
    /// Rotation canonicalization, compose-merging and differential chaining
    /// (value-preserving: decoded outputs are equal, ciphertext bits and
    /// Galois-key sets differ).
    pub rotation_min: bool,
    /// Maximum differential-chain depth for rotation chaining. Deeper chains
    /// collapse more Galois keys but accumulate more rotation noise; the
    /// compile-time noise gate bounds how far this can be pushed.
    pub rotation_chain_depth: u32,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        Self {
            cse: true,
            dce: true,
            rotation_min: true,
            rotation_chain_depth: 4,
        }
    }
}

impl OptimizerOptions {
    /// All optimization passes off (the pre-optimizer pipeline, for
    /// ablations and unoptimized-twin tests).
    pub fn disabled() -> Self {
        Self {
            cse: false,
            dce: false,
            rotation_min: false,
            rotation_chain_depth: 0,
        }
    }
}

/// Options controlling compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilerOptions {
    /// RESCALE insertion strategy.
    pub rescale: RescaleStrategy,
    /// MODSWITCH insertion strategy.
    pub mod_switch: ModSwitchStrategy,
    /// Maximum rescale value / prime size in bits (the paper's `log2 s_f`,
    /// 60 in SEAL).
    pub max_rescale_bits: u32,
    /// Analysis-driven optimization passes.
    pub optimizer: OptimizerOptions,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        Self {
            rescale: RescaleStrategy::Waterline,
            mod_switch: ModSwitchStrategy::Eager,
            max_rescale_bits: 60,
            optimizer: OptimizerOptions::default(),
        }
    }
}

impl CompilerOptions {
    /// Default options with every optimization pass disabled.
    pub fn unoptimized() -> Self {
        Self {
            optimizer: OptimizerOptions::disabled(),
            ..Self::default()
        }
    }
}

/// Statistics about what the compiler did, useful for reports and ablations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompilationStats {
    /// Number of RESCALE instructions inserted.
    pub rescales_inserted: usize,
    /// Number of MODSWITCH instructions inserted.
    pub mod_switches_inserted: usize,
    /// Number of MATCH-SCALE fixes (constant multiplications) inserted.
    pub scale_fixes_inserted: usize,
    /// Number of RELINEARIZE instructions inserted.
    pub relinearizations_inserted: usize,
    /// Number of *exact* match-scale corrections inserted by the second
    /// (exact-scale) phase, closing sub-bit rescale drift between operands.
    pub exact_scale_fixes_inserted: usize,
    /// Total node count of the transformed program.
    pub node_count: usize,
    /// Duplicate nodes merged by common-subexpression elimination.
    pub cse_merged: usize,
    /// Dead nodes removed (pre-pipeline DCE plus the final sweep).
    pub dce_removed: usize,
    /// Rotation rewrites by canonicalization (spelling, identity bypass,
    /// compose-merge).
    pub rotations_canonicalized: usize,
    /// Rotations eliminated by baby-step/giant-step factoring of
    /// rotate–multiply–accumulate sums.
    pub rotations_factored: usize,
    /// Rotations re-parented into differential chains.
    pub rotations_chained: usize,
}

/// The result of compilation: the transformed executable program plus the
/// encryption parameters and rotation steps needed to run it (the three
/// outputs of the paper's Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The transformed program (contains RESCALE/MODSWITCH/RELINEARIZE).
    pub program: Program,
    /// Prime bit sizes and ring degree for key generation.
    pub parameters: ParameterSpec,
    /// Rotation steps that need Galois keys.
    pub rotation_steps: Vec<i64>,
    /// Transformation statistics.
    pub stats: CompilationStats,
}

impl CompiledProgram {
    /// The vector size of the program.
    pub fn vec_size(&self) -> usize {
        self.program.vec_size()
    }

    /// The program name.
    pub fn name(&self) -> &str {
        self.program.name()
    }

    /// Renders the compiled graph in Graphviz DOT syntax, annotated with the
    /// facts the static analyses computed: each node label carries its
    /// opcode, level (remaining primes), exact `log2` scale and worst-case
    /// noise budget in bits. The plain structural dump without annotations is
    /// [`Program::to_dot`].
    ///
    /// ```
    /// use eva_core::{compile, CompilerOptions, Opcode, Program};
    ///
    /// let mut p = Program::new("square", 8);
    /// let x = p.input_cipher("x", 30);
    /// let sq = p.instruction(Opcode::Multiply, &[x, x]);
    /// p.output("out", sq, 30);
    /// let compiled = compile(&p, &CompilerOptions::default()).unwrap();
    /// let dot = compiled.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("budget"));
    /// ```
    pub fn to_dot(&self) -> String {
        let program = &self.program;
        let noise = estimate_noise(self, &NoiseModel::default());
        let max_level = self.parameters.data_primes.len();
        let levels: Vec<usize> = match analyze_levels(program) {
            Ok(chains) => chain_lengths(&chains)
                .iter()
                .map(|&consumed| max_level.saturating_sub(consumed))
                .collect(),
            Err(_) => vec![max_level; program.len()],
        };
        program.to_dot_with(|id| {
            let node = program.node(id);
            if !node.ty.is_cipher() {
                return String::new();
            }
            let budget = noise.nodes[id].budget_bits;
            format!("\\nL={} budget={budget:.1}b", levels[id])
        })
    }
}

/// Checks that an optimizer pass introduced no new *class* of verifier error.
///
/// Raw input programs legitimately fail some nominal checks (e.g. ADD scale
/// matching before MATCH-SCALE has run), so the guard compares the set of
/// failing check names against the pre-optimization baseline instead of
/// demanding a clean report: a pass may only leave error classes unchanged
/// or fixed, never add one.
fn optimizer_guard(
    program: &Program,
    max_rescale_bits: u32,
    baseline: &HashSet<Check>,
    pass: &str,
) -> Result<(), EvaError> {
    let report = verify_program(program, max_rescale_bits);
    for diagnostic in report.errors() {
        if !baseline.contains(&diagnostic.check) {
            return Err(EvaError::Validation(format!(
                "optimizer pass {pass} introduced a new verifier error [{}]: {}",
                diagnostic.check, diagnostic.message
            )));
        }
    }
    Ok(())
}

/// Compiles an input EVA program (paper Algorithm 1, preceded by this
/// reproduction's analysis-driven optimizer).
///
/// First the optimization passes run — rotation canonicalization, global
/// common-subexpression elimination, baby-step/giant-step rotation
/// factoring, rotation chaining and dead-code elimination, each re-checked
/// by the IR verifier. The transformation step
/// then applies, in order: RESCALE insertion, MODSWITCH insertion,
/// MATCH-SCALE and RELINEARIZE. The transformed program is validated
/// against Constraints 1–4 — if validation fails the compiler returns an
/// error instead of producing a program that would throw inside the FHE
/// library — and encryption parameters (including the actual primes) are
/// selected. A second, exact scale phase then re-annotates the program
/// against the chosen primes, inserting exact match-scale corrections where
/// rescale drift would otherwise break the evaluator's exact scale-equality
/// check, and validates that every annotation is bit-identical to what the
/// executor will observe (see [`crate::analysis::scale`]). A final
/// dead-code sweep (unconditional — optimizer on or off) guarantees shipped
/// programs are dead-free, and rotation steps are selected last so they
/// reflect the optimized graph.
///
/// # Errors
///
/// Returns [`EvaError`] if the input program is malformed, an optimizer
/// pass introduces a new verifier error class, a constraint is violated
/// after transformation, or no supported ring degree can hold the required
/// coefficient modulus.
pub fn compile(input: &Program, options: &CompilerOptions) -> Result<CompiledProgram, EvaError> {
    input.validate_as_input()?;
    let mut program = input.clone();

    // Analysis-driven optimization passes (this PR's addition to the paper's
    // pipeline): rotation canonicalization, CSE, baby-step/giant-step
    // rotation factoring, rotation chaining, DCE — in that order, so CSE
    // sees canonical rotation spellings, factoring sees deduplicated
    // single-use rotations, and chaining sees the factored baby/giant step
    // sets. Every pass is re-checked by the IR verifier before the next one
    // runs.
    let opt = &options.optimizer;
    let mut cse_merged = 0;
    let mut dce_removed = 0;
    let mut rotations_canonicalized = 0;
    let mut rotations_factored = 0;
    let mut rotations_chained = 0;
    if opt.cse || opt.dce || opt.rotation_min {
        let baseline: HashSet<Check> = verify_program(&program, options.max_rescale_bits)
            .errors()
            .map(|d| d.check)
            .collect();
        if opt.rotation_min {
            rotations_canonicalized = canonicalize_rotations(&mut program);
            optimizer_guard(
                &program,
                options.max_rescale_bits,
                &baseline,
                "rotation-canonicalize",
            )?;
        }
        if opt.cse {
            cse_merged = eliminate_common_subexpressions(&mut program);
            optimizer_guard(&program, options.max_rescale_bits, &baseline, "cse")?;
        }
        if opt.rotation_min {
            rotations_factored = factor_rotation_sums(&mut program);
            optimizer_guard(
                &program,
                options.max_rescale_bits,
                &baseline,
                "rotation-factor",
            )?;
        }
        if opt.rotation_min {
            // Chaining shrinks the Galois-key set but re-parents fan-out
            // members onto each other, destroying the same-source structure
            // hoisted key-switching exploits at runtime. The gate commits
            // the rewrite only when the hoisted NTT estimate does not get
            // worse — on fan-out-shaped programs it declines.
            rotations_chained =
                chain_rotations_if_profitable(&mut program, opt.rotation_chain_depth);
            optimizer_guard(
                &program,
                options.max_rescale_bits,
                &baseline,
                "rotation-chain",
            )?;
        }
        if opt.dce {
            dce_removed = eliminate_dead_code(&mut program);
            optimizer_guard(&program, options.max_rescale_bits, &baseline, "dce")?;
        }
    }

    let rescales_inserted = match options.rescale {
        RescaleStrategy::Waterline => {
            insert_waterline_rescale(&mut program, options.max_rescale_bits)
        }
        RescaleStrategy::Always => insert_always_rescale(&mut program),
    };
    let mod_switches_inserted = match options.mod_switch {
        ModSwitchStrategy::Eager => insert_eager_modswitch(&mut program),
        ModSwitchStrategy::Lazy => insert_lazy_modswitch(&mut program),
    };
    let scale_fixes_inserted = insert_match_scale(&mut program);
    let relinearizations_inserted = insert_relinearize(&mut program);

    validate_transformed(&mut program, options.max_rescale_bits)?;
    let parameters = select_parameters(&mut program, options.max_rescale_bits)?;

    // Phase two: the prime chain is fixed, so re-annotate with exact scales
    // and correct the sub-bit drift the nominal phase cannot see.
    let exact_scale_fixes_inserted = apply_exact_scales(&mut program, &parameters)?;

    // Unconditional final dead-code sweep: maintenance passes can orphan
    // nodes, and `verify_compiled` now treats dead code in a compiled
    // program as an error, so every shipped program must be dead-free —
    // optimizer on or off. DCE preserves exact annotations verbatim.
    dce_removed += eliminate_dead_code(&mut program);

    let rotation_steps = select_rotation_steps(&program);

    let stats = CompilationStats {
        rescales_inserted,
        mod_switches_inserted,
        scale_fixes_inserted,
        relinearizations_inserted,
        exact_scale_fixes_inserted,
        node_count: program.len(),
        cse_merged,
        dce_removed,
        rotations_canonicalized,
        rotations_factored,
        rotations_chained,
    };
    let compiled = CompiledProgram {
        program,
        parameters,
        rotation_steps,
        stats,
    };

    // The full verifier re-checks its own output against the shipped spec —
    // structure, constraints, level budget, rotation coverage and
    // bit-identical exact scales (subsuming the old exact-scale validation).
    if let Some(err) = verify_compiled(&compiled).into_error() {
        return Err(err);
    }
    // Finally the worst-case noise gate: a program whose outputs could drown
    // in noise is rejected at compile time rather than decrypting to garbage.
    check_noise(&compiled, &NoiseModel::default())?;
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::Opcode;

    /// The paper's Figure 2 running example.
    fn x2y3() -> Program {
        let mut p = Program::new("x2y3", 8);
        let x = p.input_cipher("x", 60);
        let y = p.input_cipher("y", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let y2 = p.instruction(Opcode::Multiply, &[y, y]);
        let y3 = p.instruction(Opcode::Multiply, &[y2, y]);
        let out = p.instruction(Opcode::Multiply, &[x2, y3]);
        p.output("out", out, 30);
        p
    }

    #[test]
    fn compile_x2y3_with_default_options() {
        let compiled = compile(&x2y3(), &CompilerOptions::default()).unwrap();
        // Figure 2(d)/(e): two rescales, four relinearizations, no scale fixes.
        assert_eq!(compiled.stats.rescales_inserted, 2);
        assert_eq!(compiled.stats.relinearizations_inserted, 4);
        assert_eq!(compiled.stats.scale_fixes_inserted, 0);
        assert!(compiled.rotation_steps.is_empty());
        // Chain: 2 rescale primes + 2 tail primes covering the output scale
        // (2^90) times the desired scale (2^30) + the special prime.
        assert_eq!(compiled.parameters.chain_length(), 5);
        assert_eq!(compiled.parameters.total_bits(), 300);
    }

    #[test]
    fn compile_rejects_invalid_input() {
        let mut p = Program::new("empty", 8);
        p.input_cipher("x", 30);
        assert!(matches!(
            compile(&p, &CompilerOptions::default()),
            Err(EvaError::InvalidProgram(_))
        ));
    }

    #[test]
    fn compiled_program_never_fails_validation_for_random_options() {
        let program = x2y3();
        for rescale in [RescaleStrategy::Waterline] {
            for mod_switch in [ModSwitchStrategy::Eager, ModSwitchStrategy::Lazy] {
                let options = CompilerOptions {
                    rescale,
                    mod_switch,
                    max_rescale_bits: 60,
                    optimizer: OptimizerOptions::default(),
                };
                let compiled = compile(&program, &options).unwrap();
                assert!(compiled.parameters.total_bits() > 0);
            }
        }
    }

    #[test]
    fn rotation_steps_are_collected() {
        let mut p = Program::new("rot", 64);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateRight(4), &[x]);
        let sum = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", sum, 30);
        // The optimizer canonicalizes RotateRight(4) to RotateLeft(60); the
        // chain rewrite is refused here ({1, 59} is no smaller than {1, 60}).
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        assert_eq!(compiled.rotation_steps, vec![1, 60]);
        assert_eq!(compiled.stats.rotations_canonicalized, 1);
        assert_eq!(compiled.vec_size(), 64);
        assert_eq!(compiled.name(), "rot");
        // The unoptimized pipeline preserves the spelled steps.
        let unopt = compile(&p, &CompilerOptions::unoptimized()).unwrap();
        assert_eq!(unopt.rotation_steps, vec![-4, 1]);
    }

    #[test]
    fn optimizer_strips_dead_code_and_merges_duplicates() {
        let mut p = Program::new("opt", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::Multiply, &[x, x]);
        let b = p.instruction(Opcode::Multiply, &[x, x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        let dead = p.instruction(Opcode::Negate, &[x]);
        let _dead2 = p.instruction(Opcode::Multiply, &[dead, dead]);
        p.output("out", s, 30);
        let compiled = compile(&p, &CompilerOptions::default()).unwrap();
        assert_eq!(compiled.stats.cse_merged, 1);
        assert!(compiled.stats.dce_removed >= 3, "{:?}", compiled.stats);
        // One shared square → one relinearization instead of two.
        assert_eq!(compiled.stats.relinearizations_inserted, 1);
        // Compiled output carries no dead instruction nodes.
        let live = compiled.program.live_mask();
        for (id, node) in compiled.program.nodes().iter().enumerate() {
            if matches!(node.kind, crate::program::NodeKind::Instruction { .. }) {
                assert!(live[id], "dead instruction {id} survived compile()");
            }
        }
    }

    #[test]
    fn unoptimized_compiles_are_also_dead_free() {
        // The final DCE sweep runs regardless of optimizer options, so the
        // dead-code-as-error rule of `verify_compiled` holds universally.
        let mut p = Program::new("deadfree", 8);
        let x = p.input_cipher("x", 30);
        let live = p.instruction(Opcode::Add, &[x, x]);
        let _dead = p.instruction(Opcode::Multiply, &[x, x]);
        p.output("out", live, 30);
        let compiled = compile(&p, &CompilerOptions::unoptimized()).unwrap();
        assert!(compiled.stats.dce_removed >= 1);
        let live_mask = compiled.program.live_mask();
        for (id, node) in compiled.program.nodes().iter().enumerate() {
            if matches!(node.kind, crate::program::NodeKind::Instruction { .. }) {
                assert!(live_mask[id], "dead instruction {id} survived");
            }
        }
    }

    #[test]
    fn eager_produces_no_longer_chain_than_lazy() {
        // The paper argues eager insertion is at least as efficient as lazy.
        let program = x2y3();
        let eager = compile(
            &program,
            &CompilerOptions {
                mod_switch: ModSwitchStrategy::Eager,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        let lazy = compile(
            &program,
            &CompilerOptions {
                mod_switch: ModSwitchStrategy::Lazy,
                ..CompilerOptions::default()
            },
        )
        .unwrap();
        assert!(eager.parameters.chain_length() <= lazy.parameters.chain_length());
    }
}
