//! Error type shared by the EVA compiler and executors.

use std::fmt;

/// Errors produced while building, compiling, serializing or executing EVA
/// programs.
#[derive(Debug, Clone, PartialEq)]
pub enum EvaError {
    /// The input program is malformed (unknown nodes, compiler-only opcodes,
    /// missing outputs, …).
    InvalidProgram(String),
    /// A validation pass found a violated constraint in the transformed
    /// program. The compiler throws instead of letting the FHE library fail at
    /// run time (paper Algorithm 1, line 3).
    Validation(String),
    /// Encryption-parameter selection failed (e.g. the program needs a larger
    /// coefficient modulus than any supported ring degree provides at 128-bit
    /// security).
    ParameterSelection(String),
    /// The worst-case noise analysis rejected the program: at least one
    /// output's noise budget falls below the safety margin, so decryption
    /// could return garbage even though Constraints 1–4 hold.
    NoiseBudget(String),
    /// Serialization or deserialization of a program failed.
    Serialization(String),
    /// Execution of a compiled program failed (missing input, backend error).
    Execution(String),
}

impl fmt::Display for EvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaError::InvalidProgram(msg) => write!(f, "invalid input program: {msg}"),
            EvaError::Validation(msg) => write!(f, "validation failed: {msg}"),
            EvaError::ParameterSelection(msg) => {
                write!(f, "encryption parameter selection failed: {msg}")
            }
            EvaError::NoiseBudget(msg) => write!(f, "noise budget exhausted: {msg}"),
            EvaError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            EvaError::Execution(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for EvaError {}
