//! # eva-core — the EVA language, IR and optimizing compiler
//!
//! This crate implements the core contribution of *"EVA: An Encrypted Vector
//! Arithmetic Language and Compiler for Efficient Homomorphic Computation"*
//! (PLDI 2020):
//!
//! * the EVA **language / intermediate representation** — typed DAG programs
//!   over encrypted and plaintext vectors ([`Program`], [`Opcode`],
//!   [`ValueType`], Tables 1–2 of the paper) with a compact binary
//!   [`serialize`] format standing in for the paper's Protocol Buffers schema;
//! * the **graph rewriting framework** and the transformation passes of
//!   Section 5 ([`passes`]): WATERLINE-RESCALE (and the ALWAYS-RESCALE
//!   baseline), EAGER/LAZY-MODSWITCH, MATCH-SCALE and RELINEARIZE;
//! * the **analysis passes** of Section 6 ([`analysis`]): scale, rescale-chain
//!   and polynomial-count data flow, constraint validation, encryption
//!   parameter selection and rotation-key selection;
//! * the **compiler driver** of Algorithm 1 ([`compile`]);
//! * a standalone **program verifier** ([`analysis::verifier`]) and
//!   **worst-case noise estimator** ([`analysis::noise`]) that gate both the
//!   compiler's output and untrusted `.evaprog` loads.
//!
//! The compiler is backend-agnostic: it produces a transformed program plus a
//! [`ParameterSpec`]; the `eva-backend` crate executes it against the
//! `eva-ckks` implementation of RNS-CKKS (this reproduction's stand-in for
//! Microsoft SEAL).
//!
//! # Example
//!
//! ```
//! use eva_core::{compile, CompilerOptions, Opcode, Program};
//!
//! // The paper's running example: x^2 * y^3.
//! let mut program = Program::new("x2y3", 8);
//! let x = program.input_cipher("x", 60);
//! let y = program.input_cipher("y", 30);
//! let x2 = program.instruction(Opcode::Multiply, &[x, x]);
//! let y2 = program.instruction(Opcode::Multiply, &[y, y]);
//! let y3 = program.instruction(Opcode::Multiply, &[y2, y]);
//! let out = program.instruction(Opcode::Multiply, &[x2, y3]);
//! program.output("out", out, 30);
//!
//! let compiled = compile(&program, &CompilerOptions::default()).unwrap();
//! assert_eq!(compiled.stats.rescales_inserted, 2);
//! assert_eq!(compiled.parameters.chain_length(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod compiler;
pub mod error;
pub mod passes;
pub mod program;
pub mod serialize;
pub mod types;

pub use analysis::{
    check_noise, estimate_cost, estimate_noise, predict_peak_memory, select_rotation_steps,
    verify_compiled, verify_program, CostModel, CostReport, MemoryForecast, NoiseModel,
    NoiseReport, ParameterSpec, VerifierReport,
};
pub use compiler::{
    compile, CompilationStats, CompiledProgram, CompilerOptions, ModSwitchStrategy,
    OptimizerOptions, RescaleStrategy,
};
pub use error::EvaError;
pub use program::{Node, NodeId, NodeKind, OutputInfo, Program};
pub use types::{ConstantValue, Opcode, ValueType};
