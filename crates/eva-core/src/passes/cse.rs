//! Global common-subexpression elimination (hash-consing), driven by the
//! value-numbering analysis of [`crate::analysis::dataflow`].
//!
//! Two nodes in the same value-numbering class compute bit-identical values
//! on every execution (FHE evaluation is deterministic given its operands),
//! so every class is merged onto its topologically-first representative:
//! all uses and output references of the other members are redirected to it.
//! The duplicates become dead and are swept by
//! [`super::dce::eliminate_dead_code`].
//!
//! Because the representative precedes every duplicate in topological order
//! and graph edges only point backward along that order, redirection can
//! never create a cycle. The pass is **bit-preserving**: it changes neither
//! the rotation-step set nor the evaluator's RNG draw order, so optimized
//! and unoptimized programs decrypt to bit-identical outputs under the same
//! seed.

use crate::analysis::dataflow::{value_numbers, Dataflow};
use crate::program::Program;

/// Merges every value-numbering class onto its representative, returning the
/// number of duplicate nodes whose uses were redirected.
///
/// Programs whose graph is cyclic are left untouched (the verifier gate in
/// `compile()` reports the cycle with a precise diagnostic instead).
pub fn eliminate_common_subexpressions(program: &mut Program) -> usize {
    let Ok(df) = Dataflow::try_new(program) else {
        return 0;
    };
    let (classes, representatives) = value_numbers(&df);
    let uses = df.uses();
    // Collect the redirections first: the Dataflow view borrows the program.
    let mut redirects: Vec<(usize, usize, Vec<usize>)> = Vec::new();
    for id in 0..program.len() {
        let rep = representatives[classes[id]];
        if rep == id {
            continue;
        }
        let referenced =
            !uses[id].is_empty() || program.outputs().iter().any(|output| output.node == id);
        if referenced {
            redirects.push((id, rep, uses[id].clone()));
        }
    }
    let merged = redirects.len();
    for (dup, rep, users) in redirects {
        for user in users {
            program.replace_arg(user, dup, rep);
        }
        program.redirect_outputs(dup, rep);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ConstantValue, Opcode};

    #[test]
    fn merges_duplicate_subtrees_across_outputs() {
        let mut p = Program::new("cse", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::Multiply, &[x, x]);
        let b = p.instruction(Opcode::Multiply, &[x, x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        p.output("sum", s, 30);
        p.output("sq", b, 30);
        let merged = eliminate_common_subexpressions(&mut p);
        assert_eq!(merged, 1);
        assert_eq!(p.args(s), &[a, a], "both operands now the representative");
        assert_eq!(p.outputs()[1].node, a, "output redirected too");
        assert!(!p.live_mask()[b], "duplicate went dead");
    }

    #[test]
    fn merges_transitively_through_operand_classes() {
        let mut p = Program::new("cse2", 8);
        let x = p.input_cipher("x", 30);
        let n1 = p.instruction(Opcode::Negate, &[x]);
        let n2 = p.instruction(Opcode::Negate, &[x]);
        let m1 = p.instruction(Opcode::Multiply, &[n1, n1]);
        let m2 = p.instruction(Opcode::Multiply, &[n2, n2]);
        let s = p.instruction(Opcode::Add, &[m1, m2]);
        p.output("out", s, 30);
        let merged = eliminate_common_subexpressions(&mut p);
        assert_eq!(merged, 2, "negate and multiply duplicates both merge");
        assert_eq!(p.args(s), &[m1, m1]);
    }

    #[test]
    fn merges_commutative_operand_orders_and_duplicate_constants() {
        let mut p = Program::new("cse3", 8);
        let x = p.input_cipher("x", 30);
        let c1 = p.constant(ConstantValue::Scalar(3.0), 20);
        let c2 = p.constant(ConstantValue::Scalar(3.0), 20);
        let m1 = p.instruction(Opcode::Multiply, &[x, c1]);
        let m2 = p.instruction(Opcode::Multiply, &[c2, x]);
        let s = p.instruction(Opcode::Add, &[m1, m2]);
        p.output("out", s, 30);
        let merged = eliminate_common_subexpressions(&mut p);
        assert!(
            merged >= 2,
            "constant and commuted multiply merge: {merged}"
        );
        assert_eq!(p.args(s), &[m1, m1]);
    }

    #[test]
    fn leaves_distinct_computations_alone() {
        let mut p = Program::new("nocse", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let a = p.instruction(Opcode::Sub, &[x, y]);
        let b = p.instruction(Opcode::Sub, &[y, x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", s, 30);
        assert_eq!(eliminate_common_subexpressions(&mut p), 0);
        assert_eq!(p.args(s), &[a, b]);
    }
}
