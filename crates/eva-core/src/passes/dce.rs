//! Dead-code elimination: rebuilds the program without nodes that cannot
//! reach any output.
//!
//! Executors already *skip* dead nodes at run time, but until this pass dead
//! branches were still compiled, verified, serialized and shipped to the
//! server. Removing them shrinks the wire bundle, the verifier's workload
//! and — because `select_rotation_steps` scans *all* nodes — the set of
//! Galois keys a client must generate and upload.
//!
//! Two deliberate conservatisms:
//!
//! * **Input nodes are always kept**, live or dead: the program's input
//!   signature is part of its contract (`bind_inputs` refuses unknown
//!   names), and the executors already skip binding dead inputs.
//! * Node payloads are copied **verbatim** — exact (non-integral) scale
//!   annotations stamped by the compiler's second phase survive, which is
//!   why `compile()` can run this pass again *after* `apply_exact_scales`
//!   to guarantee every shipped program is dead-free.
//!
//! The pass is bit-preserving: live nodes, their exact annotations and
//! their topological execution order are unchanged.

use crate::analysis::dataflow::kahn_order;
use crate::program::{Node, NodeKind, Program};

/// Removes every non-input node that does not reach an output, returning the
/// number of nodes removed. Cyclic graphs are left untouched (the verifier
/// gate reports the cycle instead).
pub fn eliminate_dead_code(program: &mut Program) -> usize {
    let Ok(order) = kahn_order(program) else {
        return 0;
    };
    let live = program.live_mask();
    let keep: Vec<bool> = (0..program.len())
        .map(|id| live[id] || matches!(program.node(id).kind, NodeKind::Input { .. }))
        .collect();
    let removed = keep.iter().filter(|&&k| !k).count();
    if removed == 0 {
        return 0;
    }

    let mut rebuilt = Program::new(program.name(), program.vec_size());
    let mut remap = vec![usize::MAX; program.len()];
    for &id in &order {
        if !keep[id] {
            continue;
        }
        let node = program.node(id);
        let kind = match &node.kind {
            NodeKind::Instruction { op, args } => NodeKind::Instruction {
                op: *op,
                args: args.iter().map(|&a| remap[a]).collect(),
            },
            other => other.clone(),
        };
        remap[id] = rebuilt.push_node(Node {
            kind,
            ty: node.ty,
            scale_log2: node.scale_log2,
        });
    }
    for output in program.outputs() {
        rebuilt.push_output(output.name.clone(), remap[output.node], output.scale_log2);
    }
    *program = rebuilt;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Opcode;

    #[test]
    fn removes_dead_branches_but_keeps_dead_inputs() {
        let mut p = Program::new("dce", 8);
        let x = p.input_cipher("x", 30);
        let unused = p.input_cipher("unused", 30);
        let live = p.instruction(Opcode::Add, &[x, x]);
        let d1 = p.instruction(Opcode::Multiply, &[x, unused]);
        let _d2 = p.instruction(Opcode::Negate, &[d1]);
        p.output("out", live, 30);
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 2);
        assert_eq!(p.len(), 3, "x, unused, add");
        let names: Vec<_> = p
            .nodes()
            .iter()
            .filter_map(|n| match &n.kind {
                NodeKind::Input { name } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"unused".to_string()), "signature preserved");
        assert!(p
            .live_mask()
            .iter()
            .zip(p.nodes())
            .all(|(&l, n)| { l || matches!(n.kind, NodeKind::Input { .. }) }));
    }

    #[test]
    fn preserves_exact_scales_and_output_wiring() {
        let mut p = Program::new("scales", 8);
        let x = p.input_cipher("x", 30);
        let dead = p.instruction(Opcode::Negate, &[x]);
        let live = p.instruction(Opcode::Multiply, &[x, x]);
        p.set_scale_log2(live, 59.99993133961417);
        p.set_scale_log2(dead, 1.5);
        p.output("out", live, 60);
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 1);
        let out = p.outputs()[0].node;
        assert_eq!(
            p.node(out).scale_log2.to_bits(),
            59.99993133961417f64.to_bits(),
            "exact annotation copied bit-for-bit"
        );
        assert_eq!(p.outputs()[0].scale_log2, 60.0);
    }

    #[test]
    fn noop_on_fully_live_programs() {
        let mut p = Program::new("live", 8);
        let x = p.input_cipher("x", 30);
        let m = p.instruction(Opcode::Multiply, &[x, x]);
        p.output("out", m, 30);
        let before = p.clone();
        assert_eq!(eliminate_dead_code(&mut p), 0);
        assert_eq!(p, before);
    }

    #[test]
    fn handles_out_of_id_order_graphs() {
        // Rotation chaining re-parents nodes onto later ids; DCE must follow
        // the true topological order, not id order.
        let mut p = Program::new("reorder", 8);
        let x = p.input_cipher("x", 30);
        let a = p.push_instruction(Opcode::RotateLeft(1), vec![x], crate::ValueType::Cipher);
        let b = p.push_instruction(Opcode::RotateLeft(2), vec![x], crate::ValueType::Cipher);
        // Re-parent a onto b: a = rotate(b, ...), so a's parent has a larger id.
        p.replace_instruction(a, Opcode::RotateLeft(7), vec![b]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        let _dead = p.instruction(Opcode::Negate, &[s]);
        p.output("out", s, 30);
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 1);
        // Rebuilt program must still be a valid DAG with backward args.
        for (id, node) in p.nodes().iter().enumerate() {
            if let NodeKind::Instruction { args, .. } = &node.kind {
                for &arg in args {
                    assert!(arg < id, "node {id} references later node {arg}");
                }
            }
        }
    }
}
