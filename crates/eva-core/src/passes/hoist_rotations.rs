//! Rotation fan-out grouping for hoisted key-switching.
//!
//! The evaluator's hoisted rotation path (`Evaluator::rotate_hoisted`)
//! RNS-decomposes a ciphertext once and applies every requested Galois key
//! to the shared decomposition. That changes the cost shape of rotations:
//! `k` rotations of one source cost one decomposition plus `k` cheap
//! applies instead of `k` full key switches. In NTT counts at level `ℓ`
//! (`ℓ` data primes plus the special prime):
//!
//! * decompose: `ℓ(ℓ + 2)` NTTs (`ℓ` inverse + `ℓ(ℓ + 1)` forward);
//! * per-key apply + mod-down: `2(ℓ + 1)` NTTs;
//! * a lone rotation therefore costs `ℓ(ℓ + 2) + 2(ℓ + 1) = ℓ² + 4ℓ + 2`.
//!
//! At `ℓ = 3` an 8-way fan-out costs `15 + 8·8 = 79` NTTs hoisted versus
//! `8·23 = 184` sequential — the ≥2× speedup this pass exists to preserve.
//!
//! This module contributes two things to the pipeline:
//!
//! 1. [`group_rotation_fanouts`] — the pure analysis both executors and the
//!    static cost model share: live, cipher-typed, non-identity rotations
//!    grouped by source node, keeping groups of two or more. Nothing about
//!    the program graph or its wire format changes; the grouping is
//!    recomputed wherever it is needed.
//! 2. [`chain_rotations_if_profitable`] — a hoisting-aware gate around
//!    [`chain_rotations`]. Differential chaining
//!    re-parents fan-out members onto each other, which shrinks the
//!    Galois-key set but destroys exactly the same-source structure hoisting
//!    exploits (each chained member pays a full decomposition again). The
//!    gate runs chaining on a scratch clone, compares the hoisted NTT
//!    estimate before and after, and commits the rewrite only when it does
//!    not make the hoisted execution plan more expensive.

use std::collections::BTreeMap;

use crate::program::{NodeId, Program};
use crate::types::Opcode;

use super::chain_rotations;

/// A group of live cipher rotations sharing one source ciphertext, eligible
/// for hoisted key-switching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationFanout {
    /// The shared source node every member rotates.
    pub source: NodeId,
    /// The member rotation nodes with their signed left-rotation steps,
    /// in ascending node order.
    pub members: Vec<(NodeId, i64)>,
}

/// Extracts the signed left-rotation step of a rotation opcode.
fn rotation_step(op: Opcode) -> Option<i64> {
    match op {
        Opcode::RotateLeft(s) => Some(s as i64),
        Opcode::RotateRight(s) => Some(-(s as i64)),
        _ => None,
    }
}

/// Groups live, cipher-typed, non-identity rotations by their source node,
/// returning every group with at least two members in ascending source
/// order (members in ascending node order).
///
/// This is a pure analysis: executors call it to pick hoisted execution
/// plans and the cost model calls it to price them, but the program graph
/// itself is never rewritten. Zero-step rotations are clones in the
/// evaluator and perform no key switch, so they never join a group.
pub fn group_rotation_fanouts(program: &Program) -> Vec<RotationFanout> {
    let live = program.live_mask();
    let mut groups: BTreeMap<NodeId, Vec<(NodeId, i64)>> = BTreeMap::new();
    for id in 0..program.len() {
        if !live[id] || !program.node(id).ty.is_cipher() {
            continue;
        }
        let Some(op) = program.opcode(id) else {
            continue;
        };
        let Some(step) = rotation_step(op) else {
            continue;
        };
        if step == 0 {
            continue;
        }
        groups
            .entry(program.args(id)[0])
            .or_default()
            .push((id, step));
    }
    groups
        .into_iter()
        .filter(|(_, members)| members.len() >= 2)
        .map(|(source, members)| RotationFanout { source, members })
        .collect()
}

/// NTTs one shared RNS decomposition performs at level `l`.
pub fn decompose_ntts(l: usize) -> usize {
    l * (l + 2)
}

/// NTTs one per-key apply (lazy accumulate + mod-down) performs at level `l`.
pub fn apply_ntts(l: usize) -> usize {
    2 * (l + 1)
}

/// Estimates the total key-switch NTT count of a program's live rotations
/// under the hoisted execution plan, pricing every rotation at nominal
/// level `level`.
///
/// Fan-out groups cost one decomposition plus one apply per member; lone
/// rotations cost a full decompose-plus-apply. Levels are not yet assigned
/// at the point in the pipeline where this estimate guards rewrites, so a
/// single nominal level is used — the comparison between two variants of
/// the same program is what matters, not the absolute number.
pub fn hoisted_ntt_estimate(program: &Program, level: usize) -> usize {
    let live = program.live_mask();
    let mut total = 0usize;
    let mut grouped = vec![false; program.len()];
    for fanout in group_rotation_fanouts(program) {
        total += decompose_ntts(level) + fanout.members.len() * apply_ntts(level);
        for (id, _) in &fanout.members {
            grouped[*id] = true;
        }
    }
    for id in 0..program.len() {
        if grouped[id] || !live[id] || !program.node(id).ty.is_cipher() {
            continue;
        }
        let Some(op) = program.opcode(id) else {
            continue;
        };
        if matches!(rotation_step(op), Some(step) if step != 0) {
            total += decompose_ntts(level) + apply_ntts(level);
        }
    }
    total
}

/// Nominal level the chaining gate prices rotations at. The relative
/// comparison is level-independent in practice (both cost formulas are
/// monotone in `l`), so the calibration reference level is used.
const GATE_LEVEL: usize = 3;

/// Runs [`chain_rotations`] on a scratch clone and
/// commits the rewrite only if the hoisted NTT estimate does not get worse.
/// Returns the number of rotations re-parented (0 when chaining declined or
/// was rejected by the gate).
///
/// Chaining converts a `k`-member fan-out into up to `⌈k/depth⌉` chain
/// heads plus sequential singletons; under hoisted execution that trades
/// `D + kA` NTTs for at least `D + cA + (k − c)(D + A)`, which is strictly
/// worse whenever any chain has length greater than one. The gate therefore
/// usually declines chaining on fan-out-shaped programs — the Galois-key-set
/// reduction chaining buys is not worth re-paying the decomposition per
/// member.
pub fn chain_rotations_if_profitable(program: &mut Program, max_depth: u32) -> usize {
    let mut trial = program.clone();
    let reparented = chain_rotations(&mut trial, max_depth);
    if reparented == 0 {
        return 0;
    }
    let before = hoisted_ntt_estimate(program, GATE_LEVEL);
    let after = hoisted_ntt_estimate(&trial, GATE_LEVEL);
    if after > before {
        return 0;
    }
    *program = trial;
    reparented
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rotations::select_rotation_steps;

    /// An 8-way Sobel-shaped rotation fan-out from a single source.
    fn fanout_program(steps: &[i32]) -> (Program, NodeId) {
        let mut p = Program::new("fanout", 256);
        let x = p.input_cipher("x", 30);
        let mut acc = None;
        for &step in steps {
            let r = p.instruction(Opcode::RotateLeft(step), &[x]);
            acc = Some(match acc {
                None => r,
                Some(prev) => p.instruction(Opcode::Add, &[prev, r]),
            });
        }
        p.output("out", acc.unwrap(), 30);
        (p, x)
    }

    #[test]
    fn groups_same_source_rotations() {
        let (p, x) = fanout_program(&[1, 2, 16, 17, 18, 32, 33, 34]);
        let groups = group_rotation_fanouts(&p);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].source, x);
        let steps: Vec<i64> = groups[0].members.iter().map(|&(_, s)| s).collect();
        assert_eq!(steps, vec![1, 2, 16, 17, 18, 32, 33, 34]);
    }

    #[test]
    fn lone_rotations_and_identities_form_no_group() {
        let mut p = Program::new("lone", 16);
        let x = p.input_cipher("x", 30);
        let r = p.instruction(Opcode::RotateLeft(1), &[x]);
        let z = p.instruction(Opcode::RotateLeft(0), &[x]);
        let s = p.instruction(Opcode::Add, &[r, z]);
        p.output("out", s, 30);
        assert!(group_rotation_fanouts(&p).is_empty());
    }

    #[test]
    fn dead_rotations_are_not_grouped() {
        let mut p = Program::new("dead", 16);
        let x = p.input_cipher("x", 30);
        let live = p.instruction(Opcode::RotateLeft(1), &[x]);
        let _dead_a = p.instruction(Opcode::RotateLeft(2), &[x]);
        let _dead_b = p.instruction(Opcode::RotateLeft(3), &[x]);
        p.output("out", live, 30);
        assert!(group_rotation_fanouts(&p).is_empty());
    }

    #[test]
    fn right_rotations_group_with_signed_steps() {
        let mut p = Program::new("signed", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateRight(2), &[x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", s, 30);
        let groups = group_rotation_fanouts(&p);
        assert_eq!(groups.len(), 1);
        let steps: Vec<i64> = groups[0].members.iter().map(|&(_, s)| s).collect();
        assert_eq!(steps, vec![1, -2]);
    }

    #[test]
    fn ntt_formulas_match_the_documented_counts() {
        // ℓ = 3: decompose 15, apply 8, lone rotation 23, 8-way fan-out 79.
        assert_eq!(decompose_ntts(3), 15);
        assert_eq!(apply_ntts(3), 8);
        assert_eq!(decompose_ntts(3) + apply_ntts(3), 23);
        assert_eq!(decompose_ntts(3) + 8 * apply_ntts(3), 79);
    }

    #[test]
    fn estimate_prices_fanouts_below_sequential() {
        let (p, _) = fanout_program(&[1, 2, 16, 17, 18, 32, 33, 34]);
        assert_eq!(hoisted_ntt_estimate(&p, 3), 79);
        let (lone, _) = fanout_program(&[7]);
        assert_eq!(hoisted_ntt_estimate(&lone, 3), 23);
    }

    #[test]
    fn gate_declines_chaining_that_destroys_a_fanout() {
        // The ladder chain_rotations happily collapses ({1,2,16,17,18,32,
        // 33,34} → keys {1,14,18}) costs 79 hoisted NTTs as a fan-out but
        // 169 once chained — the gate must refuse it.
        let (mut p, _) = fanout_program(&[1, 2, 16, 17, 18, 32, 33, 34]);
        let mut chained = p.clone();
        assert!(chain_rotations(&mut chained, 4) > 0, "chaining would fire");
        assert!(hoisted_ntt_estimate(&chained, 3) > hoisted_ntt_estimate(&p, 3));
        assert_eq!(chain_rotations_if_profitable(&mut p, 4), 0);
        assert_eq!(
            select_rotation_steps(&p),
            vec![1, 2, 16, 17, 18, 32, 33, 34],
            "fan-out left intact for hoisting"
        );
    }

    #[test]
    fn gate_passes_through_refusals() {
        // chain_rotations itself refuses {1, 5} (no step-set shrink); the
        // gate reports 0 without touching the program.
        let mut p = Program::new("refuse", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateLeft(5), &[x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", s, 30);
        assert_eq!(chain_rotations_if_profitable(&mut p, 4), 0);
        assert_eq!(select_rotation_steps(&p), vec![1, 5]);
    }
}
