//! MATCH-SCALE insertion passes (paper Section 5.3, "Matching Scales").
//!
//! Addition and subtraction require both operands to carry the same
//! fixed-point scale (Constraint 2). Instead of spending a RESCALE/MODSWITCH
//! (which would consume a modulus prime, as in Figure 3(b)), EVA multiplies
//! the smaller-scale operand by the constant `1` encoded at the missing scale
//! (Figure 3(c)) — the product then has the larger scale and no prime is
//! consumed.
//!
//! Two passes share this rule:
//!
//! * [`insert_match_scale`] runs in the nominal phase and fixes the *bit*
//!   mismatches visible in the programmer's annotations.
//! * [`apply_exact_scales`] runs after parameter selection and fixes the
//!   sub-bit drift between operands whose division histories differ (one
//!   was rescaled by prime `q_i`, the other by `q_j`): it multiplies the
//!   lower-scale operand by `1` at a delta solved to make the exact scales
//!   bit-identical, then stamps every node with its exact scale annotation.

use crate::analysis::scale::{analyze_levels, exact_scale_of, match_scale_delta, prime_log2s};
use crate::analysis::ParameterSpec;
use crate::error::EvaError;
use crate::passes::GraphEditor;
use crate::program::{NodeId, Program};
use crate::types::{ConstantValue, Opcode};

fn compute_scale(editor: &GraphEditor<'_>, scales: &[f64], id: usize) -> f64 {
    let args: Vec<f64> = editor
        .program()
        .args(id)
        .iter()
        .map(|&a| scales[a])
        .collect();
    crate::analysis::scale::nominal_scale_of(editor.program().node(id), &args)
}

/// Inserts MATCH-SCALE fixes (Figure 4): for every ADD/SUB whose operand
/// scales differ, multiply the smaller-scale operand by a constant `1` encoded
/// at the scale difference. Returns the number of fixes inserted.
pub fn insert_match_scale(program: &mut Program) -> usize {
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    let mut scales = vec![0.0f64; editor.len()];
    let mut inserted = 0;

    for id in order {
        scales.resize(editor.len(), 0.0);
        let op = editor.program().opcode(id);
        if matches!(op, Some(Opcode::Add) | Some(Opcode::Sub)) {
            let args: Vec<usize> = editor.program().args(id).to_vec();
            if args.len() == 2 {
                let (a, b) = (args[0], args[1]);
                if scales[a] != scales[b] {
                    let (low_idx, low_node, diff) = if scales[a] < scales[b] {
                        (0usize, a, scales[b] - scales[a])
                    } else {
                        (1usize, b, scales[a] - scales[b])
                    };
                    let one = editor.add_constant(ConstantValue::Scalar(1.0), diff);
                    scales.resize(editor.len(), 0.0);
                    scales[one] = diff;
                    let ty = editor.program().node(low_node).ty;
                    let fixed = editor.add_instruction(Opcode::Multiply, vec![low_node, one], ty);
                    scales.resize(editor.len(), 0.0);
                    scales[fixed] = scales[low_node] + diff;
                    editor.replace_arg_at(id, low_idx, fixed);
                    inserted += 1;
                }
            }
        }
        scales.resize(editor.len(), 0.0);
        scales[id] = compute_scale(&editor, &scales, id);
    }
    inserted
}

/// The exact phase of the pipeline (see [`crate::analysis::scale`]): given the
/// actual prime chain from parameter selection, re-propagates scales exactly,
/// inserts exact match-scale corrections wherever a cipher-cipher ADD/SUB
/// would see operands whose exact scales differ (sub-bit rescale drift), and
/// stamps every node — and every output — with its exact `log2` scale.
///
/// Returns the number of exact corrections inserted.
///
/// # Errors
///
/// Returns [`EvaError::Validation`] if a correction delta cannot be solved or
/// a rescale chain is longer than the prime chain.
pub fn apply_exact_scales(program: &mut Program, spec: &ParameterSpec) -> Result<usize, EvaError> {
    let chains = analyze_levels(program)?;
    let log_primes = prime_log2s(&spec.data_primes);
    let max_level = spec.data_primes.len();
    let order = program.topological_order();
    let live = program.live_mask();
    let mut editor = GraphEditor::new(program);
    let mut scales = vec![0.0f64; editor.len()];
    let mut inserted = 0;

    for id in order {
        scales.resize(editor.len(), 0.0);
        if !live[id] {
            // Dead nodes are never executed: keep the nominal annotation and
            // insert no corrections (their chains may outrun the primes).
            scales[id] = editor.program().node(id).scale_log2;
            continue;
        }
        // Correct drifted cipher-cipher ADD/SUB operands before computing
        // this node's own exact scale.
        let op = editor.program().opcode(id);
        if matches!(op, Some(Opcode::Add) | Some(Opcode::Sub)) {
            let args: Vec<NodeId> = editor.program().args(id).to_vec();
            let both_cipher = args.len() == 2
                && args
                    .iter()
                    .all(|&a| editor.program().node(a).ty.is_cipher());
            if both_cipher && scales[args[0]] != scales[args[1]] {
                let (a, b) = (args[0], args[1]);
                let (low_idx, low_node, target) = if scales[a] < scales[b] {
                    (0usize, a, scales[b])
                } else {
                    (1usize, b, scales[a])
                };
                let source = scales[low_node];
                let delta = match_scale_delta(source, target).ok_or_else(|| {
                    EvaError::Validation(format!(
                        "node {id}: no representable match-scale delta from \
                         2^{source:.10e} to 2^{target:.10e}"
                    ))
                })?;
                let one = editor.add_constant(ConstantValue::Scalar(1.0), delta);
                scales.resize(editor.len(), 0.0);
                scales[one] = delta;
                let ty = editor.program().node(low_node).ty;
                let fixed = editor.add_instruction(Opcode::Multiply, vec![low_node, one], ty);
                scales.resize(editor.len(), 0.0);
                // Mirrors the evaluator: multiply adds log2 scales, and the
                // delta was solved so the sum is bit-identical to the target.
                scales[fixed] = source + delta;
                debug_assert_eq!(scales[fixed].to_bits(), target.to_bits());
                editor.replace_arg_at(id, low_idx, fixed);
                inserted += 1;
            }
        }
        scales.resize(editor.len(), 0.0);
        // Correction nodes are appended after every original id and are never
        // RESCALEs, so the precomputed chains stay valid for all lookups.
        scales[id] = exact_scale_of(
            editor.program(),
            id,
            &scales,
            &chains,
            &log_primes,
            max_level,
        )?;
    }

    // Stamp the exact annotations (corrections included) onto the program.
    for id in 0..program.len() {
        let exact = scales[id];
        program.set_scale_log2(id, exact);
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scale::analyze_scales;
    use crate::analysis::validation::validate_transformed;
    use crate::passes::relinearize::insert_relinearize;
    use crate::program::Program;
    use crate::types::Opcode;

    /// The paper's Figure 3 input: x^2 + x with x at 2^30.
    fn x2_plus_x() -> Program {
        let mut p = Program::new("x2_plus_x", 8);
        let x = p.input_cipher("x", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x2, x]);
        p.output("out", sum, 30);
        p
    }

    #[test]
    fn figure_3c_multiplies_by_constant_one() {
        let mut p = x2_plus_x();
        let inserted = insert_match_scale(&mut p);
        assert_eq!(inserted, 1);
        // No RESCALE or MODSWITCH was added (that is the whole point of the rule).
        let histogram = p.opcode_histogram();
        assert_eq!(histogram.get("rescale"), None);
        assert_eq!(histogram.get("mod_switch"), None);
        assert_eq!(histogram.get("multiply"), Some(&2));
        // Both ADD operands now carry 2^60.
        let scales = analyze_scales(&mut p).unwrap();
        let out = p.outputs()[0].node;
        assert_eq!(scales[out], 60.0);
        insert_relinearize(&mut p);
        assert!(validate_transformed(&mut p, 60).is_ok());
    }

    #[test]
    fn exact_pass_corrects_rescale_drift() {
        use crate::analysis::scale::analyze_exact_scales;
        use crate::analysis::ParameterSpec;
        use crate::program::NodeKind;
        use crate::types::ValueType;

        // The canonical drift case: x^2 rescaled (divided by the top prime)
        // added to x mod-switched (never divided). Nominal scales agree at 40
        // bits, exact scales differ by the prime's sub-bit deviation.
        let mut p = Program::new("drift", 8);
        let x = p.input_cipher("x", 40);
        let prod = p.instruction(Opcode::Multiply, &[x, x]);
        let relin = p.push_instruction(Opcode::Relinearize, vec![prod], ValueType::Cipher);
        let rescaled = p.push_instruction(Opcode::Rescale(40), vec![relin], ValueType::Cipher);
        let switched = p.push_instruction(Opcode::ModSwitch, vec![x], ValueType::Cipher);
        let sum = p.instruction(Opcode::Add, &[rescaled, switched]);
        p.output("out", sum, 40);
        analyze_scales(&mut p).unwrap();

        let spec = ParameterSpec {
            degree: 8192,
            data_prime_bits: vec![40, 40],
            special_prime_bits: 60,
            data_primes: vec![1099511590913, 1099511680897],
            special_prime: 1152921504606830593,
            secure: false,
        };
        assert!(
            analyze_exact_scales(&p, &spec.data_primes).is_err(),
            "drift must be detected before correction"
        );
        let fixes = apply_exact_scales(&mut p, &spec).unwrap();
        assert_eq!(fixes, 1, "one exact correction for the drifted add");
        // After correction the exact analysis succeeds and matches the stamps.
        let exact = analyze_exact_scales(&p, &spec.data_primes).unwrap();
        for (id, node) in p.nodes().iter().enumerate() {
            assert_eq!(
                node.scale_log2.to_bits(),
                exact[id].to_bits(),
                "node {id} annotation disagrees with exact analysis"
            );
        }
        // The correction constant carries a tiny, non-integral delta scale.
        let delta_node = p
            .nodes()
            .iter()
            .enumerate()
            .find(|(_, n)| matches!(n.kind, NodeKind::Constant { .. }) && n.scale_log2.abs() < 1.0)
            .map(|(id, _)| id)
            .expect("exact correction constant exists");
        assert!(p.node(delta_node).scale_log2 != 0.0);
    }

    #[test]
    fn no_fix_for_matching_scales() {
        let mut p = Program::new("same", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let sum = p.instruction(Opcode::Add, &[x, y]);
        p.output("out", sum, 30);
        assert_eq!(insert_match_scale(&mut p), 0);
    }

    #[test]
    fn cascading_mismatches_are_fixed_in_one_pass() {
        // (x*y) + x + x : the first add mismatches (55 vs 30), and the second
        // add then sees 55 vs 30 again.
        let mut p = Program::new("cascade", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 25);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let add1 = p.instruction(Opcode::Add, &[prod, x]);
        let add2 = p.instruction(Opcode::Add, &[add1, x]);
        p.output("out", add2, 30);
        let inserted = insert_match_scale(&mut p);
        assert_eq!(inserted, 2);
        insert_relinearize(&mut p);
        assert!(validate_transformed(&mut p, 60).is_ok());
    }
}
