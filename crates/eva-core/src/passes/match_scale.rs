//! MATCH-SCALE insertion pass (paper Section 5.3, "Matching Scales").
//!
//! Addition and subtraction require both operands to carry the same
//! fixed-point scale (Constraint 2). Instead of spending a RESCALE/MODSWITCH
//! (which would consume a modulus prime, as in Figure 3(b)), EVA multiplies
//! the smaller-scale operand by the constant `1` encoded at the missing scale
//! (Figure 3(c)) — the product then has the larger scale and no prime is
//! consumed.

use crate::passes::GraphEditor;
use crate::program::{NodeKind, Program};
use crate::types::{ConstantValue, Opcode};

fn compute_scale(editor: &GraphEditor<'_>, scales: &[u32], id: usize) -> u32 {
    let node = editor.program().node(id);
    match &node.kind {
        NodeKind::Input { .. } | NodeKind::Constant { .. } => node.scale_bits,
        NodeKind::Instruction { op, .. } => {
            let args: Vec<u32> = editor
                .program()
                .args(id)
                .iter()
                .map(|&a| scales[a])
                .collect();
            match op {
                Opcode::Multiply => args.iter().sum(),
                Opcode::Add | Opcode::Sub => *args.iter().max().unwrap_or(&0),
                Opcode::Rescale(bits) => args[0].saturating_sub(*bits),
                _ => args[0],
            }
        }
    }
}

/// Inserts MATCH-SCALE fixes (Figure 4): for every ADD/SUB whose operand
/// scales differ, multiply the smaller-scale operand by a constant `1` encoded
/// at the scale difference. Returns the number of fixes inserted.
pub fn insert_match_scale(program: &mut Program) -> usize {
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    let mut scales = vec![0u32; editor.len()];
    let mut inserted = 0;

    for id in order {
        scales.resize(editor.len(), 0);
        let op = editor.program().opcode(id);
        if matches!(op, Some(Opcode::Add) | Some(Opcode::Sub)) {
            let args: Vec<usize> = editor.program().args(id).to_vec();
            if args.len() == 2 {
                let (a, b) = (args[0], args[1]);
                if scales[a] != scales[b] {
                    let (low_idx, low_node, diff) = if scales[a] < scales[b] {
                        (0usize, a, scales[b] - scales[a])
                    } else {
                        (1usize, b, scales[a] - scales[b])
                    };
                    let one = editor.add_constant(ConstantValue::Scalar(1.0), diff);
                    scales.resize(editor.len(), 0);
                    scales[one] = diff;
                    let ty = editor.program().node(low_node).ty;
                    let fixed = editor.add_instruction(Opcode::Multiply, vec![low_node, one], ty);
                    scales.resize(editor.len(), 0);
                    scales[fixed] = scales[low_node] + diff;
                    editor.replace_arg_at(id, low_idx, fixed);
                    inserted += 1;
                }
            }
        }
        scales.resize(editor.len(), 0);
        scales[id] = compute_scale(&editor, &scales, id);
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scale::analyze_scales;
    use crate::analysis::validation::validate_transformed;
    use crate::passes::relinearize::insert_relinearize;
    use crate::program::Program;
    use crate::types::Opcode;

    /// The paper's Figure 3 input: x^2 + x with x at 2^30.
    fn x2_plus_x() -> Program {
        let mut p = Program::new("x2_plus_x", 8);
        let x = p.input_cipher("x", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x2, x]);
        p.output("out", sum, 30);
        p
    }

    #[test]
    fn figure_3c_multiplies_by_constant_one() {
        let mut p = x2_plus_x();
        let inserted = insert_match_scale(&mut p);
        assert_eq!(inserted, 1);
        // No RESCALE or MODSWITCH was added (that is the whole point of the rule).
        let histogram = p.opcode_histogram();
        assert_eq!(histogram.get("rescale"), None);
        assert_eq!(histogram.get("mod_switch"), None);
        assert_eq!(histogram.get("multiply"), Some(&2));
        // Both ADD operands now carry 2^60.
        let scales = analyze_scales(&mut p).unwrap();
        let out = p.outputs()[0].node;
        assert_eq!(scales[out], 60);
        insert_relinearize(&mut p);
        assert!(validate_transformed(&mut p, 60).is_ok());
    }

    #[test]
    fn no_fix_for_matching_scales() {
        let mut p = Program::new("same", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let sum = p.instruction(Opcode::Add, &[x, y]);
        p.output("out", sum, 30);
        assert_eq!(insert_match_scale(&mut p), 0);
    }

    #[test]
    fn cascading_mismatches_are_fixed_in_one_pass() {
        // (x*y) + x + x : the first add mismatches (55 vs 30), and the second
        // add then sees 55 vs 30 again.
        let mut p = Program::new("cascade", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 25);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let add1 = p.instruction(Opcode::Add, &[prod, x]);
        let add2 = p.instruction(Opcode::Add, &[add1, x]);
        p.output("out", add2, 30);
        let inserted = insert_match_scale(&mut p);
        assert_eq!(inserted, 2);
        insert_relinearize(&mut p);
        assert!(validate_transformed(&mut p, 60).is_ok());
    }
}
