//! Graph transformation passes (paper Section 5).
//!
//! Each pass is a set of local rewrite rules applied over the term graph in a
//! forward or backward direction. [`GraphEditor`] is the shared rewriting
//! framework: it maintains the use (child) lists incrementally so rules can
//! insert maintenance instructions between a node and (a subset of) its
//! children in O(degree) time.

pub mod cse;
pub mod dce;
pub mod hoist_rotations;
pub mod match_scale;
pub mod modswitch;
pub mod relinearize;
pub mod rescale;
pub mod rotation_factor;
pub mod rotation_min;

pub use cse::eliminate_common_subexpressions;
pub use dce::eliminate_dead_code;
pub use hoist_rotations::{chain_rotations_if_profitable, group_rotation_fanouts, RotationFanout};
pub use match_scale::{apply_exact_scales, insert_match_scale};
pub use modswitch::{insert_eager_modswitch, insert_lazy_modswitch};
pub use relinearize::insert_relinearize;
pub use rescale::{insert_always_rescale, insert_waterline_rescale};
pub use rotation_factor::factor_rotation_sums;
pub use rotation_min::{canonicalize_rotations, chain_rotations};

use crate::program::{NodeId, Program};
use crate::types::{Opcode, ValueType};

/// A mutable view of a program plus incrementally maintained use lists,
/// shared by all rewrite passes.
#[derive(Debug)]
pub struct GraphEditor<'a> {
    program: &'a mut Program,
    uses: Vec<Vec<NodeId>>,
}

impl<'a> GraphEditor<'a> {
    /// Wraps a program for rewriting.
    pub fn new(program: &'a mut Program) -> Self {
        let uses = program.uses();
        Self { program, uses }
    }

    /// Immutable access to the underlying program.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The nodes currently using `node` as an argument.
    pub fn uses_of(&self, node: NodeId) -> &[NodeId] {
        &self.uses[node]
    }

    /// Inserts a unary maintenance instruction `op` between `node` and the
    /// subset `children` of its users, returning the new node's id. Every
    /// occurrence of `node` in those children's argument lists is redirected.
    pub fn insert_between(&mut self, node: NodeId, op: Opcode, children: &[NodeId]) -> NodeId {
        let ty = self.program.node(node).ty;
        let new_id = self.program.push_instruction(op, vec![node], ty);
        self.uses.push(Vec::new());
        for &child in children {
            self.program.replace_arg(child, node, new_id);
            self.uses[node].retain(|&u| u != child);
            if !self.uses[new_id].contains(&child) {
                self.uses[new_id].push(child);
            }
        }
        self.uses[node].push(new_id);
        new_id
    }

    /// Inserts `op` between `node` and *all* of its current users, including
    /// any program outputs that refer to `node` (the paper models outputs as
    /// leaf children, so they are redirected as well).
    pub fn insert_after_all(&mut self, node: NodeId, op: Opcode) -> NodeId {
        let children = self.uses[node].clone();
        let new_id = self.insert_between(node, op, &children);
        self.program.redirect_outputs(node, new_id);
        new_id
    }

    /// Appends a fresh constant node with an explicit `log2` scale (the exact
    /// match-scale pass needs non-integral deltas).
    pub fn add_constant(&mut self, value: crate::types::ConstantValue, scale_log2: f64) -> NodeId {
        let id = self.program.push_constant(value, scale_log2);
        self.uses.push(Vec::new());
        id
    }

    /// Appends a fresh instruction node with explicit arguments and type,
    /// wiring the use lists.
    pub fn add_instruction(&mut self, op: Opcode, args: Vec<NodeId>, ty: ValueType) -> NodeId {
        let id = self.program.push_instruction(op, args.clone(), ty);
        self.uses.push(Vec::new());
        for arg in args {
            if !self.uses[arg].contains(&id) {
                self.uses[arg].push(id);
            }
        }
        id
    }

    /// Redirects every occurrence of `from` in `child`'s argument list to `to`,
    /// maintaining the use lists.
    pub fn redirect_use(&mut self, child: NodeId, from: NodeId, to: NodeId) {
        self.program.replace_arg(child, from, to);
        self.uses[from].retain(|&u| u != child);
        if !self.uses[to].contains(&child) {
            self.uses[to].push(child);
        }
    }

    /// Redirects only the `index`-th argument of `node` to `new_arg`,
    /// maintaining the use lists.
    pub fn replace_arg_at(&mut self, node: NodeId, index: usize, new_arg: NodeId) {
        let old_arg = self.program.args(node)[index];
        self.program.replace_arg_at(node, index, new_arg);
        // Only drop the use edge if no other argument slot still references the old node.
        if !self.program.args(node).contains(&old_arg) {
            self.uses[old_arg].retain(|&u| u != node);
        }
        if !self.uses[new_arg].contains(&node) {
            self.uses[new_arg].push(node);
        }
    }

    /// Number of nodes currently in the graph.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ConstantValue;

    #[test]
    fn insert_after_all_redirects_every_user() {
        let mut p = Program::new("t", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::Multiply, &[x, x]);
        let b = p.instruction(Opcode::Add, &[a, x]);
        p.output("out", b, 30);
        let mut editor = GraphEditor::new(&mut p);
        let relin = editor.insert_after_all(a, Opcode::Relinearize);
        assert_eq!(editor.program().args(b), &[relin, x]);
        assert_eq!(editor.uses_of(a), &[relin]);
        assert_eq!(editor.uses_of(relin), &[b]);
    }

    #[test]
    fn insert_between_touches_only_selected_children() {
        let mut p = Program::new("t", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::Negate, &[x]);
        let b = p.instruction(Opcode::Negate, &[x]);
        p.output("a", a, 30);
        p.output("b", b, 30);
        let mut editor = GraphEditor::new(&mut p);
        let ms = editor.insert_between(x, Opcode::ModSwitch, &[b]);
        assert_eq!(editor.program().args(a), &[x]);
        assert_eq!(editor.program().args(b), &[ms]);
        assert!(editor.uses_of(x).contains(&a));
        assert!(editor.uses_of(x).contains(&ms));
        assert!(!editor.uses_of(x).contains(&b));
    }

    #[test]
    fn replace_arg_at_keeps_duplicate_uses() {
        let mut p = Program::new("t", 8);
        let x = p.input_cipher("x", 30);
        let sq = p.instruction(Opcode::Multiply, &[x, x]);
        p.output("out", sq, 30);
        let mut editor = GraphEditor::new(&mut p);
        let c = editor.add_constant(ConstantValue::Scalar(1.0), 10.0);
        let scaled = editor.add_instruction(Opcode::Multiply, vec![x, c], ValueType::Cipher);
        editor.replace_arg_at(sq, 1, scaled);
        assert_eq!(editor.program().args(sq), &[x, scaled]);
        // x is still used by sq (through slot 0) and by the new multiply.
        assert!(editor.uses_of(x).contains(&sq));
        assert!(editor.uses_of(x).contains(&scaled));
    }
}
