//! MODSWITCH insertion passes (paper Section 5.3).
//!
//! After RESCALE insertion the operands of a binary instruction may sit at
//! different levels (different coefficient moduli), violating Constraint 1.
//! These passes insert MODSWITCH instructions to equalize levels:
//!
//! * [`insert_eager_modswitch`] — EVA's pass: a single backward traversal that
//!   pushes every needed MODSWITCH to the earliest feasible edge, sharing it
//!   among all consumers that need the lower level (Figure 5(c)). Roots are
//!   then equalized with the paper's auxiliary rule.
//! * [`insert_lazy_modswitch`] — the baseline that inserts MODSWITCH directly
//!   below the mismatching binary instruction (Figure 5(b)).

use std::collections::BTreeMap;

use crate::passes::GraphEditor;
use crate::program::{NodeId, Program};
use crate::types::Opcode;

fn consumes_modulus(program: &Program, id: NodeId) -> bool {
    matches!(
        program.opcode(id),
        Some(Opcode::Rescale(_)) | Some(Opcode::ModSwitch)
    )
}

/// Inserts EAGER-MODSWITCH nodes (Figure 4) plus the paper's auxiliary rule
/// that equalizes the reverse levels of all ciphertext roots. Returns the
/// number of MODSWITCH nodes inserted.
pub fn insert_eager_modswitch(program: &mut Program) -> usize {
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    // rlevel(n): conforming rescale-chain length of n in the transpose graph,
    // i.e. how many RESCALE/MODSWITCH nodes lie below n on every path.
    let mut rlevel: Vec<usize> = vec![0; editor.len()];
    let mut inserted = 0;

    for &id in order.iter().rev() {
        rlevel.resize(editor.len(), 0);
        if !editor.program().node(id).ty.is_cipher() {
            continue;
        }
        let children: Vec<NodeId> = editor.uses_of(id).to_vec();
        if children.is_empty() {
            rlevel[id] = 0;
            continue;
        }
        // Demand each child places on this node: the child's own rlevel plus
        // one if the child itself consumes a modulus prime.
        let mut groups: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for &child in &children {
            let demand = rlevel[child] + usize::from(consumes_modulus(editor.program(), child));
            groups.entry(demand).or_default().push(child);
        }
        let max_demand = *groups.keys().next_back().expect("children is non-empty");
        for (&demand, group) in groups.iter().take_while(|(&d, _)| d < max_demand) {
            // Build a shared MODSWITCH chain of the missing length and redirect
            // this group of children onto its end.
            let mut tail = id;
            for _ in 0..(max_demand - demand) {
                tail = editor.insert_between(tail, Opcode::ModSwitch, &[]);
                rlevel.resize(editor.len(), 0);
                inserted += 1;
            }
            for &child in group {
                editor.redirect_use(child, id, tail);
            }
        }
        rlevel[id] = max_demand;
    }

    // Auxiliary rule: equalize the reverse level of all ciphertext roots so
    // every root-to-output path consumes the same number of primes.
    let cipher_roots: Vec<NodeId> = (0..editor.len())
        .filter(|&id| editor.program().is_cipher_root(id))
        .collect();
    if let Some(&max_root) = cipher_roots.iter().map(|&r| &rlevel[r]).max() {
        for &root in &cipher_roots {
            let missing = max_root - rlevel[root];
            let mut tail = root;
            for _ in 0..missing {
                tail = editor.insert_after_all(tail, Opcode::ModSwitch);
                rlevel.resize(editor.len(), 0);
                inserted += 1;
            }
        }
    }
    inserted
}

/// Inserts LAZY-MODSWITCH nodes (Figure 4): walk forward and, whenever a
/// binary instruction's ciphertext operands sit at different levels, insert
/// MODSWITCH nodes directly on the higher-level... lower-level operand edge
/// until the levels match. Returns the number of MODSWITCH nodes inserted.
pub fn insert_lazy_modswitch(program: &mut Program) -> usize {
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    // level(n): number of RESCALE/MODSWITCH nodes above n (forward).
    let mut level: Vec<usize> = vec![0; editor.len()];
    let mut inserted = 0;

    for id in order {
        level.resize(editor.len(), 0);
        let node_is_cipher = editor.program().node(id).ty.is_cipher();
        let args: Vec<NodeId> = editor.program().args(id).to_vec();
        if args.is_empty() {
            continue;
        }
        let op = editor
            .program()
            .opcode(id)
            .expect("non-root node is an instruction");
        // Equalize ciphertext operand levels for binary instructions.
        if matches!(op, Opcode::Add | Opcode::Sub | Opcode::Multiply) && args.len() == 2 {
            let cipher_args: Vec<(usize, NodeId)> = args
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, a)| editor.program().node(a).ty.is_cipher())
                .collect();
            if cipher_args.len() == 2 {
                let (idx_a, a) = cipher_args[0];
                let (idx_b, b) = cipher_args[1];
                let (low_idx, low_node, deficit) = if level[a] > level[b] {
                    (idx_b, b, level[a] - level[b])
                } else {
                    (idx_a, a, level[b] - level[a])
                };
                if deficit > 0 {
                    let ty = editor.program().node(low_node).ty;
                    let mut tail = low_node;
                    let mut chain_level = level[low_node];
                    for _ in 0..deficit {
                        tail = editor.add_instruction(Opcode::ModSwitch, vec![tail], ty);
                        level.resize(editor.len(), 0);
                        chain_level += 1;
                        level[tail] = chain_level;
                        inserted += 1;
                    }
                    editor.replace_arg_at(id, low_idx, tail);
                }
            }
        }
        // Now compute this node's own level.
        let parent_max = editor
            .program()
            .args(id)
            .iter()
            .filter(|&&a| editor.program().node(a).ty.is_cipher())
            .map(|&a| level[a])
            .max()
            .unwrap_or(0);
        level[id] = parent_max
            + usize::from(consumes_modulus(editor.program(), id)) * usize::from(node_is_cipher);
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scale::analyze_levels;
    use crate::analysis::validation::validate_transformed;
    use crate::passes::rescale::insert_waterline_rescale;
    use crate::program::Program;
    use crate::types::Opcode;

    /// The paper's Figure 5 input: x^2 + x + x with x at 2^60 (so that the
    /// waterline pass rescales the square).
    fn x2_plus_x_plus_x() -> Program {
        let mut p = Program::new("x2xx", 8);
        let x = p.input_cipher("x", 60);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let add1 = p.instruction(Opcode::Add, &[x2, x]);
        let add2 = p.instruction(Opcode::Add, &[add1, x]);
        p.output("out", add2, 60);
        p
    }

    fn count_modswitch(p: &Program) -> usize {
        p.opcode_histogram().get("mod_switch").copied().unwrap_or(0)
    }

    #[test]
    fn eager_shares_a_single_modswitch_for_both_adds() {
        // Figure 5(c): after waterline rescaling of x^2, the two ADDs both need
        // x one level down; eager insertion shares one MODSWITCH on x.
        let mut p = x2_plus_x_plus_x();
        insert_waterline_rescale(&mut p, 60);
        let inserted = insert_eager_modswitch(&mut p);
        assert_eq!(inserted, 1, "one shared MODSWITCH, as in Figure 5(c)");
        assert_eq!(count_modswitch(&p), 1);
        // The result is structurally valid: chains conform at every node.
        assert!(analyze_levels(&p).is_ok());
    }

    #[test]
    fn lazy_inserts_one_modswitch_per_add() {
        // Figure 5(b): lazy insertion patches each ADD separately.
        let mut p = x2_plus_x_plus_x();
        insert_waterline_rescale(&mut p, 60);
        let inserted = insert_lazy_modswitch(&mut p);
        assert_eq!(
            inserted, 2,
            "one MODSWITCH per mismatching ADD, as in Figure 5(b)"
        );
        assert!(analyze_levels(&p).is_ok());
    }

    #[test]
    fn eager_equalizes_roots() {
        // out1 = x^2 (rescaled), out2 = x + y: y is a fresh root that must be
        // brought down to x's post-equalization level... but x itself also needs
        // a MODSWITCH for the add; both roots end up with conforming chains.
        let mut p = Program::new("roots", 8);
        let x = p.input_cipher("x", 60);
        let y = p.input_cipher("y", 60);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x, y]);
        p.output("square", x2, 60);
        p.output("sum", sum, 60);
        insert_waterline_rescale(&mut p, 60);
        insert_eager_modswitch(&mut p);
        assert!(
            analyze_levels(&p).is_ok(),
            "chains conform after eager insertion"
        );
        // Constraint 1 holds for the add as well.
        assert!(validate_transformed(&mut p, 60).is_ok());
    }

    #[test]
    fn no_modswitch_needed_for_balanced_programs() {
        let mut p = Program::new("balanced", 8);
        let x = p.input_cipher("x", 30);
        let y = p.input_cipher("y", 30);
        let sum = p.instruction(Opcode::Add, &[x, y]);
        p.output("out", sum, 30);
        assert_eq!(insert_eager_modswitch(&mut p), 0);
        assert_eq!(insert_lazy_modswitch(&mut p), 0);
    }
}
