//! RELINEARIZE insertion pass (paper Section 5.2).
//!
//! A ciphertext-ciphertext multiplication produces a three-polynomial
//! ciphertext; Constraint 3 requires every multiplication operand to have
//! exactly two, so EVA inserts a RELINEARIZE node between every
//! cipher-cipher MULTIPLY and its children. With this placement a single
//! relinearization key suffices for the whole program.

use crate::passes::GraphEditor;
use crate::program::Program;
use crate::types::Opcode;

/// Inserts RELINEARIZE after every ciphertext-ciphertext multiplication
/// (Figure 4). Returns the number of nodes inserted.
pub fn insert_relinearize(program: &mut Program) -> usize {
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    let mut inserted = 0;
    for id in order {
        if !matches!(editor.program().opcode(id), Some(Opcode::Multiply)) {
            continue;
        }
        let args = editor.program().args(id);
        let both_cipher = args.len() == 2
            && args
                .iter()
                .all(|&a| editor.program().node(a).ty.is_cipher());
        if both_cipher {
            editor.insert_after_all(id, Opcode::Relinearize);
            inserted += 1;
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scale::analyze_num_polys;
    use crate::program::Program;
    use crate::types::Opcode;

    #[test]
    fn relinearize_follows_cipher_multiplications_only() {
        let mut p = Program::new("relin", 8);
        let x = p.input_cipher("x", 30);
        let v = p.input_vector("v", 20);
        let cc = p.instruction(Opcode::Multiply, &[x, x]);
        let cp = p.instruction(Opcode::Multiply, &[cc, v]);
        p.output("out", cp, 30);
        let inserted = insert_relinearize(&mut p);
        assert_eq!(inserted, 1);
        let polys = analyze_num_polys(&p);
        let out = p.outputs()[0].node;
        assert_eq!(
            polys[out], 2,
            "the plaintext multiply sees a relinearized operand"
        );
    }

    #[test]
    fn relinearize_is_inserted_before_existing_children() {
        // Mirrors Figure 2(d) -> 2(e): the RESCALE that already follows the
        // multiply must become the child of the new RELINEARIZE.
        let mut p = Program::new("order", 8);
        let x = p.input_cipher("x", 60);
        let sq = p.instruction(Opcode::Multiply, &[x, x]);
        crate::passes::rescale::insert_waterline_rescale(&mut p, 60);
        insert_relinearize(&mut p);
        // sq's only user must now be the relinearize, whose user is the rescale.
        let uses = p.uses();
        assert_eq!(uses[sq].len(), 1);
        let relin = uses[sq][0];
        assert_eq!(p.opcode(relin), Some(Opcode::Relinearize));
        assert_eq!(uses[relin].len(), 1);
        assert!(matches!(p.opcode(uses[relin][0]), Some(Opcode::Rescale(_))));
    }

    #[test]
    fn deep_multiplication_chain_gets_relinearized_everywhere() {
        let mut p = Program::new("chain", 8);
        let x = p.input_cipher("x", 20);
        let mut acc = x;
        for _ in 0..4 {
            acc = p.instruction(Opcode::Multiply, &[acc, x]);
        }
        p.output("out", acc, 20);
        assert_eq!(insert_relinearize(&mut p), 4);
        let polys = analyze_num_polys(&p);
        assert!(polys.iter().all(|&c| c <= 3));
    }
}
