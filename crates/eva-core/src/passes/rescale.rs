//! RESCALE insertion passes (paper Section 5.3).
//!
//! * [`insert_waterline_rescale`] — EVA's pass: always rescale by the maximum
//!   allowed value `s_f` (2^60 in SEAL), and only when the resulting scale
//!   stays above the *waterline* (the largest input scale). This is the pass
//!   the paper proves yields the minimal modulus-chain length.
//! * [`insert_always_rescale`] — the naive baseline the paper defines for
//!   comparison: rescale after every ciphertext multiplication by the smaller
//!   operand scale.

use crate::passes::GraphEditor;
use crate::program::{NodeKind, Program};
use crate::types::Opcode;

fn waterline(program: &Program) -> f64 {
    program
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Input { .. } | NodeKind::Constant { .. }))
        .map(|n| n.scale_log2)
        .fold(0.0f64, f64::max)
}

fn operand_scales(editor: &GraphEditor<'_>, scales: &[f64], id: usize) -> Vec<f64> {
    editor
        .program()
        .args(id)
        .iter()
        .map(|&a| scales[a])
        .collect()
}

fn compute_scale(editor: &GraphEditor<'_>, scales: &[f64], id: usize) -> f64 {
    let args = operand_scales(editor, scales, id);
    crate::analysis::scale::nominal_scale_of(editor.program().node(id), &args)
}

/// Inserts WATERLINE-RESCALE nodes (Figure 4): after a ciphertext
/// multiplication, rescale by `2^max_rescale_bits` as long as the remaining
/// scale stays at or above the waterline `s_w` (the maximum input/constant
/// scale). Returns the number of RESCALE nodes inserted.
pub fn insert_waterline_rescale(program: &mut Program, max_rescale_bits: u32) -> usize {
    let sw = waterline(program);
    let sf = f64::from(max_rescale_bits);
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    let mut scales = vec![0.0f64; editor.len()];
    let mut inserted = 0;

    for id in order {
        scales.resize(editor.len(), 0.0);
        scales[id] = compute_scale(&editor, &scales, id);
        let node = editor.program().node(id);
        let is_cipher_multiply =
            node.ty.is_cipher() && matches!(editor.program().opcode(id), Some(Opcode::Multiply));
        if !is_cipher_multiply {
            continue;
        }
        // Rescale while the post-rescale scale stays at or above the waterline.
        let mut current_scale = scales[id];
        let mut tail = id;
        while current_scale >= sf + sw {
            let rescale = editor.insert_after_all(tail, Opcode::Rescale(max_rescale_bits));
            current_scale -= sf;
            scales.resize(editor.len(), 0.0);
            scales[rescale] = current_scale;
            tail = rescale;
            inserted += 1;
        }
    }
    inserted
}

/// Inserts ALWAYS-RESCALE nodes (Figure 4): after every ciphertext
/// multiplication, rescale by the smaller operand scale. Defined by the paper
/// only as a baseline; EVA itself uses [`insert_waterline_rescale`]. Returns
/// the number of RESCALE nodes inserted.
pub fn insert_always_rescale(program: &mut Program) -> usize {
    let order = program.topological_order();
    let mut editor = GraphEditor::new(program);
    let mut scales = vec![0.0f64; editor.len()];
    let mut inserted = 0;

    for id in order {
        scales.resize(editor.len(), 0.0);
        scales[id] = compute_scale(&editor, &scales, id);
        let node = editor.program().node(id);
        let is_cipher_multiply =
            node.ty.is_cipher() && matches!(editor.program().opcode(id), Some(Opcode::Multiply));
        if !is_cipher_multiply {
            continue;
        }
        let operand_min = operand_scales(&editor, &scales, id)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        if operand_min <= 0.0 || !operand_min.is_finite() {
            continue;
        }
        // Input-program scales are integral annotations, so the rounded bit
        // count equals the nominal operand scale.
        let rescale = editor.insert_after_all(id, Opcode::Rescale(operand_min.round() as u32));
        scales.resize(editor.len(), 0.0);
        scales[rescale] = (scales[id] - operand_min).max(0.0);
        inserted += 1;
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scale::{analyze_levels, analyze_scales, ChainEntry};
    use crate::program::Program;
    use crate::types::Opcode;

    /// The paper's Figure 2 input: x^2 * y^3 with x at 2^60 and y at 2^30.
    fn x2y3(x_scale: u32, y_scale: u32) -> Program {
        let mut p = Program::new("x2y3", 8);
        let x = p.input_cipher("x", x_scale);
        let y = p.input_cipher("y", y_scale);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let y2 = p.instruction(Opcode::Multiply, &[y, y]);
        let y3 = p.instruction(Opcode::Multiply, &[y2, y]);
        let out = p.instruction(Opcode::Multiply, &[x2, y3]);
        p.output("out", out, 30);
        p
    }

    #[test]
    fn waterline_rescale_matches_figure_2d() {
        // With x at 2^60, y at 2^30 and s_f = 2^60, Figure 2(d) contains exactly
        // two RESCALE nodes: after x^2 (120 -> 60) and after the final multiply
        // (150 -> 90); the output scale is 2^60 * 2^30 as the paper states.
        let mut p = x2y3(60, 30);
        let inserted = insert_waterline_rescale(&mut p, 60);
        assert_eq!(inserted, 2);
        let scales = analyze_scales(&mut p).unwrap();
        let out_node = p.outputs()[0].node;
        assert_eq!(scales[out_node], 90.0);
        // After MODSWITCH insertion the chains conform and the output has
        // consumed exactly two 2^60 primes.
        crate::passes::modswitch::insert_eager_modswitch(&mut p);
        let chains = analyze_levels(&p).unwrap();
        let out_node = p.outputs()[0].node;
        assert_eq!(
            chains[out_node],
            vec![ChainEntry::Rescale(60), ChainEntry::Rescale(60)]
        );
    }

    #[test]
    fn waterline_rescale_skips_small_products() {
        // 25-bit inputs: a single multiplication gives 50 bits, which is below
        // 60 + 25, so no rescale is inserted.
        let mut p = Program::new("small", 8);
        let x = p.input_cipher("x", 25);
        let y = p.input_cipher("y", 25);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        p.output("out", prod, 25);
        assert_eq!(insert_waterline_rescale(&mut p, 60), 0);
    }

    #[test]
    fn always_rescale_inserts_after_every_multiply() {
        let mut p = x2y3(60, 30);
        let inserted = insert_always_rescale(&mut p);
        assert_eq!(inserted, 4, "one rescale per multiplication (Figure 2(b))");
    }

    #[test]
    fn waterline_handles_oversized_scales_with_multiple_rescales() {
        // Two 60-bit operands: the 120-bit product must come back below
        // 60 + waterline even if that takes more than one rescale step.
        let mut p = Program::new("big", 8);
        let x = p.input_cipher("x", 55);
        let y = p.input_cipher("y", 55);
        let prod = p.instruction(Opcode::Multiply, &[x, y]);
        let prod2 = p.instruction(Opcode::Multiply, &[prod, prod]);
        p.output("out", prod2, 30);
        insert_waterline_rescale(&mut p, 60);
        let scales = analyze_scales(&mut p).unwrap();
        let out_node = p.outputs()[0].node;
        // Whatever the exact chain, the final scale must sit below s_f + s_w.
        assert!(scales[out_node] < 115.0);
    }
}
