//! Baby-step/giant-step factoring of rotate–multiply–accumulate sums — the
//! second half of rotation-set minimization, targeting the dominant rotation
//! pattern of vectorized kernels (convolutions, stencils, dot products):
//!
//! ```text
//! Σ_j  c_j ⊙ rot(x, s_j)           (one key-switch per distinct step s_j)
//! ```
//!
//! Factoring each step as `s_j = g + b` with `b = s_j mod B` turns the sum
//! into
//!
//! ```text
//! Σ_g  rot( Σ_b  c'_{g,b} ⊙ rot(x, b),  g )
//! ```
//!
//! where `c'_{g,b}` is the plaintext constant **pre-rotated right by `g` at
//! compile time** (rotation of a plaintext is free: it is literally a
//! re-indexing of the constant's payload vector). The identity used is
//! `rot(c' ⊙ z, g) = rot_plain(c', g) ⊙ rot(z, g)` — a left rotation by `g`
//! of a product with the right-rotated constant restores the original
//! constant against the fully rotated ciphertext. Ciphertext rotations drop
//! from `|S|` (one per distinct step) to `|babies ≠ 0| + |giants ≠ 0|`,
//! roughly `2·√|S|` for dense step sets: fewer key-switches *executed*, and
//! usually fewer distinct steps for [`select_rotation_steps`](crate::analysis::rotations::select_rotation_steps) too.
//!
//! The pass only fires where it is provably a pure win:
//!
//! * every rewritten term `mul(rot(x, s), const)` and its rotation are
//!   **single-use** leaves of one addition tree, so the old nodes all die in
//!   the final DCE sweep;
//! * the block size `B` is chosen by exhaustive scan to minimize the new
//!   rotation count, and the group is left untouched unless the saving
//!   strictly exceeds any constant-node growth (shared vector constants
//!   that must be duplicated in rotated form);
//! * addition and multiplication node counts break even exactly (the tree
//!   is rebuilt with the same number of adds and one multiply per term).
//!
//! Like the other rotation passes this is **value-preserving**, not
//! bit-preserving: sums are re-associated and constants re-encoded, so
//! decoded outputs agree to working precision while ciphertext bits differ.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::dataflow::kahn_order;
use crate::program::{NodeKind, Program};
use crate::types::{ConstantValue, Opcode};

/// One rewritable leaf of an addition tree: `mul(rot(src, step), const)`.
#[derive(Debug, Clone, Copy)]
struct Term {
    /// The `Multiply` leaf node.
    leaf: usize,
    /// Its rotation argument (`RotateLeft(step)` of `src`).
    rot: usize,
    /// The canonical left step in `[1, vec_size)`.
    step: i64,
    /// Its constant argument.
    constant: usize,
}

/// Rewrites rotate–multiply–accumulate sums into baby-step/giant-step form,
/// returning the number of ciphertext rotations eliminated.
///
/// Runs on canonicalized programs (after `canonicalize_rotations`, so every
/// cipher rotation is a `RotateLeft` with a step in `[1, vec_size)`); cyclic
/// or non-power-of-two-vector programs are left untouched.
pub fn factor_rotation_sums(program: &mut Program) -> usize {
    let vs = program.vec_size() as i64;
    if !program.vec_size().is_power_of_two() || kahn_order(program).is_err() {
        return 0;
    }

    // Reference counts (argument occurrences plus output references) and,
    // where a node has exactly one referencing instruction, that consumer.
    let len = program.len();
    let mut refs = vec![0usize; len];
    let mut a_consumer = vec![usize::MAX; len];
    for id in 0..len {
        for &a in program.args(id) {
            refs[a] += 1;
            a_consumer[a] = id;
        }
    }
    let mut is_output = vec![false; len];
    for output in program.outputs() {
        refs[output.node] += 1;
        is_output[output.node] = true;
    }
    let live = program.live_mask();
    let is_add = |p: &Program, id: usize| {
        matches!(
            p.node(id).kind,
            NodeKind::Instruction {
                op: Opcode::Add,
                ..
            }
        )
    };
    // An interior node of an addition tree: a live Add consumed exactly once,
    // by another Add, and not an output.
    let interior = |p: &Program, id: usize| {
        is_add(p, id) && refs[id] == 1 && !is_output[id] && is_add(p, a_consumer[id])
    };

    let mut eliminated = 0usize;
    for root in 0..len {
        if !live[root] || !is_add(program, root) || interior(program, root) {
            continue;
        }
        // Collect the tree's leaves left-to-right.
        let mut leaves: Vec<usize> = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            for &arg in program.args(id).iter().rev() {
                if interior(program, arg) {
                    stack.push(arg);
                } else {
                    leaves.push(arg);
                }
            }
        }
        leaves.reverse();

        // Partition leaves into rewritable terms (grouped by rotation
        // source) and kept leaves.
        let mut groups: BTreeMap<usize, Vec<Term>> = BTreeMap::new();
        let mut term_of_leaf: BTreeMap<usize, usize> = BTreeMap::new();
        for &leaf in &leaves {
            if let Some((src, term)) = match_term(program, &refs, &is_output, leaf, vs) {
                term_of_leaf.insert(leaf, src);
                groups.entry(src).or_default().push(term);
            }
        }
        // Duplicate leaves (the same term summed twice) would double-count
        // its single reference; keep only groups of structurally distinct,
        // distinct-step terms.
        let mut rewritten: BTreeMap<usize, (Vec<Term>, i64)> = BTreeMap::new();
        for (src, terms) in groups {
            let steps: BTreeSet<i64> = terms.iter().map(|t| t.step).collect();
            if steps.len() != terms.len() || terms.len() < 2 {
                continue;
            }
            let Some((cost, block)) = best_block(&steps) else {
                continue;
            };
            let savings = steps.len().saturating_sub(cost);
            // Constant growth: a rotated copy is only needed for vector
            // constants of giant-shifted terms, and only nets a node when
            // the original constant stays live elsewhere.
            let growth = terms
                .iter()
                .filter(|t| {
                    t.step % block != t.step
                        && refs[t.constant] > 1
                        && matches!(
                            program.node(t.constant).kind,
                            NodeKind::Constant {
                                value: ConstantValue::Vector(_)
                            }
                        )
                })
                .count();
            if savings > growth && savings >= 1 {
                rewritten.insert(src, (terms, block));
            }
        }
        if rewritten.is_empty() {
            continue;
        }

        // Build the replacement terms: kept leaves in order, then one
        // factored sum per rewritten group.
        let mut replacement: Vec<usize> = leaves
            .iter()
            .copied()
            .filter(|leaf| {
                term_of_leaf
                    .get(leaf)
                    .is_none_or(|src| !rewritten.contains_key(src))
            })
            .collect();
        for (src, (terms, block)) in &rewritten {
            let old_rots = terms.len();
            replacement.push(build_factored_sum(program, *src, terms, *block, vs));
            let new_rots = count_new_rotations(terms, *block);
            eliminated += old_rots - new_rots;
        }
        splice_into_root(program, root, &replacement);
    }
    eliminated
}

/// Matches a leaf against `mul(rot(src, step), const)` with single-use
/// rotation and leaf, returning the rotation source and the term.
fn match_term(
    program: &Program,
    refs: &[usize],
    is_output: &[bool],
    leaf: usize,
    vs: i64,
) -> Option<(usize, Term)> {
    if refs[leaf] != 1 || is_output[leaf] {
        return None;
    }
    let NodeKind::Instruction {
        op: Opcode::Multiply,
        args,
    } = &program.node(leaf).kind
    else {
        return None;
    };
    let (rot, constant) = match (
        matches!(program.node(args[0]).kind, NodeKind::Constant { .. }),
        matches!(program.node(args[1]).kind, NodeKind::Constant { .. }),
    ) {
        (false, true) => (args[0], args[1]),
        (true, false) => (args[1], args[0]),
        _ => return None,
    };
    if refs[rot] != 1 || is_output[rot] {
        return None;
    }
    let NodeKind::Instruction {
        op: Opcode::RotateLeft(s),
        args: rot_args,
    } = &program.node(rot).kind
    else {
        return None;
    };
    let step = (*s as i64).rem_euclid(vs);
    if step == 0 {
        return None;
    }
    // Vector constants are re-encoded in rotated form; their scale must be
    // expressible as the whole bit count `Program::constant` accepts.
    let scale = program.node(constant).scale_log2;
    if matches!(
        program.node(constant).kind,
        NodeKind::Constant {
            value: ConstantValue::Vector(_)
        }
    ) && (scale.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&scale))
    {
        return None;
    }
    Some((
        rot_args[0],
        Term {
            leaf,
            rot,
            step,
            constant,
        },
    ))
}

/// Exhaustively picks the block size minimizing the rewritten rotation
/// count `|babies ≠ 0| + |giants ≠ 0|`.
fn best_block(steps: &BTreeSet<i64>) -> Option<(usize, i64)> {
    let max = *steps.iter().next_back()?;
    let mut best: Option<(usize, i64)> = None;
    for block in 1..=max {
        let babies: BTreeSet<i64> = steps.iter().map(|s| s % block).collect();
        let giants: BTreeSet<i64> = steps.iter().map(|s| s - s % block).collect();
        let cost =
            babies.iter().filter(|&&b| b != 0).count() + giants.iter().filter(|&&g| g != 0).count();
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, block));
        }
    }
    best
}

fn count_new_rotations(terms: &[Term], block: i64) -> usize {
    let babies: BTreeSet<i64> = terms.iter().map(|t| t.step % block).collect();
    let giants: BTreeSet<i64> = terms.iter().map(|t| t.step - t.step % block).collect();
    babies.iter().filter(|&&b| b != 0).count() + giants.iter().filter(|&&g| g != 0).count()
}

/// Emits the factored `Σ_g rot(Σ_b c' ⊙ rot(src, b), g)` nodes for one
/// group and returns the id of its top node.
fn build_factored_sum(
    program: &mut Program,
    src: usize,
    terms: &[Term],
    block: i64,
    vs: i64,
) -> usize {
    // Shared baby rotations; giant-0 terms reuse their original leaf (and
    // therefore their original rotation and constant) untouched, and their
    // rotation nodes seed the cache so giant-shifted terms with the same
    // baby step share them instead of duplicating the rotation.
    let mut baby_node: BTreeMap<i64, usize> = BTreeMap::new();
    let mut by_giant: BTreeMap<i64, Vec<&Term>> = BTreeMap::new();
    for t in terms {
        let giant = t.step - t.step % block;
        if giant == 0 {
            baby_node.insert(t.step, t.rot);
        }
        by_giant.entry(giant).or_default().push(t);
    }
    let mut group_terms: Vec<usize> = Vec::new();
    for (giant, terms_g) in by_giant {
        let inner: Vec<usize> = terms_g
            .iter()
            .map(|t| {
                if giant == 0 {
                    t.leaf
                } else {
                    let baby = t.step - giant;
                    let baby_id = *baby_node.entry(baby).or_insert_with(|| {
                        if baby == 0 {
                            src
                        } else {
                            program.instruction(Opcode::RotateLeft(baby as i32), &[src])
                        }
                    });
                    let constant = rotated_constant(program, t.constant, giant, vs);
                    program.instruction(Opcode::Multiply, &[baby_id, constant])
                }
            })
            .collect();
        let sum = fold_add(program, &inner);
        group_terms.push(if giant == 0 {
            sum
        } else {
            program.instruction(Opcode::RotateLeft(giant as i32), &[sum])
        });
    }
    fold_add(program, &group_terms)
}

/// Left-folds node ids with `Add`; a single id folds to itself.
fn fold_add(program: &mut Program, terms: &[usize]) -> usize {
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = program.instruction(Opcode::Add, &[acc, t]);
    }
    acc
}

/// A constant equal to `constant` rotated **right** by `giant` logical
/// slots, so that `rot_left(c' ⊙ z, giant) = c ⊙ rot_left(z, giant)`.
/// Scalar and integer splats are rotation-invariant and reused as-is.
fn rotated_constant(program: &mut Program, constant: usize, giant: i64, vs: i64) -> usize {
    let NodeKind::Constant { value } = &program.node(constant).kind else {
        unreachable!("match_term only accepts constant operands");
    };
    match value {
        ConstantValue::Scalar(_) | ConstantValue::Integer(_) => constant,
        ConstantValue::Vector(_) => {
            let full = value.to_vector(vs as usize);
            let rotated: Vec<f64> = (0..vs)
                .map(|i| full[(i - giant).rem_euclid(vs) as usize])
                .collect();
            let scale_bits = program.node(constant).scale_log2 as u32;
            program.constant(ConstantValue::Vector(rotated), scale_bits)
        }
    }
}

/// Rewrites `root` in place to compute the sum of `replacement` terms. The
/// final combine is written into the root node itself so every external
/// consumer (and output) of the tree keeps its node id.
fn splice_into_root(program: &mut Program, root: usize, replacement: &[usize]) {
    match replacement {
        [] => unreachable!("an addition tree has at least one leaf"),
        [single] => {
            // Mirror the single term's instruction into the root; the term
            // node itself goes dead and is swept by the final DCE.
            let NodeKind::Instruction { op, args } = program.node(*single).kind.clone() else {
                unreachable!("factored sums and kept leaves of a rewritten tree are instructions");
            };
            program.replace_instruction(root, op, args);
        }
        [rest @ .., last] => {
            let acc = fold_add(program, rest);
            program.replace_instruction(root, Opcode::Add, vec![acc, *last]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rotations::select_rotation_steps;
    use crate::analysis::verifier::verify_program;
    use crate::program::Program;
    use std::collections::HashMap;

    /// Minimal plaintext evaluator for value-preservation checks (the full
    /// reference executor lives downstream in `eva-backend`).
    fn eval(p: &Program, inputs: &HashMap<String, Vec<f64>>) -> HashMap<String, Vec<f64>> {
        let vs = p.vec_size();
        let mut values: Vec<Option<Vec<f64>>> = vec![None; p.len()];
        for id in kahn_order(p).unwrap() {
            let value = match &p.node(id).kind {
                NodeKind::Input { name } => inputs[name].clone(),
                NodeKind::Constant { value } => value.to_vector(vs),
                NodeKind::Instruction { op, args } => {
                    let a: Vec<&Vec<f64>> =
                        args.iter().map(|&x| values[x].as_ref().unwrap()).collect();
                    match op {
                        Opcode::Add => (0..vs).map(|i| a[0][i] + a[1][i]).collect(),
                        Opcode::Multiply => (0..vs).map(|i| a[0][i] * a[1][i]).collect(),
                        Opcode::RotateLeft(s) => (0..vs)
                            .map(|i| a[0][(i as i64 + *s as i64).rem_euclid(vs as i64) as usize])
                            .collect(),
                        other => unimplemented!("test evaluator: {other:?}"),
                    }
                }
            };
            values[id] = Some(value);
        }
        p.outputs()
            .iter()
            .map(|o| (o.name.clone(), values[o.node].clone().unwrap()))
            .collect()
    }

    fn rotation_count(p: &Program) -> usize {
        let live = p.live_mask();
        (0..p.len())
            .filter(|&id| {
                live[id]
                    && matches!(
                        p.node(id).kind,
                        NodeKind::Instruction {
                            op: Opcode::RotateLeft(_) | Opcode::RotateRight(_),
                            ..
                        }
                    )
            })
            .count()
    }

    /// A 3×3 stencil over a 16-wide row layout: steps {1,2,16,17,18,32,33,34}.
    fn stencil(vec_size: usize, width: i32) -> Program {
        let mut p = Program::new("stencil", vec_size);
        let x = p.input_cipher("x", 30);
        let mut acc = None;
        for i in 0..3 {
            for j in 0..3 {
                let step = i * width + j;
                let rotated = if step == 0 {
                    x
                } else {
                    p.instruction(Opcode::RotateLeft(step), &[x])
                };
                // Non-uniform weights so compile-time constant rotation is
                // actually exercised (a splat would be rotation-invariant).
                let weight = p.constant(
                    ConstantValue::Vector(
                        (0..vec_size)
                            .map(|k| 0.1 * f64::from(i * 3 + j + 1) + 0.001 * k as f64)
                            .collect(),
                    ),
                    30,
                );
                let term = p.instruction(Opcode::Multiply, &[rotated, weight]);
                acc = Some(match acc {
                    None => term,
                    Some(a) => p.instruction(Opcode::Add, &[a, term]),
                });
            }
        }
        p.output("out", acc.unwrap(), 30);
        p
    }

    #[test]
    fn stencil_sum_drops_to_baby_and_giant_rotations() {
        let mut p = stencil(64, 16);
        let before = rotation_count(&p);
        assert_eq!(before, 8);
        let eliminated = factor_rotation_sums(&mut p);
        // Babies {1, 2} + giants {16, 32}: four rotations survive.
        assert_eq!(eliminated, 4);
        crate::passes::dce::eliminate_dead_code(&mut p);
        assert_eq!(rotation_count(&p), 4);
        let steps: Vec<i64> = select_rotation_steps(&p);
        assert_eq!(steps, vec![1, 2, 16, 32]);
        assert!(verify_program(&p, 60).is_clean());
    }

    #[test]
    fn factored_sum_is_value_preserving() {
        let reference = stencil(64, 16);
        let mut factored = stencil(64, 16);
        factor_rotation_sums(&mut factored);
        let inputs: HashMap<String, Vec<f64>> = [(
            "x".to_string(),
            (0..64)
                .map(|i| f64::from(i) / 64.0 - 0.5)
                .collect::<Vec<_>>(),
        )]
        .into_iter()
        .collect();
        let expected = eval(&reference, &inputs);
        let actual = eval(&factored, &inputs);
        for (a, b) in actual["out"].iter().zip(&expected["out"]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn shared_rotations_are_left_alone() {
        // rot(x, 1) feeds two different terms: not single-use, no rewrite.
        let mut p = Program::new("shared", 16);
        let x = p.input_cipher("x", 30);
        let r = p.instruction(Opcode::RotateLeft(1), &[x]);
        let c1 = p.constant(ConstantValue::Vector(vec![1.0; 16]), 30);
        let c2 = p.constant(ConstantValue::Vector(vec![2.0; 16]), 30);
        let t1 = p.instruction(Opcode::Multiply, &[r, c1]);
        let t2 = p.instruction(Opcode::Multiply, &[r, c2]);
        let sum = p.instruction(Opcode::Add, &[t1, t2]);
        p.output("out", sum, 30);
        assert_eq!(factor_rotation_sums(&mut p), 0);
    }

    #[test]
    fn small_groups_without_savings_are_left_alone() {
        // Two far-apart steps: any blocking needs two rotations, no win.
        let mut p = Program::new("nogain", 64);
        let x = p.input_cipher("x", 30);
        let mut acc = None;
        for step in [3, 17] {
            let r = p.instruction(Opcode::RotateLeft(step), &[x]);
            let c = p.constant(ConstantValue::Vector(vec![0.5; 64]), 30);
            let t = p.instruction(Opcode::Multiply, &[r, c]);
            acc = Some(match acc {
                None => t,
                Some(a) => p.instruction(Opcode::Add, &[a, t]),
            });
        }
        p.output("out", acc.unwrap(), 30);
        assert_eq!(factor_rotation_sums(&mut p), 0);
    }

    #[test]
    fn scalar_constants_are_reused_not_duplicated() {
        let mut p = Program::new("scalar", 64);
        let x = p.input_cipher("x", 30);
        let c = p.constant(ConstantValue::Scalar(0.25), 30);
        let mut acc = None;
        for step in [1, 2, 3, 16, 17, 18, 32, 33, 34] {
            let r = p.instruction(Opcode::RotateLeft(step), &[x]);
            let t = p.instruction(Opcode::Multiply, &[r, c]);
            acc = Some(match acc {
                None => t,
                Some(a) => p.instruction(Opcode::Add, &[a, t]),
            });
        }
        p.output("out", acc.unwrap(), 30);
        let before = p.len();
        let eliminated = factor_rotation_sums(&mut p);
        assert!(eliminated > 0);
        // No rotated constant copies: the scalar splat is rotation-invariant.
        let constants = (0..p.len())
            .filter(|&id| matches!(p.node(id).kind, NodeKind::Constant { .. }))
            .count();
        assert_eq!(constants, 1);
        assert!(p.len() > before, "new rotation/multiply/add nodes appended");
    }
}
