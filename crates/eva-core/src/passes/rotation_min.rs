//! Rotation-set minimization: canonicalize rotation spellings, collapse
//! composed rotations, and re-parent same-source rotations into short
//! differential chains so the program needs fewer Galois keys *and* fewer
//! key switches.
//!
//! Three rewrites, in the order `compile()` applies them:
//!
//! 1. [`canonicalize_rotations`] — every rotation becomes
//!    `RotateLeft(canonical_left_step(step, vec_size))` (the contract of
//!    [`crate::analysis::rotations`]); identity rotations (canonical step 0)
//!    are bypassed entirely, since the evaluator would clone the ciphertext
//!    but `select_rotation_steps` would still demand a Galois key for the
//!    spelled step.
//! 2. Compose-merging (also in [`canonicalize_rotations`]) —
//!    `rotate(rotate(x, a), b)` where the inner rotation has no other
//!    consumer becomes `rotate(x, (a + b) mod size)`: one key switch and one
//!    node fewer, and strictly less rotation noise.
//! 3. [`chain_rotations`] — live cipher rotations sharing a source node are
//!    grouped, their sorted canonical steps split into runs of at most
//!    `max_depth`, and each run rewritten as a differential chain
//!    (`head` rotates by its full step, each successor by the delta to its
//!    predecessor). Key-switch count is unchanged, but many distinct steps
//!    collapse onto shared deltas, shrinking the Galois-key set. The chain
//!    depth bound caps the extra rotation-noise accumulation (≈ quadrature
//!    growth, ~1–2 bits at depth 4) so the compiler's worst-case noise gate
//!    stays satisfiable; the rewrite is applied only when it strictly
//!    shrinks the global distinct-step count.
//!
//! Canonicalization and compose-merging are value-preserving but not
//! bit-preserving (a different automorphism draws different keygen
//! randomness), which is why `verify_compiled` + the noise gate re-check
//! every compiled artifact and the optimizer proptests assert tolerance
//! equality rather than bit equality for this pass.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::analysis::dataflow::kahn_order;
use crate::analysis::rotations::canonical_left_step;
use crate::program::{NodeId, NodeKind, Program};
use crate::types::Opcode;

/// Extracts the signed step of a rotation opcode.
fn rotation_step(op: Opcode) -> Option<i64> {
    match op {
        Opcode::RotateLeft(s) => Some(s as i64),
        Opcode::RotateRight(s) => Some(-(s as i64)),
        _ => None,
    }
}

/// Rewrites every rotation into canonical left-step form, bypasses identity
/// rotations, and merges single-use composed rotations. Returns the number
/// of rewrites performed.
pub fn canonicalize_rotations(program: &mut Program) -> usize {
    let Ok(order) = kahn_order(program) else {
        return 0;
    };
    let size = program.vec_size() as i64;
    let mut rewrites = 0usize;

    // Pass 1: canonical spelling. RotateRight(s) → RotateLeft((−s) mod size),
    // out-of-range left steps reduced mod size.
    for id in 0..program.len() {
        let NodeKind::Instruction { op, args } = &program.node(id).kind else {
            continue;
        };
        let (op, args) = (*op, args.clone());
        if let Some(step) = rotation_step(op) {
            let canonical = canonical_left_step(step, size as usize);
            if op != Opcode::RotateLeft(canonical as i32) {
                program.replace_instruction(id, Opcode::RotateLeft(canonical as i32), args);
                rewrites += 1;
            }
        }
    }

    // Pass 2 (topological): bypass identities, merge composed rotations.
    let uses = program.uses();
    let mut use_count: Vec<usize> = uses.iter().map(Vec::len).collect();
    for output in program.outputs() {
        use_count[output.node] += 1;
    }
    for &id in &order {
        let Some(Opcode::RotateLeft(step)) = program.opcode(id) else {
            continue;
        };
        let arg = program.args(id)[0];
        if step == 0 {
            // Identity: point every user and output at the argument. The
            // node itself goes dead and DCE sweeps it.
            for &user in &uses[id] {
                // No-op if an earlier rewrite already retargeted this user.
                if program.args(user).contains(&id) {
                    program.replace_arg(user, id, arg);
                    use_count[arg] += 1;
                }
            }
            let redirected = program
                .outputs()
                .iter()
                .filter(|output| output.node == id)
                .count();
            program.redirect_outputs(id, arg);
            use_count[arg] += redirected;
            use_count[id] = 0;
            rewrites += 1;
            continue;
        }
        // Compose-merge: if the argument is itself a rotation consumed only
        // here (and not an output), fold its step into ours. The argument's
        // opcode is already canonical because parents precede children in
        // the topological order.
        if let Some(Opcode::RotateLeft(inner_step)) = program.opcode(arg) {
            if use_count[arg] == 1 {
                let merged =
                    canonical_left_step((step as i64) + (inner_step as i64), size as usize);
                let inner_arg = program.args(arg)[0];
                program.replace_instruction(id, Opcode::RotateLeft(merged as i32), vec![inner_arg]);
                use_count[arg] -= 1;
                use_count[inner_arg] += 1;
                rewrites += 1;
            }
        }
    }
    rewrites
}

/// Re-parents same-source rotations into differential chains of depth at
/// most `max_depth`, if and only if doing so strictly shrinks the program's
/// global distinct-rotation-step set. Returns the number of rotations
/// re-parented.
///
/// Expects canonical form (run [`canonicalize_rotations`] first); rotations
/// not in canonical form are left alone. Run CSE in between so each
/// `(source, step)` pair has a single live rotation node.
pub fn chain_rotations(program: &mut Program, max_depth: u32) -> usize {
    if max_depth < 2 {
        return 0;
    }
    if kahn_order(program).is_err() {
        return 0;
    }
    let live = program.live_mask();

    // Group live canonical cipher rotations by source node. Only groups where
    // every step has exactly one rotation node participate (guaranteed after
    // CSE; duplicated steps would need representative selection).
    let mut groups: BTreeMap<NodeId, BTreeMap<i64, NodeId>> = BTreeMap::new();
    let mut ungrouped_steps: BTreeSet<i64> = BTreeSet::new();
    let mut duplicated: BTreeSet<NodeId> = BTreeSet::new();
    for id in 0..program.len() {
        let Some(op) = program.opcode(id) else {
            continue;
        };
        let Some(step) = rotation_step(op) else {
            continue;
        };
        if step == 0 {
            continue;
        }
        let is_canonical_cipher = matches!(op, Opcode::RotateLeft(_))
            && (0..program.vec_size() as i64).contains(&step)
            && program.node(id).ty.is_cipher();
        if !live[id] || !is_canonical_cipher {
            ungrouped_steps.insert(step);
            continue;
        }
        let source = program.args(id)[0];
        if groups.entry(source).or_default().insert(step, id).is_some() {
            duplicated.insert(source);
        }
    }
    for source in duplicated {
        if let Some(group) = groups.remove(&source) {
            ungrouped_steps.extend(group.keys());
        }
    }

    let current_steps: BTreeSet<i64> = {
        let mut s = ungrouped_steps.clone();
        for group in groups.values() {
            s.extend(group.keys());
        }
        s
    };

    // Steps a group contributes once chained: chunk heads keep their full
    // step, successors contribute the delta to their predecessor.
    let chained_steps = |steps: &[i64]| -> Vec<i64> {
        let mut out = Vec::new();
        for chunk in steps.chunks(max_depth as usize) {
            out.push(chunk[0]);
            for pair in chunk.windows(2) {
                out.push(pair[1] - pair[0]);
            }
        }
        out
    };

    let mut prospective: BTreeSet<i64> = ungrouped_steps.clone();
    for group in groups.values() {
        let steps: Vec<i64> = group.keys().copied().collect();
        prospective.extend(chained_steps(&steps));
    }
    if prospective.len() >= current_steps.len() {
        return 0;
    }

    let mut reparented = 0usize;
    for group in groups.values() {
        let entries: Vec<(i64, NodeId)> = group.iter().map(|(&s, &n)| (s, n)).collect();
        for chunk in entries.chunks(max_depth as usize) {
            for pair in chunk.windows(2) {
                let (prev_step, prev_node) = pair[0];
                let (step, node) = pair[1];
                let delta = step - prev_step;
                program.replace_instruction(
                    node,
                    Opcode::RotateLeft(delta as i32),
                    vec![prev_node],
                );
                reparented += 1;
            }
        }
    }
    reparented
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rotations::select_rotation_steps;

    #[test]
    fn canonicalizes_right_rotations_and_identities() {
        let mut p = Program::new("canon", 16);
        let x = p.input_cipher("x", 30);
        let r = p.instruction(Opcode::RotateRight(4), &[x]);
        let ident = p.instruction(Opcode::RotateLeft(0), &[x]);
        let s = p.instruction(Opcode::Add, &[r, ident]);
        p.output("out", s, 30);
        let rewrites = canonicalize_rotations(&mut p);
        assert!(rewrites >= 2, "{rewrites}");
        assert_eq!(p.opcode(r), Some(Opcode::RotateLeft(12)));
        assert_eq!(p.args(s), &[r, x], "identity bypassed");
        assert_eq!(select_rotation_steps(&p), vec![12]);
    }

    #[test]
    fn merges_single_use_composed_rotations() {
        let mut p = Program::new("compose", 16);
        let x = p.input_cipher("x", 30);
        let inner = p.instruction(Opcode::RotateLeft(3), &[x]);
        let outer = p.instruction(Opcode::RotateLeft(5), &[inner]);
        p.output("out", outer, 30);
        canonicalize_rotations(&mut p);
        assert_eq!(p.opcode(outer), Some(Opcode::RotateLeft(8)));
        assert_eq!(p.args(outer), &[x]);
        assert!(!p.live_mask()[inner]);
    }

    #[test]
    fn does_not_merge_shared_inner_rotations() {
        let mut p = Program::new("shared", 16);
        let x = p.input_cipher("x", 30);
        let inner = p.instruction(Opcode::RotateLeft(3), &[x]);
        let outer = p.instruction(Opcode::RotateLeft(5), &[inner]);
        let s = p.instruction(Opcode::Add, &[outer, inner]);
        p.output("out", s, 30);
        canonicalize_rotations(&mut p);
        assert_eq!(p.opcode(outer), Some(Opcode::RotateLeft(5)));
        assert_eq!(p.args(outer), &[inner], "shared inner stays");
    }

    #[test]
    fn chains_collapse_a_rotation_ladder() {
        // Sobel-shaped step set: 8 distinct steps from one source.
        let mut p = Program::new("ladder", 256);
        let x = p.input_cipher("x", 30);
        let mut acc = None;
        for step in [1, 2, 16, 17, 18, 32, 33, 34] {
            let r = p.instruction(Opcode::RotateLeft(step), &[x]);
            acc = Some(match acc {
                None => r,
                Some(prev) => p.instruction(Opcode::Add, &[prev, r]),
            });
        }
        p.output("out", acc.unwrap(), 30);
        assert_eq!(select_rotation_steps(&p).len(), 8);
        let before_rotations = p
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NodeKind::Instruction {
                        op: Opcode::RotateLeft(_),
                        ..
                    }
                )
            })
            .count();
        let reparented = chain_rotations(&mut p, 4);
        assert!(reparented > 0);
        // Chunks [1,2,16,17] and [18,32,33,34] → heads {1,18} plus deltas
        // {1,14,1} → distinct {1,14,18}.
        assert_eq!(select_rotation_steps(&p), vec![1, 14, 18]);
        let after_rotations = p
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    NodeKind::Instruction {
                        op: Opcode::RotateLeft(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(
            before_rotations, after_rotations,
            "key-switch count unchanged"
        );
    }

    #[test]
    fn chaining_refuses_rewrites_that_do_not_shrink_the_step_set() {
        let mut p = Program::new("nochain", 16);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateLeft(2), &[x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", s, 30);
        // Chained contribution: head 1 + delta 1 → {1, 2} → {1} is smaller!
        // Steps {1,2} chain to {1}: accepted.
        assert!(chain_rotations(&mut p, 4) > 0);
        assert_eq!(select_rotation_steps(&p), vec![1]);

        let mut q = Program::new("nochain2", 16);
        let x = q.input_cipher("x", 30);
        let a = q.instruction(Opcode::RotateLeft(1), &[x]);
        let b = q.instruction(Opcode::RotateLeft(5), &[x]);
        let s = q.instruction(Opcode::Add, &[a, b]);
        q.output("out", s, 30);
        // Chained contribution {1, 4} is no smaller than {1, 5}: refused.
        assert_eq!(chain_rotations(&mut q, 4), 0);
        assert_eq!(select_rotation_steps(&q), vec![1, 5]);
    }

    #[test]
    fn chaining_preserves_reference_semantics() {
        // rotate(rotate(x, 1), 1) must equal rotate(x, 2) on decoded values.
        let mut p = Program::new("sem", 8);
        let x = p.input_cipher("x", 30);
        let a = p.instruction(Opcode::RotateLeft(1), &[x]);
        let b = p.instruction(Opcode::RotateLeft(2), &[x]);
        let s = p.instruction(Opcode::Add, &[a, b]);
        p.output("out", s, 30);
        chain_rotations(&mut p, 4);
        // b is now rotate(a, 1).
        assert_eq!(p.opcode(b), Some(Opcode::RotateLeft(1)));
        assert_eq!(p.args(b), &[a]);
        let v: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let rot = |v: &[f64], k: i64| -> Vec<f64> {
            (0..v.len())
                .map(|i| v[(i as i64 + k).rem_euclid(v.len() as i64) as usize])
                .collect()
        };
        assert_eq!(rot(&rot(&v, 1), 1), rot(&v, 2));
    }
}
