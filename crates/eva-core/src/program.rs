//! The EVA program representation: a directed acyclic graph of typed nodes
//! (paper Section 3), together with the traversal helpers the compiler's
//! analysis and rewriting frameworks are built on (Sections 5.1 and 6.1).

use serde::{Deserialize, Serialize};

use crate::error::EvaError;
use crate::types::{ConstantValue, Opcode, ValueType};

/// Identifier of a node inside a [`Program`].
pub type NodeId = usize;

/// What a node represents: a runtime input, a compile-time constant, or an
/// instruction computing a new value from its parents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A value only available at run time.
    Input {
        /// Name used to bind the value at execution time.
        name: String,
    },
    /// A value available at compile time (any type except `Cipher`).
    Constant {
        /// The constant payload.
        value: ConstantValue,
    },
    /// An instruction node computing a value from its parameters.
    Instruction {
        /// The operation performed at this node.
        op: Opcode,
        /// Parameter nodes, in argument order (the paper's `n.parms`).
        args: Vec<NodeId>,
    },
}

/// One node of the program graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// The EVA type of the value produced at this node.
    pub ty: ValueType,
    /// `log2` of the node's fixed-point scale, tracked exactly as an `f64`.
    ///
    /// For inputs and constants this starts as the programmer-provided
    /// annotation (an integral number of bits); for instructions it is filled
    /// in by scale analysis and is `0` until then. After parameter selection
    /// the second (exact) scale pass re-annotates every cipher node with the
    /// scale the executor will actually observe — a non-integral value once a
    /// RESCALE has divided by a real prime `q ≈ 2^s` (see
    /// [`crate::analysis::scale`] for the two-phase pipeline).
    pub scale_log2: f64,
}

/// A named program output (a leaf of the graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputInfo {
    /// Output name.
    pub name: String,
    /// Node whose value is returned.
    pub node: NodeId,
    /// Desired fixed-point scale of the output (`log2`, integral annotation).
    pub scale_log2: f64,
}

/// An EVA program: the tuple `(M, Insts, Consts, Inputs, Outputs)` of the
/// paper, represented as one node table plus an output list.
///
/// Nodes are stored in creation order and arguments always refer to
/// previously created nodes, so the node id order is a topological order of
/// the DAG. Compiler passes that insert nodes keep this invariant by visiting
/// an explicit topological ordering instead of raw ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    vec_size: usize,
    nodes: Vec<Node>,
    outputs: Vec<OutputInfo>,
}

impl Program {
    /// Creates an empty program operating on vectors of `vec_size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `vec_size` is not a power of two (paper Section 3 requires
    /// power-of-two vector sizes so rotation semantics are well defined).
    pub fn new(name: impl Into<String>, vec_size: usize) -> Self {
        assert!(
            vec_size >= 1 && vec_size.is_power_of_two(),
            "vector size {vec_size} must be a power of two"
        );
        Self {
            name: name.into(),
            vec_size,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fixed vector length of all `Cipher`/`Vector` values in the program.
    pub fn vec_size(&self) -> usize {
        self.vec_size
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the program has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A single node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[OutputInfo] {
        &self.outputs
    }

    /// Adds a `Cipher` input with the given fixed-point scale (in bits).
    pub fn input_cipher(&mut self, name: impl Into<String>, scale_bits: u32) -> NodeId {
        self.push_input(name, ValueType::Cipher, f64::from(scale_bits))
    }

    /// Adds a plaintext `Vector` input with the given scale.
    pub fn input_vector(&mut self, name: impl Into<String>, scale_bits: u32) -> NodeId {
        self.push_input(name, ValueType::Vector, f64::from(scale_bits))
    }

    /// Adds a plaintext `Scalar` input with the given scale.
    pub fn input_scalar(&mut self, name: impl Into<String>, scale_bits: u32) -> NodeId {
        self.push_input(name, ValueType::Scalar, f64::from(scale_bits))
    }

    /// Adds an input of the given type with an explicit `log2` scale.
    /// Used by deserialization, which must round-trip exact (non-integral)
    /// scales of already-compiled programs.
    pub(crate) fn push_input(
        &mut self,
        name: impl Into<String>,
        ty: ValueType,
        scale_log2: f64,
    ) -> NodeId {
        self.push(Node {
            kind: NodeKind::Input { name: name.into() },
            ty,
            scale_log2,
        })
    }

    /// Adds a compile-time constant with the given scale.
    ///
    /// # Panics
    ///
    /// Panics if a `Vector` constant is longer than the program vector size.
    pub fn constant(&mut self, value: ConstantValue, scale_bits: u32) -> NodeId {
        if let ConstantValue::Vector(v) = &value {
            assert!(
                v.len() <= self.vec_size,
                "constant vector of length {} exceeds program vector size {}",
                v.len(),
                self.vec_size
            );
        }
        self.push_constant(value, f64::from(scale_bits))
    }

    /// Adds an instruction node.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the opcode arity or an
    /// argument id is out of range.
    pub fn instruction(&mut self, op: Opcode, args: &[NodeId]) -> NodeId {
        assert_eq!(
            args.len(),
            op.arity(),
            "opcode {op} expects {} arguments, got {}",
            op.arity(),
            args.len()
        );
        for &arg in args {
            assert!(arg < self.nodes.len(), "argument {arg} is not a valid node");
        }
        let ty = if args.iter().any(|&a| self.nodes[a].ty.is_cipher()) {
            ValueType::Cipher
        } else {
            ValueType::Vector
        };
        self.push(Node {
            kind: NodeKind::Instruction {
                op,
                args: args.to_vec(),
            },
            ty,
            scale_log2: 0.0,
        })
    }

    /// Marks `node` as a program output with the given name and desired scale.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId, scale_bits: u32) {
        self.push_output(name, node, f64::from(scale_bits));
    }

    /// Marks `node` as a program output with an explicit `log2` scale
    /// (deserialization round-trips exact scales through this).
    pub(crate) fn push_output(&mut self, name: impl Into<String>, node: NodeId, scale_log2: f64) {
        assert!(node < self.nodes.len(), "output node {node} does not exist");
        self.outputs.push(OutputInfo {
            name: name.into(),
            node,
            scale_log2,
        });
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(node);
        id
    }

    /// The argument list of a node (empty for inputs and constants).
    pub fn args(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id].kind {
            NodeKind::Instruction { args, .. } => args,
            _ => &[],
        }
    }

    /// The opcode of a node, if it is an instruction.
    pub fn opcode(&self, id: NodeId) -> Option<Opcode> {
        match &self.nodes[id].kind {
            NodeKind::Instruction { op, .. } => Some(*op),
            _ => None,
        }
    }

    /// Whether the node is a root (no parents) of `Cipher` type — the paper's
    /// Definition 1.
    pub fn is_cipher_root(&self, id: NodeId) -> bool {
        self.args(id).is_empty() && self.nodes[id].ty.is_cipher()
    }

    /// Computes, for every node, the list of nodes that use it as an argument
    /// (its children in the graph sense).
    pub fn uses(&self) -> Vec<Vec<NodeId>> {
        let mut uses: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Instruction { args, .. } = &node.kind {
                for &arg in args {
                    // A node that uses the same argument twice (x * x) is listed once.
                    if uses[arg].last() != Some(&id) {
                        uses[arg].push(id);
                    }
                }
            }
        }
        uses
    }

    /// A topological ordering of all nodes (parents before children).
    ///
    /// Node ids are already topologically ordered for programs built through
    /// this API, but compiler passes append nodes out of order, so an explicit
    /// ordering is computed from the edges.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut in_degree: Vec<usize> = self
            .nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Instruction { args, .. } => {
                    // Count distinct parents so it matches the deduplicated use lists.
                    let mut distinct: Vec<NodeId> = args.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    distinct.len()
                }
                _ => 0,
            })
            .collect();
        let uses = self.uses();
        let mut queue: std::collections::VecDeque<NodeId> = (0..self.nodes.len())
            .filter(|&id| in_degree[id] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &user in &uses[id] {
                in_degree[user] -= 1;
                if in_degree[user] == 0 {
                    queue.push_back(user);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "program graph has a cycle");
        order
    }

    /// Returns, for every node, whether it can reach a program output (is
    /// *live*). Dead nodes are never executed and are skipped by the
    /// exact-scale phase: parameter selection budgets the prime chain from
    /// the outputs, so a dead branch may consume more rescales than the
    /// chain provides without affecting any observable value.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for output in &self.outputs {
            if !live[output.node] {
                live[output.node] = true;
                stack.push(output.node);
            }
        }
        while let Some(id) = stack.pop() {
            for &arg in self.args(id) {
                if !live[arg] {
                    live[arg] = true;
                    stack.push(arg);
                }
            }
        }
        live
    }

    /// Multiplicative depth of the program: the maximum number of MULTIPLY
    /// nodes on any root-to-output path (paper Section 2.2).
    pub fn multiplicative_depth(&self) -> usize {
        let order = self.topological_order();
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max_depth = 0;
        for id in order {
            let is_multiply = matches!(self.opcode(id), Some(Opcode::Multiply));
            let parent_max = self.args(id).iter().map(|&a| depth[a]).max().unwrap_or(0);
            depth[id] = parent_max + usize::from(is_multiply);
            max_depth = max_depth.max(depth[id]);
        }
        max_depth
    }

    /// Checks that the program is a well-formed *input* program: every
    /// instruction uses only frontend-permitted opcodes, arguments exist, and
    /// every output refers to an existing node.
    ///
    /// # Errors
    ///
    /// Returns [`EvaError::InvalidProgram`] describing the first violation.
    pub fn validate_as_input(&self) -> Result<(), EvaError> {
        if self.outputs.is_empty() {
            return Err(EvaError::InvalidProgram(
                "program declares no outputs".into(),
            ));
        }
        for (id, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Constant { value } => {
                    if node.ty.is_cipher() {
                        return Err(EvaError::InvalidProgram(format!(
                            "constant node {id} cannot have Cipher type"
                        )));
                    }
                    if let ConstantValue::Vector(v) = value {
                        if v.len() > self.vec_size {
                            return Err(EvaError::InvalidProgram(format!(
                                "constant node {id} is longer than the program vector size"
                            )));
                        }
                    }
                }
                NodeKind::Instruction { op, args } => {
                    if !op.allowed_in_input() {
                        return Err(EvaError::InvalidProgram(format!(
                            "instruction node {id} uses compiler-only opcode {op}"
                        )));
                    }
                    if args.len() != op.arity() {
                        return Err(EvaError::InvalidProgram(format!(
                            "instruction node {id} has {} arguments, {op} expects {}",
                            args.len(),
                            op.arity()
                        )));
                    }
                    for &arg in args {
                        if arg >= self.nodes.len() {
                            return Err(EvaError::InvalidProgram(format!(
                                "instruction node {id} references missing node {arg}"
                            )));
                        }
                    }
                }
                NodeKind::Input { .. } => {}
            }
        }
        for output in &self.outputs {
            if output.node >= self.nodes.len() {
                return Err(EvaError::InvalidProgram(format!(
                    "output {} references missing node {}",
                    output.name, output.node
                )));
            }
        }
        Ok(())
    }

    /// Renders the program graph in Graphviz DOT syntax (mirroring PyEVA's
    /// `to_DOT`), one box per node labelled with its id, operation, type and
    /// `log2` scale, plus double-octagon sinks for the named outputs.
    ///
    /// Pipe the result through `dot -Tsvg` to visualise what the compiler
    /// passes did to a program. For a dump annotated with levels and noise
    /// budgets, see
    /// [`CompiledProgram::to_dot`](crate::CompiledProgram::to_dot).
    ///
    /// ```
    /// use eva_core::{Opcode, Program};
    ///
    /// let mut p = Program::new("square", 8);
    /// let x = p.input_cipher("x", 30);
    /// let sq = p.instruction(Opcode::Multiply, &[x, x]);
    /// p.output("out", sq, 30);
    /// let dot = p.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("multiply"));
    /// ```
    pub fn to_dot(&self) -> String {
        self.to_dot_with(|_| String::new())
    }

    /// [`Program::to_dot`] with a caller-supplied annotation appended to each
    /// node's label (the string is inserted verbatim into the DOT label, so
    /// use `\n` as `\\n`). The compiler uses this to attach levels and noise
    /// budgets to the dump.
    pub fn to_dot_with(&self, annotate: impl Fn(NodeId) -> String) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut dot = String::new();
        dot.push_str(&format!("digraph \"{}\" {{\n", escape(&self.name)));
        dot.push_str("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
        for (id, node) in self.nodes.iter().enumerate() {
            let (head, shape) = match &node.kind {
                NodeKind::Input { name } => (format!("input \\\"{}\\\"", escape(name)), "house"),
                NodeKind::Constant { .. } => ("const".to_string(), "ellipse"),
                NodeKind::Instruction { op, .. } => (op.to_string(), "box"),
            };
            dot.push_str(&format!(
                "  n{id} [shape={shape}, label=\"%{id} {head}\\n{:?} @2^{}{}\"];\n",
                node.ty,
                node.scale_log2,
                annotate(id)
            ));
        }
        for (id, node) in self.nodes.iter().enumerate() {
            if let NodeKind::Instruction { args, .. } = &node.kind {
                for &arg in args {
                    dot.push_str(&format!("  n{arg} -> n{id};\n"));
                }
            }
        }
        for (i, output) in self.outputs.iter().enumerate() {
            dot.push_str(&format!(
                "  out{i} [shape=doubleoctagon, label=\"{} @2^{}\"];\n  n{} -> out{i};\n",
                escape(&output.name),
                output.scale_log2,
                output.node
            ));
        }
        dot.push_str("}\n");
        dot
    }

    /// Counts nodes per opcode, used by reports and tests.
    pub fn opcode_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut histogram = std::collections::BTreeMap::new();
        for node in &self.nodes {
            if let NodeKind::Instruction { op, .. } = &node.kind {
                *histogram.entry(op.mnemonic()).or_insert(0) += 1;
            }
        }
        histogram
    }

    // ----- graph surgery -------------------------------------------------
    //
    // Unchecked mutators used by the compiler's rewriting framework. They are
    // public because tests and mutation corpora deliberately use them to
    // construct *invalid* programs — nothing here maintains the invariants the
    // [`crate::analysis::verifier`] checks, and a program mutated through
    // these must be re-verified before execution.

    /// Appends a new instruction node without arity or type checking (the
    /// rewriting framework constructs maintenance instructions; mutation
    /// corpora construct deliberately broken ones). The new node's scale
    /// annotation starts at `2^0`.
    pub fn push_instruction(&mut self, op: Opcode, args: Vec<NodeId>, ty: ValueType) -> NodeId {
        self.push(Node {
            kind: NodeKind::Instruction { op, args },
            ty,
            scale_log2: 0.0,
        })
    }

    /// Appends a new constant node with an explicit `log2` scale (the exact
    /// match-scale pass inserts constants with tiny non-integral scales).
    pub(crate) fn push_constant(&mut self, value: ConstantValue, scale_log2: f64) -> NodeId {
        let ty = value.value_type();
        self.push(Node {
            kind: NodeKind::Constant { value },
            ty,
            scale_log2,
        })
    }

    /// Appends an already-built node verbatim, preserving its exact scale
    /// annotation. Dead-code elimination rebuilds programs through this so
    /// exact (non-integral) scales stamped by the compiler survive the copy.
    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        self.push(node)
    }

    /// Rewrites the opcode and argument list of an existing instruction node
    /// in place, without re-checking any invariant. Rotation-set minimization
    /// uses this to re-parent rotations onto each other; the per-pass
    /// verifier run in `compile()` guards the result.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an instruction.
    pub(crate) fn replace_instruction(&mut self, node: NodeId, op: Opcode, args: Vec<NodeId>) {
        match &mut self.nodes[node].kind {
            NodeKind::Instruction {
                op: slot_op,
                args: slot_args,
            } => {
                *slot_op = op;
                *slot_args = args;
            }
            other => panic!("node %{node} is not an instruction: {other:?}"),
        }
    }

    /// Replaces occurrences of `old_arg` with `new_arg` in the argument list of
    /// `node`, without re-checking any invariant.
    pub fn replace_arg(&mut self, node: NodeId, old_arg: NodeId, new_arg: NodeId) {
        if let NodeKind::Instruction { args, .. } = &mut self.nodes[node].kind {
            for arg in args.iter_mut() {
                if *arg == old_arg {
                    *arg = new_arg;
                }
            }
        }
    }

    /// Replaces only the `index`-th argument of `node`, without re-checking
    /// any scale, chain or type invariant.
    pub fn replace_arg_at(&mut self, node: NodeId, index: usize, new_arg: NodeId) {
        if let NodeKind::Instruction { args, .. } = &mut self.nodes[node].kind {
            args[index] = new_arg;
        }
    }

    /// Sets the analysed `log2` scale of a node (normally stamped by the
    /// exact-scale pass; overriding it desynchronizes the annotation from the
    /// evaluator's arithmetic, which the `exact-scales` check detects).
    pub fn set_scale_log2(&mut self, node: NodeId, scale_log2: f64) {
        self.nodes[node].scale_log2 = scale_log2;
    }

    /// Redirects every output that refers to `from` so it refers to `to`.
    /// Used when a maintenance instruction is inserted after an output node
    /// (the paper models outputs as leaf children, which get repointed too).
    pub fn redirect_outputs(&mut self, from: NodeId, to: NodeId) {
        for output in &mut self.outputs {
            if output.node == from {
                output.node = to;
            }
        }
    }
}

impl std::fmt::Display for Program {
    /// A readable textual dump of the program, one node per line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "program {} (vec_size = {})", self.name, self.vec_size)?;
        for (id, node) in self.nodes.iter().enumerate() {
            match &node.kind {
                NodeKind::Input { name } => writeln!(
                    f,
                    "  %{id} = input {name:?} : {} @2^{}",
                    node.ty, node.scale_log2
                )?,
                NodeKind::Constant { value } => {
                    let summary = match value {
                        ConstantValue::Vector(v) => format!("vector[{}]", v.len()),
                        ConstantValue::Scalar(s) => format!("scalar {s}"),
                        ConstantValue::Integer(i) => format!("integer {i}"),
                    };
                    writeln!(
                        f,
                        "  %{id} = const {summary} : {} @2^{}",
                        node.ty, node.scale_log2
                    )?
                }
                NodeKind::Instruction { op, args } => {
                    let args: Vec<String> = args.iter().map(|a| format!("%{a}")).collect();
                    writeln!(
                        f,
                        "  %{id} = {op} {} : {} @2^{}",
                        args.join(", "),
                        node.ty,
                        node.scale_log2
                    )?
                }
            }
        }
        for output in &self.outputs {
            writeln!(
                f,
                "  output {:?} = %{} @2^{}",
                output.name, output.node, output.scale_log2
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x2_plus_x() -> Program {
        let mut p = Program::new("x2_plus_x", 8);
        let x = p.input_cipher("x", 30);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x2, x]);
        p.output("out", sum, 30);
        p
    }

    #[test]
    fn build_and_inspect_simple_program() {
        let p = x2_plus_x();
        assert_eq!(p.len(), 3);
        assert_eq!(p.vec_size(), 8);
        assert_eq!(p.outputs().len(), 1);
        assert_eq!(p.opcode(1), Some(Opcode::Multiply));
        assert_eq!(p.args(2), &[1, 0]);
        assert!(p.is_cipher_root(0));
        assert!(!p.is_cipher_root(1));
        assert_eq!(p.multiplicative_depth(), 1);
        assert!(p.validate_as_input().is_ok());
    }

    #[test]
    fn instruction_type_propagates_cipher() {
        let mut p = Program::new("types", 4);
        let c = p.input_cipher("c", 30);
        let v = p.input_vector("v", 20);
        let prod = p.instruction(Opcode::Multiply, &[c, v]);
        let plain = p.instruction(Opcode::Add, &[v, v]);
        assert_eq!(p.node(prod).ty, ValueType::Cipher);
        assert_eq!(p.node(plain).ty, ValueType::Vector);
    }

    #[test]
    fn uses_and_topological_order() {
        let p = x2_plus_x();
        let uses = p.uses();
        assert_eq!(uses[0], vec![1, 2]); // x used by the multiply and the add
        assert_eq!(uses[1], vec![2]);
        let order = p.topological_order();
        assert_eq!(order.len(), 3);
        let pos = |id: NodeId| order.iter().position(|&n| n == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn multiplicative_depth_of_power_chain() {
        let mut p = Program::new("x8", 4);
        let x = p.input_cipher("x", 30);
        let mut acc = x;
        for _ in 0..3 {
            acc = p.instruction(Opcode::Multiply, &[acc, acc]);
        }
        p.output("out", acc, 30);
        assert_eq!(p.multiplicative_depth(), 3);
    }

    #[test]
    fn input_validation_rejects_compiler_opcodes() {
        let mut p = Program::new("bad", 4);
        let x = p.input_cipher("x", 30);
        let r = p.push_instruction(Opcode::Rescale(60), vec![x], ValueType::Cipher);
        p.output("out", r, 30);
        let err = p.validate_as_input().unwrap_err();
        assert!(err.to_string().contains("compiler-only"));
    }

    #[test]
    fn input_validation_requires_outputs() {
        let mut p = Program::new("no_outputs", 4);
        p.input_cipher("x", 30);
        assert!(p.validate_as_input().is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn vector_size_must_be_power_of_two() {
        Program::new("bad", 6);
    }

    #[test]
    fn display_contains_each_node() {
        let p = x2_plus_x();
        let text = p.to_string();
        assert!(text.contains("input \"x\""));
        assert!(text.contains("multiply"));
        assert!(text.contains("output \"out\""));
    }

    #[test]
    fn histogram_counts_ops() {
        let p = x2_plus_x();
        let h = p.opcode_histogram();
        assert_eq!(h.get("multiply"), Some(&1));
        assert_eq!(h.get("add"), Some(&1));
    }
}
