//! Serialization of EVA programs and compiled artifacts.
//!
//! The paper defines a Protocol Buffers schema (Figure 1) as the wire format
//! of the EVA language. This reproduction uses a self-contained binary format
//! with the same information content, built on the framing layer shared with
//! the runtime codecs (`eva-wire`): every object is a [`WireObject`] — a
//! 4-byte magic, a `u32` version and a length-prefixed body — so program
//! files, parameter specs and ciphertexts all follow one set of framing
//! rules and return one error type on malformed input.
//!
//! Three object families live here (the types are local to this crate):
//!
//! | object | magic | version |
//! |---|---|---|
//! | [`Program`] | `EVAP` | 3 |
//! | [`ParameterSpec`] | `EVAS` | 1 |
//! | [`CompiledProgram`] (the `.evaprog` bundle) | `EVAB` | 2 |
//!
//! Version history of `EVAP`: v2 switched scales to exact `f64` log2 values;
//! v3 adopted the shared length-prefixed envelope. `EVAB` v2 extended the
//! statistics block from 6 to 10 `u64` counts (optimizer pass counters).

use crate::analysis::ParameterSpec;
use crate::compiler::{CompilationStats, CompiledProgram};
use crate::error::EvaError;
use crate::program::{NodeKind, Program};
use crate::types::{ConstantValue, Opcode, ValueType};
use eva_wire::{Reader, WireError, WireObject, Writer};

impl From<WireError> for EvaError {
    fn from(err: WireError) -> Self {
        EvaError::Serialization(err.to_string())
    }
}

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Cipher => 0,
        ValueType::Vector => 1,
        ValueType::Scalar => 2,
        ValueType::Integer => 3,
    }
}

fn type_from_tag(tag: u8) -> Result<ValueType, WireError> {
    Ok(match tag {
        0 => ValueType::Cipher,
        1 => ValueType::Vector,
        2 => ValueType::Scalar,
        3 => ValueType::Integer,
        other => {
            return Err(WireError::Invalid(format!(
                "unknown value type tag {other}"
            )))
        }
    })
}

fn opcode_tag(op: Opcode) -> (u8, i64) {
    match op {
        Opcode::Negate => (1, 0),
        Opcode::Add => (2, 0),
        Opcode::Sub => (3, 0),
        Opcode::Multiply => (4, 0),
        Opcode::RotateLeft(s) => (7, s as i64),
        Opcode::RotateRight(s) => (8, s as i64),
        Opcode::Relinearize => (9, 0),
        Opcode::ModSwitch => (10, 0),
        Opcode::Rescale(bits) => (11, bits as i64),
    }
}

fn opcode_from_tag(tag: u8, operand: i64) -> Result<Opcode, WireError> {
    Ok(match tag {
        1 => Opcode::Negate,
        2 => Opcode::Add,
        3 => Opcode::Sub,
        4 => Opcode::Multiply,
        7 => Opcode::RotateLeft(operand as i32),
        8 => Opcode::RotateRight(operand as i32),
        9 => Opcode::Relinearize,
        10 => Opcode::ModSwitch,
        11 => Opcode::Rescale(operand as u32),
        other => return Err(WireError::Invalid(format!("unknown opcode tag {other}"))),
    })
}

impl WireObject for Program {
    const MAGIC: [u8; 4] = *b"EVAP";
    const VERSION: u32 = 3;

    fn encode_body(&self, w: &mut Writer) {
        w.str(self.name());
        w.u64(self.vec_size() as u64);
        w.u64(self.len() as u64);
        for id in 0..self.len() {
            let node = self.node(id);
            w.u8(type_tag(node.ty));
            w.f64(node.scale_log2);
            match &node.kind {
                NodeKind::Input { name } => {
                    w.u8(0);
                    w.str(name);
                }
                NodeKind::Constant { value } => {
                    w.u8(1);
                    match value {
                        ConstantValue::Vector(v) => {
                            w.u8(0);
                            w.u64(v.len() as u64);
                            for &x in v {
                                w.f64(x);
                            }
                        }
                        ConstantValue::Scalar(s) => {
                            w.u8(1);
                            w.f64(*s);
                        }
                        ConstantValue::Integer(i) => {
                            w.u8(2);
                            w.i32(*i);
                        }
                    }
                }
                NodeKind::Instruction { op, args } => {
                    w.u8(2);
                    let (tag, operand) = opcode_tag(*op);
                    w.u8(tag);
                    w.i64(operand);
                    w.u32(args.len() as u32);
                    for &arg in args {
                        w.u64(arg as u64);
                    }
                }
            }
        }
        w.u64(self.outputs().len() as u64);
        for output in self.outputs() {
            w.str(&output.name);
            w.u64(output.node as u64);
            w.f64(output.scale_log2);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = r.str()?;
        let vec_size = r.u64()? as usize;
        if vec_size == 0 || !vec_size.is_power_of_two() {
            return Err(WireError::Invalid(format!(
                "vector size {vec_size} is not a power of two"
            )));
        }
        let node_count = r.u64()? as usize;
        let mut program = Program::new(name, vec_size);
        for id in 0..node_count {
            let ty = type_from_tag(r.u8()?)?;
            let scale_log2 = r.f64()?;
            if !scale_log2.is_finite() {
                return Err(WireError::Invalid(format!(
                    "node {id} has a non-finite scale"
                )));
            }
            let kind_tag = r.u8()?;
            match kind_tag {
                0 => {
                    let input_name = r.str()?;
                    let node = program.push_input(input_name, ty, scale_log2);
                    debug_assert_eq!(node, id);
                }
                1 => {
                    let const_tag = r.u8()?;
                    let value = match const_tag {
                        0 => {
                            let len = r.u64()? as usize;
                            if len.checked_mul(8).is_none_or(|b| b > r.remaining()) {
                                return Err(WireError::UnexpectedEnd);
                            }
                            let mut v = Vec::with_capacity(len);
                            for _ in 0..len {
                                v.push(r.f64()?);
                            }
                            ConstantValue::Vector(v)
                        }
                        1 => ConstantValue::Scalar(r.f64()?),
                        2 => ConstantValue::Integer(r.i32()?),
                        other => {
                            return Err(WireError::Invalid(format!("unknown constant tag {other}")))
                        }
                    };
                    if let ConstantValue::Vector(v) = &value {
                        if v.len() > vec_size {
                            return Err(WireError::Invalid(format!(
                                "constant node {id} is longer than the program vector size"
                            )));
                        }
                    }
                    let node = program.push_constant(value, scale_log2);
                    debug_assert_eq!(node, id);
                }
                2 => {
                    let op_tag = r.u8()?;
                    let operand = r.i64()?;
                    let op = opcode_from_tag(op_tag, operand)?;
                    let arg_count = r.u32()? as usize;
                    let mut args = Vec::with_capacity(arg_count.min(1 << 16));
                    for _ in 0..arg_count {
                        let arg = r.u64()? as usize;
                        // Compiler passes may leave forward references (a rewritten
                        // node can point at a maintenance node appended later), so
                        // only require the id to be within the node table.
                        if arg >= node_count {
                            return Err(WireError::Invalid(format!(
                                "instruction {id} references missing node {arg}"
                            )));
                        }
                        args.push(arg);
                    }
                    let ty_expected = ty;
                    let node = program.push_instruction(op, args, ty_expected);
                    program.set_scale_log2(node, scale_log2);
                    debug_assert_eq!(node, id);
                }
                other => return Err(WireError::Invalid(format!("unknown node kind tag {other}"))),
            }
        }
        let output_count = r.u64()? as usize;
        for _ in 0..output_count {
            let output_name = r.str()?;
            let node = r.u64()? as usize;
            let scale_log2 = r.f64()?;
            if !scale_log2.is_finite() {
                return Err(WireError::Invalid(format!(
                    "output {output_name} has a non-finite scale"
                )));
            }
            if node >= program.len() {
                return Err(WireError::Invalid(format!(
                    "output {output_name} references missing node {node}"
                )));
            }
            program.push_output(output_name, node, scale_log2);
        }
        Ok(program)
    }
}

impl WireObject for ParameterSpec {
    const MAGIC: [u8; 4] = *b"EVAS";
    const VERSION: u32 = 1;

    fn encode_body(&self, w: &mut Writer) {
        w.u64(self.degree as u64);
        w.u32(self.data_prime_bits.len() as u32);
        for &bits in &self.data_prime_bits {
            w.u32(bits);
        }
        w.u32(self.special_prime_bits);
        w.u64_slice(&self.data_primes);
        w.u64(self.special_prime);
        w.bool(self.secure);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let degree = r.u64()? as usize;
        if degree < 2 || !degree.is_power_of_two() || degree > eva_wire::MAX_WIRE_DEGREE {
            return Err(WireError::Invalid(format!(
                "ring degree {degree} out of range"
            )));
        }
        let bit_count = r.u32()? as usize;
        if bit_count == 0 || bit_count > eva_wire::MAX_WIRE_LEVEL {
            return Err(WireError::Invalid(format!(
                "data prime count {bit_count} out of range"
            )));
        }
        let mut data_prime_bits = Vec::with_capacity(bit_count);
        for _ in 0..bit_count {
            data_prime_bits.push(r.u32()?);
        }
        let special_prime_bits = r.u32()?;
        let data_primes = r.u64_slice()?;
        // Specs produced by the compiler carry the resolved primes; hand-built
        // bit-size-only specs carry an empty prime list.
        if !data_primes.is_empty() && data_primes.len() != bit_count {
            return Err(WireError::Invalid(format!(
                "{} data primes but {bit_count} bit sizes",
                data_primes.len()
            )));
        }
        let special_prime = r.u64()?;
        let secure = r.bool()?;
        Ok(ParameterSpec {
            degree,
            data_prime_bits,
            special_prime_bits,
            data_primes,
            special_prime,
            secure,
        })
    }
}

impl WireObject for CompiledProgram {
    const MAGIC: [u8; 4] = *b"EVAB";
    // v2 extended the statistics block from 6 to 11 counts (optimizer pass
    // counters: CSE merges, DCE removals, rotation canonicalizations,
    // factorings and chainings).
    const VERSION: u32 = 2;

    fn encode_body(&self, w: &mut Writer) {
        self.program.encode(w);
        self.parameters.encode(w);
        w.u32(self.rotation_steps.len() as u32);
        for &step in &self.rotation_steps {
            w.i64(step);
        }
        let stats = &self.stats;
        for count in [
            stats.rescales_inserted,
            stats.mod_switches_inserted,
            stats.scale_fixes_inserted,
            stats.relinearizations_inserted,
            stats.exact_scale_fixes_inserted,
            stats.node_count,
            stats.cse_merged,
            stats.dce_removed,
            stats.rotations_canonicalized,
            stats.rotations_factored,
            stats.rotations_chained,
        ] {
            w.u64(count as u64);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let program = Program::decode(r)?;
        let parameters = ParameterSpec::decode(r)?;
        let step_count = r.u32()? as usize;
        let mut rotation_steps = Vec::with_capacity(step_count.min(1 << 16));
        for _ in 0..step_count {
            rotation_steps.push(r.i64()?);
        }
        let mut counts = [0usize; 11];
        for slot in &mut counts {
            *slot = r.u64()? as usize;
        }
        let stats = CompilationStats {
            rescales_inserted: counts[0],
            mod_switches_inserted: counts[1],
            scale_fixes_inserted: counts[2],
            relinearizations_inserted: counts[3],
            exact_scale_fixes_inserted: counts[4],
            node_count: counts[5],
            cse_merged: counts[6],
            dce_removed: counts[7],
            rotations_canonicalized: counts[8],
            rotations_factored: counts[9],
            rotations_chained: counts[10],
        };
        Ok(CompiledProgram {
            program,
            parameters,
            rotation_steps,
            stats,
        })
    }
}

/// Serializes a program into the EVA binary format.
pub fn to_bytes(program: &Program) -> Vec<u8> {
    program.to_wire_bytes()
}

/// Deserializes a program from the EVA binary format.
///
/// # Errors
///
/// Returns [`EvaError::Serialization`] if the input is truncated, has an
/// unknown version, or contains invalid tags or node references.
pub fn from_bytes(bytes: &[u8]) -> Result<Program, EvaError> {
    Ok(Program::from_wire_bytes(bytes)?)
}

/// Serializes a compiled program — transformed graph, parameter spec,
/// rotation steps and statistics — into the `.evaprog` bundle format a
/// deployment server loads.
pub fn compiled_to_bytes(compiled: &CompiledProgram) -> Vec<u8> {
    compiled.to_wire_bytes()
}

/// Deserializes a `.evaprog` compiled-program bundle.
///
/// # Errors
///
/// Returns [`EvaError::Serialization`] on any framing or content defect.
pub fn compiled_from_bytes(bytes: &[u8]) -> Result<CompiledProgram, EvaError> {
    Ok(CompiledProgram::from_wire_bytes(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{ConstantValue, Opcode};

    fn sample_program() -> Program {
        let mut p = Program::new("sample", 16);
        let x = p.input_cipher("x", 30);
        let w = p.input_vector("weights", 20);
        let c = p.constant(ConstantValue::Vector(vec![1.0, 2.0, 3.0]), 15);
        let s = p.constant(ConstantValue::Scalar(0.5), 10);
        let prod = p.instruction(Opcode::Multiply, &[x, w]);
        let rot = p.instruction(Opcode::RotateLeft(3), &[prod]);
        let sum = p.instruction(Opcode::Add, &[rot, x]);
        let scaled = p.instruction(Opcode::Multiply, &[sum, c]);
        let shifted = p.instruction(Opcode::Sub, &[scaled, s]);
        p.output("result", shifted, 30);
        p.output("partial", rot, 25);
        p
    }

    #[test]
    fn roundtrip_preserves_program() {
        let original = sample_program();
        let bytes = to_bytes(&original);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn roundtrip_preserves_transformed_programs() {
        let mut p = sample_program();
        crate::passes::insert_waterline_rescale(&mut p, 60);
        crate::passes::insert_eager_modswitch(&mut p);
        crate::passes::insert_match_scale(&mut p);
        crate::passes::insert_relinearize(&mut p);
        let restored = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(p, restored);
    }

    #[test]
    fn roundtrip_preserves_exact_compiled_scales() {
        // A fully compiled program carries exact (non-integral) f64 scales;
        // the format must round-trip them bit for bit.
        let mut p = Program::new("exact", 8);
        let x = p.input_cipher("x", 40);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x2, x]);
        let deep = p.instruction(Opcode::Multiply, &[sum, sum]);
        p.output("out", deep, 30);
        let compiled =
            crate::compiler::compile(&p, &crate::compiler::CompilerOptions::default()).unwrap();
        assert!(
            compiled
                .program
                .nodes()
                .iter()
                .any(|n| n.scale_log2.fract() != 0.0),
            "a compiled program with rescales must carry non-integral exact scales"
        );
        let restored = from_bytes(&to_bytes(&compiled.program)).unwrap();
        assert_eq!(compiled.program, restored);
    }

    #[test]
    fn corrupted_input_is_rejected() {
        let bytes = to_bytes(&sample_program());
        assert!(matches!(
            from_bytes(&bytes[..10]),
            Err(EvaError::Serialization(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(from_bytes(&bad_magic).is_err());
        assert!(from_bytes(&[]).is_err());
        // Trailing bytes after the envelope are rejected too.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(from_bytes(&trailing).is_err());
    }

    #[test]
    fn compiled_bundle_roundtrips() {
        let compiled = crate::compiler::compile(
            &sample_program(),
            &crate::compiler::CompilerOptions::default(),
        )
        .unwrap();
        let bytes = compiled_to_bytes(&compiled);
        let restored = compiled_from_bytes(&bytes).unwrap();
        assert_eq!(compiled, restored);
        // Byte-identical re-encoding (the format has one canonical encoding).
        assert_eq!(compiled_to_bytes(&restored), bytes);
        // Truncations error out.
        assert!(compiled_from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn parameter_spec_roundtrips() {
        let compiled = crate::compiler::compile(
            &sample_program(),
            &crate::compiler::CompilerOptions::default(),
        )
        .unwrap();
        let spec = &compiled.parameters;
        let restored = ParameterSpec::from_wire_bytes(&spec.to_wire_bytes()).unwrap();
        assert_eq!(&restored, spec);
    }

    mod spec_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            // `decode ∘ encode = id` for parameter specs across random ring
            // degrees and chain lengths, with byte-identical re-encoding,
            // and truncation always surfaces as an error.
            #[test]
            fn parameter_spec_roundtrip_random(
                degree_log2 in 3u32..17,
                levels in 1usize..9,
                seed in any::<u64>(),
                secure in proptest::prelude::any::<u64>(),
            ) {
                // Synthesize a spec without running prime generation (shapes
                // are what the codec cares about).
                let mut state = seed | 1;
                let mut next = || {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    state
                };
                let data_primes: Vec<u64> = (0..levels).map(|_| next() >> 4 | 1).collect();
                let spec = ParameterSpec {
                    degree: 1usize << degree_log2,
                    data_prime_bits: (0..levels).map(|i| 20 + (i as u32 % 41)).collect(),
                    special_prime_bits: 60,
                    data_primes,
                    special_prime: next() >> 4 | 1,
                    secure: secure % 2 == 0,
                };
                let bytes = spec.to_wire_bytes();
                let restored = ParameterSpec::from_wire_bytes(&bytes).unwrap();
                prop_assert_eq!(&restored, &spec);
                prop_assert_eq!(restored.to_wire_bytes(), bytes.clone());
                for cut in [0, 4, 8, bytes.len() / 2, bytes.len() - 1] {
                    prop_assert!(ParameterSpec::from_wire_bytes(&bytes[..cut]).is_err());
                }
            }
        }
    }
}
