//! Serialization of EVA programs.
//!
//! The paper defines a Protocol Buffers schema (Figure 1) as the wire format
//! of the EVA language. This reproduction uses a self-contained binary format
//! with the same information content (program name, vector size, constants,
//! inputs, outputs and instructions with their scales), plus the textual dump
//! available through `Program`'s `Display` implementation.

use crate::error::EvaError;
use crate::program::{NodeKind, Program};
use crate::types::{ConstantValue, Opcode, ValueType};

const MAGIC: &[u8; 4] = b"EVAP";
// Version 2: scales are serialized as `f64` log2 values (exact scale
// tracking) instead of `u32` bit counts.
const VERSION: u32 = 2;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], EvaError> {
        if self.pos + n > self.buf.len() {
            return Err(EvaError::Serialization("unexpected end of input".into()));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, EvaError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, EvaError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, EvaError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, EvaError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, EvaError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, EvaError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EvaError::Serialization("invalid UTF-8 in string".into()))
    }
}

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Cipher => 0,
        ValueType::Vector => 1,
        ValueType::Scalar => 2,
        ValueType::Integer => 3,
    }
}

fn type_from_tag(tag: u8) -> Result<ValueType, EvaError> {
    Ok(match tag {
        0 => ValueType::Cipher,
        1 => ValueType::Vector,
        2 => ValueType::Scalar,
        3 => ValueType::Integer,
        other => {
            return Err(EvaError::Serialization(format!(
                "unknown value type tag {other}"
            )))
        }
    })
}

fn opcode_tag(op: Opcode) -> (u8, i64) {
    match op {
        Opcode::Negate => (1, 0),
        Opcode::Add => (2, 0),
        Opcode::Sub => (3, 0),
        Opcode::Multiply => (4, 0),
        Opcode::RotateLeft(s) => (7, s as i64),
        Opcode::RotateRight(s) => (8, s as i64),
        Opcode::Relinearize => (9, 0),
        Opcode::ModSwitch => (10, 0),
        Opcode::Rescale(bits) => (11, bits as i64),
    }
}

fn opcode_from_tag(tag: u8, operand: i64) -> Result<Opcode, EvaError> {
    Ok(match tag {
        1 => Opcode::Negate,
        2 => Opcode::Add,
        3 => Opcode::Sub,
        4 => Opcode::Multiply,
        7 => Opcode::RotateLeft(operand as i32),
        8 => Opcode::RotateRight(operand as i32),
        9 => Opcode::Relinearize,
        10 => Opcode::ModSwitch,
        11 => Opcode::Rescale(operand as u32),
        other => {
            return Err(EvaError::Serialization(format!(
                "unknown opcode tag {other}"
            )))
        }
    })
}

/// Serializes a program into the EVA binary format.
pub fn to_bytes(program: &Program) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.str(program.name());
    w.u64(program.vec_size() as u64);
    w.u64(program.len() as u64);
    for id in 0..program.len() {
        let node = program.node(id);
        w.u8(type_tag(node.ty));
        w.f64(node.scale_log2);
        match &node.kind {
            NodeKind::Input { name } => {
                w.u8(0);
                w.str(name);
            }
            NodeKind::Constant { value } => {
                w.u8(1);
                match value {
                    ConstantValue::Vector(v) => {
                        w.u8(0);
                        w.u64(v.len() as u64);
                        for &x in v {
                            w.f64(x);
                        }
                    }
                    ConstantValue::Scalar(s) => {
                        w.u8(1);
                        w.f64(*s);
                    }
                    ConstantValue::Integer(i) => {
                        w.u8(2);
                        w.i32(*i);
                    }
                }
            }
            NodeKind::Instruction { op, args } => {
                w.u8(2);
                let (tag, operand) = opcode_tag(*op);
                w.u8(tag);
                w.buf.extend_from_slice(&operand.to_le_bytes());
                w.u32(args.len() as u32);
                for &arg in args {
                    w.u64(arg as u64);
                }
            }
        }
    }
    w.u64(program.outputs().len() as u64);
    for output in program.outputs() {
        w.str(&output.name);
        w.u64(output.node as u64);
        w.f64(output.scale_log2);
    }
    w.buf
}

/// Deserializes a program from the EVA binary format.
///
/// # Errors
///
/// Returns [`EvaError::Serialization`] if the input is truncated, has an
/// unknown version, or contains invalid tags or node references.
pub fn from_bytes(bytes: &[u8]) -> Result<Program, EvaError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(EvaError::Serialization("bad magic bytes".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(EvaError::Serialization(format!(
            "unsupported format version {version}"
        )));
    }
    let name = r.str()?;
    let vec_size = r.u64()? as usize;
    if vec_size == 0 || !vec_size.is_power_of_two() {
        return Err(EvaError::Serialization(format!(
            "vector size {vec_size} is not a power of two"
        )));
    }
    let node_count = r.u64()? as usize;
    let mut program = Program::new(name, vec_size);
    for id in 0..node_count {
        let ty = type_from_tag(r.u8()?)?;
        let scale_log2 = r.f64()?;
        if !scale_log2.is_finite() {
            return Err(EvaError::Serialization(format!(
                "node {id} has a non-finite scale"
            )));
        }
        let kind_tag = r.u8()?;
        match kind_tag {
            0 => {
                let input_name = r.str()?;
                let node = program.push_input(input_name, ty, scale_log2);
                debug_assert_eq!(node, id);
            }
            1 => {
                let const_tag = r.u8()?;
                let value = match const_tag {
                    0 => {
                        let len = r.u64()? as usize;
                        let mut v = Vec::with_capacity(len);
                        for _ in 0..len {
                            v.push(r.f64()?);
                        }
                        ConstantValue::Vector(v)
                    }
                    1 => ConstantValue::Scalar(r.f64()?),
                    2 => ConstantValue::Integer(r.i32()?),
                    other => {
                        return Err(EvaError::Serialization(format!(
                            "unknown constant tag {other}"
                        )))
                    }
                };
                if let ConstantValue::Vector(v) = &value {
                    if v.len() > vec_size {
                        return Err(EvaError::Serialization(format!(
                            "constant node {id} is longer than the program vector size"
                        )));
                    }
                }
                let node = program.push_constant(value, scale_log2);
                debug_assert_eq!(node, id);
            }
            2 => {
                let op_tag = r.u8()?;
                let operand = i64::from_le_bytes(r.take(8)?.try_into().unwrap());
                let op = opcode_from_tag(op_tag, operand)?;
                let arg_count = r.u32()? as usize;
                let mut args = Vec::with_capacity(arg_count);
                for _ in 0..arg_count {
                    let arg = r.u64()? as usize;
                    // Compiler passes may leave forward references (a rewritten
                    // node can point at a maintenance node appended later), so
                    // only require the id to be within the node table.
                    if arg >= node_count {
                        return Err(EvaError::Serialization(format!(
                            "instruction {id} references missing node {arg}"
                        )));
                    }
                    args.push(arg);
                }
                let ty_expected = ty;
                let node = program.push_instruction(op, args, ty_expected);
                program.set_scale_log2(node, scale_log2);
                debug_assert_eq!(node, id);
            }
            other => {
                return Err(EvaError::Serialization(format!(
                    "unknown node kind tag {other}"
                )))
            }
        }
    }
    let output_count = r.u64()? as usize;
    for _ in 0..output_count {
        let output_name = r.str()?;
        let node = r.u64()? as usize;
        let scale_log2 = r.f64()?;
        if !scale_log2.is_finite() {
            return Err(EvaError::Serialization(format!(
                "output {output_name} has a non-finite scale"
            )));
        }
        if node >= program.len() {
            return Err(EvaError::Serialization(format!(
                "output {output_name} references missing node {node}"
            )));
        }
        program.push_output(output_name, node, scale_log2);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{ConstantValue, Opcode};

    fn sample_program() -> Program {
        let mut p = Program::new("sample", 16);
        let x = p.input_cipher("x", 30);
        let w = p.input_vector("weights", 20);
        let c = p.constant(ConstantValue::Vector(vec![1.0, 2.0, 3.0]), 15);
        let s = p.constant(ConstantValue::Scalar(0.5), 10);
        let prod = p.instruction(Opcode::Multiply, &[x, w]);
        let rot = p.instruction(Opcode::RotateLeft(3), &[prod]);
        let sum = p.instruction(Opcode::Add, &[rot, x]);
        let scaled = p.instruction(Opcode::Multiply, &[sum, c]);
        let shifted = p.instruction(Opcode::Sub, &[scaled, s]);
        p.output("result", shifted, 30);
        p.output("partial", rot, 25);
        p
    }

    #[test]
    fn roundtrip_preserves_program() {
        let original = sample_program();
        let bytes = to_bytes(&original);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn roundtrip_preserves_transformed_programs() {
        let mut p = sample_program();
        crate::passes::insert_waterline_rescale(&mut p, 60);
        crate::passes::insert_eager_modswitch(&mut p);
        crate::passes::insert_match_scale(&mut p);
        crate::passes::insert_relinearize(&mut p);
        let restored = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(p, restored);
    }

    #[test]
    fn roundtrip_preserves_exact_compiled_scales() {
        // A fully compiled program carries exact (non-integral) f64 scales;
        // the v2 format must round-trip them bit for bit.
        let mut p = Program::new("exact", 8);
        let x = p.input_cipher("x", 40);
        let x2 = p.instruction(Opcode::Multiply, &[x, x]);
        let sum = p.instruction(Opcode::Add, &[x2, x]);
        let deep = p.instruction(Opcode::Multiply, &[sum, sum]);
        p.output("out", deep, 30);
        let compiled =
            crate::compiler::compile(&p, &crate::compiler::CompilerOptions::default()).unwrap();
        assert!(
            compiled
                .program
                .nodes()
                .iter()
                .any(|n| n.scale_log2.fract() != 0.0),
            "a compiled program with rescales must carry non-integral exact scales"
        );
        let restored = from_bytes(&to_bytes(&compiled.program)).unwrap();
        assert_eq!(compiled.program, restored);
    }

    #[test]
    fn corrupted_input_is_rejected() {
        let bytes = to_bytes(&sample_program());
        assert!(matches!(
            from_bytes(&bytes[..10]),
            Err(EvaError::Serialization(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(from_bytes(&bad_magic).is_err());
        assert!(from_bytes(&[]).is_err());
    }
}
