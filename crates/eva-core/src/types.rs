//! Value types, opcodes and constant values of the EVA language (paper
//! Tables 1 and 2).

use serde::{Deserialize, Serialize};

/// The type of a value flowing through an EVA program (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// An encrypted vector of fixed-point values.
    Cipher,
    /// A vector of 64-bit floating point values (plaintext).
    Vector,
    /// A 64-bit floating point value.
    Scalar,
    /// A 32-bit signed integer (used for rotation step counts).
    Integer,
}

impl ValueType {
    /// Whether this type denotes encrypted data.
    pub fn is_cipher(self) -> bool {
        matches!(self, ValueType::Cipher)
    }
}

impl std::fmt::Display for ValueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ValueType::Cipher => "Cipher",
            ValueType::Vector => "Vector",
            ValueType::Scalar => "Scalar",
            ValueType::Integer => "Integer",
        };
        f.write_str(name)
    }
}

/// Instruction opcodes (paper Table 2).
///
/// The first group may appear in input programs; the FHE-specific maintenance
/// instructions of the second group are inserted by the compiler and are not
/// accepted from frontends.
///
/// `Eq`/`Hash` are sound because no variant carries floating-point payload;
/// value numbering (`analysis::dataflow`) keys hash tables on opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Negate each element of the argument.
    Negate,
    /// Add arguments element-wise.
    Add,
    /// Subtract the right argument from the left one element-wise.
    Sub,
    /// Multiply arguments element-wise (and multiply scales).
    Multiply,
    /// Rotate elements to the left by the given number of indices.
    RotateLeft(i32),
    /// Rotate elements to the right by the given number of indices.
    RotateRight(i32),
    /// Apply relinearization (compiler-inserted).
    Relinearize,
    /// Switch to the next modulus in the modulus chain (compiler-inserted).
    ModSwitch,
    /// Rescale the ciphertext (compiler-inserted). The operand is the
    /// *nominal* divisor in bits; at run time the executor divides by the
    /// actual prime at the ciphertext's level, and the exact-scale phase of
    /// the compiler re-annotates node scales with `log2` of that real prime
    /// (see `analysis::scale` for the two-phase pipeline).
    Rescale(u32),
}

impl Opcode {
    /// Whether frontends are allowed to emit this opcode (paper Table 2's
    /// "Restrictions" column).
    pub fn allowed_in_input(&self) -> bool {
        !matches!(
            self,
            Opcode::Relinearize | Opcode::ModSwitch | Opcode::Rescale(_)
        )
    }

    /// Whether this opcode consumes a prime from the modulus chain.
    pub fn consumes_modulus(&self) -> bool {
        matches!(self, Opcode::ModSwitch | Opcode::Rescale(_))
    }

    /// Number of value arguments this opcode expects.
    pub fn arity(&self) -> usize {
        match self {
            Opcode::Add | Opcode::Sub | Opcode::Multiply => 2,
            Opcode::Negate
            | Opcode::RotateLeft(_)
            | Opcode::RotateRight(_)
            | Opcode::Relinearize
            | Opcode::ModSwitch
            | Opcode::Rescale(_) => 1,
        }
    }

    /// A short mnemonic used by the textual program dump.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Opcode::Negate => "negate",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Multiply => "multiply",
            Opcode::RotateLeft(_) => "rotate_left",
            Opcode::RotateRight(_) => "rotate_right",
            Opcode::Relinearize => "relinearize",
            Opcode::ModSwitch => "mod_switch",
            Opcode::Rescale(_) => "rescale",
        }
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Opcode::RotateLeft(steps) => write!(f, "rotate_left<{steps}>"),
            Opcode::RotateRight(steps) => write!(f, "rotate_right<{steps}>"),
            Opcode::Rescale(bits) => write!(f, "rescale<{bits}>"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// A compile-time constant value. Constants may be of any type except
/// `Cipher` (paper Section 3: ciphertext values cannot exist before key
/// generation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConstantValue {
    /// A plaintext vector.
    Vector(Vec<f64>),
    /// A plaintext scalar, broadcast across all slots.
    Scalar(f64),
    /// A 32-bit integer (e.g. a rotation amount represented as data).
    Integer(i32),
}

impl ConstantValue {
    /// The EVA type of this constant.
    pub fn value_type(&self) -> ValueType {
        match self {
            ConstantValue::Vector(_) => ValueType::Vector,
            ConstantValue::Scalar(_) => ValueType::Scalar,
            ConstantValue::Integer(_) => ValueType::Integer,
        }
    }

    /// Materializes the constant as a vector of `size` elements (scalars are
    /// broadcast).
    pub fn to_vector(&self, size: usize) -> Vec<f64> {
        match self {
            ConstantValue::Vector(v) => {
                let mut out = v.clone();
                out.resize(size, 0.0);
                out
            }
            ConstantValue::Scalar(s) => vec![*s; size],
            ConstantValue::Integer(i) => vec![*i as f64; size],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_input_restrictions_match_table_2() {
        assert!(Opcode::Add.allowed_in_input());
        assert!(Opcode::Multiply.allowed_in_input());
        assert!(Opcode::RotateLeft(3).allowed_in_input());
        assert!(!Opcode::Relinearize.allowed_in_input());
        assert!(!Opcode::ModSwitch.allowed_in_input());
        assert!(!Opcode::Rescale(60).allowed_in_input());
    }

    #[test]
    fn modulus_consumption() {
        assert!(Opcode::Rescale(60).consumes_modulus());
        assert!(Opcode::ModSwitch.consumes_modulus());
        assert!(!Opcode::Multiply.consumes_modulus());
        assert!(!Opcode::Relinearize.consumes_modulus());
    }

    #[test]
    fn arity_matches_signatures() {
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Negate.arity(), 1);
        assert_eq!(Opcode::RotateLeft(1).arity(), 1);
        assert_eq!(Opcode::Rescale(60).arity(), 1);
    }

    #[test]
    fn constants_broadcast() {
        let scalar = ConstantValue::Scalar(2.5);
        assert_eq!(scalar.to_vector(3), vec![2.5, 2.5, 2.5]);
        assert_eq!(scalar.value_type(), ValueType::Scalar);
        let vector = ConstantValue::Vector(vec![1.0, 2.0]);
        assert_eq!(vector.to_vector(4), vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(ConstantValue::Integer(7).value_type(), ValueType::Integer);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Opcode::RotateLeft(5).to_string(), "rotate_left<5>");
        assert_eq!(Opcode::Rescale(60).to_string(), "rescale<60>");
        assert_eq!(ValueType::Cipher.to_string(), "Cipher");
    }
}
