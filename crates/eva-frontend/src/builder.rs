//! The program builder: the owner of the term graph under construction.

use std::cell::RefCell;
use std::rc::Rc;

use eva_core::{ConstantValue, Program};

use crate::expr::Expr;

/// Builds an EVA [`Program`] through [`Expr`] handles, the Rust counterpart of
/// the paper's `with program:` context manager in PyEVA.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Rc<RefCell<Program>>,
    default_constant_scale: u32,
}

impl ProgramBuilder {
    /// Creates a builder for a program over vectors of `vec_size` elements.
    /// Scalar constants lifted by operators use a default scale of 2^30.
    ///
    /// # Panics
    ///
    /// Panics if `vec_size` is not a power of two.
    pub fn new(name: impl Into<String>, vec_size: usize) -> Self {
        Self::with_default_scale(name, vec_size, 30)
    }

    /// Like [`ProgramBuilder::new`] with an explicit default scale (in bits)
    /// for constants lifted from bare `f64` operands.
    ///
    /// # Panics
    ///
    /// Panics if `vec_size` is not a power of two.
    pub fn with_default_scale(
        name: impl Into<String>,
        vec_size: usize,
        default_constant_scale: u32,
    ) -> Self {
        Self {
            program: Rc::new(RefCell::new(Program::new(name, vec_size))),
            default_constant_scale,
        }
    }

    /// Changes the default scale used for constants lifted from `f64` operands
    /// by expressions created *after* this call.
    pub fn set_default_constant_scale(&mut self, scale_bits: u32) {
        self.default_constant_scale = scale_bits;
    }

    /// The program's vector size.
    pub fn vec_size(&self) -> usize {
        self.program.borrow().vec_size()
    }

    fn expr(&self, node: eva_core::NodeId) -> Expr {
        Expr {
            program: Rc::clone(&self.program),
            node,
            constant_scale: self.default_constant_scale,
        }
    }

    /// Declares an encrypted input with the given scale (in bits).
    pub fn input_cipher(&mut self, name: impl Into<String>, scale_bits: u32) -> Expr {
        let node = self.program.borrow_mut().input_cipher(name, scale_bits);
        self.expr(node)
    }

    /// Declares a plaintext vector input with the given scale.
    pub fn input_vector(&mut self, name: impl Into<String>, scale_bits: u32) -> Expr {
        let node = self.program.borrow_mut().input_vector(name, scale_bits);
        self.expr(node)
    }

    /// Declares a plaintext scalar input with the given scale.
    pub fn input_scalar(&mut self, name: impl Into<String>, scale_bits: u32) -> Expr {
        let node = self.program.borrow_mut().input_scalar(name, scale_bits);
        self.expr(node)
    }

    /// Adds a plaintext vector constant with the given scale.
    pub fn constant_vector(&mut self, values: Vec<f64>, scale_bits: u32) -> Expr {
        let node = self
            .program
            .borrow_mut()
            .constant(ConstantValue::Vector(values), scale_bits);
        self.expr(node)
    }

    /// Adds a scalar constant with the given scale.
    pub fn constant_scalar(&mut self, value: f64, scale_bits: u32) -> Expr {
        let node = self
            .program
            .borrow_mut()
            .constant(ConstantValue::Scalar(value), scale_bits);
        self.expr(node)
    }

    /// Declares `expr` as a named program output with the desired scale.
    pub fn output(&mut self, name: impl Into<String>, expr: Expr, scale_bits: u32) {
        self.program
            .borrow_mut()
            .output(name, expr.node_id(), scale_bits);
    }

    /// Finalizes the builder and returns the program.
    ///
    /// Outstanding [`Expr`] handles keep a reference to the shared graph, so
    /// the program is cloned out rather than moved; building is cheap relative
    /// to compiling and executing.
    pub fn build(self) -> Program {
        self.program.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_core::{compile, CompilerOptions};

    #[test]
    fn sobel_like_program_compiles() {
        // A miniature of the paper's Figure 6 Sobel example.
        let mut b = ProgramBuilder::new("sobel_mini", 16);
        let image = b.input_cipher("image", 30);
        let kernel = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
        let mut ix: Option<Expr> = None;
        for (i, row) in kernel.iter().enumerate() {
            for (j, &w) in row.iter().enumerate() {
                let rotated = &image << (i * 4 + j) as i32;
                let weighted = &rotated * w;
                ix = Some(match ix {
                    None => weighted,
                    Some(acc) => acc + weighted,
                });
            }
        }
        let ix = ix.unwrap();
        let energy = &ix * &ix;
        b.output("edges", energy, 30);
        let program = b.build();
        assert!(program.validate_as_input().is_ok());
        let compiled = compile(&program, &CompilerOptions::default()).unwrap();
        assert!(!compiled.rotation_steps.is_empty());
    }

    #[test]
    fn builder_inputs_and_constants() {
        let mut b = ProgramBuilder::with_default_scale("io", 8, 25);
        let x = b.input_cipher("x", 40);
        let v = b.input_vector("v", 20);
        let s = b.input_scalar("s", 10);
        let c = b.constant_vector(vec![1.0, 2.0], 15);
        let k = b.constant_scalar(4.0, 15);
        let out = &(&(&x * &v) + &c) * &(&s + &k);
        b.output("out", out, 30);
        let program = b.build();
        assert_eq!(program.len(), 9);
        assert_eq!(program.outputs().len(), 1);
        assert!(program.validate_as_input().is_ok());
    }

    #[test]
    fn default_scale_is_used_for_lifted_constants() {
        let mut b = ProgramBuilder::with_default_scale("scales", 8, 42);
        let x = b.input_cipher("x", 30);
        let y = &x + 1.0;
        b.output("out", y, 30);
        let program = b.build();
        let constant = program
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, eva_core::NodeKind::Constant { .. }))
            .unwrap();
        assert_eq!(constant.scale_log2, 42.0);
    }
}
