//! Expression handles with operator overloading.

use std::cell::RefCell;
use std::rc::Rc;

use eva_core::{ConstantValue, NodeId, Opcode, Program};

/// A handle to a node in the program being built.
///
/// `Expr` values are produced by [`crate::ProgramBuilder`] and combined with
/// the standard arithmetic operators; every operation appends the
/// corresponding instruction to the underlying EVA program. Plain `f64`
/// operands are lifted to scalar constants encoded at the builder's default
/// scale, mirroring PyEVA's `constant(scale, value)` helper.
#[derive(Clone)]
pub struct Expr {
    pub(crate) program: Rc<RefCell<Program>>,
    pub(crate) node: NodeId,
    pub(crate) constant_scale: u32,
}

impl std::fmt::Debug for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Expr").field("node", &self.node).finish()
    }
}

impl Expr {
    /// The node id this expression refers to.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    fn same_program(&self, other: &Expr) {
        assert!(
            Rc::ptr_eq(&self.program, &other.program),
            "expressions from different ProgramBuilders cannot be combined"
        );
    }

    pub(crate) fn binary(&self, op: Opcode, rhs: &Expr) -> Expr {
        self.same_program(rhs);
        let node = self
            .program
            .borrow_mut()
            .instruction(op, &[self.node, rhs.node]);
        Expr {
            program: Rc::clone(&self.program),
            node,
            constant_scale: self.constant_scale,
        }
    }

    fn unary(&self, op: Opcode) -> Expr {
        let node = self.program.borrow_mut().instruction(op, &[self.node]);
        Expr {
            program: Rc::clone(&self.program),
            node,
            constant_scale: self.constant_scale,
        }
    }

    fn lift_scalar(&self, value: f64) -> Expr {
        let node = self
            .program
            .borrow_mut()
            .constant(ConstantValue::Scalar(value), self.constant_scale);
        Expr {
            program: Rc::clone(&self.program),
            node,
            constant_scale: self.constant_scale,
        }
    }

    /// Lifts a plaintext vector constant at the expression's default scale.
    pub fn lift_vector(&self, values: Vec<f64>) -> Expr {
        let node = self
            .program
            .borrow_mut()
            .constant(ConstantValue::Vector(values), self.constant_scale);
        Expr {
            program: Rc::clone(&self.program),
            node,
            constant_scale: self.constant_scale,
        }
    }

    /// Rotates the vector left by `steps` slots (the paper's `<<` in PyEVA).
    pub fn rotate_left(&self, steps: i32) -> Expr {
        self.unary(Opcode::RotateLeft(steps))
    }

    /// Rotates the vector right by `steps` slots.
    pub fn rotate_right(&self, steps: i32) -> Expr {
        self.unary(Opcode::RotateRight(steps))
    }

    /// Squares the expression.
    pub fn square(&self) -> Expr {
        self.binary(Opcode::Multiply, self)
    }

    /// Raises the expression to a small positive integer power by repeated
    /// multiplication (left-to-right, mirroring PyEVA's `**`).
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is zero (an encrypted constant 1 has no meaning
    /// without a scale choice).
    pub fn pow(&self, exponent: u32) -> Expr {
        assert!(exponent >= 1, "exponent must be at least 1");
        let mut acc = self.clone();
        for _ in 1..exponent {
            acc = acc.binary(Opcode::Multiply, self);
        }
        acc
    }
}

macro_rules! impl_binary_op {
    ($trait:ident, $method:ident, $opcode:expr) => {
        impl std::ops::$trait<&Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                self.binary($opcode, rhs)
            }
        }
        impl std::ops::$trait<Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                self.binary($opcode, &rhs)
            }
        }
        impl std::ops::$trait<&Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: &Expr) -> Expr {
                self.binary($opcode, rhs)
            }
        }
        impl std::ops::$trait<Expr> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                self.binary($opcode, &rhs)
            }
        }
        impl std::ops::$trait<f64> for &Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                let constant = self.lift_scalar(rhs);
                self.binary($opcode, &constant)
            }
        }
        impl std::ops::$trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                let constant = self.lift_scalar(rhs);
                self.binary($opcode, &constant)
            }
        }
    };
}

impl_binary_op!(Add, add, Opcode::Add);
impl_binary_op!(Sub, sub, Opcode::Sub);
impl_binary_op!(Mul, mul, Opcode::Multiply);

impl std::ops::Neg for &Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        self.unary(Opcode::Negate)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        self.unary(Opcode::Negate)
    }
}

impl std::ops::Shl<i32> for &Expr {
    type Output = Expr;
    fn shl(self, steps: i32) -> Expr {
        self.rotate_left(steps)
    }
}

impl std::ops::Shl<i32> for Expr {
    type Output = Expr;
    fn shl(self, steps: i32) -> Expr {
        self.rotate_left(steps)
    }
}

impl std::ops::Shr<i32> for &Expr {
    type Output = Expr;
    fn shr(self, steps: i32) -> Expr {
        self.rotate_right(steps)
    }
}

impl std::ops::Shr<i32> for Expr {
    type Output = Expr;
    fn shr(self, steps: i32) -> Expr {
        self.rotate_right(steps)
    }
}

#[cfg(test)]
mod tests {
    use crate::ProgramBuilder;
    use eva_core::Opcode;

    #[test]
    fn operators_build_the_expected_graph() {
        let mut b = ProgramBuilder::new("ops", 8);
        let x = b.input_cipher("x", 30);
        let y = b.input_cipher("y", 30);
        let expr = &(&x + &y) * &(&x - &y);
        let rotated = &expr << 2;
        let shifted = &rotated >> 1;
        let negated = -&shifted;
        b.output("out", negated, 30);
        let program = b.build();
        let hist = program.opcode_histogram();
        assert_eq!(hist.get("add"), Some(&1));
        assert_eq!(hist.get("sub"), Some(&1));
        assert_eq!(hist.get("multiply"), Some(&1));
        assert_eq!(hist.get("rotate_left"), Some(&1));
        assert_eq!(hist.get("rotate_right"), Some(&1));
        assert_eq!(hist.get("negate"), Some(&1));
    }

    #[test]
    fn scalar_operands_become_constants() {
        let mut b = ProgramBuilder::new("scalars", 8);
        let x = b.input_cipher("x", 30);
        let y = &x * 3.5 + 1.25;
        b.output("out", y, 30);
        let program = b.build();
        // Two scalar constants were lifted.
        let constants = program
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, eva_core::NodeKind::Constant { .. }))
            .count();
        assert_eq!(constants, 2);
    }

    #[test]
    fn pow_builds_a_multiplication_chain() {
        let mut b = ProgramBuilder::new("pow", 8);
        let x = b.input_cipher("x", 30);
        let cubed = x.pow(3);
        b.output("out", cubed, 30);
        let program = b.build();
        assert_eq!(program.opcode_histogram().get("multiply"), Some(&2));
        assert_eq!(program.multiplicative_depth(), 2);
        let _ = Opcode::Multiply;
    }

    #[test]
    #[should_panic(expected = "different ProgramBuilders")]
    fn mixing_builders_panics() {
        let mut a = ProgramBuilder::new("a", 8);
        let mut b = ProgramBuilder::new("b", 8);
        let x = a.input_cipher("x", 30);
        let y = b.input_cipher("y", 30);
        let _ = &x + &y;
    }
}
