//! # eva-frontend — a builder DSL for authoring EVA programs
//!
//! The paper's PyEVA frontend embeds EVA into Python with operator
//! overloading (Figure 6). This crate is the Rust equivalent: a
//! [`ProgramBuilder`] hands out [`Expr`] handles that overload `+`, `-`, `*`,
//! `<<` (rotate left) and `>>` (rotate right), so programs read like the
//! arithmetic they compute while building the EVA term graph underneath.
//!
//! ```
//! use eva_frontend::ProgramBuilder;
//!
//! // 3rd-degree polynomial approximation of sqrt, as in the paper's Sobel example.
//! let mut b = ProgramBuilder::new("sqrt_poly", 64);
//! let x = b.input_cipher("x", 30);
//! let y = &x * 2.214 + &(&x * &x) * -1.098 + &(&(&x * &x) * &x) * 0.173;
//! b.output("y", y, 30);
//! let program = b.build();
//! assert_eq!(program.vec_size(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod expr;

pub use builder::ProgramBuilder;
pub use expr::Expr;
