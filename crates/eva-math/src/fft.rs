//! Complex arithmetic and the CKKS canonical-embedding FFT.
//!
//! CKKS encodes a vector of `N/2` complex (here: real) numbers into an
//! integer polynomial by evaluating/interpolating at the primitive `2N`-th
//! roots of unity indexed by the powers-of-five orbit. [`SpecialFft`]
//! implements that pair of transforms: [`SpecialFft::embed_inverse`] is used by
//! the encoder and [`SpecialFft::embed`] by the decoder, following the
//! formulation used by HEAAN and SEAL.

/// A complex number with `f64` components.
///
/// A tiny purpose-built type (rather than an external dependency) because the
/// encoder only needs add/sub/mul/scale.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `re + 0i`.
    #[inline]
    pub fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Absolute value (modulus).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl std::ops::Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

fn bit_reverse_permute(values: &mut [Complex]) {
    let n = values.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = {
            let mut v = i;
            let mut r = 0usize;
            for _ in 0..bits {
                r = (r << 1) | (v & 1);
                v >>= 1;
            }
            r
        };
        if j > i {
            values.swap(i, j);
        }
    }
}

/// Precomputed tables for the CKKS canonical-embedding transform with ring
/// degree `N` (so `M = 2N` roots and up to `N/2` slots).
#[derive(Debug, Clone)]
pub struct SpecialFft {
    m: usize,
    /// 5^j mod M, j in 0..N/2 — the index orbit that enumerates slot positions.
    rot_group: Vec<usize>,
    /// exp(2πi·j/M) for j in 0..M.
    ksi_pows: Vec<Complex>,
}

impl SpecialFft {
    /// Creates transform tables for polynomial degree `degree` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is not a power of two or is smaller than 4.
    pub fn new(degree: usize) -> Self {
        assert!(
            degree >= 4 && degree.is_power_of_two(),
            "degree must be a power of two >= 4, got {degree}"
        );
        let m = 2 * degree;
        let slots = degree / 2;
        let mut rot_group = Vec::with_capacity(slots);
        let mut five_pow = 1usize;
        for _ in 0..slots {
            rot_group.push(five_pow);
            five_pow = five_pow * 5 % m;
        }
        let mut ksi_pows = Vec::with_capacity(m + 1);
        for j in 0..=m {
            let angle = 2.0 * std::f64::consts::PI * j as f64 / m as f64;
            ksi_pows.push(Complex::new(angle.cos(), angle.sin()));
        }
        Self {
            m,
            rot_group,
            ksi_pows,
        }
    }

    /// The number of roots `M = 2N`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The powers-of-five rotation orbit `5^j mod M`.
    #[inline]
    pub fn rot_group(&self) -> &[usize] {
        &self.rot_group
    }

    /// Forward embedding (decode direction): interprets `values` as polynomial
    /// "slot coefficients" and evaluates them at the canonical roots, in place.
    ///
    /// `values.len()` must be a power of two no larger than `N/2`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a supported power of two.
    pub fn embed(&self, values: &mut [Complex]) {
        let size = values.len();
        self.check_size(size);
        bit_reverse_permute(values);
        let mut len = 2usize;
        while len <= size {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..size).step_by(len) {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * self.m / lenq;
                    let u = values[i + j];
                    let v = values[i + j + lenh] * self.ksi_pows[idx];
                    values[i + j] = u + v;
                    values[i + j + lenh] = u - v;
                }
            }
            len <<= 1;
        }
    }

    /// Inverse embedding (encode direction): interpolates slot values back into
    /// "slot coefficients", in place. The inverse of [`SpecialFft::embed`].
    ///
    /// # Panics
    ///
    /// Panics if the length is not a supported power of two.
    pub fn embed_inverse(&self, values: &mut [Complex]) {
        let size = values.len();
        self.check_size(size);
        let mut len = size;
        while len >= 2 {
            let lenh = len >> 1;
            let lenq = len << 2;
            for i in (0..size).step_by(len) {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * self.m / lenq;
                    let u = values[i + j] + values[i + j + lenh];
                    let v = (values[i + j] - values[i + j + lenh]) * self.ksi_pows[idx];
                    values[i + j] = u;
                    values[i + j + lenh] = v;
                }
            }
            len >>= 1;
        }
        bit_reverse_permute(values);
        for value in values.iter_mut() {
            *value = *value / size as f64;
        }
    }

    fn check_size(&self, size: usize) {
        assert!(
            size.is_power_of_two() && size >= 1 && size <= self.m / 4,
            "slot count {size} must be a power of two at most {}",
            self.m / 4
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn complex_arithmetic_basics() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let sum = a + b;
        assert_eq!(sum, Complex::new(4.0, 1.0));
        let prod = a * b;
        assert_eq!(prod, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn embed_roundtrip_is_identity() {
        let fft = SpecialFft::new(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let original: Vec<Complex> = (0..16)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut values = original.clone();
        fft.embed_inverse(&mut values);
        fft.embed(&mut values);
        for (a, b) in values.iter().zip(&original) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn embed_of_constant_slot_vector() {
        // Interpolating a constant vector must give a "polynomial" whose only
        // nonzero slot coefficient is the constant term.
        let fft = SpecialFft::new(32);
        let mut values = vec![Complex::from_real(2.5); 8];
        fft.embed_inverse(&mut values);
        assert!((values[0].re - 2.5).abs() < 1e-9);
        for v in &values[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn embed_rejects_oversized_input() {
        let fft = SpecialFft::new(16);
        let mut values = vec![Complex::default(); 16];
        fft.embed(&mut values);
    }
}
