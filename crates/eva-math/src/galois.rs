//! Galois automorphism bookkeeping for CKKS slot rotations.
//!
//! Rotating the encrypted slot vector left by `r` positions corresponds to the
//! ring automorphism `X ↦ X^{5^r mod 2N}`; complex conjugation of the slots
//! corresponds to `X ↦ X^{2N-1}`. [`GaloisTool`] computes the Galois elements
//! and applies the automorphism to coefficient-domain polynomials.

use crate::modulus::Modulus;
use crate::ntt::bit_reverse;

/// Computes Galois elements and applies automorphisms for a fixed ring degree.
#[derive(Debug, Clone)]
pub struct GaloisTool {
    degree: usize,
    m: usize,
}

impl GaloisTool {
    /// Creates a tool for ring degree `degree` (must be a power of two ≥ 4).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is not a power of two or is smaller than 4.
    pub fn new(degree: usize) -> Self {
        assert!(
            degree >= 4 && degree.is_power_of_two(),
            "degree must be a power of two >= 4, got {degree}"
        );
        Self {
            degree,
            m: 2 * degree,
        }
    }

    /// The ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The Galois element `5^steps mod 2N` implementing a left rotation of the
    /// slot vector by `steps` positions. Negative steps rotate right.
    pub fn galois_elt_from_step(&self, steps: i64) -> u64 {
        let slots = (self.degree / 2) as i64;
        let steps = steps.rem_euclid(slots) as u64;
        let mut elt = 1u64;
        for _ in 0..steps {
            elt = elt * 5 % self.m as u64;
        }
        elt
    }

    /// The Galois element `2N - 1` implementing complex conjugation of slots.
    #[inline]
    pub fn galois_elt_conjugate(&self) -> u64 {
        (self.m - 1) as u64
    }

    /// Applies the automorphism `X ↦ X^galois_elt` to a coefficient-domain
    /// polynomial, writing the result into `output`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the ring degree or if
    /// `galois_elt` is even (not a unit modulo `2N`).
    pub fn apply(&self, input: &[u64], galois_elt: u64, modulus: &Modulus, output: &mut [u64]) {
        assert_eq!(input.len(), self.degree);
        assert_eq!(output.len(), self.degree);
        assert!(
            galois_elt % 2 == 1 && (galois_elt as usize) < self.m,
            "galois element {galois_elt} must be an odd unit modulo {}",
            self.m
        );
        for (i, &coeff) in input.iter().enumerate() {
            let index = i * galois_elt as usize % self.m;
            if index < self.degree {
                output[index] = coeff;
            } else {
                output[index - self.degree] = modulus.neg(coeff);
            }
        }
    }

    /// Precomputes the index permutation that implements `X ↦ X^galois_elt`
    /// directly on NTT-domain rows: `output[i] = input[table[i]]`.
    ///
    /// The negacyclic NTT stores at index `i` the evaluation of the
    /// polynomial at `ψ^(2·bitrev(i)+1)` (ψ a primitive 2N-th root), so the
    /// automorphism only permutes evaluations — no negations and no modular
    /// arithmetic are needed, and the table depends only on the ring degree
    /// and the Galois element, never on the modulus. One table therefore
    /// serves every residue row of an RNS polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `galois_elt` is even (not a unit modulo `2N`) or out of
    /// range.
    pub fn ntt_permutation(&self, galois_elt: u64) -> Vec<u32> {
        assert!(
            galois_elt % 2 == 1 && (galois_elt as usize) < self.m,
            "galois element {galois_elt} must be an odd unit modulo {}",
            self.m
        );
        let log_n = self.degree.trailing_zeros();
        (0..self.degree)
            .map(|i| {
                // Output slot `i` wants the evaluation at exponent
                // e = galois_elt · (2·bitrev(i)+1) mod 2N, which the input
                // stores at index bitrev((e-1)/2).
                let odd = 2 * bit_reverse(i, log_n) + 1;
                let e = galois_elt as usize * odd % self.m;
                bit_reverse((e - 1) >> 1, log_n) as u32
            })
            .collect()
    }

    /// Applies a permutation produced by [`GaloisTool::ntt_permutation`] to
    /// one NTT-domain row: a pure gather, `output[i] = input[table[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the ring degree.
    pub fn apply_ntt(&self, input: &[u64], table: &[u32], output: &mut [u64]) {
        assert_eq!(input.len(), self.degree);
        assert_eq!(table.len(), self.degree);
        assert_eq!(output.len(), self.degree);
        for (o, &t) in output.iter_mut().zip(table) {
            *o = input[t as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTables;

    #[test]
    fn galois_elements_are_units() {
        let tool = GaloisTool::new(64);
        for steps in -5i64..=5 {
            let elt = tool.galois_elt_from_step(steps);
            assert_eq!(elt % 2, 1);
            assert!(elt < 128);
        }
        assert_eq!(tool.galois_elt_from_step(0), 1);
        assert_eq!(tool.galois_elt_conjugate(), 127);
    }

    #[test]
    fn rotation_steps_compose() {
        let tool = GaloisTool::new(256);
        let a = tool.galois_elt_from_step(3);
        let b = tool.galois_elt_from_step(4);
        let c = tool.galois_elt_from_step(7);
        assert_eq!(a * b % 512, c);
    }

    #[test]
    fn apply_identity_automorphism() {
        let tool = GaloisTool::new(8);
        let q = Modulus::new(97).unwrap();
        let input: Vec<u64> = (0..8).collect();
        let mut output = vec![0u64; 8];
        tool.apply(&input, 1, &q, &mut output);
        assert_eq!(output, input);
    }

    #[test]
    fn ntt_permutation_is_identity_for_element_one() {
        let tool = GaloisTool::new(32);
        let table = tool.ntt_permutation(1);
        assert!(table.iter().enumerate().all(|(i, &t)| t as usize == i));
    }

    #[test]
    fn ntt_permutation_matches_coefficient_domain_path() {
        // The NTT-domain gather must be bit-identical to the reference
        // route: inverse NTT -> coefficient-domain automorphism -> forward
        // NTT. Pinned across degrees, moduli and Galois elements (rotation
        // elements 5^k and the conjugation element 2N-1).
        for (degree, q) in [(8usize, 97u64), (32, 7681), (64, 7681), (256, 65537)] {
            let modulus = Modulus::new(q).unwrap();
            let tables = NttTables::new(degree, modulus).unwrap();
            let tool = GaloisTool::new(degree);
            let mut elements: Vec<u64> = (0..5).map(|s| tool.galois_elt_from_step(s)).collect();
            elements.push(tool.galois_elt_from_step(-3));
            elements.push(tool.galois_elt_conjugate());
            let input: Vec<u64> = (0..degree as u64).map(|i| (i * 31 + 7) % q).collect();
            let mut input_ntt = input.clone();
            tables.forward(&mut input_ntt);
            for elt in elements {
                let mut expected = vec![0u64; degree];
                tool.apply(&input, elt, &modulus, &mut expected);
                tables.forward(&mut expected);

                let table = tool.ntt_permutation(elt);
                let mut actual = vec![0u64; degree];
                tool.apply_ntt(&input_ntt, &table, &mut actual);
                assert_eq!(actual, expected, "degree {degree}, q {q}, elt {elt}");
            }
        }
    }

    #[test]
    fn apply_wraps_and_negates_correctly() {
        let tool = GaloisTool::new(8);
        let q = Modulus::new(97).unwrap();
        // X^7 under X -> X^3 becomes X^21 = (X^8)^2 * X^5 = X^5 (no sign flip).
        let mut input = vec![0u64; 8];
        input[7] = 2;
        let mut output = vec![0u64; 8];
        tool.apply(&input, 3, &q, &mut output);
        let mut expected = vec![0u64; 8];
        expected[5] = 2;
        assert_eq!(output, expected);

        // X^3 under X -> X^3 becomes X^9 = -X^1 (one wrap past X^8 flips the sign).
        let mut input = vec![0u64; 8];
        input[3] = 2;
        tool.apply(&input, 3, &q, &mut output.clone());
        let mut output2 = vec![0u64; 8];
        tool.apply(&input, 3, &q, &mut output2);
        let mut expected2 = vec![0u64; 8];
        expected2[1] = 97 - 2;
        assert_eq!(output2, expected2);
    }
}
