//! Galois automorphism bookkeeping for CKKS slot rotations.
//!
//! Rotating the encrypted slot vector left by `r` positions corresponds to the
//! ring automorphism `X ↦ X^{5^r mod 2N}`; complex conjugation of the slots
//! corresponds to `X ↦ X^{2N-1}`. [`GaloisTool`] computes the Galois elements
//! and applies the automorphism to coefficient-domain polynomials.

use crate::modulus::Modulus;

/// Computes Galois elements and applies automorphisms for a fixed ring degree.
#[derive(Debug, Clone)]
pub struct GaloisTool {
    degree: usize,
    m: usize,
}

impl GaloisTool {
    /// Creates a tool for ring degree `degree` (must be a power of two ≥ 4).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is not a power of two or is smaller than 4.
    pub fn new(degree: usize) -> Self {
        assert!(
            degree >= 4 && degree.is_power_of_two(),
            "degree must be a power of two >= 4, got {degree}"
        );
        Self {
            degree,
            m: 2 * degree,
        }
    }

    /// The ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The Galois element `5^steps mod 2N` implementing a left rotation of the
    /// slot vector by `steps` positions. Negative steps rotate right.
    pub fn galois_elt_from_step(&self, steps: i64) -> u64 {
        let slots = (self.degree / 2) as i64;
        let steps = steps.rem_euclid(slots) as u64;
        let mut elt = 1u64;
        for _ in 0..steps {
            elt = elt * 5 % self.m as u64;
        }
        elt
    }

    /// The Galois element `2N - 1` implementing complex conjugation of slots.
    #[inline]
    pub fn galois_elt_conjugate(&self) -> u64 {
        (self.m - 1) as u64
    }

    /// Applies the automorphism `X ↦ X^galois_elt` to a coefficient-domain
    /// polynomial, writing the result into `output`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the ring degree or if
    /// `galois_elt` is even (not a unit modulo `2N`).
    pub fn apply(&self, input: &[u64], galois_elt: u64, modulus: &Modulus, output: &mut [u64]) {
        assert_eq!(input.len(), self.degree);
        assert_eq!(output.len(), self.degree);
        assert!(
            galois_elt % 2 == 1 && (galois_elt as usize) < self.m,
            "galois element {galois_elt} must be an odd unit modulo {}",
            self.m
        );
        for (i, &coeff) in input.iter().enumerate() {
            let index = i * galois_elt as usize % self.m;
            if index < self.degree {
                output[index] = coeff;
            } else {
                output[index - self.degree] = modulus.neg(coeff);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galois_elements_are_units() {
        let tool = GaloisTool::new(64);
        for steps in -5i64..=5 {
            let elt = tool.galois_elt_from_step(steps);
            assert_eq!(elt % 2, 1);
            assert!(elt < 128);
        }
        assert_eq!(tool.galois_elt_from_step(0), 1);
        assert_eq!(tool.galois_elt_conjugate(), 127);
    }

    #[test]
    fn rotation_steps_compose() {
        let tool = GaloisTool::new(256);
        let a = tool.galois_elt_from_step(3);
        let b = tool.galois_elt_from_step(4);
        let c = tool.galois_elt_from_step(7);
        assert_eq!(a * b % 512, c);
    }

    #[test]
    fn apply_identity_automorphism() {
        let tool = GaloisTool::new(8);
        let q = Modulus::new(97).unwrap();
        let input: Vec<u64> = (0..8).collect();
        let mut output = vec![0u64; 8];
        tool.apply(&input, 1, &q, &mut output);
        assert_eq!(output, input);
    }

    #[test]
    fn apply_wraps_and_negates_correctly() {
        let tool = GaloisTool::new(8);
        let q = Modulus::new(97).unwrap();
        // X^7 under X -> X^3 becomes X^21 = (X^8)^2 * X^5 = X^5 (no sign flip).
        let mut input = vec![0u64; 8];
        input[7] = 2;
        let mut output = vec![0u64; 8];
        tool.apply(&input, 3, &q, &mut output);
        let mut expected = vec![0u64; 8];
        expected[5] = 2;
        assert_eq!(output, expected);

        // X^3 under X -> X^3 becomes X^9 = -X^1 (one wrap past X^8 flips the sign).
        let mut input = vec![0u64; 8];
        input[3] = 2;
        tool.apply(&input, 3, &q, &mut output.clone());
        let mut output2 = vec![0u64; 8];
        tool.apply(&input, 3, &q, &mut output2);
        let mut expected2 = vec![0u64; 8];
        expected2[1] = 97 - 2;
        assert_eq!(output2, expected2);
    }
}
