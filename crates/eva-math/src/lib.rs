//! Number-theoretic and transform substrate for the EVA reproduction.
//!
//! This crate contains everything below the polynomial-ring layer of an
//! RNS-CKKS implementation (the role Microsoft SEAL's `util` layer plays for
//! the paper):
//!
//! * [`modulus`] — word-sized prime moduli with Barrett and Shoup modular
//!   multiplication, modular exponentiation and inversion, plus the
//!   lazy-reduction primitives (`add_lazy`/`sub_lazy`/`mul_shoup_lazy`,
//!   outputs in `[0, 2q)`) that the hot kernels build on; see the module docs
//!   for the range-invariant table.
//! * [`primes`] — deterministic Miller–Rabin primality testing and generation
//!   of NTT-friendly primes (`q ≡ 1 mod 2N`) of requested bit sizes.
//! * [`ntt`] — the negacyclic number-theoretic transform over `Z_q[X]/(X^N+1)`,
//!   with Harvey lazy-reduction butterflies and SoA twiddle tables.
//! * [`fft`] — a complex FFT over the canonical-embedding root ordering used by
//!   the CKKS encoder (powers-of-five orbit).
//! * [`sampling`] — samplers for uniform, ternary and centered-binomial noise.
//! * [`galois`] — Galois element bookkeeping for slot rotations.
//!
//! All of it is pure Rust with no unsafe code and no external arithmetic
//! dependencies.
//!
//! # Examples
//!
//! ```
//! use eva_math::{generate_ntt_primes, Modulus, NttTables};
//!
//! // A 40-bit NTT-friendly prime for ring degree 1024, and a transform over it.
//! let primes = generate_ntt_primes(1024, &[40]).unwrap();
//! let q = Modulus::new(primes[0]).unwrap();
//! let ntt = NttTables::new(1024, q).unwrap();
//! let mut a = vec![0u64; 1024];
//! a[1] = 1; // the polynomial X
//! ntt.forward(&mut a);
//! ntt.inverse(&mut a);
//! assert_eq!(a[1], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod galois;
pub mod modulus;
pub mod ntt;
pub mod primes;
pub mod sampling;

pub use fft::{Complex, SpecialFft};
pub use galois::GaloisTool;
pub use modulus::Modulus;
pub use ntt::NttTables;
pub use primes::{generate_ntt_primes, is_prime, nominal_prime_bits};
pub use sampling::{sample_cbd, sample_ternary, sample_uniform_into, sample_uniform_poly};
