//! Word-sized modular arithmetic.
//!
//! [`Modulus`] wraps a prime (or any odd modulus) smaller than 2^62 and
//! precomputes the Barrett constant `floor(2^128 / q)` so that products of two
//! residues can be reduced without a hardware division. Constant operands can
//! additionally be promoted to a [`ShoupPrecomputed`] form, which the NTT uses
//! for its twiddle factors.
//!
//! # Lazy-reduction ranges
//!
//! The hot kernels (NTT butterflies, fused dyadic products) defer the final
//! reduction to canonical `[0, q)` and instead track *lazy* representatives.
//! The invariants, all safe because `q < 2^62` keeps `4q < 2^64`:
//!
//! | operation | input range | output range |
//! |---|---|---|
//! | [`Modulus::add_lazy`]       | `[0, q)` each   | `[0, 2q)` |
//! | [`Modulus::sub_lazy`]       | `[0, q)` each   | `[0, 2q)` |
//! | [`Modulus::mul_shoup_lazy`] | any `u64`       | `[0, 2q)` |
//! | [`Modulus::reduce_once`]    | `[0, 2q)`       | `[0, q)`  |
//! | [`Modulus::reduce_twice`]   | `[0, 4q)`       | `[0, q)`  |
//!
//! The canonical operations ([`Modulus::add`], [`Modulus::sub`],
//! [`Modulus::mul`], [`Modulus::mul_shoup`]) keep both inputs and outputs in
//! `[0, q)`.

use std::fmt;

/// Maximum number of bits a [`Modulus`] value may occupy.
///
/// SEAL restricts coefficient-modulus primes to 60 bits; we allow 62 so the
/// special key-switching prime has headroom, while keeping lazy sums safe.
pub const MAX_MODULUS_BITS: u32 = 62;

/// A positive odd modulus `q < 2^62` with precomputed Barrett constants.
///
/// # Examples
///
/// ```
/// use eva_math::Modulus;
/// let q = Modulus::new((1u64 << 30) - 35).unwrap();
/// assert_eq!(q.mul(12345, 67890), (12345u128 * 67890 % q.value() as u128) as u64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// floor(2^128 / value), low and high 64-bit words.
    const_ratio: (u64, u64),
    bit_count: u32,
}

impl fmt::Debug for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Modulus")
            .field("value", &self.value)
            .field("bits", &self.bit_count)
            .finish()
    }
}

impl fmt::Display for Modulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Error returned when constructing a [`Modulus`] from an unsupported value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidModulus(pub u64);

impl fmt::Display for InvalidModulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid modulus value {}", self.0)
    }
}

impl std::error::Error for InvalidModulus {}

impl Modulus {
    /// Creates a new modulus.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidModulus`] if `value < 2` or `value >= 2^62`.
    pub fn new(value: u64) -> Result<Self, InvalidModulus> {
        if value < 2 || value >> MAX_MODULUS_BITS != 0 {
            return Err(InvalidModulus(value));
        }
        // const_ratio = floor(2^128 / value) computed by long division of
        // the 192-bit value 2^128 by `value` using u128 steps.
        // high = floor((2^128 - 1)/q). Since 2^128 = u128::MAX + 1,
        // floor(2^128/q) equals `high` unless the +1 carries across a multiple
        // of q, i.e. unless (u128::MAX % q) == q - 1, in which case add one.
        let high = u128::MAX / value as u128;
        let rem = u128::MAX % value as u128;
        let ratio = if rem == value as u128 - 1 {
            high + 1
        } else {
            high
        };
        let const_ratio = (ratio as u64, (ratio >> 64) as u64);
        let bit_count = 64 - value.leading_zeros();
        Ok(Self {
            value,
            const_ratio,
            bit_count,
        })
    }

    /// The modulus value `q`.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in `q`.
    #[inline]
    pub fn bit_count(&self) -> u32 {
        self.bit_count
    }

    /// Reduces an arbitrary 64-bit value modulo `q`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        self.reduce_u128(a as u128)
    }

    /// Reduces an arbitrary 128-bit value modulo `q` using Barrett reduction.
    #[inline]
    pub fn reduce_u128(&self, z: u128) -> u64 {
        let mut r = self.reduce_u128_raw(z);
        // The Barrett estimate undershoots the true quotient by at most a couple,
        // so a short correction loop restores the canonical representative.
        while r >= self.value {
            r -= self.value;
        }
        r
    }

    /// The uncorrected Barrett step: a representative of `z mod q` in
    /// `[0, 4q)` (the quotient estimate undershoots by at most a couple).
    #[inline]
    fn reduce_u128_raw(&self, z: u128) -> u64 {
        let (r0, r1) = self.const_ratio;
        let z0 = z as u64;
        let z1 = (z >> 64) as u64;

        // Estimate the quotient floor(z * ratio / 2^128); only its low 64 bits are
        // needed because the remainder fits in a single word.
        //   z * ratio = z0*r0 + (z0*r1 + z1*r0)*2^64 + z1*r1*2^128
        // so the low quotient word is
        //   low64(z1*r1) + bits 64..127 of (z0*r1 + z1*r0 + floor(z0*r0 / 2^64)).
        // The wrapping u128 sum below only ever loses bit 128, which does not
        // contribute to bits 64..127.
        let carry = ((z0 as u128 * r0 as u128) >> 64) as u64;
        let mid = (z0 as u128 * r1 as u128)
            .wrapping_add(z1 as u128 * r0 as u128)
            .wrapping_add(carry as u128);
        let q_hat = z1.wrapping_mul(r1).wrapping_add((mid >> 64) as u64);

        z0.wrapping_sub(q_hat.wrapping_mul(self.value))
    }

    /// Modular addition of two residues already in `[0, q)`.
    ///
    /// Branch-free (mask-select correction) so throughput does not depend on
    /// the data distribution.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        s - (self.value & ((s >= self.value) as u64).wrapping_neg())
    }

    /// Modular subtraction of two residues already in `[0, q)`.
    ///
    /// Branch-free: adds back `q` under a borrow mask instead of branching on
    /// `a >= b`, which mispredicts on random residues.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let (d, borrow) = a.overflowing_sub(b);
        d.wrapping_add(self.value & (borrow as u64).wrapping_neg())
    }

    /// Lazy modular addition: inputs in `[0, q)`, output in `[0, 2q)`.
    ///
    /// Branch-free: the sum is returned unreduced. Feed the result to
    /// [`Modulus::reduce_once`] (or a subsequent lazy operation) when a
    /// canonical representative is needed.
    #[inline]
    pub fn add_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        a + b
    }

    /// Lazy modular subtraction: inputs in `[0, q)`, output in `[0, 2q)`.
    ///
    /// Branch-free: returns `a + q - b`, which is congruent to `a - b` and
    /// never underflows.
    #[inline]
    pub fn sub_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        a + self.value - b
    }

    /// Reduces a lazy representative in `[0, 2q)` to canonical `[0, q)` with a
    /// single mask-selected subtraction.
    #[inline]
    pub fn reduce_once(&self, a: u64) -> u64 {
        debug_assert!(a < 2 * self.value);
        a - (self.value & ((a >= self.value) as u64).wrapping_neg())
    }

    /// Reduces a lazy representative in `[0, 4q)` to canonical `[0, q)` with
    /// two mask-selected subtractions (the correction pass the lazy NTT runs
    /// once at the end instead of inside every butterfly).
    #[inline]
    pub fn reduce_twice(&self, a: u64) -> u64 {
        debug_assert!(a < 4 * self.value);
        let two_q = self.value << 1;
        let a = a - (two_q & ((a >= two_q) as u64).wrapping_neg());
        a - (self.value & ((a >= self.value) as u64).wrapping_neg())
    }

    /// Modular negation of a residue in `[0, q)`.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of two residues in `[0, q)`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Lazy modular multiplication: inputs in `[0, q)`, output in `[0, 2q)`.
    ///
    /// Runs the same Barrett step as [`Modulus::mul`] but settles for a lazy
    /// representative with one mask-selected subtraction of `2q` instead of
    /// the canonical correction loop — the form fused key-switch
    /// accumulation loops keep until the single canonicalization pass at the
    /// end.
    #[inline]
    pub fn mul_lazy(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let r = self.reduce_u128_raw(a as u128 * b as u128);
        let two_q = self.value << 1;
        let r = r - (two_q & ((r >= two_q) as u64).wrapping_neg());
        debug_assert!(r < two_q);
        r
    }

    /// Modular exponentiation `a^e mod q` by square-and-multiply.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Modular inverse of `a`, if it exists.
    ///
    /// Primality of the modulus is not assumed (so Fermat's little theorem is
    /// not applicable); the extended Euclidean algorithm is used instead, which
    /// works for any modulus and returns `None` when `gcd(a, q) != 1`.
    pub fn inv(&self, a: u64) -> Option<u64> {
        let a = self.reduce(a);
        if a == 0 {
            return None;
        }
        // Extended Euclid over signed 128-bit accumulators.
        let (mut old_r, mut r) = (a as i128, self.value as i128);
        let (mut old_s, mut s) = (1i128, 0i128);
        while r != 0 {
            let quotient = old_r / r;
            let tmp = old_r - quotient * r;
            old_r = r;
            r = tmp;
            let tmp = old_s - quotient * s;
            old_s = s;
            s = tmp;
        }
        if old_r != 1 {
            return None;
        }
        let q = self.value as i128;
        let inv = ((old_s % q) + q) % q;
        Some(inv as u64)
    }

    /// Precomputes a Shoup representation of `operand` for repeated
    /// multiplication by it modulo `q`.
    #[inline]
    pub fn shoup(&self, operand: u64) -> ShoupPrecomputed {
        debug_assert!(operand < self.value);
        let quotient = ((operand as u128) << 64) / self.value as u128;
        ShoupPrecomputed {
            operand,
            quotient: quotient as u64,
        }
    }

    /// Multiplies `a` by a Shoup-precomputed constant modulo `q`.
    #[inline]
    pub fn mul_shoup(&self, a: u64, c: &ShoupPrecomputed) -> u64 {
        self.reduce_once(self.mul_shoup_lazy(a, c))
    }

    /// Lazy Shoup multiplication: `a * c mod q` as a representative in
    /// `[0, 2q)`, skipping the final conditional subtraction.
    ///
    /// Correct for *any* `a < 2^64` (the Harvey butterflies exploit this by
    /// feeding in values up to `4q`): the quotient estimate
    /// `floor(a * c.quotient / 2^64)` undershoots the true quotient by less
    /// than `1 + a/2^64 < 2`, so `a*c.operand - estimate*q` lands in `[0, 2q)`.
    #[inline]
    pub fn mul_shoup_lazy(&self, a: u64, c: &ShoupPrecomputed) -> u64 {
        let hi = ((a as u128 * c.quotient as u128) >> 64) as u64;
        a.wrapping_mul(c.operand)
            .wrapping_sub(hi.wrapping_mul(self.value))
    }
}

/// A constant operand promoted for Shoup modular multiplication.
///
/// Produced by [`Modulus::shoup`] and consumed by [`Modulus::mul_shoup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupPrecomputed {
    /// The constant operand itself, reduced modulo `q`.
    pub operand: u64,
    /// `floor(operand * 2^64 / q)`.
    pub quotient: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mul(a: u64, b: u64, q: u64) -> u64 {
        (a as u128 * b as u128 % q as u128) as u64
    }

    #[test]
    fn new_rejects_bad_values() {
        assert!(Modulus::new(0).is_err());
        assert!(Modulus::new(1).is_err());
        assert!(Modulus::new(1 << 62).is_err());
        assert!(Modulus::new(2).is_ok());
        assert!(Modulus::new((1 << 62) - 1).is_ok());
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = Modulus::new(97).unwrap();
        for a in 0..97 {
            for b in 0..97 {
                let s = q.add(a, b);
                assert_eq!(s, (a + b) % 97);
                assert_eq!(q.sub(s, b), a);
            }
            assert_eq!(q.add(a, q.neg(a)), 0);
        }
    }

    #[test]
    fn mul_lazy_is_congruent_and_below_two_q() {
        let values = [97u64, (1 << 40) - 87, (1 << 61) + 20 * 8192 + 1];
        for q in values {
            let modulus = Modulus::new(q).unwrap();
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let a = x % q;
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let b = x % q;
                let lazy = modulus.mul_lazy(a, b);
                assert!(lazy < 2 * q);
                assert_eq!(modulus.reduce_once(lazy), naive_mul(a, b, q));
            }
        }
    }

    #[test]
    fn mul_matches_naive_small() {
        let q = Modulus::new(0xffff_ffff_0000_0001u64 >> 3).unwrap();
        let qv = q.value();
        let samples = [0u64, 1, 2, qv - 1, qv / 2, 12345, 0xdead_beef];
        for &a in &samples {
            for &b in &samples {
                let a = a % qv;
                let b = b % qv;
                assert_eq!(q.mul(a, b), naive_mul(a, b, qv), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn reduce_u128_matches_naive() {
        let q = Modulus::new((1u64 << 60) - 93).unwrap();
        let qv = q.value() as u128;
        let samples: [u128; 6] = [
            0,
            1,
            u128::MAX,
            u128::MAX / 2,
            (1u128 << 120) + 12345,
            qv * qv - 1,
        ];
        for &z in &samples {
            assert_eq!(q.reduce_u128(z) as u128, z % qv, "z={z}");
        }
    }

    #[test]
    fn pow_and_inv() {
        let q = Modulus::new(65537).unwrap();
        assert_eq!(q.pow(3, 0), 1);
        assert_eq!(q.pow(3, 16), 3u64.pow(16) % 65537);
        for a in 1..200u64 {
            let inv = q.inv(a).unwrap();
            assert_eq!(q.mul(a, inv), 1);
        }
        assert_eq!(q.inv(0), None);
    }

    #[test]
    fn inv_nonprime_modulus() {
        let q = Modulus::new(15).unwrap();
        assert_eq!(q.inv(3), None);
        assert_eq!(q.inv(2), Some(8));
    }

    #[test]
    fn lazy_ops_stay_in_declared_ranges() {
        // Exhaustive over a small modulus: outputs in [0, 2q), congruent mod q.
        let q = Modulus::new(97).unwrap();
        for a in 0..97u64 {
            for b in 0..97u64 {
                let s = q.add_lazy(a, b);
                assert!(s < 2 * 97, "add_lazy({a},{b}) = {s} escapes [0, 2q)");
                assert_eq!(s % 97, (a + b) % 97);
                assert_eq!(q.reduce_once(s), q.add(a, b));
                let d = q.sub_lazy(a, b);
                assert!(d < 2 * 97, "sub_lazy({a},{b}) = {d} escapes [0, 2q)");
                assert_eq!(q.reduce_once(d), q.sub(a, b));
            }
        }
    }

    #[test]
    fn mul_shoup_lazy_bounded_for_arbitrary_inputs() {
        // mul_shoup_lazy must stay below 2q for ANY u64 input, including
        // values far above q (the lazy NTT feeds in representatives up to 4q).
        let q = Modulus::new((1u64 << 61) - 1).unwrap();
        let qv = q.value();
        let consts = [1u64, 2, qv - 1, qv / 3, 0x0123_4567_89ab_cdef % qv];
        let inputs = [
            0u64,
            1,
            qv - 1,
            qv,
            2 * qv - 1,
            4 * qv - 1,
            u64::MAX,
            0xdead_beef_dead_beef,
        ];
        for &c in &consts {
            let pre = q.shoup(c);
            for &a in &inputs {
                let r = q.mul_shoup_lazy(a, &pre);
                assert!(r < 2 * qv, "mul_shoup_lazy({a}, {c}) = {r} >= 2q");
                assert_eq!(q.reduce_once(r) as u128, a as u128 * c as u128 % qv as u128);
            }
        }
    }

    #[test]
    fn reduce_twice_covers_full_4q_range() {
        let q = Modulus::new((1u64 << 50) - 27).unwrap();
        let qv = q.value();
        for &a in &[0, 1, qv - 1, qv, 2 * qv - 1, 2 * qv, 3 * qv + 5, 4 * qv - 1] {
            assert_eq!(q.reduce_twice(a), a % qv);
        }
    }

    #[test]
    fn shoup_matches_mul() {
        let q = Modulus::new((1u64 << 50) - 27).unwrap();
        let qv = q.value();
        let consts = [1u64, 2, qv - 1, 0x1234_5678, qv / 3];
        let inputs = [0u64, 1, qv - 1, 999_999_999, qv / 7];
        for &c in &consts {
            let pre = q.shoup(c);
            for &a in &inputs {
                assert_eq!(q.mul_shoup(a, &pre), q.mul(a, c));
            }
        }
    }
}
