//! Negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! The forward transform maps coefficient vectors into the evaluation domain in
//! which polynomial multiplication is element-wise; the inverse transform maps
//! back. Twiddle factors are powers of a primitive `2N`-th root of unity `ψ`
//! stored in bit-reversed order and promoted to Shoup form, following the
//! Longa–Naehrig formulation also used by SEAL.
//!
//! # Lazy reduction
//!
//! The butterflies are Harvey-style: instead of reducing to canonical `[0, q)`
//! after every addition and multiplication, values travel as *lazy*
//! representatives and a single correction pass runs at the end. The range
//! invariants (safe for every `q < 2^62`, i.e. `4q < 2^64`):
//!
//! * [`NttTables::forward_lazy`] — accepts values in `[0, 4q)`, leaves values
//!   in `[0, 4q)`. Each butterfly conditionally subtracts `2q` from the upper
//!   input (to `[0, 2q)`), computes the Shoup product lazily (to `[0, 2q)`),
//!   and emits `u + v` and `u + 2q - v`, both `< 4q`.
//! * [`NttTables::inverse_lazy`] — accepts values in `[0, 2q)`, leaves values
//!   in `[0, 2q)` (including the final `N^{-1}` scaling, applied lazily).
//! * [`NttTables::forward`] / [`NttTables::inverse`] — canonical wrappers:
//!   same transform followed by the correction pass back to `[0, q)`.
//!
//! Twiddle factors are stored as flat structure-of-arrays (`operand[]` and
//! `quotient[]` side by side) rather than an array of
//! [`ShoupPrecomputed`] structs, so the
//! strided butterfly loops stream two dense `u64` arrays instead of
//! interleaved pairs.

use crate::modulus::{Modulus, ShoupPrecomputed};
use crate::primes::primitive_root_of_unity;

/// Precomputed tables for the negacyclic NTT of a fixed degree and modulus.
///
/// Twiddles are kept in flat SoA arrays: index `i` of the operand array pairs
/// with index `i` of the quotient array.
#[derive(Debug, Clone)]
pub struct NttTables {
    degree: usize,
    modulus: Modulus,
    /// ψ^bitrev(i), i in 0..N.
    root_operands: Vec<u64>,
    /// `floor(ψ^bitrev(i) · 2^64 / q)`.
    root_quotients: Vec<u64>,
    /// ψ^{-bitrev(i)}, i in 0..N.
    inv_root_operands: Vec<u64>,
    /// `floor(ψ^{-bitrev(i)} · 2^64 / q)`.
    inv_root_quotients: Vec<u64>,
    /// N^{-1} mod q in Shoup form (applied to the sum outputs of the fused
    /// final inverse stage).
    inv_degree: ShoupPrecomputed,
    /// `ψ^{-bitrev(1)} · N^{-1} mod q` in Shoup form: the last inverse stage's
    /// single twiddle with the `N^{-1}` scaling folded in, so the inverse
    /// transform needs no separate scaling pass over the array.
    inv_root_last_scaled: ShoupPrecomputed,
}

/// Error returned when NTT tables cannot be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NttError {
    /// Degree must be a power of two and at least 2.
    InvalidDegree(usize),
    /// The modulus does not support a `2N`-th root of unity.
    IncompatibleModulus {
        /// The offending modulus value.
        modulus: u64,
        /// The requested degree.
        degree: usize,
    },
}

impl std::fmt::Display for NttError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NttError::InvalidDegree(n) => write!(f, "invalid NTT degree {n}"),
            NttError::IncompatibleModulus { modulus, degree } => write!(
                f,
                "modulus {modulus} does not admit a primitive {}-th root of unity",
                2 * degree
            ),
        }
    }
}

impl std::error::Error for NttError {}

pub(crate) fn bit_reverse(mut value: usize, bits: u32) -> usize {
    let mut result = 0usize;
    for _ in 0..bits {
        result = (result << 1) | (value & 1);
        value >>= 1;
    }
    result
}

impl NttTables {
    /// Builds NTT tables for ring degree `degree` over `modulus`.
    ///
    /// # Errors
    ///
    /// Returns [`NttError`] if the degree is not a power of two or if the
    /// modulus is not congruent to 1 modulo `2 * degree`.
    pub fn new(degree: usize, modulus: Modulus) -> Result<Self, NttError> {
        if degree < 2 || !degree.is_power_of_two() {
            return Err(NttError::InvalidDegree(degree));
        }
        let q = modulus.value();
        if !(q - 1).is_multiple_of(2 * degree as u64) {
            return Err(NttError::IncompatibleModulus { modulus: q, degree });
        }
        let log_n = degree.trailing_zeros();
        let psi = primitive_root_of_unity(&modulus, 2 * degree as u64);
        let psi_inv = modulus
            .inv(psi)
            .expect("primitive root is invertible modulo a prime");

        let mut power = 1u64;
        let mut inv_power = 1u64;
        // powers[bitrev(i)] = psi^i
        let mut plain = vec![0u64; degree];
        let mut plain_inv = vec![0u64; degree];
        for i in 0..degree {
            plain[i] = power;
            plain_inv[i] = inv_power;
            power = modulus.mul(power, psi);
            inv_power = modulus.mul(inv_power, psi_inv);
        }
        let mut root_operands = vec![0u64; degree];
        let mut root_quotients = vec![0u64; degree];
        let mut inv_root_operands = vec![0u64; degree];
        let mut inv_root_quotients = vec![0u64; degree];
        for i in 0..degree {
            let fwd = modulus.shoup(plain[bit_reverse(i, log_n)]);
            root_operands[i] = fwd.operand;
            root_quotients[i] = fwd.quotient;
            let inv = modulus.shoup(plain_inv[bit_reverse(i, log_n)]);
            inv_root_operands[i] = inv.operand;
            inv_root_quotients[i] = inv.quotient;
        }
        let inv_n = modulus
            .inv(degree as u64)
            .expect("degree is invertible modulo an odd prime");
        let inv_degree = modulus.shoup(inv_n);
        // The final inverse stage (m == 2) uses the single twiddle at index 1;
        // pre-scale it by N^{-1} so that stage also performs the scaling.
        let inv_root_last_scaled =
            modulus.shoup(modulus.mul(plain_inv[bit_reverse(1, log_n)], inv_n));
        Ok(Self {
            degree,
            modulus,
            root_operands,
            root_quotients,
            inv_root_operands,
            inv_root_quotients,
            inv_degree,
            inv_root_last_scaled,
        })
    }

    /// The ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The coefficient modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT (coefficient → evaluation domain),
    /// producing canonical `[0, q)` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the table degree.
    pub fn forward(&self, values: &mut [u64]) {
        self.forward_lazy(values);
        let q = &self.modulus;
        for value in values.iter_mut() {
            *value = q.reduce_twice(*value);
        }
    }

    /// In-place forward negacyclic NTT with deferred reduction: accepts inputs
    /// in `[0, 4q)` and leaves outputs in `[0, 4q)`.
    ///
    /// The Harvey butterfly keeps every intermediate below `4q < 2^64`; run
    /// [`Modulus::reduce_twice`] over the values (or call
    /// [`NttTables::forward`]) for canonical outputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the table degree.
    pub fn forward_lazy(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "NTT input length mismatch");
        debug_assert!(
            values
                .iter()
                .all(|&v| (v as u128) < 4 * self.modulus.value() as u128),
            "forward_lazy input escapes [0, 4q)"
        );
        let q = self.modulus.value();
        let two_q = q << 1;
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let w = self.root_operands[m + i];
                let w_quot = self.root_quotients[m + i];
                let (lower, upper) = values[j1..j1 + 2 * t].split_at_mut(t);
                for (x, y) in lower.iter_mut().zip(upper.iter_mut()) {
                    // u in [0, 2q); v = y·w mod q as a [0, 2q) representative.
                    let u = if *x >= two_q { *x - two_q } else { *x };
                    let hi = ((*y as u128 * w_quot as u128) >> 64) as u64;
                    let v = y.wrapping_mul(w).wrapping_sub(hi.wrapping_mul(q));
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            m <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation → coefficient domain),
    /// producing canonical `[0, q)` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the table degree.
    pub fn inverse(&self, values: &mut [u64]) {
        self.inverse_lazy(values);
        let q = &self.modulus;
        for value in values.iter_mut() {
            *value = q.reduce_once(*value);
        }
    }

    /// In-place inverse negacyclic NTT with deferred reduction: accepts inputs
    /// in `[0, 2q)` and leaves outputs in `[0, 2q)`. The final `N^{-1}`
    /// scaling is **merged into the last butterfly stage** — its sum output is
    /// multiplied by `N^{-1}` and its difference output by the pre-scaled
    /// twiddle `ψ^{-bitrev(1)}·N^{-1}`, both as lazy Shoup products — so no
    /// separate scaling pass over the array is needed.
    ///
    /// Run [`Modulus::reduce_once`] over the values (or call
    /// [`NttTables::inverse`]) for canonical outputs.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the table degree.
    pub fn inverse_lazy(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "NTT input length mismatch");
        debug_assert!(
            values
                .iter()
                .all(|&v| (v as u128) < 2 * self.modulus.value() as u128),
            "inverse_lazy input escapes [0, 2q): reduce forward_lazy output first"
        );
        let q = self.modulus.value();
        let two_q = q << 1;
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 2 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let w = self.inv_root_operands[h + i];
                let w_quot = self.inv_root_quotients[h + i];
                let (lower, upper) = values[j1..j1 + 2 * t].split_at_mut(t);
                for (x, y) in lower.iter_mut().zip(upper.iter_mut()) {
                    // u, v in [0, 2q); sums stay below 4q < 2^64.
                    let u = *x;
                    let v = *y;
                    let s = u + v;
                    *x = if s >= two_q { s - two_q } else { s };
                    let d = u + two_q - v;
                    let hi = ((d as u128 * w_quot as u128) >> 64) as u64;
                    *y = d.wrapping_mul(w).wrapping_sub(hi.wrapping_mul(q));
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        // Fused final stage (m == 2, one twiddle, halves at distance N/2):
        // both butterfly outputs absorb the N^{-1} scaling. The Shoup product
        // accepts the unreduced [0, 4q) sums directly and emits [0, 2q).
        let modulus = &self.modulus;
        let inv_n = &self.inv_degree;
        let w_n = &self.inv_root_last_scaled;
        let (lower, upper) = values.split_at_mut(t);
        for (x, y) in lower.iter_mut().zip(upper.iter_mut()) {
            let u = *x;
            let v = *y;
            *x = modulus.mul_shoup_lazy(u + v, inv_n);
            *y = modulus.mul_shoup_lazy(u + two_q - v, w_n);
        }
    }
}

/// Multiplies two polynomials of `Z_q[X]/(X^N+1)` given in coefficient form,
/// returning the coefficient-form product. Intended for tests and small sizes;
/// the executor works in the evaluation domain instead.
pub fn negacyclic_multiply_naive(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(n, b.len());
    let mut out = vec![0u64; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = modulus.mul(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn tables(degree: usize, bits: u32) -> NttTables {
        let q = generate_ntt_primes(degree, &[bits]).unwrap()[0];
        NttTables::new(degree, Modulus::new(q).unwrap()).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        let q = Modulus::new(97).unwrap();
        assert!(matches!(
            NttTables::new(100, q),
            Err(NttError::InvalidDegree(100))
        ));
        // 97 - 1 = 96 is not divisible by 2*64 = 128.
        assert!(matches!(
            NttTables::new(64, q),
            Err(NttError::IncompatibleModulus { .. })
        ));
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let degree = 256;
        let ntt = tables(degree, 50);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let original: Vec<u64> = (0..degree)
            .map(|_| rng.gen_range(0..ntt.modulus().value()))
            .collect();
        let mut values = original.clone();
        ntt.forward(&mut values);
        assert_ne!(values, original, "transform should not be the identity");
        ntt.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn lazy_forward_respects_4q_bound_and_matches_canonical() {
        let degree = 512;
        let ntt = tables(degree, 60);
        let q = ntt.modulus().value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let original: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q)).collect();

        let mut lazy = original.clone();
        ntt.forward_lazy(&mut lazy);
        assert!(
            lazy.iter().all(|&v| (v as u128) < 4 * q as u128),
            "forward_lazy output escapes [0, 4q)"
        );

        let mut canonical = original.clone();
        ntt.forward(&mut canonical);
        assert!(canonical.iter().all(|&v| v < q));
        let corrected: Vec<u64> = lazy
            .iter()
            .map(|&v| ntt.modulus().reduce_twice(v))
            .collect();
        assert_eq!(corrected, canonical);
    }

    #[test]
    fn lazy_inverse_respects_2q_bound_and_matches_canonical() {
        let degree = 512;
        let ntt = tables(degree, 60);
        let q = ntt.modulus().value();
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let mut eval: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q)).collect();
        ntt.forward(&mut eval);

        let mut lazy = eval.clone();
        ntt.inverse_lazy(&mut lazy);
        assert!(
            lazy.iter().all(|&v| (v as u128) < 2 * q as u128),
            "inverse_lazy output escapes [0, 2q)"
        );

        let mut canonical = eval.clone();
        ntt.inverse(&mut canonical);
        assert!(canonical.iter().all(|&v| v < q));
        let corrected: Vec<u64> = lazy.iter().map(|&v| ntt.modulus().reduce_once(v)).collect();
        assert_eq!(corrected, canonical);
    }

    #[test]
    fn pointwise_product_matches_naive_negacyclic() {
        let degree = 64;
        let ntt = tables(degree, 40);
        let q = *ntt.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q.value())).collect();
        let b: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q.value())).collect();
        let expected = negacyclic_multiply_naive(&a, &b, &q);

        let mut fa = a.clone();
        let mut fb = b.clone();
        ntt.forward(&mut fa);
        ntt.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        ntt.inverse(&mut fc);
        assert_eq!(fc, expected);
    }

    #[test]
    fn multiplying_by_x_rotates_negacyclically() {
        let degree = 32;
        let ntt = tables(degree, 30);
        let q = *ntt.modulus();
        // a = X^(N-1), b = X  =>  a*b = X^N = -1.
        let mut a = vec![0u64; degree];
        a[degree - 1] = 1;
        let mut b = vec![0u64; degree];
        b[1] = 1;
        let product = negacyclic_multiply_naive(&a, &b, &q);
        let mut expected = vec![0u64; degree];
        expected[0] = q.value() - 1;
        assert_eq!(product, expected);
    }
}
