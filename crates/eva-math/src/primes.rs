//! Primality testing and NTT-friendly prime generation.
//!
//! The RNS-CKKS coefficient modulus is a product of word-sized primes, each of
//! which must satisfy `q ≡ 1 (mod 2N)` so that the negacyclic NTT of degree `N`
//! exists modulo `q`. [`generate_ntt_primes`] produces distinct primes with the
//! requested bit sizes, mirroring SEAL's `CoeffModulus::Create`.

use crate::modulus::Modulus;

/// Deterministic Miller–Rabin primality test, valid for all `u64` inputs.
///
/// Uses the fixed witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`
/// which is known to be sufficient for 64-bit integers.
///
/// # Examples
///
/// ```
/// use eva_math::is_prime;
/// assert!(is_prime((1u64 << 61) - 1)); // Mersenne prime
/// assert!(!is_prime(1_000_000_000));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    let modulus = match Modulus::new(n) {
        Ok(m) => m,
        // Values >= 2^62 fall back to plain u128 arithmetic.
        Err(_) => return is_prime_u128(n, d, s),
    };
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = modulus.pow(a % n, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = modulus.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn is_prime_u128(n: u64, d: u64, s: u32) -> bool {
    let n128 = n as u128;
    let pow = |mut base: u128, mut e: u64| -> u128 {
        let mut acc = 1u128;
        base %= n128;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base % n128;
            }
            base = base * base % n128;
            e >>= 1;
        }
        acc
    };
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow(a as u128, d);
        if x == 1 || x == n128 - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x * x % n128;
            if x == n128 - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Error returned by [`generate_ntt_primes`] when a request cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimeGenError {
    /// The polynomial degree must be a power of two and at least 2.
    InvalidDegree(usize),
    /// A requested bit size was outside the supported range `[2, 61]`.
    InvalidBitSize(u32),
    /// No more primes of the requested size exist for this degree.
    Exhausted {
        /// Bit size that could not be satisfied.
        bit_size: u32,
        /// Ring degree for which the prime was requested.
        degree: usize,
    },
}

impl std::fmt::Display for PrimeGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrimeGenError::InvalidDegree(n) => write!(f, "invalid polynomial degree {n}"),
            PrimeGenError::InvalidBitSize(b) => write!(f, "invalid prime bit size {b}"),
            PrimeGenError::Exhausted { bit_size, degree } => write!(
                f,
                "no more {bit_size}-bit NTT primes available for degree {degree}"
            ),
        }
    }
}

impl std::error::Error for PrimeGenError {}

/// The *nominal* bit size of a prime `q`: the integer `s` minimizing
/// `|log2 q − s|`. A prime just **above** `2^s` still has nominal size `s`
/// (its raw bit count is `s + 1`), which is what the closest-prime search of
/// [`generate_ntt_primes`] produces.
///
/// # Examples
///
/// ```
/// use eva_math::nominal_prime_bits;
/// assert_eq!(nominal_prime_bits((1u64 << 40) - 87), 40); // just below 2^40
/// assert_eq!(nominal_prime_bits((1u64 << 40) + 453), 40); // just above 2^40
/// assert_eq!(nominal_prime_bits(3), 2);
/// ```
pub fn nominal_prime_bits(q: u64) -> u32 {
    debug_assert!(q >= 2);
    let raw = 64 - q.leading_zeros();
    // q ∈ [2^(raw-1), 2^raw): log2 q rounds up to `raw` iff it is ≥ raw - 0.5.
    if (q as f64).log2() >= f64::from(raw) - 0.5 {
        raw
    } else {
        raw - 1
    }
}

/// Generates distinct primes `q_i ≡ 1 (mod 2N)`, each as **close to `2^s` as
/// possible** for its requested size `s`.
///
/// The search walks outwards from `2^s` over both smaller and larger
/// candidates in order of distance, so the chosen primes minimize
/// `|log2 q − s|` — and with them the per-rescale scale drift the compiler's
/// exact-scale phase has to correct (a rescale divides the scale by the
/// *actual* prime, not by `2^s`). Primes of equal requested size are
/// distinct (the k-th request gets the k-th closest prime); results are
/// deterministic. Note that a prime just above `2^s` has `s + 1` raw bits
/// but nominal size `s` (see [`nominal_prime_bits`]).
///
/// # Errors
///
/// Returns an error if `degree` is not a power of two, a bit size is outside
/// `[2, 61]`, or the supply of suitable primes is exhausted.
///
/// # Examples
///
/// ```
/// use eva_math::{generate_ntt_primes, nominal_prime_bits};
/// let primes = generate_ntt_primes(4096, &[40, 40, 60]).unwrap();
/// assert_eq!(primes.len(), 3);
/// assert!(primes.iter().all(|&q| q % (2 * 4096) == 1));
/// assert_eq!(primes.iter().map(|&q| nominal_prime_bits(q)).collect::<Vec<_>>(), vec![40, 40, 60]);
/// ```
pub fn generate_ntt_primes(degree: usize, bit_sizes: &[u32]) -> Result<Vec<u64>, PrimeGenError> {
    if degree < 2 || !degree.is_power_of_two() {
        return Err(PrimeGenError::InvalidDegree(degree));
    }
    let factor = 2 * degree as u64;
    let mut result: Vec<u64> = Vec::with_capacity(bit_sizes.len());
    for &bits in bit_sizes {
        if !(2..=61).contains(&bits) {
            return Err(PrimeGenError::InvalidBitSize(bits));
        }
        let target = 1u64 << bits;
        // Candidate ladder: `below` descends from the largest `k·2N + 1` not
        // exceeding the target, `above` ascends from the next rung up. Each
        // side stays valid while its candidate still rounds to `bits`
        // (`nominal_prime_bits`), which also keeps every candidate well below
        // the 2^62 modulus limit.
        let mut below = (target - 1) / factor * factor + 1;
        let mut above = below + factor;
        let valid = |c: u64| c > 2 && nominal_prime_bits(c) == bits;
        let mut found = None;
        while found.is_none() {
            let below_ok = valid(below);
            let above_ok = valid(above);
            let candidate = match (below_ok, above_ok) {
                (false, false) => {
                    return Err(PrimeGenError::Exhausted {
                        bit_size: bits,
                        degree,
                    })
                }
                (true, false) => true,
                (false, true) => false,
                // Both in range: take whichever is closer to 2^s.
                (true, true) => target - below <= above - target,
            };
            if candidate {
                if is_prime(below) && !result.contains(&below) {
                    found = Some(below);
                }
                below = below.saturating_sub(factor);
            } else {
                if is_prime(above) && !result.contains(&above) {
                    found = Some(above);
                }
                above += factor;
            }
        }
        result.push(found.expect("loop exits only with a prime"));
    }
    Ok(result)
}

/// Returns the minimal primitive root modulo the prime `q`, i.e. a generator of
/// the multiplicative group `Z_q^*`.
///
/// # Panics
///
/// Panics if `q` is not prime (the factorization loop would not terminate
/// meaningfully); this is an internal helper exposed for the NTT tables.
pub fn primitive_root(modulus: &Modulus) -> u64 {
    let q = modulus.value();
    let group_order = q - 1;
    // Factor the group order (word-sized trial division is fine here; this runs
    // once per prime at context-creation time).
    let mut factors = Vec::new();
    let mut m = group_order;
    let mut p = 2u64;
    while p * p <= m {
        if m.is_multiple_of(p) {
            factors.push(p);
            while m.is_multiple_of(p) {
                m /= p;
            }
        }
        p += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    'candidate: for g in 2..q {
        for &f in &factors {
            if modulus.pow(g, group_order / f) == 1 {
                continue 'candidate;
            }
        }
        return g;
    }
    unreachable!("every prime field has a primitive root")
}

/// Returns a primitive `order`-th root of unity modulo the prime `q`.
///
/// # Panics
///
/// Panics if `order` does not divide `q - 1`.
pub fn primitive_root_of_unity(modulus: &Modulus, order: u64) -> u64 {
    let q = modulus.value();
    assert!(
        (q - 1).is_multiple_of(order),
        "order {order} does not divide q-1 for q={q}"
    );
    let g = primitive_root(modulus);
    modulus.pow(g, (q - 1) / order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 97, 65537];
        for &p in &primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 91, 561, 1_000_000, 6_700_417 * 3];
        for &c in &composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime((1u64 << 61) - 1));
        assert!(is_prime(0xffff_ffff_0000_0001)); // Goldilocks, 2^64 - 2^32 + 1
        assert!(!is_prime((1u64 << 61) - 3));
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        let degree = 2048;
        let primes = generate_ntt_primes(degree, &[30, 30, 40, 60]).unwrap();
        assert_eq!(primes.len(), 4);
        for (i, &q) in primes.iter().enumerate() {
            assert!(is_prime(q));
            assert_eq!(q % (2 * degree as u64), 1);
            let requested = [30u32, 30, 40, 60][i];
            assert_eq!(nominal_prime_bits(q), requested);
        }
        // Equal bit sizes must still give distinct primes.
        assert_ne!(primes[0], primes[1]);
    }

    #[test]
    fn generated_primes_are_the_closest_to_the_target_power() {
        // No other NTT-friendly prime of the same nominal size may lie
        // strictly closer to 2^s than the chosen one.
        let degree = 1024;
        let factor = 2 * degree as u64;
        for bits in [20u32, 30, 40, 50, 60] {
            let q = generate_ntt_primes(degree, &[bits]).unwrap()[0];
            let target = 1u64 << bits;
            let distance = target.abs_diff(q);
            let mut c = (target - 1) / factor * factor + 1;
            // Scan every candidate strictly closer than the chosen prime.
            let mut closer: Vec<u64> = Vec::new();
            while target - c < distance {
                closer.push(c);
                c -= factor;
            }
            let mut c = (target - 1) / factor * factor + 1 + factor;
            while c - target < distance {
                closer.push(c);
                c += factor;
            }
            assert!(
                closer.iter().all(|&c| !is_prime(c)),
                "{bits}-bit: a closer NTT prime than {q} exists"
            );
        }
    }

    #[test]
    fn nominal_bits_round_to_the_nearest_power() {
        assert_eq!(nominal_prime_bits(2), 1);
        assert_eq!(nominal_prime_bits(3), 2);
        assert_eq!(nominal_prime_bits(4), 2);
        assert_eq!(nominal_prime_bits(6), 3);
        assert_eq!(nominal_prime_bits((1u64 << 50) - 27), 50);
        assert_eq!(nominal_prime_bits((1u64 << 50) + 1), 50);
        assert_eq!(nominal_prime_bits((1u64 << 60) + 1), 60);
        // Exactly halfway in the log domain rounds up.
        let sqrt2_mid = ((1u64 << 40) as f64 * std::f64::consts::SQRT_2) as u64;
        assert_eq!(nominal_prime_bits(sqrt2_mid + 2), 41);
    }

    #[test]
    fn generation_rejects_bad_input() {
        assert!(matches!(
            generate_ntt_primes(1000, &[30]),
            Err(PrimeGenError::InvalidDegree(1000))
        ));
        assert!(matches!(
            generate_ntt_primes(1024, &[62]),
            Err(PrimeGenError::InvalidBitSize(62))
        ));
        assert!(matches!(
            generate_ntt_primes(1024, &[1]),
            Err(PrimeGenError::InvalidBitSize(1))
        ));
    }

    #[test]
    fn primitive_root_of_unity_has_exact_order() {
        let degree = 1024u64;
        let primes = generate_ntt_primes(degree as usize, &[40]).unwrap();
        let q = Modulus::new(primes[0]).unwrap();
        let w = primitive_root_of_unity(&q, 2 * degree);
        assert_eq!(q.pow(w, 2 * degree), 1);
        assert_ne!(q.pow(w, degree), 1, "root must be primitive");
    }
}
