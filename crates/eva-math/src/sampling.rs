//! Random samplers used by RLWE key generation and encryption.
//!
//! * [`sample_uniform_poly`] — coefficients uniform in `[0, q)` (the public-key
//!   "a" component).
//! * [`sample_ternary`] — uniform ternary secrets in `{-1, 0, 1}`.
//! * [`sample_cbd`] — small errors from a centered binomial distribution with
//!   standard deviation ≈ 3.2, the value mandated by the homomorphic
//!   encryption security standard and used by SEAL.

use crate::modulus::Modulus;
use rand::Rng;

/// Samples a polynomial with coefficients uniform in `[0, q)`.
pub fn sample_uniform_poly<R: Rng + ?Sized>(
    rng: &mut R,
    degree: usize,
    modulus: &Modulus,
) -> Vec<u64> {
    let mut out = vec![0u64; degree];
    sample_uniform_into(rng, &mut out, modulus);
    out
}

/// Fills an existing slice with coefficients uniform in `[0, q)`.
///
/// Allocation-free variant of [`sample_uniform_poly`] for callers that sample
/// directly into a residue row of a preallocated polynomial.
pub fn sample_uniform_into<R: Rng + ?Sized>(rng: &mut R, out: &mut [u64], modulus: &Modulus) {
    for v in out.iter_mut() {
        *v = rng.gen_range(0..modulus.value());
    }
}

/// Samples a uniformly random ternary polynomial with entries in `{-1, 0, 1}`.
pub fn sample_ternary<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> Vec<i8> {
    (0..degree).map(|_| rng.gen_range(-1i8..=1)).collect()
}

/// Number of coin pairs used by the centered binomial sampler; 21 pairs give a
/// variance of 10.5, i.e. a standard deviation of ≈ 3.24, matching the
/// error distribution SEAL targets (σ = 3.2).
pub const CBD_PAIRS: u32 = 21;

/// Samples a small error polynomial from a centered binomial distribution.
///
/// Each coefficient is the difference of two binomial(21, 1/2) samples, giving
/// mean 0 and standard deviation ≈ 3.24.
pub fn sample_cbd<R: Rng + ?Sized>(rng: &mut R, degree: usize) -> Vec<i8> {
    (0..degree)
        .map(|_| {
            let mut acc = 0i16;
            // Draw 2*CBD_PAIRS bits from a single u64 per coefficient.
            let bits: u64 = rng.gen();
            for pair in 0..CBD_PAIRS {
                let b0 = (bits >> (2 * pair)) & 1;
                let b1 = (bits >> (2 * pair + 1)) & 1;
                acc += b0 as i16 - b1 as i16;
            }
            acc as i8
        })
        .collect()
}

/// Converts a signed small polynomial into residues modulo `q`.
pub fn signed_to_residues(values: &[i8], modulus: &Modulus) -> Vec<u64> {
    values
        .iter()
        .map(|&v| {
            if v >= 0 {
                v as u64 % modulus.value()
            } else {
                modulus.value() - ((-v) as u64 % modulus.value())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_poly_in_range() {
        let q = Modulus::new(65537).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let poly = sample_uniform_poly(&mut rng, 1024, &q);
        assert_eq!(poly.len(), 1024);
        assert!(poly.iter().all(|&c| c < 65537));
        // Not all equal (overwhelmingly likely for a working sampler).
        assert!(poly.iter().any(|&c| c != poly[0]));
    }

    #[test]
    fn ternary_values_and_balance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let poly = sample_ternary(&mut rng, 10_000);
        assert!(poly.iter().all(|&v| (-1..=1).contains(&v)));
        let mean: f64 = poly.iter().map(|&v| v as f64).sum::<f64>() / poly.len() as f64;
        assert!(mean.abs() < 0.05, "ternary sampler is badly biased: {mean}");
    }

    #[test]
    fn cbd_standard_deviation_close_to_target() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let poly = sample_cbd(&mut rng, 50_000);
        let mean: f64 = poly.iter().map(|&v| v as f64).sum::<f64>() / poly.len() as f64;
        let var: f64 =
            poly.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / poly.len() as f64;
        assert!(mean.abs() < 0.1);
        assert!((var.sqrt() - 3.24).abs() < 0.2, "sigma = {}", var.sqrt());
    }

    #[test]
    fn signed_residue_conversion() {
        let q = Modulus::new(97).unwrap();
        let values = [-3i8, -1, 0, 1, 5];
        let residues = signed_to_residues(&values, &q);
        assert_eq!(residues, vec![94, 96, 0, 1, 5]);
    }
}
