//! Property-based tests for the arithmetic substrate.

use eva_math::modulus::Modulus;
use eva_math::ntt::{negacyclic_multiply_naive, NttTables};
use eva_math::primes::generate_ntt_primes;
use eva_math::{Complex, SpecialFft};
use proptest::prelude::*;

fn arb_modulus() -> impl Strategy<Value = Modulus> {
    // A spread of interesting prime moduli between 2 and 61 bits.
    prop::sample::select(vec![
        3u64,
        257,
        65537,
        (1 << 30) - 35,
        (1 << 40) - 87,
        (1 << 50) - 27,
        2_305_843_009_213_693_951, // 2^61 - 1
    ])
    .prop_map(|q| Modulus::new(q).unwrap())
}

proptest! {
    #[test]
    fn barrett_reduction_matches_u128_remainder(q in arb_modulus(), z in any::<u128>()) {
        prop_assert_eq!(q.reduce_u128(z) as u128, z % q.value() as u128);
    }

    #[test]
    fn modular_mul_is_commutative_and_associative(
        q in arb_modulus(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let (a, b, c) = (q.reduce(a), q.reduce(b), q.reduce(c));
        prop_assert_eq!(q.mul(a, b), q.mul(b, a));
        prop_assert_eq!(q.mul(q.mul(a, b), c), q.mul(a, q.mul(b, c)));
        // Distributivity over addition.
        prop_assert_eq!(q.mul(a, q.add(b, c)), q.add(q.mul(a, b), q.mul(a, c)));
    }

    #[test]
    fn modular_inverse_is_two_sided(q in arb_modulus(), a in 1u64..u64::MAX) {
        let a = q.reduce(a);
        if a != 0 {
            if let Some(inv) = q.inv(a) {
                prop_assert_eq!(q.mul(a, inv), 1);
                prop_assert_eq!(q.mul(inv, a), 1);
            }
        }
    }

    #[test]
    fn shoup_multiplication_matches_barrett(q in arb_modulus(), a in any::<u64>(), c in any::<u64>()) {
        let a = q.reduce(a);
        let c = q.reduce(c);
        let pre = q.shoup(c);
        prop_assert_eq!(q.mul_shoup(a, &pre), q.mul(a, c));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ntt_roundtrip_and_convolution(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let degree = 128usize;
        let q_val = generate_ntt_primes(degree, &[45]).unwrap()[0];
        let q = Modulus::new(q_val).unwrap();
        let ntt = NttTables::new(degree, q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();
        let b: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();

        // Round trip.
        let mut fa = a.clone();
        ntt.forward(&mut fa);
        let mut back = fa.clone();
        ntt.inverse(&mut back);
        prop_assert_eq!(&back, &a);

        // Convolution theorem against the naive negacyclic product.
        let mut fb = b.clone();
        ntt.forward(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        ntt.inverse(&mut prod);
        prop_assert_eq!(prod, negacyclic_multiply_naive(&a, &b, &q));
    }

    #[test]
    fn canonical_embedding_roundtrip(values in prop::collection::vec(-1000.0f64..1000.0, 32)) {
        let fft = SpecialFft::new(128);
        let original: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let mut work = original.clone();
        fft.embed_inverse(&mut work);
        fft.embed(&mut work);
        for (a, b) in work.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn embedding_is_linear(values in prop::collection::vec(-100.0f64..100.0, 16), scale in 1.0f64..8.0) {
        // embed_inverse(scale * v) == scale * embed_inverse(v)
        let fft = SpecialFft::new(64);
        let mut a: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let mut b: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v * scale)).collect();
        fft.embed_inverse(&mut a);
        fft.embed_inverse(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.re * scale - y.re).abs() < 1e-6);
            prop_assert!((x.im * scale - y.im).abs() < 1e-6);
        }
    }
}
