//! Property-based tests for the arithmetic substrate.

use eva_math::modulus::Modulus;
use eva_math::ntt::{negacyclic_multiply_naive, NttTables};
use eva_math::primes::generate_ntt_primes;
use eva_math::{Complex, SpecialFft};
use proptest::prelude::*;

fn arb_modulus() -> impl Strategy<Value = Modulus> {
    // A spread of interesting prime moduli between 2 and 61 bits.
    prop::sample::select(vec![
        3u64,
        257,
        65537,
        (1 << 30) - 35,
        (1 << 40) - 87,
        (1 << 50) - 27,
        2_305_843_009_213_693_951, // 2^61 - 1
    ])
    .prop_map(|q| Modulus::new(q).unwrap())
}

proptest! {
    #[test]
    fn barrett_reduction_matches_u128_remainder(q in arb_modulus(), z in any::<u128>()) {
        prop_assert_eq!(q.reduce_u128(z) as u128, z % q.value() as u128);
    }

    #[test]
    fn modular_mul_is_commutative_and_associative(
        q in arb_modulus(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let (a, b, c) = (q.reduce(a), q.reduce(b), q.reduce(c));
        prop_assert_eq!(q.mul(a, b), q.mul(b, a));
        prop_assert_eq!(q.mul(q.mul(a, b), c), q.mul(a, q.mul(b, c)));
        // Distributivity over addition.
        prop_assert_eq!(q.mul(a, q.add(b, c)), q.add(q.mul(a, b), q.mul(a, c)));
    }

    #[test]
    fn modular_inverse_is_two_sided(q in arb_modulus(), a in 1u64..u64::MAX) {
        let a = q.reduce(a);
        if a != 0 {
            if let Some(inv) = q.inv(a) {
                prop_assert_eq!(q.mul(a, inv), 1);
                prop_assert_eq!(q.mul(inv, a), 1);
            }
        }
    }

    #[test]
    fn shoup_multiplication_matches_barrett(q in arb_modulus(), a in any::<u64>(), c in any::<u64>()) {
        let a = q.reduce(a);
        let c = q.reduce(c);
        let pre = q.shoup(c);
        prop_assert_eq!(q.mul_shoup(a, &pre), q.mul(a, c));
    }
}

/// Strict reference forward NTT: the pre-lazy Longa–Naehrig loop that reduces
/// to canonical `[0, q)` after every butterfly. The lazy Harvey kernels in
/// `NttTables` must produce bit-identical output.
fn forward_reference(values: &mut [u64], q: &Modulus, psi: u64) {
    let n = values.len();
    let log_n = n.trailing_zeros();
    let bit_reverse = |mut v: usize, bits: u32| {
        let mut r = 0usize;
        for _ in 0..bits {
            r = (r << 1) | (v & 1);
            v >>= 1;
        }
        r
    };
    // roots[bitrev(i)] = psi^i
    let mut roots = vec![0u64; n];
    let mut power = 1u64;
    for i in 0..n {
        roots[i] = power;
        power = q.mul(power, psi);
    }
    let roots: Vec<u64> = (0..n).map(|i| roots[bit_reverse(i, log_n)]).collect();
    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        for i in 0..m {
            let j1 = 2 * i * t;
            let s = roots[m + i];
            for j in j1..j1 + t {
                let u = values[j];
                let v = q.mul(values[j + t], s);
                values[j] = q.add(u, v);
                values[j + t] = q.sub(u, v);
            }
        }
        m <<= 1;
    }
}

/// Strict reference inverse NTT (canonical reduction after every butterfly).
fn inverse_reference(values: &mut [u64], q: &Modulus, psi: u64) {
    let n = values.len();
    let log_n = n.trailing_zeros();
    let bit_reverse = |mut v: usize, bits: u32| {
        let mut r = 0usize;
        for _ in 0..bits {
            r = (r << 1) | (v & 1);
            v >>= 1;
        }
        r
    };
    let psi_inv = q.inv(psi).unwrap();
    let mut roots = vec![0u64; n];
    let mut power = 1u64;
    for i in 0..n {
        roots[i] = power;
        power = q.mul(power, psi_inv);
    }
    let roots: Vec<u64> = (0..n).map(|i| roots[bit_reverse(i, log_n)]).collect();
    let mut t = 1usize;
    let mut m = n;
    while m > 1 {
        let h = m >> 1;
        let mut j1 = 0usize;
        for i in 0..h {
            let s = roots[h + i];
            for j in j1..j1 + t {
                let u = values[j];
                let v = values[j + t];
                values[j] = q.add(u, v);
                values[j + t] = q.mul(q.sub(u, v), s);
            }
            j1 += 2 * t;
        }
        t <<= 1;
        m = h;
    }
    let inv_n = q.inv(n as u64).unwrap();
    for v in values.iter_mut() {
        *v = q.mul(*v, inv_n);
    }
}

/// Recovers the 2N-th root ψ the tables were built from: forward-transforming
/// the polynomial X puts ψ^{bitrev-order} in the output; the easiest stable
/// way is to regenerate it the same way `NttTables` does, via the shared
/// public primitive-root search. Instead of exposing internals, derive ψ from
/// the transform of X: forward(X)[0] = ψ^{bitrev(0)·…}. Simpler: search for a
/// 2N-th root whose reference transform matches on a probe vector.
fn find_matching_psi(tables: &NttTables, degree: usize) -> u64 {
    let q = *tables.modulus();
    // Probe with X: the forward transform of X lists powers of ψ, and
    // slot 0 holds ψ^1 exactly (bit-reversed twiddle ordering starts at ψ).
    let mut probe = vec![0u64; degree];
    probe[1] = 1;
    tables.forward(&mut probe);
    let psi = probe[0];
    // Sanity: ψ must be a primitive 2N-th root of unity.
    assert_eq!(q.pow(psi, degree as u64), q.value() - 1);
    psi
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The lazy Harvey NTT must be bit-identical to the strict reference path
    // across the full parameter envelope the CKKS backend uses: 30/40/50/60
    // bit moduli and ring degrees 64..=4096.
    #[test]
    fn lazy_ntt_bit_identical_to_strict_reference(
        bits in prop::sample::select(vec![30u32, 40, 50, 60]),
        log_degree in 6u32..=12,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let degree = 1usize << log_degree;
        let q_val = generate_ntt_primes(degree, &[bits]).unwrap()[0];
        let q = Modulus::new(q_val).unwrap();
        let tables = NttTables::new(degree, q).unwrap();
        let psi = find_matching_psi(&tables, degree);

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let input: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();

        let mut lazy = input.clone();
        tables.forward(&mut lazy);
        let mut strict = input.clone();
        forward_reference(&mut strict, &q, psi);
        prop_assert_eq!(&lazy, &strict);

        let mut lazy_back = lazy.clone();
        tables.inverse(&mut lazy_back);
        let mut strict_back = strict.clone();
        inverse_reference(&mut strict_back, &q, psi);
        prop_assert_eq!(&lazy_back, &strict_back);
        prop_assert_eq!(&lazy_back, &input);
    }

    // Lazy range invariants hold for arbitrary canonical inputs: forward_lazy
    // stays under 4q, inverse_lazy stays under 2q, and correcting the lazy
    // outputs reproduces the canonical transforms exactly.
    #[test]
    fn lazy_transforms_respect_range_invariants(
        bits in prop::sample::select(vec![30u32, 50, 60]),
        log_degree in 6u32..=11,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let degree = 1usize << log_degree;
        let q_val = generate_ntt_primes(degree, &[bits]).unwrap()[0];
        let q = Modulus::new(q_val).unwrap();
        let tables = NttTables::new(degree, q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let input: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();

        let mut lazy = input.clone();
        tables.forward_lazy(&mut lazy);
        prop_assert!(lazy.iter().all(|&v| (v as u128) < 4 * q_val as u128));
        let mut canonical = input.clone();
        tables.forward(&mut canonical);
        let corrected: Vec<u64> = lazy.iter().map(|&v| q.reduce_twice(v)).collect();
        prop_assert_eq!(corrected, canonical.clone());

        let mut lazy_inv = canonical.clone();
        tables.inverse_lazy(&mut lazy_inv);
        prop_assert!(lazy_inv.iter().all(|&v| (v as u128) < 2 * q_val as u128));
        let mut canonical_inv = canonical;
        tables.inverse(&mut canonical_inv);
        let corrected: Vec<u64> = lazy_inv.iter().map(|&v| q.reduce_once(v)).collect();
        prop_assert_eq!(corrected, canonical_inv);
    }

    // The branch-free lazy scalar ops agree with the canonical ops.
    #[test]
    fn lazy_scalar_ops_match_canonical(q in arb_modulus(), a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (q.reduce(a), q.reduce(b));
        let s = q.add_lazy(a, b);
        prop_assert!(s < 2 * q.value());
        prop_assert_eq!(q.reduce_once(s), q.add(a, b));
        let d = q.sub_lazy(a, b);
        prop_assert!(d < 2 * q.value());
        prop_assert_eq!(q.reduce_once(d), q.sub(a, b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ntt_roundtrip_and_convolution(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let degree = 128usize;
        let q_val = generate_ntt_primes(degree, &[45]).unwrap()[0];
        let q = Modulus::new(q_val).unwrap();
        let ntt = NttTables::new(degree, q).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();
        let b: Vec<u64> = (0..degree).map(|_| rng.gen_range(0..q_val)).collect();

        // Round trip.
        let mut fa = a.clone();
        ntt.forward(&mut fa);
        let mut back = fa.clone();
        ntt.inverse(&mut back);
        prop_assert_eq!(&back, &a);

        // Convolution theorem against the naive negacyclic product.
        let mut fb = b.clone();
        ntt.forward(&mut fb);
        let mut prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| q.mul(x, y)).collect();
        ntt.inverse(&mut prod);
        prop_assert_eq!(prod, negacyclic_multiply_naive(&a, &b, &q));
    }

    #[test]
    fn canonical_embedding_roundtrip(values in prop::collection::vec(-1000.0f64..1000.0, 32)) {
        let fft = SpecialFft::new(128);
        let original: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let mut work = original.clone();
        fft.embed_inverse(&mut work);
        fft.embed(&mut work);
        for (a, b) in work.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn embedding_is_linear(values in prop::collection::vec(-100.0f64..100.0, 16), scale in 1.0f64..8.0) {
        // embed_inverse(scale * v) == scale * embed_inverse(v)
        let fft = SpecialFft::new(64);
        let mut a: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let mut b: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v * scale)).collect();
        fft.embed_inverse(&mut a);
        fft.embed_inverse(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.re * scale - y.re).abs() < 1e-6);
            prop_assert!((x.im * scale - y.im).abs() < 1e-6);
        }
    }
}
