//! The RNS prime basis: an ordered chain of NTT-friendly primes.

use eva_math::modulus::Modulus;
use eva_math::ntt::NttTables;

use crate::poly::{PolyForm, RnsPoly};

/// An ordered chain of primes `q_0, …, q_{k-1}` together with the NTT tables
/// for each, over a fixed ring degree `N`.
///
/// The basis is immutable after construction; polynomials refer to a *prefix*
/// of the chain (their "level"), which shrinks as RESCALE and MODSWITCH drop
/// primes from the back, exactly as in the paper's Section 2.2.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    degree: usize,
    moduli: Vec<Modulus>,
    ntt: Vec<NttTables>,
}

/// Errors arising while constructing an [`RnsBasis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasisError {
    /// Degree must be a power of two and at least 4.
    InvalidDegree(usize),
    /// The prime chain must contain at least one prime.
    EmptyChain,
    /// A chain entry is invalid (not prime, too large, or not ≡ 1 mod 2N).
    InvalidPrime(u64),
    /// The same prime appears twice in the chain.
    DuplicatePrime(u64),
}

impl std::fmt::Display for BasisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BasisError::InvalidDegree(n) => write!(f, "invalid ring degree {n}"),
            BasisError::EmptyChain => write!(f, "prime chain must not be empty"),
            BasisError::InvalidPrime(q) => write!(f, "invalid RNS prime {q}"),
            BasisError::DuplicatePrime(q) => write!(f, "duplicate RNS prime {q}"),
        }
    }
}

impl std::error::Error for BasisError {}

impl RnsBasis {
    /// Builds a basis from a ring degree and prime values.
    ///
    /// # Errors
    ///
    /// Returns [`BasisError`] if the degree is not a supported power of two, a
    /// prime is unsuitable for the negacyclic NTT of that degree, or the chain
    /// contains duplicates.
    pub fn new(degree: usize, primes: &[u64]) -> Result<Self, BasisError> {
        if degree < 4 || !degree.is_power_of_two() {
            return Err(BasisError::InvalidDegree(degree));
        }
        if primes.is_empty() {
            return Err(BasisError::EmptyChain);
        }
        let mut moduli = Vec::with_capacity(primes.len());
        let mut ntt = Vec::with_capacity(primes.len());
        for (i, &q) in primes.iter().enumerate() {
            if primes[..i].contains(&q) {
                return Err(BasisError::DuplicatePrime(q));
            }
            if !eva_math::primes::is_prime(q) {
                return Err(BasisError::InvalidPrime(q));
            }
            let modulus = Modulus::new(q).map_err(|_| BasisError::InvalidPrime(q))?;
            let tables =
                NttTables::new(degree, modulus).map_err(|_| BasisError::InvalidPrime(q))?;
            moduli.push(modulus);
            ntt.push(tables);
        }
        Ok(Self {
            degree,
            moduli,
            ntt,
        })
    }

    /// The ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of primes in the full chain.
    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the chain is empty (never true for a constructed basis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The prime moduli, in chain order.
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The NTT tables, in chain order.
    #[inline]
    pub fn ntt_tables(&self) -> &[NttTables] {
        &self.ntt
    }

    /// Total bit length of the product of the first `level` primes.
    pub fn product_bits(&self, level: usize) -> f64 {
        self.moduli[..level]
            .iter()
            .map(|m| (m.value() as f64).log2())
            .sum()
    }

    /// A zero polynomial spanning the first `level` primes, in the given form.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or exceeds the chain length.
    pub fn zero_poly(&self, level: usize, form: PolyForm) -> RnsPoly {
        assert!(level >= 1 && level <= self.len(), "invalid level {level}");
        RnsPoly::zero(self.degree, level, form)
    }

    /// Lifts signed coefficients into an RNS polynomial spanning `level` primes
    /// (coefficient form).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the ring degree.
    pub fn poly_from_signed(&self, coeffs: &[i64], level: usize) -> RnsPoly {
        assert_eq!(coeffs.len(), self.degree);
        let wide: Vec<i128> = coeffs.iter().map(|&c| c as i128).collect();
        self.poly_from_i128(&wide, level)
    }

    /// Lifts wide signed coefficients into an RNS polynomial spanning `level`
    /// primes (coefficient form). Used by the CKKS encoder, whose scaled
    /// coefficients can exceed 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the ring degree or `level` is out
    /// of range.
    pub fn poly_from_i128(&self, coeffs: &[i128], level: usize) -> RnsPoly {
        assert_eq!(coeffs.len(), self.degree);
        assert!(level >= 1 && level <= self.len(), "invalid level {level}");
        let mut poly = RnsPoly::zero(self.degree, level, PolyForm::Coeff);
        for (modulus, row) in self.moduli[..level].iter().zip(poly.rows_mut()) {
            let q = modulus.value() as i128;
            for (dst, &c) in row.iter_mut().zip(coeffs) {
                *dst = c.rem_euclid(q) as u64;
            }
        }
        poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_math::generate_ntt_primes;

    fn basis(degree: usize, bits: &[u32]) -> RnsBasis {
        let primes = generate_ntt_primes(degree, bits).unwrap();
        RnsBasis::new(degree, &primes).unwrap()
    }

    #[test]
    fn construction_validates_input() {
        assert!(matches!(
            RnsBasis::new(100, &[97]),
            Err(BasisError::InvalidDegree(100))
        ));
        assert!(matches!(
            RnsBasis::new(16, &[]),
            Err(BasisError::EmptyChain)
        ));
        // 91 is composite.
        assert!(matches!(
            RnsBasis::new(16, &[91]),
            Err(BasisError::InvalidPrime(91))
        ));
        // 101 is prime but 101 mod 32 != 1, so no degree-16 negacyclic NTT exists.
        assert!(matches!(
            RnsBasis::new(16, &[101]),
            Err(BasisError::InvalidPrime(101))
        ));
        let good = generate_ntt_primes(16, &[20]).unwrap();
        assert!(matches!(
            RnsBasis::new(16, &[good[0], good[0]]),
            Err(BasisError::DuplicatePrime(_))
        ));
    }

    #[test]
    fn product_bits_accumulates() {
        let b = basis(32, &[30, 40, 50]);
        assert!((b.product_bits(1) - 30.0).abs() < 0.1);
        assert!((b.product_bits(3) - 120.0).abs() < 0.2);
    }

    #[test]
    fn signed_lift_produces_expected_residues() {
        let b = basis(16, &[20, 21]);
        let mut coeffs = vec![0i64; 16];
        coeffs[0] = -1;
        coeffs[1] = 5;
        let poly = b.poly_from_signed(&coeffs, 2);
        assert_eq!(poly.level(), 2);
        assert_eq!(poly.residue(0)[0], b.moduli()[0].value() - 1);
        assert_eq!(poly.residue(1)[0], b.moduli()[1].value() - 1);
        assert_eq!(poly.residue(0)[1], 5);
    }
}
