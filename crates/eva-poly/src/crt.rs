//! Exact CRT composition of RNS residues.
//!
//! Decryption needs to turn the residues `(x mod q_0, …, x mod q_{k-1})` back
//! into the centered integer `x ∈ (-Q/2, Q/2]` so the CKKS decoder can divide
//! by the scale. The ciphertext modulus `Q` routinely exceeds 128 bits, so a
//! small arbitrary-precision unsigned integer type [`UBig`] is provided here —
//! just enough functionality for CRT reconstruction (addition, word
//! multiplication, comparison, subtraction, halving, conversion to `f64`).

use eva_math::modulus::Modulus;

/// A little-endian arbitrary-precision unsigned integer.
///
/// Only the operations needed by CRT composition are implemented; the type is
/// not meant as a general big-integer library.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UBig {
    /// Little-endian 64-bit limbs; no trailing zero limbs except for zero itself.
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: vec![] }
    }

    /// Creates a big integer from a single word.
    pub fn from_u64(value: u64) -> Self {
        if value == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![value] }
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &UBig) {
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &UBig) {
        assert!(
            self.cmp_big(other) != std::cmp::Ordering::Less,
            "UBig subtraction would underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.trim();
    }

    /// Returns `self * factor` for a word-sized factor.
    pub fn mul_u64(&self, factor: u64) -> UBig {
        if factor == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &limb in &self.limbs {
            let prod = limb as u128 * factor as u128 + carry;
            limbs.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            limbs.push(carry as u64);
        }
        let mut out = UBig { limbs };
        out.trim();
        out
    }

    /// Compares two big integers.
    pub fn cmp_big(&self, other: &UBig) -> std::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Returns `floor(self / 2)`.
    pub fn half(&self) -> UBig {
        let mut limbs = vec![0u64; self.limbs.len()];
        let mut carry = 0u64;
        for i in (0..self.limbs.len()).rev() {
            limbs[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        let mut out = UBig { limbs };
        out.trim();
        out
    }

    /// Approximate conversion to `f64` (round-to-nearest on the top bits).
    pub fn to_f64(&self) -> f64 {
        let mut value = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            value = value * 18446744073709551616.0 + limb as f64;
        }
        value
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Reduces `self` modulo a word-sized modulus.
    pub fn rem_u64(&self, modulus: &Modulus) -> u64 {
        let mut rem = 0u64;
        for &limb in self.limbs.iter().rev() {
            // rem = (rem * 2^64 + limb) mod q
            let wide = ((rem as u128) << 64) | limb as u128;
            rem = modulus.reduce_u128(wide);
        }
        rem
    }
}

/// Precomputed data for composing RNS residues into centered big integers and
/// then into `f64` values.
#[derive(Debug, Clone)]
pub struct CrtComposer {
    moduli: Vec<Modulus>,
    /// Q = product of all moduli.
    product: UBig,
    /// Q / 2 for centering.
    half_product: UBig,
    /// Punctured products Q / q_i.
    punctured: Vec<UBig>,
    /// (Q / q_i)^{-1} mod q_i.
    inverses: Vec<u64>,
}

impl CrtComposer {
    /// Builds a composer for the given prime chain.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty or if a punctured product is not invertible
    /// (which cannot happen for distinct primes).
    pub fn new(moduli: &[Modulus]) -> Self {
        assert!(
            !moduli.is_empty(),
            "CRT composer needs at least one modulus"
        );
        let mut product = UBig::from_u64(1);
        for m in moduli {
            product = product.mul_u64(m.value());
        }
        let mut punctured = Vec::with_capacity(moduli.len());
        let mut inverses = Vec::with_capacity(moduli.len());
        for (i, m) in moduli.iter().enumerate() {
            let mut p = UBig::from_u64(1);
            for (j, other) in moduli.iter().enumerate() {
                if i != j {
                    p = p.mul_u64(other.value());
                }
            }
            let p_mod = p.rem_u64(m);
            let inv = m
                .inv(p_mod)
                .expect("punctured product must be invertible modulo a distinct prime");
            punctured.push(p);
            inverses.push(inv);
        }
        let half_product = product.half();
        Self {
            moduli: moduli.to_vec(),
            product,
            half_product,
            punctured,
            inverses,
        }
    }

    /// The number of moduli in the basis.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// Whether the composer is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The full product `Q` of the basis.
    pub fn product(&self) -> &UBig {
        &self.product
    }

    /// Composes one coefficient's residues into the centered value, returned as
    /// an `f64` (sign and magnitude). The input must supply one residue per
    /// modulus of the basis.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    pub fn compose_centered_f64(&self, residues: &[u64]) -> f64 {
        assert_eq!(residues.len(), self.moduli.len());
        // x = sum_i [r_i * inv_i mod q_i] * (Q / q_i), reduced mod Q.
        let mut acc = UBig::zero();
        for (i, (&r, m)) in residues.iter().zip(&self.moduli).enumerate() {
            let t = m.mul(m.reduce(r), self.inverses[i]);
            acc.add_assign(&self.punctured[i].mul_u64(t));
        }
        // acc < len * Q, so a few subtractions bring it into [0, Q).
        while acc.cmp_big(&self.product) != std::cmp::Ordering::Less {
            acc.sub_assign(&self.product);
        }
        if acc.cmp_big(&self.half_product) == std::cmp::Ordering::Greater {
            let mut neg = self.product.clone();
            neg.sub_assign(&acc);
            -neg.to_f64()
        } else {
            acc.to_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubig_add_mul_roundtrip() {
        let a = UBig::from_u64(u64::MAX);
        let b = a.mul_u64(u64::MAX);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected = (u64::MAX as u128) * (u64::MAX as u128);
        assert!((b.to_f64() - expected as f64).abs() / (expected as f64) < 1e-15);
        let mut c = b.clone();
        c.add_assign(&UBig::from_u64(1));
        assert_eq!(c.bits(), 128);
    }

    #[test]
    fn ubig_sub_and_cmp() {
        let mut a = UBig::from_u64(100).mul_u64(u64::MAX);
        let b = UBig::from_u64(99).mul_u64(u64::MAX);
        assert_eq!(a.cmp_big(&b), std::cmp::Ordering::Greater);
        a.sub_assign(&b);
        assert_eq!(a, UBig::from_u64(u64::MAX));
    }

    #[test]
    fn ubig_half_and_rem() {
        let a = UBig::from_u64(12345).mul_u64(1 << 40);
        let h = a.half();
        assert!((h.to_f64() * 2.0 - a.to_f64()).abs() < 1.0);
        let q = Modulus::new(97).unwrap();
        let direct = (12345u128 << 40) % 97;
        assert_eq!(a.rem_u64(&q) as u128, direct);
    }

    #[test]
    fn crt_composition_recovers_small_values() {
        let moduli: Vec<Modulus> = eva_math::generate_ntt_primes(64, &[50, 50, 59])
            .unwrap()
            .iter()
            .map(|&q| Modulus::new(q).unwrap())
            .collect();
        let composer = CrtComposer::new(&moduli);
        for &value in &[
            0i64,
            1,
            -1,
            123456789,
            -987654321,
            i64::MAX / 4,
            i64::MIN / 4,
        ] {
            let residues: Vec<u64> = moduli
                .iter()
                .map(|m| {
                    let q = m.value() as i128;
                    (value as i128).rem_euclid(q) as u64
                })
                .collect();
            let recovered = composer.compose_centered_f64(&residues);
            let err = (recovered - value as f64).abs();
            assert!(err < 2.0, "value {value} recovered as {recovered}");
        }
    }

    #[test]
    fn crt_composition_single_modulus() {
        let moduli = vec![Modulus::new(65537).unwrap()];
        let composer = CrtComposer::new(&moduli);
        assert_eq!(composer.compose_centered_f64(&[3]), 3.0);
        assert_eq!(composer.compose_centered_f64(&[65536]), -1.0);
    }
}
