//! RNS polynomial arithmetic over `Z_Q[X]/(X^N + 1)` for the EVA reproduction.
//!
//! The RNS (residue number system) variant of CKKS represents every polynomial
//! by its residues modulo a chain of word-sized primes `q_0, …, q_{k-1}` whose
//! product is the ciphertext modulus `Q`. This crate provides:
//!
//! * [`RnsBasis`] — an ordered prime chain with the NTT tables for each prime.
//! * [`RnsPoly`] — a polynomial stored residue-wise in **one contiguous
//!   buffer** (stride `N`, see the [`poly`] module docs for the layout and
//!   reduction invariants), in either coefficient or evaluation (NTT) form,
//!   with the ring operations the CKKS evaluator needs: addition,
//!   subtraction, negation, fused dyadic multiply/multiply-accumulate, scalar
//!   multiplication, Galois automorphisms, rescaling by the last prime and
//!   modulus dropping. Stored coefficients are always canonical (`[0, q_i)`);
//!   lazy representatives never escape a kernel.
//! * [`crt`] — exact CRT composition of residues into big integers, used by
//!   decryption to recover centered coefficients.
//!
//! The crate is deliberately independent of any encryption concept; it is the
//! "polynomial layer" that the `eva-ckks` crate builds the scheme on, mirroring
//! how SEAL separates its `util` polynomial layer from the scheme layer.
//!
//! # Examples
//!
//! ```
//! use eva_math::generate_ntt_primes;
//! use eva_poly::{PolyForm, RnsBasis};
//!
//! let primes = generate_ntt_primes(32, &[30, 30]).unwrap();
//! let basis = RnsBasis::new(32, &primes).unwrap();
//! let mut coeffs = vec![0i64; 32];
//! coeffs[0] = 7;
//! let mut a = basis.poly_from_signed(&coeffs, 2);
//! let b = a.clone();
//! a.add_assign(&b, &basis);
//! assert_eq!(a.residue(0)[0], 14);
//! assert_eq!(a.form(), PolyForm::Coeff);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod crt;
pub mod poly;

pub use basis::RnsBasis;
pub use crt::{CrtComposer, UBig};
pub use poly::{PolyForm, RnsPoly};
