//! RNS polynomials and their ring operations.
//!
//! # Storage layout and reduction invariants
//!
//! An [`RnsPoly`] stores all residue rows in **one contiguous `Vec<u64>`**
//! with stride `degree` (row `i` occupies `data[i*degree .. (i+1)*degree]`),
//! so level-`r` kernels stream a single dense allocation instead of chasing
//! `r` separate heap vectors. Rows are accessed through [`RnsPoly::residue`] /
//! [`RnsPoly::residue_mut`] / [`RnsPoly::rows`]; the flat buffer itself can be
//! taken with [`RnsPoly::into_flat`].
//!
//! Every stored coefficient is always a **canonical** residue in `[0, q_i)`.
//! The kernels may use the lazy-reduction primitives of
//! [`eva_math::modulus`](eva_math::Modulus) internally (outputs in `[0, 2q)` /
//! `[0, 4q)`), but they restore the canonical invariant before returning, so
//! callers never observe a lazy representative.

use eva_math::galois::GaloisTool;

use crate::basis::RnsBasis;

/// Representation domain of an [`RnsPoly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyForm {
    /// Coefficient domain: residue `i` holds the polynomial coefficients mod `q_i`.
    Coeff,
    /// Evaluation (NTT) domain: residue `i` holds the NTT of the coefficients mod `q_i`.
    Ntt,
}

/// A polynomial of `Z_Q[X]/(X^N+1)` stored residue-wise over a prefix of an
/// [`RnsBasis`] prime chain, in one contiguous buffer of stride `N`.
///
/// The number of stored residues is the polynomial's *level* (the paper's
/// `r` for that ciphertext); RESCALE and MODSWITCH shrink it from the back.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    degree: usize,
    level: usize,
    /// Residue rows, row-major: `data[i*degree + j]` is coefficient `j` mod `q_i`.
    data: Vec<u64>,
    form: PolyForm,
}

impl RnsPoly {
    /// A zero polynomial with `level` residues of the given degree and form.
    ///
    /// # Panics
    ///
    /// Panics if `degree` or `level` is zero.
    pub fn zero(degree: usize, level: usize, form: PolyForm) -> Self {
        assert!(degree > 0, "degree must be positive");
        assert!(level > 0, "polynomial must have at least one residue");
        Self {
            degree,
            level,
            data: vec![0u64; degree * level],
            form,
        }
    }

    /// Builds a polynomial from a flat row-major residue buffer
    /// (`data[i*degree + j]` = coefficient `j` mod `q_i`).
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or `data.len()` is not a positive multiple
    /// of `degree`.
    pub fn from_flat(degree: usize, data: Vec<u64>, form: PolyForm) -> Self {
        assert!(degree > 0, "degree must be positive");
        assert!(
            !data.is_empty() && data.len().is_multiple_of(degree),
            "flat buffer length {} is not a positive multiple of degree {degree}",
            data.len()
        );
        let level = data.len() / degree;
        Self {
            degree,
            level,
            data,
            form,
        }
    }

    /// Consumes the polynomial, returning its flat row-major residue buffer.
    pub fn into_flat(self) -> Vec<u64> {
        self.data
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of residues (primes) this polynomial currently spans.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The representation domain.
    #[inline]
    pub fn form(&self) -> PolyForm {
        self.form
    }

    /// Residue row `i` (the polynomial modulo `q_i`).
    #[inline]
    pub fn residue(&self, i: usize) -> &[u64] {
        &self.data[i * self.degree..(i + 1) * self.degree]
    }

    /// Mutable residue row `i`.
    #[inline]
    pub fn residue_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.data[i * self.degree..(i + 1) * self.degree]
    }

    /// Iterator over the residue rows, in chain order.
    #[inline]
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.degree)
    }

    /// Mutable iterator over the residue rows, in chain order.
    #[inline]
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [u64]> {
        self.data.chunks_exact_mut(self.degree)
    }

    fn check_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.degree, other.degree, "degree mismatch");
        assert_eq!(self.level, other.level, "level mismatch");
        assert_eq!(self.form, other.form, "form mismatch");
    }

    fn check_basis(&self, basis: &RnsBasis) {
        assert_eq!(self.degree, basis.degree(), "basis degree mismatch");
        assert!(
            self.level <= basis.len(),
            "polynomial level {} exceeds basis length {}",
            self.level,
            basis.len()
        );
    }

    /// Converts the polynomial to NTT form in place (no-op if already NTT).
    pub fn to_ntt(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        if self.form == PolyForm::Ntt {
            return;
        }
        for (row, tables) in self
            .data
            .chunks_exact_mut(self.degree)
            .zip(basis.ntt_tables())
        {
            tables.forward(row);
        }
        self.form = PolyForm::Ntt;
    }

    /// Converts the polynomial to coefficient form in place (no-op if already
    /// in coefficient form).
    pub fn to_coeff(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        if self.form == PolyForm::Coeff {
            return;
        }
        for (row, tables) in self
            .data
            .chunks_exact_mut(self.degree)
            .zip(basis.ntt_tables())
        {
            tables.inverse(row);
        }
        self.form = PolyForm::Coeff;
    }

    /// `self += other` (element-wise per residue), in place and without
    /// allocating. Operands must agree in degree, level and form.
    pub fn add_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_basis(basis);
        for (i, (row, other_row)) in self.rows_mut_with(other) {
            let q = &basis.moduli()[i];
            for (a, &b) in row.iter_mut().zip(other_row) {
                *a = q.add(*a, b);
            }
        }
    }

    /// `self -= other`, in place and without allocating.
    pub fn sub_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_basis(basis);
        for (i, (row, other_row)) in self.rows_mut_with(other) {
            let q = &basis.moduli()[i];
            for (a, &b) in row.iter_mut().zip(other_row) {
                *a = q.sub(*a, b);
            }
        }
    }

    /// `self = -self`.
    pub fn negate(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        for (i, row) in self.data.chunks_exact_mut(self.degree).enumerate() {
            let q = &basis.moduli()[i];
            for a in row.iter_mut() {
                *a = q.neg(*a);
            }
        }
    }

    /// `self *= other` element-wise in the evaluation domain (dyadic product),
    /// in place and without allocating.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not in NTT form.
    pub fn dyadic_mul_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_basis(basis);
        assert_eq!(self.form, PolyForm::Ntt, "dyadic product requires NTT form");
        for (i, (row, other_row)) in self.rows_mut_with(other) {
            let q = &basis.moduli()[i];
            for (a, &b) in row.iter_mut().zip(other_row) {
                *a = q.mul(*a, b);
            }
        }
    }

    /// Returns the dyadic product `self * other` without modifying the
    /// operands. The returned polynomial is the only allocation.
    pub fn dyadic_mul(&self, other: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        let mut result = self.clone();
        result.dyadic_mul_assign(other, basis);
        result
    }

    /// `acc += self * other` element-wise in the evaluation domain, fused so
    /// no product temporary is materialized.
    ///
    /// # Panics
    ///
    /// Panics if operands are not in NTT form or have mismatched shapes.
    pub fn dyadic_mul_acc(&self, other: &RnsPoly, acc: &mut RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_compatible(acc);
        assert_eq!(self.form, PolyForm::Ntt, "dyadic product requires NTT form");
        let degree = self.degree;
        for i in 0..self.level {
            let q = &basis.moduli()[i];
            let a_row = &self.data[i * degree..(i + 1) * degree];
            let b_row = &other.data[i * degree..(i + 1) * degree];
            let acc_row = &mut acc.data[i * degree..(i + 1) * degree];
            for ((acc_v, &a), &b) in acc_row.iter_mut().zip(a_row).zip(b_row) {
                *acc_v = q.add(*acc_v, q.mul(a, b));
            }
        }
    }

    /// Multiplies every residue by a scalar (given as an unreduced `u64`).
    pub fn mul_scalar(&mut self, scalar: u64, basis: &RnsBasis) {
        self.check_basis(basis);
        for (i, row) in self.data.chunks_exact_mut(self.degree).enumerate() {
            let q = &basis.moduli()[i];
            let s = q.reduce(scalar);
            let pre = q.shoup(s);
            for a in row.iter_mut() {
                *a = q.mul_shoup(*a, &pre);
            }
        }
    }

    /// Drops the last residue (the paper's MODSWITCH on the polynomial layer).
    ///
    /// # Panics
    ///
    /// Panics if only one residue remains.
    pub fn drop_last(&mut self) {
        assert!(self.level > 1, "cannot drop the last remaining RNS residue");
        self.level -= 1;
        self.data.truncate(self.level * self.degree);
    }

    /// Divides the polynomial by the last prime of its chain (with rounding
    /// towards the RNS floor), dropping that prime — the polynomial layer of
    /// the paper's RESCALE. Works in either representation form and preserves
    /// the form of `self`.
    ///
    /// Uses two reusable row-sized scratch buffers (the inverse-transformed
    /// last residue and one delta row shared across all remaining primes); no
    /// per-prime allocation.
    ///
    /// # Panics
    ///
    /// Panics if only one residue remains.
    pub fn rescale_by_last(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        assert!(self.level > 1, "cannot rescale a single-prime polynomial");
        let degree = self.degree;
        let last_idx = self.level - 1;
        let q_last = basis.moduli()[last_idx];

        // Bring the last residue into coefficient form so its integer
        // representative can be reduced modulo every remaining prime.
        let mut last_coeff = self.residue(last_idx).to_vec();
        if self.form == PolyForm::Ntt {
            basis.ntt_tables()[last_idx].inverse(&mut last_coeff);
        }
        let half_q_last = q_last.value() / 2;

        let mut delta = vec![0u64; degree];
        for i in 0..last_idx {
            let q_i = &basis.moduli()[i];
            let inv_q_last = q_i
                .inv(q_i.reduce(q_last.value()))
                .expect("chain primes are distinct, so q_last is invertible");
            let inv_pre = q_i.shoup(inv_q_last);
            let q_last_mod_qi = q_i.reduce(q_last.value());
            // delta = centered representative of the last residue, reduced mod q_i.
            for (d, &c) in delta.iter_mut().zip(&last_coeff) {
                *d = if c > half_q_last {
                    // negative representative: c - q_last
                    q_i.sub(q_i.reduce(c), q_last_mod_qi)
                } else {
                    q_i.reduce(c)
                };
            }
            if self.form == PolyForm::Ntt {
                basis.ntt_tables()[i].forward(&mut delta);
            }
            let row = &mut self.data[i * degree..(i + 1) * degree];
            for (a, &d) in row.iter_mut().zip(&delta) {
                *a = q_i.mul_shoup(q_i.sub(*a, d), &inv_pre);
            }
        }
        self.level = last_idx;
        self.data.truncate(self.level * degree);
    }

    /// Applies the Galois automorphism `X ↦ X^galois_elt` and returns the
    /// transformed polynomial (the returned polynomial is the only
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is not in coefficient form.
    pub fn apply_galois(&self, galois_elt: u64, basis: &RnsBasis) -> RnsPoly {
        self.check_basis(basis);
        assert_eq!(
            self.form,
            PolyForm::Coeff,
            "Galois automorphisms are applied in coefficient form"
        );
        let tool = GaloisTool::new(self.degree);
        let mut out = RnsPoly::zero(self.degree, self.level, PolyForm::Coeff);
        for (i, (src, dst)) in self
            .rows()
            .zip(out.data.chunks_exact_mut(self.degree))
            .enumerate()
        {
            tool.apply(src, galois_elt, &basis.moduli()[i], dst);
        }
        out
    }

    /// Applies a precomputed NTT-domain Galois permutation (from
    /// [`GaloisTool::ntt_permutation`]) to every residue row, returning the
    /// permuted polynomial. A pure gather — no modular arithmetic and no
    /// transform — so the same table serves all rows regardless of their
    /// moduli.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is not in NTT form or the table length does
    /// not match the ring degree.
    pub fn permute_ntt(&self, table: &[u32]) -> RnsPoly {
        assert_eq!(
            self.form,
            PolyForm::Ntt,
            "NTT-domain Galois permutations require NTT form"
        );
        assert_eq!(table.len(), self.degree, "permutation table length");
        let mut out = RnsPoly::zero(self.degree, self.level, PolyForm::Ntt);
        for (src, dst) in self.rows().zip(out.data.chunks_exact_mut(self.degree)) {
            for (o, &t) in dst.iter_mut().zip(table) {
                *o = src[t as usize];
            }
        }
        out
    }

    /// Returns a copy of this polynomial restricted to its first `level`
    /// residues (the same polynomial under a smaller prefix of the chain).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or exceeds the current level.
    pub fn truncated(&self, level: usize) -> RnsPoly {
        assert!(
            level >= 1 && level <= self.level,
            "cannot truncate level {} polynomial to level {level}",
            self.level
        );
        RnsPoly {
            degree: self.degree,
            level,
            data: self.data[..level * self.degree].to_vec(),
            form: self.form,
        }
    }

    /// True if every residue of the polynomial is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&c| c == 0)
    }

    /// Pairs each mutable row of `self` with the matching row of `other`,
    /// yielding `(prime_index, (self_row, other_row))`.
    fn rows_mut_with<'a>(
        &'a mut self,
        other: &'a RnsPoly,
    ) -> impl Iterator<Item = (usize, (&'a mut [u64], &'a [u64]))> {
        self.data
            .chunks_exact_mut(self.degree)
            .zip(other.data.chunks_exact(other.degree))
            .enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::RnsBasis;
    use eva_math::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn basis(degree: usize, bits: &[u32]) -> RnsBasis {
        let primes = generate_ntt_primes(degree, bits).unwrap();
        RnsBasis::new(degree, &primes).unwrap()
    }

    fn random_poly(basis: &RnsBasis, level: usize, seed: u64) -> RnsPoly {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut poly = RnsPoly::zero(basis.degree(), level, PolyForm::Coeff);
        for i in 0..level {
            let q = basis.moduli()[i].value();
            for v in poly.residue_mut(i) {
                *v = rng.gen_range(0..q);
            }
        }
        poly
    }

    #[test]
    fn flat_layout_round_trips() {
        let poly = RnsPoly::from_flat(4, (0u64..12).collect(), PolyForm::Coeff);
        assert_eq!(poly.level(), 3);
        assert_eq!(poly.degree(), 4);
        assert_eq!(poly.residue(1), &[4, 5, 6, 7]);
        assert_eq!(poly.rows().count(), 3);
        assert_eq!(poly.into_flat(), (0u64..12).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "not a positive multiple")]
    fn from_flat_rejects_ragged_buffer() {
        RnsPoly::from_flat(4, vec![0u64; 7], PolyForm::Coeff);
    }

    #[test]
    fn add_sub_are_inverses() {
        let b = basis(32, &[30, 30, 40]);
        let mut a = random_poly(&b, 3, 1);
        let original = a.clone();
        let c = random_poly(&b, 3, 2);
        a.add_assign(&c, &b);
        a.sub_assign(&c, &b);
        assert_eq!(a, original);
    }

    #[test]
    fn negate_twice_is_identity() {
        let b = basis(32, &[30, 30]);
        let mut a = random_poly(&b, 2, 3);
        let original = a.clone();
        a.negate(&b);
        assert_ne!(a, original);
        a.negate(&b);
        assert_eq!(a, original);
    }

    #[test]
    fn ntt_roundtrip_preserves_polynomial() {
        let b = basis(64, &[40, 50]);
        let mut a = random_poly(&b, 2, 4);
        let original = a.clone();
        a.to_ntt(&b);
        assert_eq!(a.form(), PolyForm::Ntt);
        a.to_coeff(&b);
        assert_eq!(a, original);
    }

    #[test]
    fn dyadic_mul_matches_naive_multiplication() {
        let b = basis(32, &[40]);
        let q = &b.moduli()[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let ac: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q.value())).collect();
        let bc: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q.value())).collect();
        let expected = eva_math::ntt::negacyclic_multiply_naive(&ac, &bc, q);

        let mut pa = RnsPoly::from_flat(32, ac, PolyForm::Coeff);
        let mut pb = RnsPoly::from_flat(32, bc, PolyForm::Coeff);
        pa.to_ntt(&b);
        pb.to_ntt(&b);
        let mut prod = pa.dyadic_mul(&pb, &b);
        prod.to_coeff(&b);
        assert_eq!(prod.residue(0), expected.as_slice());
    }

    #[test]
    fn dyadic_mul_acc_accumulates_products() {
        let b = basis(32, &[40, 50]);
        let mut pa = random_poly(&b, 2, 20);
        let mut pb = random_poly(&b, 2, 21);
        pa.to_ntt(&b);
        pb.to_ntt(&b);
        let mut acc = pa.dyadic_mul(&pb, &b);
        pa.dyadic_mul_acc(&pb, &mut acc, &b);
        // acc == 2 * (pa ∘ pb)
        let mut twice = pa.dyadic_mul(&pb, &b);
        let copy = twice.clone();
        twice.add_assign(&copy, &b);
        assert_eq!(acc, twice);
    }

    #[test]
    fn mul_scalar_matches_elementwise() {
        let b = basis(16, &[30, 31]);
        let coeffs: Vec<i64> = (0..16).collect();
        let mut a = b.poly_from_signed(&coeffs, 2);
        a.mul_scalar(7, &b);
        for (i, &c) in coeffs.iter().enumerate() {
            assert_eq!(a.residue(0)[i], (c * 7) as u64 % b.moduli()[0].value());
        }
    }

    #[test]
    fn rescale_divides_scaled_constant() {
        // Encode the constant polynomial v * q_last (exactly divisible), rescale,
        // and expect the constant polynomial v at one level lower.
        let b = basis(16, &[30, 30, 40]);
        let q_last = b.moduli()[2].value();
        let v = 12345i128;
        let mut coeffs = vec![0i128; 16];
        coeffs[0] = v * q_last as i128;
        coeffs[3] = -v * q_last as i128;
        let mut a = b.poly_from_i128(&coeffs, 3);
        a.rescale_by_last(&b);
        assert_eq!(a.level(), 2);
        assert_eq!(a.residue(0)[0], v as u64);
        assert_eq!(a.residue(1)[0], v as u64);
        assert_eq!(a.residue(0)[3], b.moduli()[0].value() - v as u64);
    }

    #[test]
    fn rescale_in_ntt_form_matches_coeff_form() {
        let b = basis(32, &[30, 30, 40]);
        let mut coeff_version = random_poly(&b, 3, 5);
        let mut ntt_version = coeff_version.clone();
        coeff_version.rescale_by_last(&b);
        ntt_version.to_ntt(&b);
        ntt_version.rescale_by_last(&b);
        ntt_version.to_coeff(&b);
        assert_eq!(coeff_version, ntt_version);
    }

    #[test]
    fn drop_last_reduces_level() {
        let b = basis(16, &[20, 21, 22]);
        let mut a = random_poly(&b, 3, 6);
        a.drop_last();
        assert_eq!(a.level(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot drop")]
    fn drop_last_panics_at_level_one() {
        let b = basis(16, &[20]);
        let mut a = random_poly(&b, 1, 7);
        a.drop_last();
    }

    #[test]
    fn permute_ntt_matches_coefficient_domain_galois() {
        let b = basis(32, &[40, 41]);
        let tool = GaloisTool::new(32);
        for (seed, step) in [(3u64, 1i64), (4, 5), (5, -2)] {
            let elt = tool.galois_elt_from_step(step);
            let a = random_poly(&b, 2, seed);
            let mut expected = a.apply_galois(elt, &b);
            expected.to_ntt(&b);
            let mut a_ntt = a.clone();
            a_ntt.to_ntt(&b);
            let actual = a_ntt.permute_ntt(&tool.ntt_permutation(elt));
            assert_eq!(actual, expected);
        }
    }

    #[test]
    fn galois_composition_matches_single_application() {
        let b = basis(32, &[40]);
        let a = random_poly(&b, 1, 8);
        // Applying g twice equals applying g^2 mod 2N.
        let g = 5u64;
        let twice = a.apply_galois(g, &b).apply_galois(g, &b);
        let composed = a.apply_galois(g * g % 64, &b);
        assert_eq!(twice, composed);
    }

    #[test]
    fn apply_galois_is_ring_homomorphism_for_multiplication() {
        // galois(a*b) == galois(a) * galois(b)
        let b = basis(32, &[40]);
        let pa = random_poly(&b, 1, 10);
        let pb = random_poly(&b, 1, 11);
        let g = 9u64; // 5^2 mod 64 = 25? any odd unit works; use 9 = 3^2.

        let mut na = pa.clone();
        let mut nb = pb.clone();
        na.to_ntt(&b);
        nb.to_ntt(&b);
        let mut prod = na.dyadic_mul(&nb, &b);
        prod.to_coeff(&b);
        let lhs = prod.apply_galois(g, &b);

        let mut ga = pa.apply_galois(g, &b);
        let mut gb = pb.apply_galois(g, &b);
        ga.to_ntt(&b);
        gb.to_ntt(&b);
        let mut rhs = ga.dyadic_mul(&gb, &b);
        rhs.to_coeff(&b);
        assert_eq!(lhs, rhs);
    }
}
