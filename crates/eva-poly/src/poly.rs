//! RNS polynomials and their ring operations.

use eva_math::galois::GaloisTool;

use crate::basis::RnsBasis;

/// Representation domain of an [`RnsPoly`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolyForm {
    /// Coefficient domain: residue `i` holds the polynomial coefficients mod `q_i`.
    Coeff,
    /// Evaluation (NTT) domain: residue `i` holds the NTT of the coefficients mod `q_i`.
    Ntt,
}

/// A polynomial of `Z_Q[X]/(X^N+1)` stored residue-wise over a prefix of an
/// [`RnsBasis`] prime chain.
///
/// The number of stored residues is the polynomial's *level* (the paper's
/// `r` for that ciphertext); RESCALE and MODSWITCH shrink it from the back.
#[derive(Debug, Clone, PartialEq)]
pub struct RnsPoly {
    degree: usize,
    residues: Vec<Vec<u64>>,
    form: PolyForm,
}

impl RnsPoly {
    /// A zero polynomial with `level` residues of the given degree and form.
    pub fn zero(degree: usize, level: usize, form: PolyForm) -> Self {
        Self {
            degree,
            residues: vec![vec![0u64; degree]; level],
            form,
        }
    }

    /// Builds a polynomial directly from residue rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_residues(residues: Vec<Vec<u64>>, form: PolyForm) -> Self {
        assert!(
            !residues.is_empty(),
            "polynomial must have at least one residue"
        );
        let degree = residues[0].len();
        assert!(
            residues.iter().all(|r| r.len() == degree),
            "residue rows must all have the same length"
        );
        Self {
            degree,
            residues,
            form,
        }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of residues (primes) this polynomial currently spans.
    #[inline]
    pub fn level(&self) -> usize {
        self.residues.len()
    }

    /// The representation domain.
    #[inline]
    pub fn form(&self) -> PolyForm {
        self.form
    }

    /// Residue row `i` (the polynomial modulo `q_i`).
    #[inline]
    pub fn residue(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// Mutable residue row `i`.
    #[inline]
    pub fn residue_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.residues[i]
    }

    fn check_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.degree, other.degree, "degree mismatch");
        assert_eq!(self.level(), other.level(), "level mismatch");
        assert_eq!(self.form, other.form, "form mismatch");
    }

    fn check_basis(&self, basis: &RnsBasis) {
        assert_eq!(self.degree, basis.degree(), "basis degree mismatch");
        assert!(
            self.level() <= basis.len(),
            "polynomial level {} exceeds basis length {}",
            self.level(),
            basis.len()
        );
    }

    /// Converts the polynomial to NTT form in place (no-op if already NTT).
    pub fn to_ntt(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        if self.form == PolyForm::Ntt {
            return;
        }
        for (i, row) in self.residues.iter_mut().enumerate() {
            basis.ntt_tables()[i].forward(row);
        }
        self.form = PolyForm::Ntt;
    }

    /// Converts the polynomial to coefficient form in place (no-op if already
    /// in coefficient form).
    pub fn to_coeff(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        if self.form == PolyForm::Coeff {
            return;
        }
        for (i, row) in self.residues.iter_mut().enumerate() {
            basis.ntt_tables()[i].inverse(row);
        }
        self.form = PolyForm::Coeff;
    }

    /// `self += other` (element-wise per residue). Operands must agree in
    /// degree, level and form.
    pub fn add_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_basis(basis);
        for (i, (row, other_row)) in self.residues.iter_mut().zip(&other.residues).enumerate() {
            let q = &basis.moduli()[i];
            for (a, &b) in row.iter_mut().zip(other_row) {
                *a = q.add(*a, b);
            }
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_basis(basis);
        for (i, (row, other_row)) in self.residues.iter_mut().zip(&other.residues).enumerate() {
            let q = &basis.moduli()[i];
            for (a, &b) in row.iter_mut().zip(other_row) {
                *a = q.sub(*a, b);
            }
        }
    }

    /// `self = -self`.
    pub fn negate(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        for (i, row) in self.residues.iter_mut().enumerate() {
            let q = &basis.moduli()[i];
            for a in row.iter_mut() {
                *a = q.neg(*a);
            }
        }
    }

    /// `self *= other` element-wise in the evaluation domain (dyadic product).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not in NTT form.
    pub fn dyadic_mul_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_basis(basis);
        assert_eq!(self.form, PolyForm::Ntt, "dyadic product requires NTT form");
        for (i, (row, other_row)) in self.residues.iter_mut().zip(&other.residues).enumerate() {
            let q = &basis.moduli()[i];
            for (a, &b) in row.iter_mut().zip(other_row) {
                *a = q.mul(*a, b);
            }
        }
    }

    /// Returns the dyadic product `self * other` without modifying the operands.
    pub fn dyadic_mul(&self, other: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        let mut result = self.clone();
        result.dyadic_mul_assign(other, basis);
        result
    }

    /// `acc += self * other` element-wise in the evaluation domain.
    ///
    /// # Panics
    ///
    /// Panics if operands are not in NTT form or have mismatched shapes.
    pub fn dyadic_mul_acc(&self, other: &RnsPoly, acc: &mut RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        self.check_compatible(acc);
        assert_eq!(self.form, PolyForm::Ntt, "dyadic product requires NTT form");
        for i in 0..self.level() {
            let q = &basis.moduli()[i];
            let acc_row = &mut acc.residues[i];
            for j in 0..self.degree {
                let prod = q.mul(self.residues[i][j], other.residues[i][j]);
                acc_row[j] = q.add(acc_row[j], prod);
            }
        }
    }

    /// Multiplies every residue by a scalar (given as an unreduced `u64`).
    pub fn mul_scalar(&mut self, scalar: u64, basis: &RnsBasis) {
        self.check_basis(basis);
        for (i, row) in self.residues.iter_mut().enumerate() {
            let q = &basis.moduli()[i];
            let s = q.reduce(scalar);
            let pre = q.shoup(s);
            for a in row.iter_mut() {
                *a = q.mul_shoup(*a, &pre);
            }
        }
    }

    /// Drops the last residue (the paper's MODSWITCH on the polynomial layer).
    ///
    /// # Panics
    ///
    /// Panics if only one residue remains.
    pub fn drop_last(&mut self) {
        assert!(
            self.level() > 1,
            "cannot drop the last remaining RNS residue"
        );
        self.residues.pop();
    }

    /// Divides the polynomial by the last prime of its chain (with rounding
    /// towards the RNS floor), dropping that prime — the polynomial layer of
    /// the paper's RESCALE. Works in either representation form and preserves
    /// the form of `self`.
    ///
    /// # Panics
    ///
    /// Panics if only one residue remains.
    pub fn rescale_by_last(&mut self, basis: &RnsBasis) {
        self.check_basis(basis);
        assert!(self.level() > 1, "cannot rescale a single-prime polynomial");
        let last_idx = self.level() - 1;
        let q_last = basis.moduli()[last_idx];

        // Bring the last residue into coefficient form so its integer
        // representative can be reduced modulo every remaining prime.
        let mut last_coeff = self.residues[last_idx].clone();
        if self.form == PolyForm::Ntt {
            basis.ntt_tables()[last_idx].inverse(&mut last_coeff);
        }
        let half_q_last = q_last.value() / 2;

        for i in 0..last_idx {
            let q_i = &basis.moduli()[i];
            let inv_q_last = q_i
                .inv(q_i.reduce(q_last.value()))
                .expect("chain primes are distinct, so q_last is invertible");
            let inv_pre = q_i.shoup(inv_q_last);
            // delta = centered representative of the last residue, reduced mod q_i.
            let mut delta: Vec<u64> = last_coeff
                .iter()
                .map(|&c| {
                    if c > half_q_last {
                        // negative representative: c - q_last
                        q_i.sub(q_i.reduce(c), q_i.reduce(q_last.value()))
                    } else {
                        q_i.reduce(c)
                    }
                })
                .collect();
            if self.form == PolyForm::Ntt {
                basis.ntt_tables()[i].forward(&mut delta);
            }
            let row = &mut self.residues[i];
            for (a, &d) in row.iter_mut().zip(&delta) {
                *a = q_i.mul_shoup(q_i.sub(*a, d), &inv_pre);
            }
        }
        self.residues.pop();
    }

    /// Applies the Galois automorphism `X ↦ X^galois_elt` and returns the
    /// transformed polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is not in coefficient form.
    pub fn apply_galois(&self, galois_elt: u64, basis: &RnsBasis) -> RnsPoly {
        self.check_basis(basis);
        assert_eq!(
            self.form,
            PolyForm::Coeff,
            "Galois automorphisms are applied in coefficient form"
        );
        let tool = GaloisTool::new(self.degree);
        let mut residues = Vec::with_capacity(self.level());
        for (i, row) in self.residues.iter().enumerate() {
            let mut out = vec![0u64; self.degree];
            tool.apply(row, galois_elt, &basis.moduli()[i], &mut out);
            residues.push(out);
        }
        RnsPoly::from_residues(residues, PolyForm::Coeff)
    }

    /// Returns a copy of this polynomial restricted to its first `level`
    /// residues (the same polynomial under a smaller prefix of the chain).
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero or exceeds the current level.
    pub fn truncated(&self, level: usize) -> RnsPoly {
        assert!(
            level >= 1 && level <= self.level(),
            "cannot truncate level {} polynomial to level {level}",
            self.level()
        );
        RnsPoly {
            degree: self.degree,
            residues: self.residues[..level].to_vec(),
            form: self.form,
        }
    }

    /// True if every residue of the polynomial is zero.
    pub fn is_zero(&self) -> bool {
        self.residues.iter().all(|row| row.iter().all(|&c| c == 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::RnsBasis;
    use eva_math::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn basis(degree: usize, bits: &[u32]) -> RnsBasis {
        let primes = generate_ntt_primes(degree, bits).unwrap();
        RnsBasis::new(degree, &primes).unwrap()
    }

    fn random_poly(basis: &RnsBasis, level: usize, seed: u64) -> RnsPoly {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let residues: Vec<Vec<u64>> = (0..level)
            .map(|i| {
                (0..basis.degree())
                    .map(|_| rng.gen_range(0..basis.moduli()[i].value()))
                    .collect()
            })
            .collect();
        RnsPoly::from_residues(residues, PolyForm::Coeff)
    }

    #[test]
    fn add_sub_are_inverses() {
        let b = basis(32, &[30, 30, 40]);
        let mut a = random_poly(&b, 3, 1);
        let original = a.clone();
        let c = random_poly(&b, 3, 2);
        a.add_assign(&c, &b);
        a.sub_assign(&c, &b);
        assert_eq!(a, original);
    }

    #[test]
    fn negate_twice_is_identity() {
        let b = basis(32, &[30, 30]);
        let mut a = random_poly(&b, 2, 3);
        let original = a.clone();
        a.negate(&b);
        assert_ne!(a, original);
        a.negate(&b);
        assert_eq!(a, original);
    }

    #[test]
    fn ntt_roundtrip_preserves_polynomial() {
        let b = basis(64, &[40, 50]);
        let mut a = random_poly(&b, 2, 4);
        let original = a.clone();
        a.to_ntt(&b);
        assert_eq!(a.form(), PolyForm::Ntt);
        a.to_coeff(&b);
        assert_eq!(a, original);
    }

    #[test]
    fn dyadic_mul_matches_naive_multiplication() {
        let b = basis(32, &[40]);
        let q = &b.moduli()[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let ac: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q.value())).collect();
        let bc: Vec<u64> = (0..32).map(|_| rng.gen_range(0..q.value())).collect();
        let expected = eva_math::ntt::negacyclic_multiply_naive(&ac, &bc, q);

        let mut pa = RnsPoly::from_residues(vec![ac], PolyForm::Coeff);
        let mut pb = RnsPoly::from_residues(vec![bc], PolyForm::Coeff);
        pa.to_ntt(&b);
        pb.to_ntt(&b);
        let mut prod = pa.dyadic_mul(&pb, &b);
        prod.to_coeff(&b);
        assert_eq!(prod.residue(0), expected.as_slice());
    }

    #[test]
    fn mul_scalar_matches_elementwise() {
        let b = basis(16, &[30, 31]);
        let coeffs: Vec<i64> = (0..16).collect();
        let mut a = b.poly_from_signed(&coeffs, 2);
        a.mul_scalar(7, &b);
        for (i, &c) in coeffs.iter().enumerate() {
            assert_eq!(a.residue(0)[i], (c * 7) as u64 % b.moduli()[0].value());
        }
    }

    #[test]
    fn rescale_divides_scaled_constant() {
        // Encode the constant polynomial v * q_last (exactly divisible), rescale,
        // and expect the constant polynomial v at one level lower.
        let b = basis(16, &[30, 30, 40]);
        let q_last = b.moduli()[2].value();
        let v = 12345i128;
        let mut coeffs = vec![0i128; 16];
        coeffs[0] = v * q_last as i128;
        coeffs[3] = -v * q_last as i128;
        let mut a = b.poly_from_i128(&coeffs, 3);
        a.rescale_by_last(&b);
        assert_eq!(a.level(), 2);
        assert_eq!(a.residue(0)[0], v as u64);
        assert_eq!(a.residue(1)[0], v as u64);
        assert_eq!(a.residue(0)[3], b.moduli()[0].value() - v as u64);
    }

    #[test]
    fn rescale_in_ntt_form_matches_coeff_form() {
        let b = basis(32, &[30, 30, 40]);
        let mut coeff_version = random_poly(&b, 3, 5);
        let mut ntt_version = coeff_version.clone();
        coeff_version.rescale_by_last(&b);
        ntt_version.to_ntt(&b);
        ntt_version.rescale_by_last(&b);
        ntt_version.to_coeff(&b);
        assert_eq!(coeff_version, ntt_version);
    }

    #[test]
    fn drop_last_reduces_level() {
        let b = basis(16, &[20, 21, 22]);
        let mut a = random_poly(&b, 3, 6);
        a.drop_last();
        assert_eq!(a.level(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot drop")]
    fn drop_last_panics_at_level_one() {
        let b = basis(16, &[20]);
        let mut a = random_poly(&b, 1, 7);
        a.drop_last();
    }

    #[test]
    fn galois_composition_matches_single_application() {
        let b = basis(32, &[40]);
        let a = random_poly(&b, 1, 8);
        // Applying g twice equals applying g^2 mod 2N.
        let g = 5u64;
        let twice = a.apply_galois(g, &b).apply_galois(g, &b);
        let composed = a.apply_galois(g * g % 64, &b);
        assert_eq!(twice, composed);
    }

    #[test]
    fn apply_galois_is_ring_homomorphism_for_multiplication() {
        // galois(a*b) == galois(a) * galois(b)
        let b = basis(32, &[40]);
        let pa = random_poly(&b, 1, 10);
        let pb = random_poly(&b, 1, 11);
        let g = 9u64; // 5^2 mod 64 = 25? any odd unit works; use 9 = 3^2.

        let mut na = pa.clone();
        let mut nb = pb.clone();
        na.to_ntt(&b);
        nb.to_ntt(&b);
        let mut prod = na.dyadic_mul(&nb, &b);
        prod.to_coeff(&b);
        let lhs = prod.apply_galois(g, &b);

        let mut ga = pa.apply_galois(g, &b);
        let mut gb = pb.apply_galois(g, &b);
        ga.to_ntt(&b);
        gb.to_ntt(&b);
        let mut rhs = ga.dyadic_mul(&gb, &b);
        rhs.to_coeff(&b);
        assert_eq!(lhs, rhs);
    }
}
