//! A deterministic fault-injection transport for chaos testing.
//!
//! [`ChaosStream`] wraps any byte stream (typically a
//! [`RecordingStream`](crate::RecordingStream), the same instrumentation
//! seam the traffic audits use) and injects faults at exact **byte
//! offsets** of the sent/received streams: artificial delays, short reads
//! (premature EOF), mid-frame disconnects, and bit flips. Offsets, not
//! probabilities, make every failure reproducible — a chaos test that fails
//! once fails every time.
//!
//! Reads and writes are split at fault offsets, so a fault at offset `n`
//! fires after exactly `n` clean bytes regardless of how the caller sizes
//! its buffers.

use std::io::{self, Read, Write};
use std::time::Duration;

/// One injected fault, anchored at a byte offset of the stream it applies
/// to (`at` counts bytes this wrapper has passed through so far in that
/// direction).
#[derive(Debug, Clone)]
pub enum Fault {
    /// Sleep `delay` once the write offset reaches `at`, before writing
    /// another byte — stalling mid-upload so the *peer's* read deadline is
    /// the thing being exercised. Fires once.
    DelayWrite {
        /// Sent-byte offset at which to stall.
        at: u64,
        /// How long to stall.
        delay: Duration,
    },
    /// Report end-of-stream once the read offset reaches `at`: the peer
    /// appears to hang up mid-frame (a short read).
    TruncateRead {
        /// Received-byte offset at which reads start returning EOF.
        at: u64,
    },
    /// Fail writes with [`io::ErrorKind::BrokenPipe`] once the write offset
    /// reaches `at`: a mid-frame disconnect as the sender experiences it.
    DisconnectWrite {
        /// Sent-byte offset at which writes start failing.
        at: u64,
    },
    /// XOR bit `bit` into the received byte at offset `at` — corruption in
    /// transit. Fires once.
    FlipReadBit {
        /// Received-byte offset of the byte to corrupt.
        at: u64,
        /// Which bit (0–7) to flip.
        bit: u8,
    },
}

/// Bookkeeping wrapper: a fault plus whether a fire-once fault has fired.
#[derive(Debug, Clone)]
struct ArmedFault {
    fault: Fault,
    fired: bool,
}

/// A transport wrapper injecting the [`Fault`]s it was armed with (see the
/// module docs). Construct with [`ChaosStream::new`]; recover the wrapped
/// stream — e.g. for a [`RecordingStream`](crate::RecordingStream) traffic
/// audit — with [`ChaosStream::into_inner`].
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    faults: Vec<ArmedFault>,
    sent: u64,
    received: u64,
}

impl<S> ChaosStream<S> {
    /// Arms a stream with a fault plan. An empty plan is a transparent
    /// pass-through (useful so clean and faulty connections share a type).
    pub fn new(inner: S, faults: Vec<Fault>) -> Self {
        Self {
            inner,
            faults: faults
                .into_iter()
                .map(|fault| ArmedFault {
                    fault,
                    fired: false,
                })
                .collect(),
            sent: 0,
            received: 0,
        }
    }

    /// Unwraps the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Bytes passed through so far as `(sent, received)`.
    pub fn offsets(&self) -> (u64, u64) {
        (self.sent, self.received)
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // Faults whose offset has been reached fire before any more bytes.
        for armed in &self.faults {
            match armed.fault {
                Fault::TruncateRead { at } if self.received >= at => return Ok(0),
                _ => {}
            }
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        // Cap the read so upcoming read-fault offsets land exactly on a
        // call boundary (truncation) or inside this buffer (flips).
        let mut limit = buf.len() as u64;
        for armed in &self.faults {
            if let Fault::TruncateRead { at } = armed.fault {
                if at > self.received {
                    limit = limit.min(at - self.received);
                }
            }
        }
        let n = self.inner.read(&mut buf[..limit as usize])?;
        for armed in &mut self.faults {
            if let Fault::FlipReadBit { at, bit } = armed.fault {
                if !armed.fired && at >= self.received && at < self.received + n as u64 {
                    buf[(at - self.received) as usize] ^= 1 << bit;
                    armed.fired = true;
                }
            }
        }
        self.received += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for armed in &mut self.faults {
            match armed.fault {
                Fault::DisconnectWrite { at } if self.sent >= at => {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "chaos: injected mid-frame disconnect",
                    ));
                }
                Fault::DelayWrite { at, delay } if !armed.fired && self.sent >= at => {
                    std::thread::sleep(delay);
                    armed.fired = true;
                }
                _ => {}
            }
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        // Cap the write so upcoming write-fault offsets land exactly on a
        // call boundary.
        let mut limit = buf.len() as u64;
        for armed in &self.faults {
            let at = match armed.fault {
                Fault::DisconnectWrite { at } => at,
                Fault::DelayWrite { at, .. } if !armed.fired => at,
                _ => continue,
            };
            if at > self.sent {
                limit = limit.min(at - self.sent);
            }
        }
        let n = self.inner.write(&buf[..limit as usize])?;
        self.sent += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn truncates_reads_at_the_exact_offset() {
        let data = (0u8..32).collect::<Vec<_>>();
        let mut stream = ChaosStream::new(Cursor::new(data), vec![Fault::TruncateRead { at: 10 }]);
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, (0u8..10).collect::<Vec<_>>());
    }

    #[test]
    fn flips_exactly_one_bit_regardless_of_buffer_sizes() {
        let data = vec![0u8; 32];
        for chunk in [1usize, 3, 7, 32] {
            let mut stream = ChaosStream::new(
                Cursor::new(data.clone()),
                vec![Fault::FlipReadBit { at: 17, bit: 5 }],
            );
            let mut out = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = stream.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            let mut expected = data.clone();
            expected[17] = 1 << 5;
            assert_eq!(out, expected, "chunk size {chunk}");
        }
    }

    #[test]
    fn disconnects_writes_at_the_exact_offset() {
        let mut stream = ChaosStream::new(
            Cursor::new(Vec::new()),
            vec![Fault::DisconnectWrite { at: 5 }],
        );
        // The first 5 bytes go through (split across calls as needed)…
        stream.write_all(&[1, 2, 3]).unwrap();
        let err = stream.write_all(&[4, 5, 6, 7]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(stream.offsets().0, 5);
        assert_eq!(stream.get_ref().get_ref(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_fault_plan_is_transparent() {
        let mut stream = ChaosStream::new(Cursor::new(vec![9, 8, 7]), Vec::new());
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        assert_eq!(out, [9, 8, 7]);
        stream.write_all(&[1]).unwrap();
        assert_eq!(stream.offsets(), (1, 3));
    }
}
