//! The deployment client: the trusted party that owns every key.
//!
//! [`EvaClient`] connects to an [`EvaServer`](crate::EvaServer), validates
//! the encryption parameters the server publishes (rebuilding them with
//! [`CkksParameters::from_primes`], which re-checks NTT-friendliness,
//! distinctness and — when claimed — the 128-bit security bound), generates
//! all key material locally, uploads only the evaluation keys, and then
//! encrypts inputs / decrypts outputs for as many evaluation rounds as it
//! likes. Secret and public encryption keys never leave the client.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use eva_ckks::{CkksContext, CkksEncoder, CkksParameters, Decryptor, Encryptor, KeyGenerator};

use crate::error::ServiceError;
use crate::protocol::{
    expect_message, write_message, InputValue, Message, OutputValue, ProgramManifest,
    PROTOCOL_VERSION,
};

/// A connected client session, generic over the transport so tests can use
/// instrumented or in-memory streams.
pub struct EvaClient<S> {
    stream: S,
    manifest: ProgramManifest,
    context: CkksContext,
    encoder: CkksEncoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    keygen: KeyGenerator,
}

impl<S> std::fmt::Debug for EvaClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaClient")
            .field("program", &self.manifest.name)
            .field("degree", &self.context.degree())
            .finish()
    }
}

impl EvaClient<TcpStream> {
    /// Connects to a server and performs the full handshake (hello →
    /// manifest → parameter validation → key generation → evaluation-key
    /// upload).
    ///
    /// `key_seed` selects deterministic key/encryption randomness for tests
    /// and reproducible measurements; pass `None` for fresh CSPRNG keys. The
    /// derivation matches `EncryptedContext::setup`, so a seeded client
    /// produces bit-identical ciphertexts to the in-process executor.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on connection, protocol or validation
    /// failures.
    pub fn connect(addr: impl ToSocketAddrs, key_seed: Option<u64>) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::handshake(stream, key_seed)
    }
}

impl<S: Read + Write> EvaClient<S> {
    /// Performs the handshake over an already-established stream.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol or validation failures.
    pub fn handshake(mut stream: S, key_seed: Option<u64>) -> Result<Self, ServiceError> {
        write_message(
            &mut stream,
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
            },
        )?;
        let manifest = match expect_message(&mut stream)? {
            Message::Manifest(manifest) => *manifest,
            Message::Error(msg) => return Err(ServiceError::Remote(msg)),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Manifest, got {other:?}"
                )))
            }
        };
        // Handshake validation: never build a context from unvalidated wire
        // data. `from_primes` re-checks the chain (NTT-friendliness,
        // distinctness, prime sizes) and — iff the server claims security —
        // the 128-bit bound on log2 Q.
        let params = CkksParameters::from_primes(
            manifest.degree,
            &manifest.data_primes,
            manifest.special_prime,
            manifest.secure,
        )
        .map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;
        if manifest.vec_size > params.slot_count() {
            return Err(ServiceError::InvalidParameters(format!(
                "vector size {} exceeds the {} slots of degree {}",
                manifest.vec_size,
                params.slot_count(),
                manifest.degree
            )));
        }
        let context =
            CkksContext::new(params).map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;

        // Client-side key generation, mirroring EncryptedContext::setup's
        // draw order exactly (secret → public → relin → Galois) so seeded
        // runs are bit-identical to the in-process executor.
        let mut keygen = match key_seed {
            Some(seed) => KeyGenerator::from_seed(context.clone(), seed),
            None => KeyGenerator::new(context.clone()),
        };
        let public_key = keygen.create_public_key();
        let relin = manifest
            .needs_relin
            .then(|| keygen.create_relinearization_key());
        let galois = keygen.create_galois_keys(&manifest.rotation_steps);
        write_message(
            &mut stream,
            &Message::EvalKeys {
                relin: relin.map(Box::new),
                galois: Box::new(galois),
            },
        )?;

        let encoder = CkksEncoder::new(context.clone());
        let encryptor = match key_seed {
            Some(seed) => Encryptor::from_seed(context.clone(), public_key, seed.wrapping_add(1)),
            None => Encryptor::new(context.clone(), public_key),
        };
        let decryptor = Decryptor::new(context.clone(), keygen.secret_key().clone());
        Ok(Self {
            stream,
            manifest,
            context,
            encoder,
            encryptor,
            decryptor,
            keygen,
        })
    }

    /// The program manifest the server published.
    pub fn manifest(&self) -> &ProgramManifest {
        &self.manifest
    }

    /// Runs one evaluation round: encodes and encrypts every `Cipher` input
    /// at its manifest scale, ships the inputs, and decrypts/decodes the
    /// returned outputs to vectors of the program's vector size.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] if an input is missing or malformed, the
    /// server reports an error, or the response fails validation.
    pub fn evaluate(
        &mut self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<String, Vec<f64>>, ServiceError> {
        let vec_size = self.manifest.vec_size;
        let top_level = self.context.max_level();
        let mut wire_inputs = Vec::with_capacity(self.manifest.inputs.len());
        for spec in &self.manifest.inputs {
            let raw = inputs.get(&spec.name).ok_or_else(|| {
                ServiceError::Execution(format!("missing input value for {:?}", spec.name))
            })?;
            if raw.is_empty() || raw.len() > vec_size {
                return Err(ServiceError::Execution(format!(
                    "input {:?} has length {}, expected between 1 and {vec_size}",
                    spec.name,
                    raw.len()
                )));
            }
            let value = if spec.cipher {
                // Replicate exactly like the in-process executor, then stamp
                // the node's exact log2 scale (bit-for-bit from the wire).
                let replicated: Vec<f64> = (0..vec_size).map(|i| raw[i % raw.len()]).collect();
                let plaintext = self.encoder.encode(&replicated, spec.scale_log2, top_level);
                InputValue::Cipher(Box::new(self.encryptor.encrypt(&plaintext)))
            } else {
                InputValue::Plain(raw.clone())
            };
            wire_inputs.push((spec.name.clone(), value));
        }
        write_message(&mut self.stream, &Message::Inputs(wire_inputs))?;
        let outputs = match expect_message(&mut self.stream)? {
            Message::Outputs(outputs) => outputs,
            Message::Error(msg) => return Err(ServiceError::Remote(msg)),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Outputs, got {other:?}"
                )))
            }
        };
        let mut decoded = HashMap::with_capacity(outputs.len());
        for (name, value) in outputs {
            let values = match value {
                OutputValue::Cipher(ct) => {
                    // Validate the shape before decrypting so a hostile
                    // server cannot push the decryptor out of its domain
                    // (which would panic, e.g. on a coefficient-form poly).
                    if ct.polys()[0].degree() != self.context.degree()
                        || ct.level() > self.context.max_level()
                        || ct.size() > 3
                        || ct
                            .polys()
                            .iter()
                            .any(|p| p.form() != eva_poly::PolyForm::Ntt)
                    {
                        return Err(ServiceError::Protocol(format!(
                            "output {name:?} has an invalid ciphertext shape"
                        )));
                    }
                    let full = self.decryptor.decrypt_to_values(&ct, vec_size.max(1));
                    full[..vec_size].to_vec()
                }
                OutputValue::Plain(values) => values,
            };
            decoded.insert(name, values);
        }
        Ok(decoded)
    }

    /// The secret key's leak-audit probe (see
    /// [`eva_ckks::SecretKey::leak_probe`]): deployment tests scan captured
    /// traffic for these bytes to prove the secret never hit the socket.
    pub fn secret_key_probe(&self) -> Vec<u8> {
        self.keygen.secret_key().leak_probe()
    }

    /// Ends the session politely and returns the transport (so instrumented
    /// streams can be inspected afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if the goodbye cannot be sent.
    pub fn finish(mut self) -> Result<S, ServiceError> {
        write_message(&mut self.stream, &Message::Bye)?;
        Ok(self.stream)
    }
}
