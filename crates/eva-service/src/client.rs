//! The deployment client: the trusted party that owns every key.
//!
//! [`EvaClient`] connects to an [`EvaServer`](crate::EvaServer), validates
//! the encryption parameters the server publishes (rebuilding them with
//! [`CkksParameters::from_primes`], which re-checks NTT-friendliness,
//! distinctness and — when claimed — the 128-bit security bound), generates
//! all key material locally, uploads only the evaluation keys, and then
//! encrypts inputs / decrypts outputs for as many evaluation rounds as it
//! likes. Secret and public encryption keys never leave the client.
//!
//! Two transport optimizations keep sessions lean:
//!
//! * fresh ciphertexts travel in **seeded** form (`EVAD`): inputs are
//!   encrypted with the secret-key [`SymmetricEncryptor`], whose uniform
//!   polynomial ships as a 32-byte seed — roughly half the bytes of the full
//!   two-polynomial encoding;
//! * a reconnecting client can **resume**: it presents the
//!   [`SessionTicket`] of an earlier session — the key seed paired with the
//!   evaluation-key fingerprint — and if the server still caches those keys
//!   the multi-megabyte key upload, and the client-side key generation it
//!   would require, are skipped entirely. Resumed sessions always draw
//!   **fresh** encryption randomness from OS entropy: only key *identity*
//!   is deterministic, never the per-ciphertext randomness (re-seeding the
//!   encryption RNG across sessions would repeat `(a, e)` pairs, and the
//!   difference of two `b` components would hand an observer the encoded
//!   plaintext difference).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use eva_ckks::{
    CkksContext, CkksEncoder, CkksParameters, Decryptor, KeyGenerator, SymmetricEncryptor,
};
use eva_wire::{fingerprint_eval_key_payload, KeyFingerprint};

use crate::error::ServiceError;
use crate::limits::ClientConfig;
use crate::protocol::{
    encode_payload, expect_message, write_frame, write_message, InputValue, Message, OutputValue,
    ProgramManifest, PROTOCOL_VERSION,
};

/// Establishes a TCP connection under a [`ClientConfig`]: connect deadline
/// per resolved address, then socket read/write timeouts — so neither a
/// black-holed connect nor a stalled server can hang the client forever.
fn connect_stream(
    addr: impl ToSocketAddrs,
    config: &ClientConfig,
) -> Result<TcpStream, ServiceError> {
    let stream = match config.connect_timeout {
        Some(timeout) => {
            let mut last_err = None;
            let mut connected = None;
            for addr in addr.to_socket_addrs()? {
                match TcpStream::connect_timeout(&addr, timeout) {
                    Ok(stream) => {
                        connected = Some(stream);
                        break;
                    }
                    Err(err) => last_err = Some(err),
                }
            }
            connected.ok_or_else(|| {
                ServiceError::Io(last_err.unwrap_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "address resolved to no socket addresses",
                    )
                }))
            })?
        }
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    Ok(stream)
}

/// Everything a client needs to resume a later session without re-uploading
/// its evaluation keys: the deterministic key seed (to re-derive the *same
/// secret key* the cached evaluation keys belong to) and the content
/// fingerprint addressing the server's key cache.
///
/// The two values are deliberately one type: resuming with a fingerprint
/// from a *different* seed would make the server relinearize and rotate
/// under the wrong secret, and every output would silently decrypt to noise
/// — so the pairing produced by [`EvaClient::resumption_ticket`] is the only
/// supported way to resume. Store and reload it as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTicket {
    /// The key-derivation seed the original session ran with.
    pub key_seed: u64,
    /// Fingerprint of the evaluation keys derived from that seed.
    pub fingerprint: KeyFingerprint,
}

/// A connected client session, generic over the transport so tests can use
/// instrumented or in-memory streams.
pub struct EvaClient<S> {
    stream: S,
    manifest: ProgramManifest,
    context: CkksContext,
    encoder: CkksEncoder,
    encryptor: SymmetricEncryptor,
    decryptor: Decryptor,
    keygen: KeyGenerator,
    key_seed: Option<u64>,
    fingerprint: Option<KeyFingerprint>,
    resumed: bool,
}

impl<S> std::fmt::Debug for EvaClient<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvaClient")
            .field("program", &self.manifest.name)
            .field("degree", &self.context.degree())
            .field("resumed", &self.resumed)
            .finish()
    }
}

impl EvaClient<TcpStream> {
    /// Connects to a server and performs the full handshake (hello →
    /// manifest → parameter validation → key generation → evaluation-key
    /// upload).
    ///
    /// `key_seed` selects deterministic **key derivation** — what makes a
    /// session resumable via [`EvaClient::resumption_ticket`]; pass `None`
    /// for fresh CSPRNG keys. Per-ciphertext encryption randomness is always
    /// drawn fresh from OS entropy either way (see
    /// [`EvaClient::handshake_deterministic`] for the test-only fully
    /// reproducible mode).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on connection, protocol or validation
    /// failures.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use std::collections::HashMap;
    /// use eva_service::EvaClient;
    ///
    /// let mut client = EvaClient::connect("server:7700", None).unwrap();
    /// let inputs: HashMap<String, Vec<f64>> =
    ///     [("x".to_string(), vec![1.5; 8])].into_iter().collect();
    /// let outputs = client.evaluate(&inputs).unwrap();
    /// client.finish().unwrap();
    /// # let _ = outputs;
    /// ```
    ///
    /// To use session resumption later, connect with a **seed** (so the same
    /// keys can be re-derived) and keep the [`SessionTicket`]; see
    /// [`EvaClient::connect_resuming`].
    pub fn connect(addr: impl ToSocketAddrs, key_seed: Option<u64>) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::handshake(stream, key_seed)
    }

    /// Like [`EvaClient::connect`], but attempting **session resumption**
    /// with the [`SessionTicket`] of an earlier seeded session
    /// ([`EvaClient::resumption_ticket`]). If the server still caches the
    /// ticket's keys, neither evaluation-key generation nor the upload
    /// happens; otherwise the handshake falls back to the full path
    /// transparently.
    ///
    /// The ticket pairs the key seed with the fingerprint because resumption
    /// is only sound when this client re-derives the **exact secret key**
    /// the cached evaluation keys were generated from — mismatched halves
    /// would make every output silently decrypt to noise. Encryption
    /// randomness is drawn **fresh from OS entropy** regardless of the seed:
    /// the seed fixes identity, never per-ciphertext randomness.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on connection, protocol or validation
    /// failures.
    ///
    /// # Example
    ///
    /// ```no_run
    /// use eva_service::EvaClient;
    ///
    /// let mut client = EvaClient::connect("server:7700", Some(7)).unwrap();
    /// let ticket = client.resumption_ticket().unwrap();
    /// client.finish().unwrap();
    ///
    /// // Later: present the ticket — zero key-upload bytes.
    /// let mut client = EvaClient::connect_resuming("server:7700", ticket).unwrap();
    /// assert!(client.resumed());
    /// ```
    pub fn connect_resuming(
        addr: impl ToSocketAddrs,
        ticket: SessionTicket,
    ) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::handshake_resuming(stream, ticket)
    }

    /// Like [`EvaClient::connect`], but under a [`ClientConfig`]: the TCP
    /// connect honors a deadline (per resolved address) and the socket gets
    /// read/write timeouts, so neither a black-holed connect nor a stalled
    /// server can hang the client forever.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on connection (including
    /// [`std::io::ErrorKind::TimedOut`]), protocol or validation failures.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        key_seed: Option<u64>,
        config: &ClientConfig,
    ) -> Result<Self, ServiceError> {
        Self::handshake(connect_stream(addr, config)?, key_seed)
    }

    /// [`EvaClient::connect_resuming`] under a [`ClientConfig`] (see
    /// [`EvaClient::connect_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on connection, protocol or validation
    /// failures.
    pub fn connect_resuming_with(
        addr: impl ToSocketAddrs,
        ticket: SessionTicket,
        config: &ClientConfig,
    ) -> Result<Self, ServiceError> {
        Self::handshake_resuming(connect_stream(addr, config)?, ticket)
    }
}

impl<S: Read + Write> EvaClient<S> {
    /// Performs the handshake over an already-established stream.
    ///
    /// `key_seed` fixes **key identity only** (so the session can mint a
    /// [`SessionTicket`] and later resume); per-ciphertext encryption
    /// randomness always comes fresh from OS entropy, so reconnecting with
    /// the same seed never repeats encryption randomness. For bit-for-bit
    /// reproducible sessions (tests, measurements) use
    /// [`EvaClient::handshake_deterministic`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol or validation failures.
    pub fn handshake(stream: S, key_seed: Option<u64>) -> Result<Self, ServiceError> {
        Self::handshake_inner(stream, key_seed, None, false)
    }

    /// Performs a **fully deterministic** handshake: keys *and* encryption
    /// randomness derive from `key_seed`, matching
    /// `EncryptedContext::setup`'s draw order so the session is bit-identical
    /// to the in-process executor. Tests, benchmarks and reproducible
    /// measurements only: two sessions with the same seed repeat the same
    /// per-ciphertext `(seed, e)` randomness, and the difference of their
    /// `b` components reveals the encoded plaintext difference — **never use
    /// this with real data**.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol or validation failures.
    pub fn handshake_deterministic(stream: S, key_seed: u64) -> Result<Self, ServiceError> {
        Self::handshake_inner(stream, Some(key_seed), None, true)
    }

    /// Performs the handshake over an already-established stream, attempting
    /// session resumption with a [`SessionTicket`] (transport-generic
    /// counterpart of [`EvaClient::connect_resuming`]). The ticket's seed
    /// re-derives the keys; encryption randomness is fresh OS entropy.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol or validation failures.
    pub fn handshake_resuming(stream: S, ticket: SessionTicket) -> Result<Self, ServiceError> {
        Self::handshake_inner(
            stream,
            Some(ticket.key_seed),
            Some(ticket.fingerprint),
            false,
        )
    }

    /// [`EvaClient::handshake_resuming`] with **deterministic encryption
    /// randomness**, for tests that must compare a retried/resumed session
    /// bit-for-bit against the in-process executor. Every session seeded
    /// this way re-derives the *same* per-ciphertext `(a, e)` randomness
    /// from the ticket's key seed, which is exactly the plaintext-leaking
    /// repetition [`EvaClient::handshake_deterministic`] warns about —
    /// **never use this with real data**; real resumption
    /// ([`EvaClient::handshake_resuming`]) always draws fresh OS entropy.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on protocol or validation failures.
    pub fn handshake_resuming_deterministic(
        stream: S,
        ticket: SessionTicket,
    ) -> Result<Self, ServiceError> {
        Self::handshake_inner(
            stream,
            Some(ticket.key_seed),
            Some(ticket.fingerprint),
            true,
        )
    }

    /// Shared handshake body. `deterministic_encryption` selects the seeded
    /// encryption RNG (test/bench reproducibility only — combined with
    /// reconnection it repeats `(a, e)` pairs across sessions and leaks
    /// plaintext differences, which is why production resumption always
    /// passes `false` and only the loudly-warned `*_deterministic`
    /// constructors pass `true`).
    fn handshake_inner(
        mut stream: S,
        key_seed: Option<u64>,
        resume: Option<KeyFingerprint>,
        deterministic_encryption: bool,
    ) -> Result<Self, ServiceError> {
        write_message(
            &mut stream,
            &Message::Hello {
                protocol: PROTOCOL_VERSION,
                resume,
            },
        )?;
        let (manifest, keys_cached) = match expect_message(&mut stream)? {
            Message::Manifest {
                manifest,
                keys_cached,
            } => (*manifest, keys_cached),
            Message::Error(msg) => return Err(ServiceError::Remote(msg)),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Manifest, got {other:?}"
                )))
            }
        };
        if keys_cached && resume.is_none() {
            return Err(ServiceError::Protocol(
                "server claims cached keys but this session offered none to resume".into(),
            ));
        }
        // Handshake validation: never build a context from unvalidated wire
        // data. `from_primes` re-checks the chain (NTT-friendliness,
        // distinctness, prime sizes) and — iff the server claims security —
        // the 128-bit bound on log2 Q.
        let params = CkksParameters::from_primes(
            manifest.degree,
            &manifest.data_primes,
            manifest.special_prime,
            manifest.secure,
        )
        .map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;
        if manifest.vec_size > params.slot_count() {
            return Err(ServiceError::InvalidParameters(format!(
                "vector size {} exceeds the {} slots of degree {}",
                manifest.vec_size,
                params.slot_count(),
                manifest.degree
            )));
        }
        let context =
            CkksContext::new(params).map_err(|e| ServiceError::InvalidParameters(e.to_string()))?;

        // Client-side key generation, mirroring EncryptedContext::setup's
        // draw order exactly (secret → public → relin → Galois) so seeded
        // runs are bit-identical to the in-process executor.
        let mut keygen = match key_seed {
            Some(seed) => KeyGenerator::from_seed(context.clone(), seed),
            None => KeyGenerator::new(context.clone()),
        };
        let fingerprint = if keys_cached {
            // Resumed: the server already holds keys under this fingerprint,
            // so all evaluation-side key generation (public/relin/Galois) and
            // the upload are skipped — only the secret key was derived.
            Some(resume.expect("checked above"))
        } else {
            // The public key is not used for encryption (the symmetric
            // seeded path is) but its draw keeps the keygen RNG order
            // stable, which is what makes the relin/Galois keys — and hence
            // the fingerprint — reproducible from the seed.
            let _public_key = keygen.create_public_key();
            let relin = manifest
                .needs_relin
                .then(|| keygen.create_relinearization_key());
            let galois = keygen.create_galois_keys(&manifest.rotation_steps);
            // Serialize the upload once and fingerprint those same bytes —
            // the EvalKeys payload (`has_relin · EVAL? · EVAG`) is exactly
            // the fingerprint input, and the server hashes it as received.
            // Unseeded sessions skip the hash: their secret key can never be
            // re-derived, so no resumption ticket can exist and digesting
            // megabytes of key material would buy nothing.
            let (tag, payload) = encode_payload(&Message::EvalKeys {
                relin: relin.map(Box::new),
                galois: Box::new(galois),
            });
            let fingerprint = key_seed
                .is_some()
                .then(|| fingerprint_eval_key_payload(&payload));
            write_frame(&mut stream, tag, &payload)?;
            fingerprint
        };

        let encoder = CkksEncoder::new(context.clone());
        let secret_key = keygen.secret_key().clone();
        let encryptor = match key_seed {
            Some(seed) if deterministic_encryption => SymmetricEncryptor::from_seed(
                context.clone(),
                secret_key.clone(),
                seed.wrapping_add(1),
            ),
            _ => SymmetricEncryptor::new(context.clone(), secret_key.clone()),
        };
        let decryptor = Decryptor::new(context.clone(), secret_key);
        Ok(Self {
            stream,
            manifest,
            context,
            encoder,
            encryptor,
            decryptor,
            keygen,
            key_seed,
            fingerprint,
            resumed: keys_cached,
        })
    }

    /// The program manifest the server published.
    pub fn manifest(&self) -> &ProgramManifest {
        &self.manifest
    }

    /// Content fingerprint of this session's evaluation keys (informational;
    /// to resume a later session use [`EvaClient::resumption_ticket`], which
    /// pairs this with the key seed it belongs to). `None` for unseeded
    /// sessions: they can never resume, so the multi-megabyte hash is
    /// skipped entirely.
    pub fn eval_key_fingerprint(&self) -> Option<KeyFingerprint> {
        self.fingerprint
    }

    /// The ticket a later connection can present to
    /// [`EvaClient::connect_resuming`] to skip the evaluation-key upload
    /// while the server still caches the keys. `None` for sessions with
    /// fresh CSPRNG keys — without a seed the secret key cannot be
    /// re-derived, so resumption can never be sound.
    pub fn resumption_ticket(&self) -> Option<SessionTicket> {
        Some(SessionTicket {
            key_seed: self.key_seed?,
            fingerprint: self.fingerprint?,
        })
    }

    /// Whether this session resumed server-cached evaluation keys (in which
    /// case no key material was generated or uploaded).
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// Runs one evaluation round: encodes and encrypts every `Cipher` input
    /// at its manifest scale (in seeded transport form — half the upload
    /// bytes of a full ciphertext), ships the inputs, and decrypts/decodes
    /// the returned outputs to vectors of the program's vector size.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] if an input is missing or malformed, the
    /// server reports an error, or the response fails validation.
    pub fn evaluate(
        &mut self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> Result<HashMap<String, Vec<f64>>, ServiceError> {
        let vec_size = self.manifest.vec_size;
        let top_level = self.context.max_level();
        let mut wire_inputs = Vec::with_capacity(self.manifest.inputs.len());
        for spec in &self.manifest.inputs {
            let raw = inputs.get(&spec.name).ok_or_else(|| {
                ServiceError::Execution(format!("missing input value for {:?}", spec.name))
            })?;
            if raw.is_empty() || raw.len() > vec_size {
                return Err(ServiceError::Execution(format!(
                    "input {:?} has length {}, expected between 1 and {vec_size}",
                    spec.name,
                    raw.len()
                )));
            }
            let value = if spec.cipher {
                // Replicate exactly like the in-process executor, then stamp
                // the node's exact log2 scale (bit-for-bit from the wire).
                let replicated: Vec<f64> = (0..vec_size).map(|i| raw[i % raw.len()]).collect();
                let plaintext = self.encoder.encode(&replicated, spec.scale_log2, top_level);
                InputValue::Seeded(Box::new(self.encryptor.encrypt_seeded(&plaintext)))
            } else {
                InputValue::Plain(raw.clone())
            };
            wire_inputs.push((spec.name.clone(), value));
        }
        write_message(&mut self.stream, &Message::Inputs(wire_inputs))?;
        let outputs = match expect_message(&mut self.stream)? {
            Message::Outputs(outputs) => outputs,
            Message::Error(msg) => return Err(ServiceError::Remote(msg)),
            other => {
                return Err(ServiceError::Protocol(format!(
                    "expected Outputs, got {other:?}"
                )))
            }
        };
        let mut decoded = HashMap::with_capacity(outputs.len());
        for (name, value) in outputs {
            let values = match value {
                OutputValue::Cipher(ct) => {
                    // Validate the shape before decrypting so a hostile
                    // server cannot push the decryptor out of its domain
                    // (which would panic, e.g. on a coefficient-form poly).
                    if ct.polys()[0].degree() != self.context.degree()
                        || ct.level() > self.context.max_level()
                        || ct.size() > 3
                        || ct
                            .polys()
                            .iter()
                            .any(|p| p.form() != eva_poly::PolyForm::Ntt)
                    {
                        return Err(ServiceError::Protocol(format!(
                            "output {name:?} has an invalid ciphertext shape"
                        )));
                    }
                    let full = self.decryptor.decrypt_to_values(&ct, vec_size.max(1));
                    full[..vec_size].to_vec()
                }
                OutputValue::Seeded(_) => {
                    // Computed values cannot be seed-compressed; a server
                    // sending one is talking nonsense.
                    return Err(ServiceError::Protocol(format!(
                        "output {name:?} arrived in seeded form, which only encryptors produce"
                    )));
                }
                OutputValue::Plain(values) => values,
            };
            decoded.insert(name, values);
        }
        Ok(decoded)
    }

    /// The secret key's leak-audit probe (see
    /// [`eva_ckks::SecretKey::leak_probe`]): deployment tests scan captured
    /// traffic for these bytes to prove the secret never hit the socket.
    pub fn secret_key_probe(&self) -> Vec<u8> {
        self.keygen.secret_key().leak_probe()
    }

    /// Ends the session politely and returns the transport (so instrumented
    /// streams can be inspected afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Io`] if the goodbye cannot be sent.
    pub fn finish(mut self) -> Result<S, ServiceError> {
        write_message(&mut self.stream, &Message::Bye)?;
        Ok(self.stream)
    }
}
