//! The service-layer error type.

use std::fmt;
use std::io;

use eva_wire::{ProgramDiagnostics, WireError};

/// Errors produced by the EVA deployment client and server.
#[derive(Debug)]
pub enum ServiceError {
    /// A socket read or write failed.
    Io(io::Error),
    /// A frame or wire object failed to decode.
    Wire(WireError),
    /// The peer violated the session protocol (wrong message order, wrong
    /// protocol version, oversized frame, …).
    Protocol(String),
    /// The server's encryption parameters failed client-side validation, or
    /// uploaded key material failed server-side validation.
    InvalidParameters(String),
    /// The static verifier or the noise gate refused a program: the payload
    /// carries every finding so the refusal is explainable to the operator.
    /// A server returning this has not instantiated any FHE state for the
    /// program — it refuses to serve rather than panic mid-evaluation.
    InvalidProgram(ProgramDiagnostics),
    /// The peer reported an error for the current request.
    Remote(String),
    /// Compilation or execution of the program failed.
    Execution(String),
    /// The peer closed the connection mid-session.
    Disconnected,
}

impl ServiceError {
    /// Whether retrying on a **fresh connection** has a chance of succeeding
    /// — the gate [`ReliableClient`](crate::ReliableClient) applies before
    /// each backoff.
    ///
    /// Transient: socket failures, disconnects, undecodable or
    /// protocol-violating traffic (a flipped bit or truncated frame corrupts
    /// what the peer *sent*, not what it *is*), locally-detected parameter
    /// corruption, and the server's explicitly retryable refusals (`busy:`
    /// backpressure, `deadline:` stall disconnects, `quota:` exhaustion —
    /// fresh sessions get fresh quotas — and `internal error` panics).
    ///
    /// Permanent: every other server-reported error (a verifier refusal or
    /// an execution failure reproduces deterministically) and local
    /// [`InvalidProgram`](ServiceError::InvalidProgram) /
    /// [`Execution`](ServiceError::Execution) failures.
    pub fn is_transient(&self) -> bool {
        match self {
            ServiceError::Io(_) | ServiceError::Wire(_) | ServiceError::Disconnected => true,
            ServiceError::Protocol(_) | ServiceError::InvalidParameters(_) => true,
            ServiceError::Remote(msg) => {
                msg.starts_with("busy:")
                    || msg.contains("deadline:")
                    || msg.contains("quota:")
                    || msg.contains("internal error")
            }
            ServiceError::InvalidProgram(_) | ServiceError::Execution(_) => false,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(err) => write!(f, "socket error: {err}"),
            ServiceError::Wire(err) => write!(f, "wire decoding error: {err}"),
            ServiceError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServiceError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            ServiceError::InvalidProgram(diagnostics) => {
                let joined: Vec<String> = diagnostics
                    .diagnostics
                    .iter()
                    .map(|d| format!("[{}] {}", d.check, d.message))
                    .collect();
                write!(
                    f,
                    "program {:?} failed verification: {}",
                    diagnostics.program,
                    joined.join("; ")
                )
            }
            ServiceError::Remote(msg) => write!(f, "peer reported an error: {msg}"),
            ServiceError::Execution(msg) => write!(f, "execution failed: {msg}"),
            ServiceError::Disconnected => write!(f, "peer closed the connection mid-session"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(err) => Some(err),
            ServiceError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(err: io::Error) -> Self {
        ServiceError::Io(err)
    }
}

impl From<WireError> for ServiceError {
    fn from(err: WireError) -> Self {
        ServiceError::Wire(err)
    }
}

impl From<eva_core::EvaError> for ServiceError {
    fn from(err: eva_core::EvaError) -> Self {
        ServiceError::Execution(err.to_string())
    }
}
