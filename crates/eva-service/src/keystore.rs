//! A crash-safe, content-addressed on-disk store for evaluation-key
//! payloads, layered **under** the server's in-memory LRU so warm session
//! resumption survives server restarts.
//!
//! Layout and trust model:
//!
//! * Entries are addressed by the SHA-256 fingerprint from
//!   `eva_wire::fingerprint` — the file at `<root>/ab/<64 hex>.evakeys`
//!   holds the raw `EvalKeys` frame payload, which is exactly the
//!   fingerprint's input. Content addressing makes writes idempotent and
//!   collisions a non-event.
//! * Writes are **atomic**: the payload is written to a hidden temp file in
//!   the same directory, `fsync`ed, then `rename`d into place. A crash
//!   mid-write leaves either the old entry or a stray temp file — never a
//!   truncated entry under a valid name.
//! * Loads **re-verify the fingerprint** over the bytes read back. The disk
//!   is not trusted: a corrupt, truncated or tampered file fails the hash,
//!   is deleted, and the server falls back to asking the client for a fresh
//!   upload. Nothing that fails verification is ever decoded, let alone
//!   served.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use eva_wire::{fingerprint_eval_key_payload, KeyFingerprint};

/// Hex-encodes a fingerprint (lowercase, 64 chars).
fn hex(fingerprint: &KeyFingerprint) -> String {
    let mut out = String::with_capacity(64);
    for byte in fingerprint.as_bytes() {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// The disk-backed evaluation-key store (see the module docs for the
/// layout, atomicity and trust rules).
#[derive(Debug)]
pub struct DiskKeyStore {
    root: PathBuf,
    /// Distinguishes concurrent temp files within one process; the pid in
    /// the temp name distinguishes processes sharing a store directory.
    temp_counter: AtomicU64,
}

impl DiskKeyStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            temp_counter: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an entry for `fingerprint` lives at (whether or not it
    /// exists) — two-hex-char fan-out directory, then the full digest.
    pub fn entry_path(&self, fingerprint: &KeyFingerprint) -> PathBuf {
        let digest = hex(fingerprint);
        self.root
            .join(&digest[..2])
            .join(format!("{digest}.evakeys"))
    }

    /// Atomically persists an evaluation-key payload under its fingerprint.
    /// The caller passes both because the server has already computed the
    /// fingerprint over these exact bytes; a mismatched pair would poison
    /// the store, so it is checked.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] if `payload` does not hash to
    /// `fingerprint`, otherwise the underlying I/O error.
    pub fn store(&self, fingerprint: &KeyFingerprint, payload: &[u8]) -> io::Result<()> {
        if fingerprint_eval_key_payload(payload) != *fingerprint {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "payload does not hash to the given fingerprint",
            ));
        }
        let path = self.entry_path(fingerprint);
        let dir = path.parent().expect("entry paths always have a parent");
        fs::create_dir_all(dir)?;
        let temp = dir.join(format!(
            ".{}.{}.{}.tmp",
            hex(fingerprint),
            std::process::id(),
            self.temp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        // Write + fsync the temp file, then rename into place: readers see
        // either nothing or the complete entry, never a torn write.
        let result = (|| {
            let mut file = fs::File::create(&temp)?;
            file.write_all(payload)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&temp, &path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&temp);
        }
        result
    }

    /// Loads the payload stored under `fingerprint`, **re-verifying the
    /// fingerprint over the bytes read back**. Returns `None` if the entry
    /// is absent or fails verification — a failing file is deleted on the
    /// spot (evicted, never trusted), so the next session re-uploads.
    pub fn load(&self, fingerprint: &KeyFingerprint) -> Option<Vec<u8>> {
        let path = self.entry_path(fingerprint);
        let payload = fs::read(&path).ok()?;
        if fingerprint_eval_key_payload(&payload) != *fingerprint {
            let _ = fs::remove_file(&path);
            return None;
        }
        Some(payload)
    }

    /// Removes the entry for `fingerprint`, if present.
    pub fn remove(&self, fingerprint: &KeyFingerprint) {
        let _ = fs::remove_file(self.entry_path(fingerprint));
    }

    /// Number of entries currently on disk (walks the fan-out directories;
    /// intended for tests and operational introspection, not hot paths).
    pub fn len(&self) -> usize {
        let Ok(prefixes) = fs::read_dir(&self.root) else {
            return 0;
        };
        prefixes
            .flatten()
            .filter_map(|p| fs::read_dir(p.path()).ok())
            .flat_map(|entries| entries.flatten())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "evakeys"))
            .count()
    }

    /// Whether the store currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DiskKeyStore {
        let dir =
            std::env::temp_dir().join(format!("eva-keystore-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskKeyStore::open(dir).unwrap()
    }

    #[test]
    fn roundtrips_a_payload_under_its_fingerprint() {
        let store = temp_store("roundtrip");
        let payload = b"not real keys, but faithful bytes".to_vec();
        let fingerprint = fingerprint_eval_key_payload(&payload);
        assert!(store.is_empty());
        store.store(&fingerprint, &payload).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.load(&fingerprint).as_deref(),
            Some(payload.as_slice())
        );
        // Storing again is an idempotent overwrite.
        store.store(&fingerprint, &payload).unwrap();
        assert_eq!(store.len(), 1);
        store.remove(&fingerprint);
        assert!(store.load(&fingerprint).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn refuses_a_mismatched_fingerprint_on_store() {
        let store = temp_store("mismatch");
        let err = store
            .store(&KeyFingerprint([7; 32]), b"whatever")
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_entries_are_evicted_never_trusted() {
        let store = temp_store("corrupt");
        let payload = vec![0xAB; 4096];
        let fingerprint = fingerprint_eval_key_payload(&payload);
        store.store(&fingerprint, &payload).unwrap();
        // Flip one byte on disk (bit rot / tampering)…
        let path = store.entry_path(&fingerprint);
        let mut bytes = fs::read(&path).unwrap();
        bytes[100] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        // …and the load both fails and deletes the file.
        assert!(store.load(&fingerprint).is_none());
        assert!(!path.exists(), "corrupt entry must be evicted");
        // Truncation is caught the same way.
        store.store(&fingerprint, &payload).unwrap();
        fs::write(&path, &payload[..1000]).unwrap();
        assert!(store.load(&fingerprint).is_none());
        assert!(!path.exists());
        let _ = fs::remove_dir_all(store.root());
    }
}
