//! # eva-service — client/server deployment of compiled EVA programs
//!
//! The EVA paper's whole point is a deployment split (Section 2): a client
//! that encodes and encrypts with keys it never shares, and an untrusted
//! server that executes the compiled circuit over ciphertexts. This crate
//! implements that split over TCP:
//!
//! * [`EvaServer`] loads a [`CompiledProgram`](eva_core::CompiledProgram)
//!   (in memory or from a `.evaprog` bundle), publishes a
//!   [`ProgramManifest`] to connecting clients, accepts their evaluation
//!   keys and runs evaluation rounds with the shared parallel executor —
//!   concurrently across sessions, each isolated with its own client's keys.
//! * [`EvaClient`] validates the published parameters with
//!   `CkksParameters::from_primes`, generates **all** keys locally, uploads
//!   only the evaluation keys (relinearization + exactly the Galois keys the
//!   circuit's rotation steps need), then encrypts inputs and decrypts
//!   outputs for any number of evaluation rounds.
//!
//! Wire formats come from `eva-wire`; secret keys have no wire
//! representation at all, and the public *encryption* key also stays on the
//! client — the server receives nothing it could encrypt (let alone
//! decrypt) with.
//!
//! # Example
//!
//! ```no_run
//! use std::collections::HashMap;
//! use std::net::TcpListener;
//! use eva_core::{compile, CompilerOptions, Opcode, Program};
//! use eva_service::{EvaClient, EvaServer};
//!
//! // Compile x^2 and serve it on a localhost socket.
//! let mut p = Program::new("square", 8);
//! let x = p.input_cipher("x", 30);
//! let sq = p.instruction(Opcode::Multiply, &[x, x]);
//! p.output("out", sq, 30);
//! let compiled = compile(&p, &CompilerOptions::default()).unwrap();
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let server = EvaServer::new(compiled).unwrap();
//! let handle = std::thread::spawn(move || server.serve_sessions(&listener, 1));
//!
//! let mut client = EvaClient::connect(addr, None).unwrap();
//! let inputs: HashMap<String, Vec<f64>> =
//!     [("x".to_string(), vec![1.5; 8])].into_iter().collect();
//! let outputs = client.evaluate(&inputs).unwrap();
//! assert!((outputs["out"][0] - 2.25).abs() < 1e-3);
//! client.finish().unwrap();
//! handle.join().unwrap().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod protocol;
pub mod record;
pub mod server;

pub use client::EvaClient;
pub use error::ServiceError;
pub use protocol::{
    InputSpec, InputValue, Message, OutputSpec, OutputValue, ProgramManifest, ValuePayload,
    PROTOCOL_VERSION,
};
pub use record::{contains_bytes, RecordingStream};
pub use server::{EvaServer, SessionReport};
